pub use syndcim_core as core;
