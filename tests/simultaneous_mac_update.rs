//! The paper's macros "support simultaneous MAC and write operations"
//! (MCR ≥ 2: compute on one bank while updating another). This test
//! exercises exactly that on the assembled netlist: a bit-serial INT4
//! pass runs on bank 0 while bank 1 is being rewritten through the real
//! write port, and both the MAC results and the new bank-1 contents
//! must come out correct.

use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_sim::golden::{bit_serial_schedule, twos_complement_bit, DcimChannelTrace};
use syndcim_sim::vectors::{random_ints, seeded_rng};
use syndcim_sim::Simulator;

#[test]
fn mac_on_bank0_while_writing_bank1() {
    let spec = MacroSpec {
        h: 8,
        w: 8,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    let lib = syndcim_pdk::CellLibrary::syn40();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let mut sim = Simulator::new(&mac.module, &lib).unwrap();

    let mut rng = seeded_rng(21);
    let pa = 4u32;
    let channels = 2usize;
    let weights0: Vec<Vec<i64>> = (0..channels).map(|_| random_ints(&mut rng, 8, pa)).collect();
    let weights1: Vec<Vec<i64>> = (0..channels).map(|_| random_ints(&mut rng, 8, pa)).collect();
    let acts: Vec<i64> = random_ints(&mut rng, 8, pa);

    // Preload bank 0; bank 1 starts blank.
    for bc in &mac.bitcells {
        if bc.bank == 0 {
            let ch = bc.col / pa as usize;
            sim.force_state(bc.inst, twos_complement_bit(weights0[ch][bc.row], pa, (bc.col % 4) as u32));
        }
    }
    // Precision mode INT4, compute on bank 0.
    for k in 0..=2 {
        sim.set(&format!("prec[{k}]"), k == 2);
    }
    sim.set("bank_sel[0]", false);
    sim.step();

    // Run the pass while the write port walks bank 1 row by row.
    let schedule = bit_serial_schedule(&acts, pa);
    let depth = mac.mac_pipeline_depth as u32;
    for cycle in 0..(pa + depth) {
        let quiet = [false; 8];
        let row: &[bool] = schedule.get(cycle as usize).map_or(&quiet, |r| r);
        for (r, &bit) in row.iter().enumerate() {
            sim.set(&format!("act[{r}]"), bit);
        }
        sim.set("clear", cycle == depth);
        sim.set("neg", cycle == pa - 1 + depth);
        // Concurrent weight update: write one row of bank 1 per cycle.
        let wr_row = (cycle as usize) % 8;
        sim.set("wr_en", true);
        sim.set_bus("wr_row", 3, wr_row as i64);
        sim.set_bus("wr_bank", 1, 1);
        for c in 0..8usize {
            let ch = c / 4;
            sim.set(&format!("wbl[{c}]"), twos_complement_bit(weights1[ch][wr_row], pa, (c % 4) as u32));
        }
        sim.step();
    }
    sim.set("wr_en", false);
    sim.set("neg", false);

    // 1) MAC results on bank 0 are untouched by the concurrent writes.
    for (ch, wvec) in weights0.iter().enumerate() {
        let level = 2usize;
        let width = mac.output_width(level) as u32;
        let raw = sim.get_bus_signed(&mac.output_port(ch, level, 0), width);
        let got = raw >> (mac.act_bits - pa);
        let want = DcimChannelTrace::run(&acts, wvec, pa, pa).output;
        assert_eq!(got, want, "channel {ch} corrupted by concurrent write");
    }
    // 2) The first 6 written rows of bank 1 hold the new weights (the
    //    pass ran pa + depth cycles; rows beyond that are unwritten).
    for bc in &mac.bitcells {
        if bc.bank == 1 && bc.row < (pa + depth) as usize {
            let ch = bc.col / pa as usize;
            let want = twos_complement_bit(weights1[ch][bc.row], pa, (bc.col % 4) as u32);
            assert_eq!(sim.state_of(bc.inst), want, "bank1 col {} row {}", bc.col, bc.row);
        }
    }
}
