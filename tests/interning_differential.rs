//! Differential pinning of the interned-name layer on the 64×64 paper
//! test-chip netlist.
//!
//! PR 5 removed every owned `String` name table from the compiled
//! artifacts — `Program`, `CompiledSta`, `CompiledPower` now resolve
//! names lazily through the lowering's shared `Interner`. Lazy must not
//! mean *different*: every name a compiled backend prints — critical
//! path steps, critical-group summaries, per-group power keys — has to
//! be **string-identical** to what the reference backends produce from
//! the module's own tables. These tests hold that bar on the real
//! workload, plus the structural invariants of the new hierarchical
//! group-path tree behind `CompiledPower::by_path_pj`.

use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_engine::{Lowering, Program};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::PowerAnalyzer;
use syndcim_sim::Simulator;
use syndcim_sta::Sta;

/// Critical-path and group names from the compiled STA must equal the
/// reference analyzer's, character for character, across corners.
#[test]
fn compiled_sta_names_are_string_identical_to_reference() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &MacroSpec::paper_test_chip(), &DesignChoice::default());
    let module = &mac.module;
    let sta = Sta::new(module, &lib).unwrap();
    let csta = sta.compile();

    for v in [0.7, 0.9, 1.2] {
        let op = OperatingPoint::at_voltage(v);
        let reference = sta.analyze_at(1_000.0, op);
        let compiled = csta.analyze_at(1_000.0, op);
        assert!(!reference.critical_path.is_empty(), "the paper chip has a critical path");
        for (r, c) in reference.critical_path.iter().zip(&compiled.critical_path) {
            assert_eq!(r.through, c.through, "instance name at {v} V");
            assert_eq!(r.group, c.group, "group path at {v} V");
            assert_eq!(r.net, c.net, "net name at {v} V");
        }
        assert_eq!(reference.critical_groups(), compiled.critical_groups(), "group summary at {v} V");
    }

    // The interned tables cover the whole module, not just the path.
    let syms = csta.symbols();
    for (i, net) in module.nets.iter().enumerate() {
        assert_eq!(syms.net_name(i), net.name, "net slot {i}");
    }
    for (i, inst) in module.instances.iter().enumerate() {
        assert_eq!(syms.inst_name(i), inst.name, "instance {i}");
        assert_eq!(syms.group_name(syms.group_of(i)), module.group_name(inst.group), "group of {i}");
    }
}

/// Per-group power breakdown keys (and values) from the compiled
/// backend must be identical to the reference analyzer's string-keyed
/// accumulation, and the hierarchical path drill-down must be
/// consistent with it.
#[test]
fn compiled_power_group_names_and_paths_match_reference() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &MacroSpec::paper_test_chip(), &DesignChoice::default());
    let module = &mac.module;
    let pa = PowerAnalyzer::new(module, &lib).unwrap();
    let cp = pa.compile();

    // Deterministic synthetic activity over every net.
    let toggles: Vec<u64> = (0..module.net_count() as u64).map(|i| (i * 7) % 23).collect();
    let cycles = 64u64;

    for v in [0.7, 0.9, 1.2] {
        let op = OperatingPoint::at_voltage(v);
        let reference = pa.from_activity(&toggles, cycles, 800.0, op);
        let compiled = cp.report(&toggles, cycles, 800.0, op);
        assert_eq!(
            reference.by_group_pj, compiled.by_group_pj,
            "group keys and energies must be identical at {v} V"
        );

        // Hierarchical drill-down: every head key reappears as a path
        // root whose rolled-up total equals the head's switching total
        // plus its clock-pin share (same additions, possibly
        // reassociated — allow only rounding).
        let by_path = cp.by_path_pj(&toggles, cycles, op);
        let clock = cp.clock_by_group_pj(op);
        assert_eq!(clock, pa.clock_by_group_pj(op), "clock breakdown keys and energies at {v} V");
        for (head, &pj) in &reference.by_group_pj {
            let root =
                by_path.get(head).unwrap_or_else(|| panic!("head `{head}` missing from by_path_pj at {v} V"));
            let want = pj + clock[head];
            assert!(
                (root - want).abs() <= 1e-9 * want.abs().max(1.0),
                "path root `{head}` = {root} vs head switching+clock total {want} at {v} V"
            );
        }
        // Every non-root path hangs under an existing prefix, and a
        // parent's rollup is at least each child's.
        for (path, &pj) in &by_path {
            if let Some((prefix, _)) = path.rsplit_once('/') {
                let parent =
                    by_path.get(prefix).unwrap_or_else(|| panic!("prefix `{prefix}` of `{path}` missing"));
                assert!(
                    *parent >= pj - 1e-9 * pj.abs().max(1.0),
                    "`{prefix}` ({parent}) must include `{path}` ({pj})"
                );
            }
        }
    }
    assert!(cp.path_count() >= cp.group_count(), "paths include every head");
}

/// The simulation program's label helpers resolve every real slot to
/// its net name through the shared interner (and no scratch slot leaks
/// a name).
#[test]
fn program_net_labels_match_module_names() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &MacroSpec::paper_test_chip(), &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);
    for (i, net) in module.nets.iter().enumerate() {
        assert_eq!(prog.net_label(i as u32), Some(net.name.as_str()), "slot {i}");
    }
    assert_eq!(prog.net_label(module.net_count() as u32), None, "scratch slots are anonymous");
    assert!(prog.op_count() > 0);
    // Spot-check the op diagnostics render without panicking and name
    // at least one real net.
    let rendered = prog.op_label(0);
    assert!(rendered.contains('='), "op label must describe an assignment: {rendered}");
}

/// `Simulator::with_lowering` (the satellite API) is bit-identical to
/// `Simulator::new` on the paper chip — same values, same toggles —
/// while reusing the compiled program's traversal.
#[test]
fn interpreter_with_lowering_is_bit_identical_on_paper_chip() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &MacroSpec::paper_test_chip(), &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();

    let mut fresh = Simulator::new(module, &lib).unwrap();
    let mut shared = Simulator::with_lowering(module, &lib, &low).unwrap();
    let in_nets: Vec<_> = module.input_ports().map(|p| p.net).collect();
    for c in 0..8u64 {
        for (k, &net) in in_nets.iter().enumerate() {
            let bit = (c.wrapping_mul(0x9E37_79B9) >> (k % 31)) & 1 == 1;
            fresh.poke(net, bit);
            shared.poke(net, bit);
        }
        fresh.step();
        shared.step();
    }
    for n in 0..module.net_count() {
        let id = syndcim_netlist::NetId(n as u32);
        assert_eq!(fresh.peek(id), shared.peek(id), "net {n} diverges");
    }
    assert_eq!(fresh.toggle_table(), shared.toggle_table(), "toggle tables must be bit-identical");
    assert_eq!(fresh.cycles(), shared.cycles());
}
