//! Cross-crate integration tests: the full compiler pipeline from spec
//! to verified, measured macro.

use syndcim_core::{implement, measure_int, search, DesignChoice, MacroSpec};
use syndcim_layout::check_drc;
use syndcim_pdk::OperatingPoint;
use syndcim_scl::Scl;
use syndcim_sim::vectors::{random_ints, seeded_rng};
use syndcim_sta::Sta;

fn spec(h: usize, w: usize, mcr: usize) -> MacroSpec {
    MacroSpec {
        h,
        w,
        mcr,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

#[test]
fn search_implement_verify_16x16() {
    let s = spec(16, 16, 2);
    let mut scl = Scl::new();
    let res = search(&s, &mut scl);
    assert!(!res.frontier.is_empty());
    let best = res.best(&s).unwrap();
    let lib = scl.cell_library().clone();
    let im = implement(&lib, &s, &best.choice).unwrap();
    check_drc(&im.mac.module, &im.placement).unwrap();

    let mut rng = seeded_rng(11);
    for pa in [1u32, 2, 4] {
        let ch = 16 / pa as usize;
        let w: Vec<Vec<i64>> = (0..ch).map(|_| random_ints(&mut rng, 16, pa)).collect();
        let a: Vec<Vec<i64>> = (0..3).map(|_| random_ints(&mut rng, 16, pa)).collect();
        let m = measure_int(&im, &lib, pa, &a, &w, OperatingPoint::at_voltage(0.9), 400.0)
            .unwrap_or_else(|e| panic!("INT{pa}: {e}"));
        assert_eq!(m.checked_outputs, ch * 3);
    }
}

#[test]
fn every_frontier_point_implements_cleanly() {
    let s = spec(8, 8, 2);
    let mut scl = Scl::new();
    let res = search(&s, &mut scl);
    let lib = scl.cell_library().clone();
    for p in res.frontier.iter().take(6) {
        let im = implement(&lib, &s, &p.choice).unwrap_or_else(|e| panic!("{}: {e}", p.choice.label()));
        check_drc(&im.mac.module, &im.placement).unwrap();
    }
}

#[test]
fn mcr_banks_hold_independent_weights() {
    // Write different weights to bank 0 and bank 1 through the real
    // write port, then verify bank selection steers the MAC.
    use syndcim_sim::Simulator;
    let s = spec(8, 8, 2);
    let lib = syndcim_pdk::CellLibrary::syn40();
    let mac = syndcim_core::assemble(&lib, &s, &DesignChoice::default());
    let mut sim = Simulator::new(&mac.module, &lib).unwrap();
    // Write bank b, row r: wbl pattern depends on bank.
    for bank in 0..2i64 {
        for r in 0..8 {
            sim.set("wr_en", true);
            sim.set_bus("wr_row", 3, r);
            sim.set_bus("wr_bank", 1, bank);
            for c in 0..8 {
                sim.set(&format!("wbl[{c}]"), (c as i64 + bank) % 2 == 0);
            }
            sim.step();
        }
    }
    sim.set("wr_en", false);
    // Check the stored states directly via the bitcell map.
    for bc in &mac.bitcells {
        let want = (bc.col as i64 + bc.bank as i64) % 2 == 0;
        assert_eq!(sim.state_of(bc.inst), want, "col {} bank {}", bc.col, bc.bank);
    }
}

#[test]
fn post_layout_timing_slower_but_consistent() {
    let s = spec(8, 8, 1);
    let lib = syndcim_pdk::CellLibrary::syn40();
    let im = implement(&lib, &s, &DesignChoice::default()).unwrap();
    let pre = Sta::new(&im.mac.module, &lib).unwrap().analyze(1e6).max_delay_ps;
    let post = im.timing_at(&lib, 1e6, OperatingPoint::at_voltage(0.9)).max_delay_ps;
    assert!(post > pre);
    assert!(post < pre * 3.0, "wire overhead should be bounded: pre={pre} post={post}");
}

#[test]
fn weight_update_and_mac_frequencies_both_checked() {
    // A spec demanding impossibly fast weight updates must fail search.
    let mut s = spec(8, 8, 2);
    s.f_wu_mhz = 50_000.0;
    let mut scl = Scl::new();
    let res = search(&s, &mut scl);
    assert!(res.feasible.is_empty());
}
