//! Observability pins: the telemetry layer must report a deterministic
//! span tree and counters for the implementation flow, aggregate
//! identically across `parallel_map` worker counts, and stay silent
//! (and out of the way of every differential test) while disabled.
//!
//! Telemetry state is process-global, so every test here serializes on
//! one lock and resets the collector before measuring.

use std::sync::Mutex;

use syndcim_core::{implement, measure_int, DesignChoice, MacroSpec};
use syndcim_ir::parallel_map_threads;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sim::Simulator;
use syndcim_telemetry as telemetry;

static LOCK: Mutex<()> = Mutex::new(());

fn tiny_spec() -> MacroSpec {
    MacroSpec {
        h: 8,
        w: 8,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

fn child<'a>(node: &'a telemetry::SpanSnapshot, name: &str) -> &'a telemetry::SpanSnapshot {
    node.children
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("span `{}` has no child `{name}`: {:?}", node.name, node.children))
}

/// The flow's span tree is structurally pinned: phase spans nest under
/// `implement`, the compiled-trinity spans nest under
/// `implement.compile`, and the report attached to the macro carries
/// the same structure.
#[test]
fn implement_span_tree_nests_the_flow_phases() {
    let _guard = LOCK.lock().unwrap();
    telemetry::set_mode(telemetry::Mode::Summary);
    telemetry::reset();

    let lib = CellLibrary::syn40();
    let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();

    let root = &im.report.root;
    let imp = child(root, "implement");
    assert_eq!(imp.count, 1);
    for phase in [
        "implement.assemble",
        "implement.optimize",
        "implement.lower",
        "implement.place",
        "implement.drc",
        "implement.wires",
        "implement.compile",
        "implement.signoff",
    ] {
        assert_eq!(child(imp, phase).count, 1, "{phase}");
    }
    // Children come out sorted by name, independent of execution order.
    let names: Vec<&str> = imp.children.iter().map(|c| c.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);

    // One lowering — hoisted before placement so layout can reuse its
    // symbols — feeds the whole compiled trinity.
    let lowering = child(child(imp, "implement.lower"), "lowering");
    assert_eq!(lowering.count, 1, "one lowering per implement, observed by telemetry");
    for sub in ["lowering.connectivity", "lowering.levelize", "lowering.intern"] {
        assert_eq!(child(lowering, sub).count, 1, "{sub}");
    }
    let compile = child(imp, "implement.compile");
    assert_eq!(child(compile, "engine.compile").count, 1);
    assert_eq!(child(compile, "sta.compile").count, 1);
    assert_eq!(child(compile, "power.compile").count, 1);

    // The flow counters landed.
    assert_eq!(im.report.counter("ir.lowerings"), Some(1));
    assert_eq!(im.report.counter("engine.executors").unwrap_or(0), 0, "implement runs no simulation");
    assert!(im.report.gauge("engine.retained_bytes").unwrap() > 0);
    assert!(im.report.gauge("sta.retained_bytes").unwrap() > 0);
    assert!(im.report.gauge("power.retained_bytes").unwrap() > 0);

    // A fresh snapshot agrees with the attached report structurally.
    assert_eq!(telemetry::snapshot().root.signature(), im.report.root.signature());
}

/// Worker counts must be invisible: the same fan-out aggregated on 1, 2
/// and 8 threads produces identical span signatures and counters.
#[test]
fn parallel_map_aggregation_is_thread_count_invariant() {
    let _guard = LOCK.lock().unwrap();
    telemetry::set_mode(telemetry::Mode::Summary);

    let jobs: Vec<usize> = (0..24).collect();
    let run = |threads: usize| {
        telemetry::reset();
        let out = {
            telemetry::span!("fanout");
            parallel_map_threads(jobs.clone(), threads, |_, j| {
                telemetry::span!("fanout.job");
                telemetry::counter("test.fanout_jobs").incr();
                j * 2
            })
        };
        assert_eq!(out, jobs.iter().map(|j| j * 2).collect::<Vec<_>>());
        let report = telemetry::snapshot();
        (report.root.signature(), report.counters)
    };

    let (sig1, ctr1) = run(1);
    for threads in [2, 8] {
        let (sig, ctr) = run(threads);
        assert_eq!(sig, sig1, "span tree must not depend on worker count ({threads} threads)");
        assert_eq!(ctr, ctr1, "counters must not depend on worker count ({threads} threads)");
    }
    assert_eq!(ctr1.iter().find(|(n, _)| n == "test.fanout_jobs").unwrap().1, 24);
}

/// The symbol-keyed port-lookup satellite: the whole measured flow —
/// implement, engine measurement, interpreter passes riding the shared
/// lowering — allocates **zero** per-instance owned port tables; only
/// the standalone `Simulator::new` path still builds one.
#[test]
fn shared_port_lookup_allocates_no_owned_tables() {
    let _guard = LOCK.lock().unwrap();
    telemetry::set_mode(telemetry::Mode::Summary);
    telemetry::reset();

    let lib = CellLibrary::syn40();
    let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
    let weights = vec![vec![3, -2, 1, 0, -4, 5, 2, -1], vec![1; 8]];
    let passes = vec![vec![1; 8], vec![-3; 8]];
    measure_int(&im, &lib, 4, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0).unwrap();
    let report = telemetry::snapshot();
    assert_eq!(
        report.counter("sim.port_table_allocs").unwrap_or(0),
        0,
        "shared-lowering paths own no port maps"
    );
    assert!(report.counter("engine.executors").unwrap() > 0, "the engine measurement ran");

    // The standalone constructor is the one remaining owned-table path.
    let _sim = Simulator::new(&im.mac.module, &lib).unwrap();
    assert_eq!(telemetry::snapshot().counter("sim.port_table_allocs"), Some(1));
}

/// Disabled mode records nothing — spans, counters, gauges all stay
/// empty while the instrumented flow runs at full speed.
#[test]
fn disabled_mode_records_nothing() {
    let _guard = LOCK.lock().unwrap();
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();

    let lib = CellLibrary::syn40();
    let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
    assert!(im.report.root.children.is_empty(), "no spans while disabled");
    assert_eq!(im.report.counter("ir.lowerings").unwrap_or(0), 0);
    assert_eq!(im.report.gauge("engine.retained_bytes").unwrap_or(0), 0);
    assert!(!telemetry::enabled());
}
