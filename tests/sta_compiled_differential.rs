//! Differential pinning of the compiled STA against the reference
//! analyzer on the 64×64 paper test-chip netlist.
//!
//! `CompiledSta` is the timing analogue of the simulation engine: one
//! lowering, then a struct-of-arrays pass per operating point. These
//! tests hold it to the same bar the engine is held to — **bit-identical
//! results**, not "close enough": per-net arrival times, worst slack,
//! `f_max`, the critical path step list and the critical-group summary
//! must all equal the reference `Sta::analyze_at`, across operating
//! points (voltage *and* temperature corners) and wire-load
//! configurations (pre-layout zero wires and annotated parasitics).

use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::{Sta, TimingReport, WireLoads};

/// Operating points the paper's shmoo sweeps: slow/low-V, nominal,
/// fast/high-V, plus a hot corner exercising the temperature derate.
fn corners() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint::at_voltage(0.7),
        OperatingPoint::at_voltage(0.9),
        OperatingPoint::at_voltage(1.2),
        OperatingPoint { vdd_v: 0.8, temp_c: 105.0 },
    ]
}

/// Deterministic synthetic parasitics: every net gets a distinct but
/// reproducible wire cap and delay (stands in for extraction without
/// paying for 64×64 placement in a unit test).
fn synthetic_wires(nets: usize) -> WireLoads {
    let mut wires = WireLoads::zero(nets);
    for (i, c) in wires.cap_ff.iter_mut().enumerate() {
        *c = ((i * 37) % 23) as f64 * 0.9;
    }
    for (i, d) in wires.delay_ps.iter_mut().enumerate() {
        *d = ((i * 13) % 11) as f64 * 4.0;
    }
    wires
}

fn assert_reports_identical(reference: &TimingReport, compiled: &TimingReport, what: &str) {
    assert_eq!(reference.arrival_ps, compiled.arrival_ps, "{what}: per-net arrival times");
    assert_eq!(reference.max_delay_ps, compiled.max_delay_ps, "{what}: worst path delay");
    assert_eq!(reference.wns_ps, compiled.wns_ps, "{what}: worst slack");
    assert_eq!(reference.fmax_mhz, compiled.fmax_mhz, "{what}: fmax");
    assert_eq!(reference.critical_path, compiled.critical_path, "{what}: critical path steps");
    assert_eq!(reference.critical_groups(), compiled.critical_groups(), "{what}: critical group summary");
}

#[test]
fn compiled_sta_matches_reference_on_paper_test_chip() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;

    for (wires, label) in [
        (WireLoads::zero(module.net_count()), "pre-layout"),
        (synthetic_wires(module.net_count()), "wire-annotated"),
    ] {
        let sta = Sta::new(module, &lib).unwrap().with_wire_loads(wires);
        let csta = sta.compile();
        assert_eq!(csta.net_count(), module.net_count());
        assert!(csta.arc_count() > 0, "the paper chip must lower to a non-empty arc stream");

        for op in corners() {
            for period_ps in [800.0, 2_000.0] {
                let reference = sta.analyze_at(period_ps, op);
                let compiled = csta.analyze_at(period_ps, op);
                let what = format!("{label} @ {:.2} V / {:.0} C / {period_ps} ps", op.vdd_v, op.temp_c);
                assert_reports_identical(&reference, &compiled, &what);
            }
            assert_eq!(
                sta.fmax_mhz(op),
                csta.fmax_mhz(op),
                "{label}: fmax at {:.2} V must be bit-identical",
                op.vdd_v
            );
        }

        // Batch entry points must equal the per-point queries.
        let ops = corners();
        let fmaxes = csta.fmax_many(&ops);
        for (op, fmax) in ops.iter().zip(&fmaxes) {
            assert_eq!(*fmax, sta.fmax_mhz(*op), "{label}: batched fmax at {:.2} V", op.vdd_v);
        }
        let points: Vec<(f64, OperatingPoint)> = ops.iter().map(|&op| (1_250.0, op)).collect();
        for (report, &(period_ps, op)) in csta.analyze_many(&points).iter().zip(&points) {
            let what = format!("{label} analyze_many @ {:.2} V", op.vdd_v);
            assert_reports_identical(&sta.analyze_at(period_ps, op), report, &what);
        }
    }
}

/// The timing program must be reusable and order-independent: analyzing
/// the corners in a different order, twice, from a clone, changes
/// nothing (guards against scratch-state leakage between analyses).
#[test]
fn compiled_sta_reuse_is_stateless() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let sta = Sta::new(&mac.module, &lib).unwrap();
    let csta = sta.compile();

    let fwd: Vec<f64> = corners().iter().map(|&op| csta.fmax_mhz(op)).collect();
    let mut rev: Vec<f64> = corners().iter().rev().map(|&op| csta.clone().fmax_mhz(op)).collect();
    rev.reverse();
    assert_eq!(fwd, rev, "analysis order and cloning must not affect results");
    assert_eq!(fwd, csta.fmax_many(&corners()), "batch must equal scalar queries");
}
