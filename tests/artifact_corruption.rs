//! Adversarial decode suite for the `.scim` artifact format: every
//! corruption an on-disk file can plausibly suffer must come back as a
//! typed [`ArtifactError`] — never a panic, never an abort, never an
//! attacker-controlled allocation.
//!
//! The attack surface, layer by layer:
//!
//! * **Truncation** — the file cut off at *every* byte prefix (the
//!   sample bundle is small enough to sweep exhaustively, which
//!   subsumes "every section boundary ± a few bytes").
//! * **Framing** — flipped magic bytes, past/future format versions,
//!   and a hostile section count.
//! * **Resource-exhaustion** — declared section lengths and element
//!   counts far beyond the actual payload must be rejected *before*
//!   any allocation is sized from them (the decoder's
//!   `MAX_SECTION_BYTES` / length-vs-remaining checks).
//! * **Bit rot** — a single flipped payload bit in each section is
//!   caught by that section's CRC-32, named in the error.
//! * **Fuzz** — ≥1k seeded random mutations (bit flips, byte
//!   overwrites, truncations, extensions); every one must return
//!   `Result`, and any `Ok` must canonically re-encode to the mutated
//!   input (i.e. only identity mutations decode).

use rand::Rng;
use syndcim_core::{ArtifactError, ArtifactReader, CompiledMacro, SectionId};
use syndcim_netlist::NetlistBuilder;
use syndcim_pdk::{CellKind, CellLibrary};
use syndcim_sim::vectors::seeded_rng;
use syndcim_sta::WireLoads;

/// A small but fully representative bundle: combinational logic, plain
/// and enabled flops, a bitcell — every op and commit kind the program
/// section can carry — compiled through the real trinity.
fn sample_bytes() -> Vec<u8> {
    let lib = CellLibrary::syn40();
    let mut b = NetlistBuilder::new("corruptible", &lib);
    let a = b.input("a");
    let c = b.input("b");
    let s = b.xor2(a, c);
    let q = b.dff(s);
    let qe = b.dffe(s, a);
    let rbl = b.add(CellKind::Sram6T2T, &[a, c])[0];
    let m1 = b.xor2(q, qe);
    let y = b.xor2(m1, rbl);
    b.output("y", y);
    let m = b.finish();
    let cm = CompiledMacro::compile(&m, &lib, &WireLoads::zero(m.net_count())).unwrap();
    cm.save_to_vec().unwrap()
}

#[test]
fn the_pristine_sample_loads_and_verifies() {
    let bytes = sample_bytes();
    let reader = ArtifactReader::parse(&bytes).unwrap();
    assert_eq!(reader.verify_checksums().unwrap(), SectionId::ALL.len());
    let cm = CompiledMacro::load_from_bytes(&bytes).unwrap();
    assert_eq!(cm.save_to_vec().unwrap(), bytes);
}

#[test]
fn truncation_at_every_byte_prefix_is_a_typed_error() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        let err = CompiledMacro::load_from_bytes(&bytes[..len])
            .expect_err(&format!("a {len}-byte prefix of a {}-byte artifact must not load", bytes.len()));
        // Every error Displays without panicking and is a decode-side
        // variant, never Io.
        let _ = err.to_string();
        assert!(!matches!(err, ArtifactError::Io(_)), "prefix {len}: truncation is not an I/O error");
    }
}

#[test]
fn flipped_magic_bytes_are_rejected() {
    let bytes = sample_bytes();
    for i in 0..8 {
        let mut m = bytes.clone();
        m[i] ^= 0x20;
        let err = CompiledMacro::load_from_bytes(&m).unwrap_err();
        assert!(
            matches!(err, ArtifactError::BadMagic { found } if found[..] == m[..8]),
            "magic byte {i}: got {err}"
        );
    }
}

#[test]
fn past_and_future_versions_are_rejected() {
    let bytes = sample_bytes();
    for version in [0u32, 2, 999, u32::MAX] {
        let mut m = bytes.clone();
        m[8..12].copy_from_slice(&version.to_le_bytes());
        let err = CompiledMacro::load_from_bytes(&m).unwrap_err();
        assert!(
            matches!(err, ArtifactError::UnsupportedVersion { found } if found == version),
            "version {version}: got {err}"
        );
    }
}

#[test]
fn hostile_lengths_and_counts_are_rejected_before_allocation() {
    let bytes = sample_bytes();
    let first_header = {
        let reader = ArtifactReader::parse(&bytes).unwrap();
        reader.entries()[0].header_offset as usize
    };

    // Declared section lengths far past the payload (and past the hard
    // decode limit): must error immediately, not try to allocate or
    // read terabytes.
    for declared in [u64::MAX, 1 << 62, (1 << 30) + 1, bytes.len() as u64 + 1] {
        let mut m = bytes.clone();
        m[first_header + 4..first_header + 12].copy_from_slice(&declared.to_le_bytes());
        let err = CompiledMacro::load_from_bytes(&m).unwrap_err();
        assert!(
            matches!(err, ArtifactError::SectionTooLarge { .. } | ArtifactError::Truncated { .. }),
            "declared len {declared}: got {err}"
        );
    }

    // A hostile section count in the container header.
    for count in [0u32, 1, 7, u32::MAX] {
        let mut m = bytes.clone();
        m[12..16].copy_from_slice(&count.to_le_bytes());
        assert!(CompiledMacro::load_from_bytes(&m).is_err(), "section count {count} must not load");
    }

    // An unknown section tag.
    let mut m = bytes.clone();
    m[first_header..first_header + 4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    assert!(matches!(
        CompiledMacro::load_from_bytes(&m).unwrap_err(),
        ArtifactError::UnknownSection { code: 0xDEAD_BEEF }
    ));
}

#[test]
fn a_single_flipped_bit_in_any_section_is_caught_by_its_checksum() {
    let bytes = sample_bytes();
    let entries: Vec<(SectionId, usize, usize)> = ArtifactReader::parse(&bytes)
        .unwrap()
        .entries()
        .iter()
        .map(|e| (e.id, e.header_offset as usize, e.len as usize))
        .collect();
    assert_eq!(entries.len(), SectionId::ALL.len());

    for &(id, header, len) in &entries {
        assert!(len > 0, "{}: sample sections are non-empty", id.name());
        // One bit, mid-payload.
        let mut m = bytes.clone();
        m[header + 16 + len / 2] ^= 1;
        let err = CompiledMacro::load_from_bytes(&m).unwrap_err();
        assert!(
            matches!(err, ArtifactError::ChecksumMismatch { section, .. } if section == id),
            "{}: payload bit flip must fail that section's CRC, got {err}",
            id.name()
        );

        // One bit in the stored checksum itself.
        let mut m = bytes.clone();
        m[header + 12] ^= 1;
        let err = CompiledMacro::load_from_bytes(&m).unwrap_err();
        assert!(
            matches!(err, ArtifactError::ChecksumMismatch { section, .. } if section == id),
            "{}: stored-CRC bit flip must mismatch, got {err}",
            id.name()
        );
    }
}

#[test]
fn a_thousand_seeded_random_mutations_never_panic() {
    let bytes = sample_bytes();
    let mut rng = seeded_rng(0x5C14_FA22);
    let mut rejected = 0usize;
    for i in 0..1_200usize {
        let mut m = bytes.clone();
        match i % 4 {
            // Flip 1–8 random bits.
            0 => {
                for _ in 0..rng.gen_range(1..=8usize) {
                    let at = rng.gen_range(0..m.len());
                    m[at] ^= 1 << rng.gen_range(0..8u32);
                }
            }
            // Overwrite 1–4 random bytes with random values.
            1 => {
                for _ in 0..rng.gen_range(1..=4usize) {
                    let at = rng.gen_range(0..m.len());
                    m[at] = rng.gen_range(0..=255u8);
                }
            }
            // Truncate to a random prefix.
            2 => m.truncate(rng.gen_range(0..m.len())),
            // Append 1–64 random trailing bytes.
            _ => {
                for _ in 0..rng.gen_range(1..=64usize) {
                    m.push(rng.gen_range(0..=255u8));
                }
            }
        }
        match CompiledMacro::load_from_bytes(&m) {
            Err(err) => {
                let _ = err.to_string();
                rejected += 1;
            }
            // An Ok decode is only legitimate if the mutation was an
            // identity (e.g. an overwrite that wrote the same value):
            // the canonical re-encode must equal the mutated input.
            Ok(cm) => assert_eq!(
                cm.save_to_vec().unwrap(),
                m,
                "mutation {i}: a non-identity mutation decoded successfully"
            ),
        }
    }
    assert!(rejected > 1_000, "the fuzz loop must actually exercise the error paths ({rejected} rejections)");
}
