//! Differential pins for the fault-injection & Monte-Carlo variation
//! subsystem:
//!
//! 1. **Zero-fault bit-identity** — an executor with an empty
//!    [`FaultPlan`] installed, *and* one with a plan whose only fault
//!    never fires (a transient flip scheduled far past the run), must
//!    match a nominal executor on every net, after every cycle, in
//!    every lane, including the aggregate toggle table. The second
//!    variant keeps the fault-mask tables allocated, so the masked
//!    write path itself is proven neutral.
//! 2. **Word-boundary lanes** — per-lane poke/peek and fault masks at
//!    lanes 63, 64, 191 and 255 (the `u64`/`W256` word seams) and at
//!    255, 256, 448 and 511 (the `W512` seams) touch exactly their
//!    lane, on every backend this host can run — portable and, where
//!    detected, the ISA-native AVX-512 word.
//! 3. **Monte-Carlo = sequential** — a 256-lane
//!    [`fmax_distribution`](syndcim_sta::CompiledSta::fmax_distribution)
//!    batch equals 256 sequential single-lane queries bit for bit.
//! 4. **Hardened error paths** — malformed fault plans, out-of-range
//!    lanes, unsupported precisions and sub-threshold corners return
//!    typed errors (or graceful zeros) where the seed flow panicked.

use rand::Rng;
use syndcim_core::{
    assemble, implement, measure_fp, measure_int, measure_weight_update_patterns, shmoo_yield, CompiledMacro,
    DesignChoice, EvalBackend, FaultPlan, FlowError, MacroSpec, VariationModel,
};
use syndcim_engine::{BatchSim, BatchSim256, EngineError, EngineSim, Lowering, Program, SimdBackend};
use syndcim_netlist::NetId;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sim::vectors::seeded_rng;
use syndcim_sim::SimBackend;
use syndcim_sta::WireLoads;

fn small_spec() -> MacroSpec {
    MacroSpec {
        h: 8,
        w: 8,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

/// Drive identical random stimulus into `sims` and assert every net,
/// every lane and the toggle tables stay bit-identical after every
/// cycle.
fn assert_lockstep<B: SimBackend + ?Sized>(sims: &mut [&mut B], in_nets: &[NetId], cycles: usize, seed: u64) {
    let words = sims[0].words();
    let net_count = sims[0].module().net_count();
    let mut rng = seeded_rng(seed);
    for cycle in 0..cycles {
        for &net in in_nets {
            for wi in 0..words {
                let word: u64 = rng.gen_range(0..u64::MAX);
                for sim in sims.iter_mut() {
                    sim.drive_word_at(net, wi, word);
                }
            }
        }
        for sim in sims.iter_mut() {
            sim.step();
        }
        for n in 0..net_count {
            let net = NetId(n as u32);
            for wi in 0..words {
                let want = sims[0].peek_word_at(net, wi);
                for (si, sim) in sims.iter().enumerate().skip(1) {
                    assert_eq!(
                        sim.peek_word_at(net, wi),
                        want,
                        "net {n} word {wi} diverged in sim {si} at cycle {cycle}"
                    );
                }
            }
        }
    }
    let want = sims[0].toggle_table().to_vec();
    for (si, sim) in sims.iter().enumerate().skip(1) {
        assert_eq!(sim.toggle_table(), &want[..], "toggle table diverged in sim {si}");
    }
}

#[test]
fn empty_and_never_firing_fault_plans_are_bit_identical_to_nominal() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &small_spec(), &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    // A plan whose only fault can never fire within the run: the
    // fault-state mask tables stay allocated (the masked write branch
    // executes for every slot write), yet all masks stay neutral.
    let mut dormant = FaultPlan::new();
    dormant.flip_at(in_nets[0], 0, 1_000_000);

    // Narrow (u64) backend, 4 lanes.
    let mut nominal = BatchSim::new(&prog, module, 4);
    let mut empty = BatchSim::new(&prog, module, 4);
    empty.install_faults(&FaultPlan::new()).unwrap();
    assert!(!empty.faults_installed(), "empty plan must not leave state behind");
    let mut armed = BatchSim::new(&prog, module, 4);
    armed.install_faults(&dormant).unwrap();
    assert!(armed.faults_installed());
    assert_lockstep(&mut [&mut nominal, &mut empty, &mut armed], &in_nets, 24, 0xFA17);

    // Wide (W256) backend, 70 lanes (spans two lane words).
    let mut nominal_w = BatchSim256::new(&prog, module, 70);
    let mut empty_w = BatchSim256::new(&prog, module, 70);
    empty_w.install_faults(&FaultPlan::new()).unwrap();
    let mut armed_w = BatchSim256::new(&prog, module, 70);
    armed_w.install_faults(&dormant).unwrap();
    assert_lockstep(&mut [&mut nominal_w, &mut empty_w, &mut armed_w], &in_nets, 24, 0xFA18);
}

#[test]
fn word_boundary_lane_pokes_and_faults_touch_exactly_their_lane() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &small_spec(), &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);

    // Per-lane poke/peek at the word seams, both backends.
    for (lanes, boundary_lanes) in
        [(64usize, vec![0usize, 63]), (256, vec![63, 64, 191, 255]), (512, vec![255, 256, 448, 511])]
    {
        let mut sim = EngineSim::new(&prog, module, lanes);
        let net = sim.net_of("act[0]");
        for &l in &boundary_lanes {
            sim.set_lane("act[0]", l, true);
            assert!(sim.get_lane("act[0]", l), "{lanes} lanes: lane {l} must read back");
            for wi in 0..sim.words() {
                let expect: u64 = boundary_lanes
                    .iter()
                    .take_while(|&&b| b <= l)
                    .filter(|&&b| b / 64 == wi)
                    .map(|&b| 1u64 << (b % 64))
                    .sum();
                assert_eq!(sim.peek_word_at(net, wi), expect, "{lanes} lanes: word {wi} after lane {l}");
            }
        }
    }

    // Stuck-at faults at the seams: the faulted net diverges in exactly
    // those lanes, and `mismatch_mask` reports exactly those bits.
    let mut sim = EngineSim::new(&prog, module, 256);
    let net = sim.net_of("act[0]");
    let mut plan = FaultPlan::new();
    for &l in &[63usize, 64, 191, 255] {
        plan.stuck_at(net, l, true);
    }
    sim.install_faults(&plan).unwrap();
    for wi in 0..sim.words() {
        sim.drive_word_at(net, wi, 0);
    }
    sim.step();
    assert_eq!(
        sim.mismatch_mask(net, 0).unwrap(),
        vec![1u64 << 63, 1u64 << 0, 1u64 << 63, 1u64 << 63],
        "stuck lanes at the word seams"
    );
    // The golden lane itself always reads as matching.
    assert_eq!(sim.mismatch_mask(net, 63).unwrap()[0] & (1 << 63), 0);
}

/// The 512-lane word's `u64` seams — lanes 255, 256, 448 and 511 —
/// carry per-lane fault masks bit-exactly on every backend this host
/// can run: the portable `[u64; 8]` word and, where detected, the
/// AVX-512 word. Stuck-at masks land in exactly the seam bits of
/// `mismatch_mask`, and a fault plan that actually fires mid-run
/// (stuck-ats plus transient flips at the seams) keeps all backends in
/// lockstep — every net, every lane, every cycle, and the toggle
/// tables.
#[test]
fn w512_seam_fault_masks_are_bit_identical_across_backends() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &small_spec(), &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    let seams = [255usize, 256, 448, 511];
    let backends: Vec<SimdBackend> =
        [SimdBackend::Portable, SimdBackend::Avx2, SimdBackend::Avx512, SimdBackend::Neon]
            .into_iter()
            .filter(|b| b.detected() && b.max_lanes() >= 512)
            .collect();
    assert!(backends.contains(&SimdBackend::Portable));

    // Stuck-at masks at the seams: `mismatch_mask` reports exactly the
    // seam bits, identically on each backend.
    for &backend in &backends {
        let mut sim = EngineSim::with_backend(&prog, module, 512, backend).unwrap();
        assert_eq!(sim.simd_backend(), backend);
        let net = sim.net_of("act[0]");
        let mut plan = FaultPlan::new();
        for &l in &seams {
            plan.stuck_at(net, l, true);
        }
        sim.install_faults(&plan).unwrap();
        for wi in 0..sim.words() {
            sim.drive_word_at(net, wi, 0);
        }
        sim.step();
        let mut want = vec![0u64; 8];
        for &l in &seams {
            want[l / 64] |= 1 << (l % 64);
        }
        assert_eq!(sim.mismatch_mask(net, 0).unwrap(), want, "{backend}: stuck lanes at the W512 seams");
        // The golden lane itself always reads as matching.
        assert_eq!(sim.mismatch_mask(net, 511).unwrap()[7] & (1 << 63), 0, "{backend}: golden lane");
    }

    // A plan that fires mid-run stays lockstep across every backend.
    let mut plan = FaultPlan::new();
    plan.stuck_at(in_nets[0], 255, true);
    plan.stuck_at(in_nets[1 % in_nets.len()], 511, true);
    plan.flip_at(in_nets[2 % in_nets.len()], 256, 5);
    plan.flip_at(in_nets[3 % in_nets.len()], 448, 11);
    let mut sims: Vec<EngineSim> = backends
        .iter()
        .map(|&b| {
            let mut sim = EngineSim::with_backend(&prog, module, 512, b).unwrap();
            sim.install_faults(&plan).unwrap();
            sim
        })
        .collect();
    let mut refs: Vec<&mut EngineSim> = sims.iter_mut().collect();
    assert_lockstep(&mut refs, &in_nets, 24, 0xFA1B);
}

#[test]
fn monte_carlo_256_lane_batch_equals_256_sequential_single_lane_runs() {
    let lib = CellLibrary::syn40();
    let im = implement(&lib, &small_spec(), &DesignChoice::default()).unwrap();
    let op = OperatingPoint::at_voltage(0.9);
    let scales = VariationModel::gaussian(0.09).sample(0xC0FFEE, 256);
    let batch = im.compiled.sta.fmax_distribution(op, &scales);
    assert_eq!(batch.len(), 256);
    for (l, &s) in scales.iter().enumerate() {
        let single = im.compiled.sta.fmax_distribution(op, &[s]);
        assert_eq!(batch[l], single[0], "lane {l}: batched MC must equal the sequential run");
    }
}

/// A bundle loaded from a `.scim` artifact must be a full citizen of
/// the fault-injection and Monte-Carlo subsystem: fault plans install
/// on its program and run bit-identically to the in-memory compile on
/// both backends, and `fmax_distribution` over the same variation
/// samples is pinned sample-for-sample.
#[test]
fn loaded_artifacts_accept_faults_and_variation_bit_identically() {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &small_spec(), &DesignChoice::default());
    let module = &mac.module;
    let cm = CompiledMacro::compile(module, &lib, &WireLoads::zero(module.net_count())).unwrap();
    let loaded = CompiledMacro::load_from_bytes(&cm.save_to_vec().unwrap()).unwrap();
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    // A plan that actually fires mid-run: a stuck-at plus transient
    // flips inside the 24-cycle window.
    let mut plan = FaultPlan::new();
    plan.stuck_at(in_nets[0], 1, true);
    plan.flip_at(in_nets[1], 2, 5);
    plan.flip_at(in_nets[2], 3, 11);

    // Narrow (u64) backend.
    let mut fresh = BatchSim::new(&cm.program, module, 4);
    fresh.install_faults(&plan).unwrap();
    let mut back = BatchSim::new(&loaded.program, module, 4);
    back.install_faults(&plan).unwrap();
    assert_lockstep(&mut [&mut fresh, &mut back], &in_nets, 24, 0xFA19);

    // Wide (W256) backend, lanes spanning a word seam.
    let mut plan_w = FaultPlan::new();
    plan_w.stuck_at(in_nets[0], 63, true);
    plan_w.flip_at(in_nets[1], 64, 7);
    let mut fresh_w = BatchSim256::new(&cm.program, module, 70);
    fresh_w.install_faults(&plan_w).unwrap();
    let mut back_w = BatchSim256::new(&loaded.program, module, 70);
    back_w.install_faults(&plan_w).unwrap();
    assert_lockstep(&mut [&mut fresh_w, &mut back_w], &in_nets, 24, 0xFA1A);

    // Monte-Carlo fmax distribution from the loaded STA columns.
    let op = OperatingPoint::at_voltage(0.9);
    let scales = VariationModel::gaussian(0.09).sample(0xA57E_FAC7, 64);
    assert_eq!(
        loaded.sta.fmax_distribution(op, &scales),
        cm.sta.fmax_distribution(op, &scales),
        "the loaded artifact's Monte-Carlo fmax must be pinned to the in-memory compile"
    );
}

#[test]
fn malformed_plans_lanes_and_corners_error_instead_of_aborting() {
    let lib = CellLibrary::syn40();
    let im = implement(&lib, &small_spec(), &DesignChoice::default()).unwrap();
    let mac = &im.mac;
    let mut sim = EngineSim::new(&im.compiled.program, &mac.module, 4);
    let net = sim.net_of("act[0]");

    // Out-of-range lane and net.
    let mut plan = FaultPlan::new();
    plan.stuck_at(net, 9, false);
    assert_eq!(sim.install_faults(&plan).unwrap_err(), EngineError::LaneOutOfRange { lane: 9, lanes: 4 });
    let mut plan = FaultPlan::new();
    plan.flip_at(NetId(1 << 20), 0, 3);
    assert!(matches!(sim.install_faults(&plan).unwrap_err(), EngineError::NetOutOfRange { .. }));

    // Contradictory stuck-ats on one (net, lane).
    let mut plan = FaultPlan::new();
    plan.stuck_at(net, 1, false).stuck_at(net, 1, true);
    assert_eq!(
        sim.install_faults(&plan).unwrap_err(),
        EngineError::FaultConflict { net: net.index(), lane: 1 }
    );

    // A live plan pins the lane set.
    let mut plan = FaultPlan::new();
    plan.stuck_at(net, 1, true);
    sim.install_faults(&plan).unwrap();
    assert_eq!(sim.set_lanes(2).unwrap_err(), EngineError::FaultPlanPinned);
    sim.clear_faults();
    sim.set_lanes(2).unwrap();

    // Flow entry points: typed errors where the seed panicked.
    let op = OperatingPoint::at_voltage(0.9);
    let weights = vec![vec![1i64; 8]; 2];
    let passes = vec![vec![1i64; 8]];
    assert!(matches!(
        measure_int(&im, &lib, 3, &passes, &weights, op, 400.0).unwrap_err(),
        FlowError::Precision { pa: 3, .. }
    ));
    assert!(matches!(
        measure_int(&im, &lib, 4, &passes, &vec![vec![1i64; 8]; 5], op, 400.0).unwrap_err(),
        FlowError::Dimension { got: 5, want: 2, .. }
    ));
    assert!(matches!(measure_fp(&im, &lib, &[], &[], op, 400.0).unwrap_err(), FlowError::MissingFpUnit));
    assert!(matches!(
        measure_weight_update_patterns(&im, &lib, op, 400.0, 1, 0, EvalBackend::Engine).unwrap_err(),
        FlowError::PatternCount { patterns: 0, .. }
    ));

    // Sub-threshold corners degrade gracefully: zero yield, zero fmax,
    // no aborts.
    let y = shmoo_yield(&im, &[0.3], &[100.0], VariationModel::nominal(), 4, 0).unwrap();
    assert_eq!(y.pass_fraction, vec![vec![0.0]]);
    let fmax = im.compiled.sta.fmax_distribution(OperatingPoint::at_voltage(0.3), &[1.0]);
    assert_eq!(fmax, vec![0.0]);
}
