//! Differential pinning of the compiled power program against the
//! reference analyzer on the 64×64 paper test-chip netlist.
//!
//! `CompiledPower` is the power analogue of the simulation engine and
//! the compiled STA: one lowering, then a linear `toggles·column` pass
//! per report. These tests hold it to the same bar — **bit-identical
//! results**, not "close enough": dynamic/clock/leakage power, energy
//! per cycle, total power and the full `by_group_pj` breakdown table
//! must equal `PowerAnalyzer::from_activity` /
//! `from_static_activity`, across ≥4 operating points (voltage *and*
//! temperature corners), wire-load configurations (pre-layout zero
//! caps and annotated parasitics) and glitch factors.

use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_engine::{BatchSim, Program};
use syndcim_netlist::{Module, NetId};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::{PowerAnalyzer, PowerReport};
use syndcim_sim::SimBackend;

/// Operating points the paper's measurements sweep: slow/low-V,
/// nominal, fast/high-V, plus a hot corner exercising the temperature
/// derate in the leakage model.
fn corners() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint::at_voltage(0.7),
        OperatingPoint::at_voltage(0.9),
        OperatingPoint::at_voltage(1.2),
        OperatingPoint { vdd_v: 0.8, temp_c: 105.0 },
    ]
}

/// Deterministic synthetic wire caps: every net gets a distinct but
/// reproducible capacitance (stands in for extraction without paying
/// for 64×64 placement in a unit test).
fn synthetic_caps(nets: usize) -> Vec<f64> {
    (0..nets).map(|i| ((i * 41) % 19) as f64 * 1.1).collect()
}

/// Real switching activity: a short random-stimulus engine run over the
/// paper chip (64 lanes, a handful of cycles — plenty of distinct
/// per-net toggle counts).
fn measured_toggles(module: &Module, lib: &CellLibrary) -> (Vec<u64>, u64) {
    let prog = Program::compile(module, lib).expect("paper chip compiles");
    let mut sim = BatchSim::new(&prog, module, 64);
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();
    let mut state = 0xD1FF_5EEDu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..6 {
        for &net in &in_nets {
            sim.poke_word(net, next());
        }
        sim.step();
    }
    (sim.toggle_table().to_vec(), sim.lane_cycles())
}

fn assert_reports_identical(reference: &PowerReport, compiled: &PowerReport, what: &str) {
    assert_eq!(reference.dynamic_uw, compiled.dynamic_uw, "{what}: dynamic power");
    assert_eq!(reference.clock_uw, compiled.clock_uw, "{what}: clock power");
    assert_eq!(reference.leakage_uw, compiled.leakage_uw, "{what}: leakage power");
    assert_eq!(reference.energy_per_cycle_pj, compiled.energy_per_cycle_pj, "{what}: energy/cycle");
    assert_eq!(reference.freq_mhz, compiled.freq_mhz, "{what}: quoted frequency");
    assert_eq!(reference.total_uw(), compiled.total_uw(), "{what}: total power");
    assert_eq!(reference.by_group_pj, compiled.by_group_pj, "{what}: per-group breakdown table");
}

#[test]
fn compiled_power_matches_reference_on_paper_test_chip() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let (toggles, cycles) = measured_toggles(module, &lib);
    assert!(toggles.iter().any(|&t| t > 0), "the stimulus must actually toggle nets");

    for (caps, label) in [
        (vec![0.0; module.net_count()], "pre-layout"),
        (synthetic_caps(module.net_count()), "wire-annotated"),
    ] {
        for glitch in [1.25, 1.0, 1.6] {
            let mut pa = PowerAnalyzer::with_wire_caps(module, &lib, &caps).unwrap();
            pa.set_glitch_factor(glitch);
            let cp = pa.compile();
            assert_eq!(cp.net_count(), module.net_count());
            assert!(cp.group_count() > 1, "the paper chip must break down into several groups");

            for op in corners() {
                for freq_mhz in [250.0, 1100.0] {
                    let what = format!(
                        "{label} g={glitch} @ {:.2} V / {:.0} C / {freq_mhz} MHz",
                        op.vdd_v, op.temp_c
                    );
                    let reference = pa.from_activity(&toggles, cycles, freq_mhz, op);
                    let compiled = cp.report(&toggles, cycles, freq_mhz, op);
                    assert_reports_identical(&reference, &compiled, &what);

                    let static_ref = pa.from_static_activity(0.18, freq_mhz, op);
                    let static_cmp = cp.report_static(0.18, freq_mhz, op);
                    assert_reports_identical(&static_ref, &static_cmp, &format!("{what} (static)"));
                }
            }

            // The batch entry point must equal the per-point queries —
            // this is the path `shmoo_with_power` rides.
            let points: Vec<(f64, OperatingPoint)> =
                corners().into_iter().flat_map(|op| [(250.0, op), (1100.0, op)]).collect();
            for (report, &(freq_mhz, op)) in cp.report_many(&toggles, cycles, &points).iter().zip(&points) {
                let what = format!("{label} g={glitch} report_many @ {:.2} V / {freq_mhz} MHz", op.vdd_v);
                assert_reports_identical(&pa.from_activity(&toggles, cycles, freq_mhz, op), report, &what);
            }
        }
    }
}

/// The hierarchical drill-down now carries the *complete* per-cycle
/// picture: each path node holds its subcircuit's switching energy
/// plus its registers' clock-pin energy (clock-tree overhead
/// included), so a root entry equals the head's `by_group_pj` total
/// plus its `clock_by_group_pj` share — and summing roots reproduces
/// the report's `energy_per_cycle_pj` up to the input-port pin charge.
/// The clock breakdown itself is pinned bit-identical between the
/// compiled program and the reference analyzer; the leakage drill-down
/// roots reproduce `leakage_uw` at every corner.
#[test]
fn drill_down_roots_match_head_totals_with_clock_and_leakage() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let (toggles, cycles) = measured_toggles(module, &lib);
    let pa = PowerAnalyzer::new(module, &lib).unwrap();
    let cp = pa.compile();

    for op in corners() {
        let what = format!("@ {:.2} V / {:.0} C", op.vdd_v, op.temp_c);
        let clock = cp.clock_by_group_pj(op);
        assert_eq!(clock, pa.clock_by_group_pj(op), "{what}: clock breakdown (compiled vs reference)");

        let report = cp.report(&toggles, cycles, 800.0, op);
        assert_eq!(
            clock.len(),
            report.by_group_pj.len(),
            "{what}: every head appears in the clock breakdown"
        );
        assert!(clock.values().any(|&pj| pj > 0.0), "{what}: the paper chip clocks registers");

        // Roots == head switching + head clock, every head.
        let by_path = cp.by_path_pj(&toggles, cycles, op);
        let mut roots_pj = 0.0f64;
        for (head, &pj) in &report.by_group_pj {
            let root = by_path[head];
            let want = pj + clock[head];
            assert!(
                (root - want).abs() <= 1e-9 * want.abs().max(1.0),
                "{what}: root `{head}` = {root} vs switching+clock {want}"
            );
            roots_pj += root;
        }
        // Summed roots reproduce energy/cycle minus the (groupless)
        // input-port pin charge — i.e. they can only fall short of the
        // head-line number by that small term.
        let epc = report.energy_per_cycle_pj;
        assert!(
            roots_pj <= epc * (1.0 + 1e-9) && roots_pj >= 0.9 * epc,
            "{what}: drill-down roots {roots_pj} vs energy/cycle {epc}"
        );

        // Leakage drill-down: roots sum to the corner's leakage.
        let leak = cp.leakage_by_path_uw(op);
        let roots_uw: f64 = leak.iter().filter(|(p, _)| !p.contains('/')).map(|(_, &uw)| uw).sum();
        let want = cp.leakage_uw(op);
        assert!(
            (roots_uw - want).abs() <= 1e-9 * want,
            "{what}: leakage roots {roots_uw} vs leakage_uw {want}"
        );
    }
}

/// The compiled program must be reusable and order-independent:
/// reporting the corners in a different order, twice, from a clone,
/// changes nothing (guards against state leakage between reports).
#[test]
fn compiled_power_reuse_is_stateless() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let (toggles, cycles) = measured_toggles(&mac.module, &lib);
    let cp = PowerAnalyzer::new(&mac.module, &lib).unwrap().compile();

    let fwd: Vec<f64> =
        corners().iter().map(|&op| cp.report(&toggles, cycles, 800.0, op).total_uw()).collect();
    let mut rev: Vec<f64> =
        corners().iter().rev().map(|&op| cp.clone().report(&toggles, cycles, 800.0, op).total_uw()).collect();
    rev.reverse();
    assert_eq!(fwd, rev, "report order and cloning must not affect results");
    let points: Vec<(f64, OperatingPoint)> = corners().iter().map(|&op| (800.0, op)).collect();
    let batch: Vec<f64> =
        cp.report_many(&toggles, cycles, &points).iter().map(PowerReport::total_uw).collect();
    assert_eq!(fwd, batch, "batch must equal scalar queries");
}
