//! Pins the shared-IR contract of the implementation flow: one
//! `implement` call walks the netlist for compilation **exactly once**,
//! and the resulting lowering feeds all three compiled analysis
//! programs (simulation, timing, power).
//!
//! This file deliberately contains a single test: `Lowering::builds()`
//! is a process-global counter, and integration-test binaries are the
//! only place a test can observe it without interference from
//! concurrently running tests (each test file is its own process; tests
//! *within* a file share one).

use syndcim_core::{implement, implement_with, DesignChoice, MacroSpec, StaBackend};
use syndcim_ir::Lowering;
use syndcim_pdk::{CellLibrary, OperatingPoint};

fn tiny_spec() -> MacroSpec {
    MacroSpec {
        h: 8,
        w: 8,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

#[test]
fn implement_builds_exactly_one_lowering_shared_by_sim_sta_power() {
    let lib = CellLibrary::syn40();

    // Compiled sign-off backend (the default path).
    let before = Lowering::builds();
    let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
    assert_eq!(
        Lowering::builds(),
        before + 1,
        "implement must lower the netlist exactly once, shared by sim/STA/power"
    );

    // The single lowering demonstrably feeds all three programs.
    let n = im.mac.module.net_count();
    assert_eq!(im.compiled.lowering.net_count(), n);
    assert_eq!(im.compiled.program.net_count(), n, "simulation program rides the shared IR");
    assert_eq!(im.compiled.sta.net_count(), n, "timing program rides the shared IR");
    assert_eq!(im.compiled.power.net_count(), n, "power program rides the shared IR");

    // ... and the bundle is queryable without any further lowering.
    let mid = Lowering::builds();
    let op = OperatingPoint::at_voltage(0.9);
    let _fmax = im.compiled.sta.fmax_mhz(op);
    let toggles = vec![1u64; n];
    let _power = im.compiled.power.report(&toggles, 4, 400.0, op);
    assert_eq!(Lowering::builds(), mid, "sign-off queries must not re-walk the netlist");

    // The reference sign-off arm reuses the bundle's lowering too (a
    // clone is a memcpy, not a walk).
    let before_ref = Lowering::builds();
    let im_ref = implement_with(&lib, &tiny_spec(), &DesignChoice::default(), StaBackend::Reference).unwrap();
    assert_eq!(Lowering::builds(), before_ref + 1, "the reference arm shares the single lowering");
    assert_eq!(im_ref.timing.max_delay_ps, im.timing.max_delay_ps, "backends stay bit-identical");
}
