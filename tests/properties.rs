//! Property-based tests on the core invariants.

use proptest::prelude::*;
use syndcim_netlist::NetlistBuilder;
use syndcim_pdk::CellLibrary;
use syndcim_sim::golden::{fp_align, DcimChannelTrace};
use syndcim_sim::{FpFormat, FpValue, Simulator};
use syndcim_subckt::{build_adder_tree, AdderTreeConfig, AdderTreeKind, TreeOutput};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any adder-tree variant counts any input pattern exactly.
    #[test]
    fn adder_tree_counts(bits in proptest::collection::vec(any::<bool>(), 4..40),
                         fa_rounds in 0usize..4,
                         reorder in any::<bool>()) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let ins = b.input_bus("in", bits.len());
        let kind = if fa_rounds == 0 { AdderTreeKind::CompressorCsa } else { AdderTreeKind::MixedCsa { fa_rounds } };
        let cfg = AdderTreeConfig { kind, carry_reorder: reorder, final_cpa: true };
        let out = match build_adder_tree(&mut b, &ins, cfg) {
            TreeOutput::Binary(s) => s,
            TreeOutput::CarrySave { .. } => unreachable!("final_cpa = true"),
        };
        let width = out.len() as u32;
        b.output_bus("sum", &out);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for (i, &v) in bits.iter().enumerate() {
            sim.set(&format!("in[{i}]"), v);
        }
        sim.settle();
        let want = bits.iter().filter(|&&x| x).count() as u64;
        prop_assert_eq!(sim.get_bus_unsigned("sum", width), want);
    }

    /// The golden bit-serial channel model equals the plain dot product
    /// for every signed precision combination.
    #[test]
    fn golden_channel_is_exact(acts in proptest::collection::vec(-128i64..=127, 1..24),
                               ws in proptest::collection::vec(-8i64..=7, 1..24)) {
        let n = acts.len().min(ws.len());
        let acts = &acts[..n];
        let ws = &ws[..n];
        let tr = DcimChannelTrace::run(acts, ws, 8, 4);
        let want: i64 = acts.iter().zip(ws).map(|(a, w)| a * w).sum();
        prop_assert_eq!(tr.output, want);
    }

    /// FP alignment never increases magnitude and preserves sign.
    #[test]
    fn fp_align_bounds(bits in proptest::collection::vec(0u32..256, 2..12)) {
        let fmt = FpFormat::FP8;
        let vals: Vec<FpValue> = bits
            .iter()
            .map(|&b| {
                let v = FpValue::from_bits(b, fmt);
                if v.exp_field == 0 { FpValue::ZERO } else { v }
            })
            .collect();
        let (aligned, emax) = fp_align(&vals, fmt);
        for (v, &a) in vals.iter().zip(&aligned) {
            prop_assert!(a.unsigned_abs() <= (1 << (fmt.man_bits + 1)), "mantissa bound");
            if a != 0 {
                prop_assert_eq!(a < 0, v.sign);
            }
            if !v.is_zero() {
                prop_assert!(emax >= v.exp_field as i32);
            }
        }
    }

    /// Pareto frontier points never dominate each other.
    #[test]
    fn pareto_non_domination(seeds in proptest::collection::vec((1u32..1000, 1u32..1000, 1usize..20), 1..40)) {
        use syndcim_core::{pareto_frontier, DesignChoice, DesignPoint, PpaEstimate};
        let pts: Vec<DesignPoint> = seeds
            .iter()
            .map(|&(p, a, l)| DesignPoint {
                choice: DesignChoice::default(),
                est: PpaEstimate {
                    power_uw: p as f64,
                    area_um2: a as f64,
                    latency_cycles: l,
                    timing_met: true,
                    ..Default::default()
                },
            })
            .collect();
        let f = pareto_frontier(&pts);
        prop_assert!(!f.is_empty());
        for x in &f {
            for y in &f {
                let dom = x.est.power_uw <= y.est.power_uw
                    && x.est.area_um2 <= y.est.area_um2
                    && x.est.latency_cycles <= y.est.latency_cycles
                    && (x.est.power_uw < y.est.power_uw
                        || x.est.area_um2 < y.est.area_um2
                        || x.est.latency_cycles < y.est.latency_cycles);
                prop_assert!(!dom, "frontier contains dominated point");
            }
        }
    }

    /// STA arrival times never decrease along the critical path.
    #[test]
    fn sta_arrivals_monotone(depth in 2usize..24) {
        use syndcim_sta::Sta;
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.input("a");
        let mut x = a;
        for i in 0..depth {
            x = if i % 2 == 0 { b.xor2(x, x) } else { b.not(x) };
        }
        b.output("y", x);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let rep = sta.analyze(1e9);
        let mut prev = -1.0;
        for s in &rep.critical_path {
            prop_assert!(s.arrival_ps >= prev);
            prev = s.arrival_ps;
        }
    }
}
