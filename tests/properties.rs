//! Property-based tests on the core invariants.
//!
//! Written as seeded-RNG sampling loops (24 cases each, mirroring the
//! original proptest configuration) because the offline build environment
//! has no `proptest`. Each case derives all of its inputs from
//! `syndcim_sim::vectors::seeded_rng`, so failures reproduce exactly.

use rand::Rng;
use syndcim_netlist::NetlistBuilder;
use syndcim_pdk::CellLibrary;
use syndcim_sim::golden::{fp_align, DcimChannelTrace};
use syndcim_sim::vectors::seeded_rng;
use syndcim_sim::{FpFormat, FpValue, Simulator};
use syndcim_subckt::{build_adder_tree, AdderTreeConfig, AdderTreeKind, TreeOutput};

const CASES: u64 = 24;

/// Any adder-tree variant counts any input pattern exactly.
#[test]
fn adder_tree_counts() {
    let lib = CellLibrary::syn40();
    for case in 0..CASES {
        let mut rng = seeded_rng(0xADDE0 + case);
        let n = rng.gen_range(4usize..40);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let fa_rounds = rng.gen_range(0usize..4);
        let reorder = rng.gen_bool(0.5);

        let mut b = NetlistBuilder::new("t", &lib);
        let ins = b.input_bus("in", bits.len());
        let kind =
            if fa_rounds == 0 { AdderTreeKind::CompressorCsa } else { AdderTreeKind::MixedCsa { fa_rounds } };
        let cfg = AdderTreeConfig { kind, carry_reorder: reorder, final_cpa: true };
        let out = match build_adder_tree(&mut b, &ins, cfg) {
            TreeOutput::Binary(s) => s,
            TreeOutput::CarrySave { .. } => unreachable!("final_cpa = true"),
        };
        let width = out.len() as u32;
        b.output_bus("sum", &out);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for (i, &v) in bits.iter().enumerate() {
            sim.set(&format!("in[{i}]"), v);
        }
        sim.settle();
        let want = bits.iter().filter(|&&x| x).count() as u64;
        assert_eq!(sim.get_bus_unsigned("sum", width), want, "case {case}: n={n} fa_rounds={fa_rounds}");
    }
}

/// The golden bit-serial channel model equals the plain dot product for
/// every signed precision combination.
#[test]
fn golden_channel_is_exact() {
    for case in 0..CASES {
        let mut rng = seeded_rng(0x601D + case);
        let n = rng.gen_range(1usize..24);
        let acts: Vec<i64> = (0..n).map(|_| rng.gen_range(-128i64..=127)).collect();
        let ws: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..=7)).collect();
        let tr = DcimChannelTrace::run(&acts, &ws, 8, 4);
        let want: i64 = acts.iter().zip(&ws).map(|(a, w)| a * w).sum();
        assert_eq!(tr.output, want, "case {case}");
    }
}

/// FP alignment never increases magnitude and preserves sign.
#[test]
fn fp_align_bounds() {
    let fmt = FpFormat::FP8;
    for case in 0..CASES {
        let mut rng = seeded_rng(0xF9 + case);
        let n = rng.gen_range(2usize..12);
        let vals: Vec<FpValue> = (0..n)
            .map(|_| {
                let v = FpValue::from_bits(rng.gen_range(0u32..256), fmt);
                if v.exp_field == 0 {
                    FpValue::ZERO
                } else {
                    v
                }
            })
            .collect();
        let (aligned, emax) = fp_align(&vals, fmt);
        for (v, &a) in vals.iter().zip(&aligned) {
            assert!(a.unsigned_abs() <= (1 << (fmt.man_bits + 1)), "case {case}: mantissa bound");
            if a != 0 {
                assert_eq!(a < 0, v.sign, "case {case}: sign preserved");
            }
            if !v.is_zero() {
                assert!(emax >= v.exp_field as i32, "case {case}: emax is the max exponent");
            }
        }
    }
}

/// Pareto frontier points never dominate each other.
#[test]
fn pareto_non_domination() {
    use syndcim_core::{pareto_frontier, DesignChoice, DesignPoint, PpaEstimate};
    for case in 0..CASES {
        let mut rng = seeded_rng(0x9A_0E70 + case);
        let n = rng.gen_range(1usize..40);
        let pts: Vec<DesignPoint> = (0..n)
            .map(|_| DesignPoint {
                choice: DesignChoice::default(),
                est: PpaEstimate {
                    power_uw: rng.gen_range(1u32..1000) as f64,
                    area_um2: rng.gen_range(1u32..1000) as f64,
                    latency_cycles: rng.gen_range(1usize..20),
                    timing_met: true,
                    ..Default::default()
                },
            })
            .collect();
        let f = pareto_frontier(&pts);
        assert!(!f.is_empty(), "case {case}");
        for x in &f {
            for y in &f {
                let dom = x.est.power_uw <= y.est.power_uw
                    && x.est.area_um2 <= y.est.area_um2
                    && x.est.latency_cycles <= y.est.latency_cycles
                    && (x.est.power_uw < y.est.power_uw
                        || x.est.area_um2 < y.est.area_um2
                        || x.est.latency_cycles < y.est.latency_cycles);
                assert!(!dom, "case {case}: frontier contains dominated point");
            }
        }
    }
}

/// STA arrival times never decrease along the critical path.
#[test]
fn sta_arrivals_monotone() {
    use syndcim_sta::Sta;
    let lib = CellLibrary::syn40();
    for case in 0..CASES {
        let mut rng = seeded_rng(0x57A + case);
        let depth = rng.gen_range(2usize..24);
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.input("a");
        let mut x = a;
        for i in 0..depth {
            x = if i % 2 == 0 { b.xor2(x, x) } else { b.not(x) };
        }
        b.output("y", x);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let rep = sta.analyze(1e9);
        let mut prev = -1.0;
        for s in &rep.critical_path {
            assert!(s.arrival_ps >= prev, "case {case}: arrivals must be monotone");
            prev = s.arrival_ps;
        }
    }
}
