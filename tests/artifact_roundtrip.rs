//! Differential pinning of the `.scim` artifact path: a compiled macro
//! saved to bytes and loaded back must answer **every** query
//! bit-identically to the in-memory bundle that produced it, on the
//! 64×64 paper test chip.
//!
//! Four layers of checking:
//!
//! 1. **Byte fixpoint** — save→load→save reproduces the container
//!    byte-for-byte (serialization is deterministic: no timestamps, no
//!    host state, f64s as exact IEEE-754 bit patterns), and the file
//!    path API (`save`/`load`) carries the same bytes as the in-memory
//!    one (`save_to_vec`/`load_from_bytes`).
//! 2. **Load is wiring-only** — `Lowering::builds()` stays flat across
//!    a load: no lowering, levelization or interning runs when reading
//!    an artifact. This is the whole point of the format: the compile
//!    cost is paid once, at `save` time.
//! 3. **Query bit-identity** — fmax, per-corner arrival/slack reports,
//!    critical paths, power reports with the `by_group_pj` and
//!    `by_path_pj` breakdowns, and leakage must equal the in-memory
//!    bundle exactly, across voltage *and* temperature corners.
//! 4. **Engine bit-identity** — the loaded program drives both engine
//!    backends (`u64` and `W256`) in lockstep with the fresh program
//!    under adversarial xorshift stimulus: every net, every word, every
//!    cycle, plus the aggregate toggle tables.
//!
//! A scale-tier arm (gated by `SYNDCIM_SLOW_TESTS=1`) repeats the
//! exercise on the 256×256 generator macro (~4×10⁵ nets) and asserts
//! the load takes a small fraction of the compile it replaces.

use syndcim_core::{assemble, CompiledMacro, DesignChoice, MacroSpec};
use syndcim_engine::{BatchSim, BatchSim256, Lowering};
use syndcim_netlist::{Module, NetId};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sim::SimBackend;
use syndcim_sta::WireLoads;

/// Operating points the paper's shmoo sweeps: slow/low-V, nominal,
/// fast/high-V, plus a hot corner exercising the temperature derate.
fn corners() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint::at_voltage(0.7),
        OperatingPoint::at_voltage(0.9),
        OperatingPoint::at_voltage(1.2),
        OperatingPoint { vdd_v: 0.8, temp_c: 105.0 },
    ]
}

/// The 64×64 paper test chip, assembled and compiled pre-layout.
fn paper_chip() -> (Module, CellLibrary, CompiledMacro) {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let cm = CompiledMacro::compile(&mac.module, &lib, &WireLoads::zero(mac.module.net_count()))
        .expect("the paper chip compiles");
    (mac.module, lib, cm)
}

#[test]
fn save_load_save_is_a_byte_fixpoint_and_load_is_wiring_only() {
    let (_, _, cm) = paper_chip();
    let bytes = cm.save_to_vec().unwrap();

    // Loading must not lower, levelize or intern anything.
    let builds_before = Lowering::builds();
    let loaded = CompiledMacro::load_from_bytes(&bytes).unwrap();
    assert_eq!(Lowering::builds(), builds_before, "load must be wiring-only: no Lowering builds");

    assert_eq!(loaded.save_to_vec().unwrap(), bytes, "save→load→save must be byte-identical");

    // The file-path API carries the same bytes.
    let path = std::env::temp_dir().join(format!("syndcim_roundtrip_{}.scim", std::process::id()));
    cm.save(&path).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), bytes, "save(path) must write save_to_vec's bytes");
    let from_file = CompiledMacro::load(&path).unwrap();
    assert_eq!(from_file.save_to_vec().unwrap(), bytes);
    std::fs::remove_file(&path).ok();

    // The loaded symbol tables are the compile's, element for element.
    let (a, b) = (cm.lowering.symbols(), loaded.lowering.symbols());
    assert_eq!(a.net_count(), b.net_count());
    assert_eq!(a.inst_count(), b.inst_count());
    for n in 0..a.net_count() {
        assert_eq!(a.net_name(n), b.net_name(n), "net {n} name");
    }
}

#[test]
fn loaded_sta_is_bit_identical_across_corners() {
    let (_, _, cm) = paper_chip();
    let loaded = CompiledMacro::load_from_bytes(&cm.save_to_vec().unwrap()).unwrap();

    for op in corners() {
        assert_eq!(
            loaded.sta.fmax_mhz(op),
            cm.sta.fmax_mhz(op),
            "fmax at {:.2} V / {:.0} C must be bit-identical",
            op.vdd_v,
            op.temp_c
        );
        for period_ps in [800.0, 2_000.0] {
            let fresh = cm.sta.analyze_at(period_ps, op);
            let back = loaded.sta.analyze_at(period_ps, op);
            let what = format!("@ {:.2} V / {:.0} C / {period_ps} ps", op.vdd_v, op.temp_c);
            assert_eq!(fresh.arrival_ps, back.arrival_ps, "{what}: per-net arrival times");
            assert_eq!(fresh.max_delay_ps, back.max_delay_ps, "{what}: worst path delay");
            assert_eq!(fresh.wns_ps, back.wns_ps, "{what}: worst slack");
            assert_eq!(fresh.fmax_mhz, back.fmax_mhz, "{what}: fmax");
            assert_eq!(fresh.critical_path, back.critical_path, "{what}: critical path steps");
            assert_eq!(fresh.critical_groups(), back.critical_groups(), "{what}: critical groups");
        }
    }

    // Batch entry points ride the same columns.
    let ops = corners();
    assert_eq!(loaded.sta.fmax_many(&ops), cm.sta.fmax_many(&ops), "batched fmax");
}

#[test]
fn loaded_power_is_bit_identical_across_corners() {
    let (module, _, cm) = paper_chip();
    let loaded = CompiledMacro::load_from_bytes(&cm.save_to_vec().unwrap()).unwrap();

    // Real switching activity from a short engine run.
    let mut sim = BatchSim::new(&cm.program, &module, 64);
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();
    let mut state = 0x5EED_CAFEu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..6 {
        for &net in &in_nets {
            sim.poke_word(net, next());
        }
        sim.step();
    }
    let (toggles, cycles) = (sim.toggle_table().to_vec(), sim.lane_cycles());

    for op in corners() {
        for freq_mhz in [250.0, 1_100.0] {
            let what = format!("@ {:.2} V / {:.0} C / {freq_mhz} MHz", op.vdd_v, op.temp_c);
            let fresh = cm.power.report(&toggles, cycles, freq_mhz, op);
            let back = loaded.power.report(&toggles, cycles, freq_mhz, op);
            assert_eq!(fresh.dynamic_uw, back.dynamic_uw, "{what}: dynamic power");
            assert_eq!(fresh.clock_uw, back.clock_uw, "{what}: clock power");
            assert_eq!(fresh.leakage_uw, back.leakage_uw, "{what}: leakage power");
            assert_eq!(fresh.total_uw(), back.total_uw(), "{what}: total power");
            assert_eq!(fresh.by_group_pj, back.by_group_pj, "{what}: per-group breakdown");

            let fresh_s = cm.power.report_static(0.18, freq_mhz, op);
            let back_s = loaded.power.report_static(0.18, freq_mhz, op);
            assert_eq!(fresh_s.total_uw(), back_s.total_uw(), "{what}: static total");
            assert_eq!(fresh_s.by_group_pj, back_s.by_group_pj, "{what}: static breakdown");
        }
        assert_eq!(
            loaded.power.by_path_pj(&toggles, cycles, op),
            cm.power.by_path_pj(&toggles, cycles, op),
            "per-subcircuit path drill-down at {:.2} V",
            op.vdd_v
        );
        assert_eq!(loaded.power.leakage_uw(op), cm.power.leakage_uw(op), "leakage at {:.2} V", op.vdd_v);
    }
}

/// Drive fresh-program and loaded-program sims in lockstep and assert
/// every net, every word, every cycle, plus the toggle tables.
fn assert_engines_lockstep<B: SimBackend + ?Sized>(
    fresh: &mut B,
    loaded: &mut B,
    in_nets: &[NetId],
    cycles: usize,
    mut seed: u64,
) {
    let words = fresh.words();
    let net_count = fresh.module().net_count();
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for cycle in 0..cycles {
        for &net in in_nets {
            for wi in 0..words {
                let word = next();
                fresh.drive_word_at(net, wi, word);
                loaded.drive_word_at(net, wi, word);
            }
        }
        fresh.step();
        loaded.step();
        for n in 0..net_count {
            let net = NetId(n as u32);
            for wi in 0..words {
                assert_eq!(
                    loaded.peek_word_at(net, wi),
                    fresh.peek_word_at(net, wi),
                    "net {n} word {wi} diverged at cycle {cycle}"
                );
            }
        }
    }
    assert_eq!(loaded.toggle_table(), fresh.toggle_table(), "toggle tables diverged");
}

#[test]
fn loaded_engine_program_matches_fresh_on_both_backends() {
    let (module, _, cm) = paper_chip();
    let loaded = CompiledMacro::load_from_bytes(&cm.save_to_vec().unwrap()).unwrap();
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    // Narrow (u64) backend.
    let mut fresh = BatchSim::new(&cm.program, &module, 64);
    let mut back = BatchSim::new(&loaded.program, &module, 64);
    assert_engines_lockstep(&mut fresh, &mut back, &in_nets, 12, 0xA57F_AC75);

    // Wide (W256) backend.
    let mut fresh_w = BatchSim256::new(&cm.program, &module, 256);
    let mut back_w = BatchSim256::new(&loaded.program, &module, 256);
    assert_engines_lockstep(&mut fresh_w, &mut back_w, &in_nets, 6, 0xA57F_AC76);
}

/// Scale tier: the 256×256 generator macro (~4×10⁵ nets). Asserts the
/// artifact load replaces the compile at a small fraction of its cost
/// and answers fmax bit-identically. Gated: `SYNDCIM_SLOW_TESTS=1`.
#[test]
fn scale_tier_artifact_load_is_a_fraction_of_the_compile() {
    if std::env::var("SYNDCIM_SLOW_TESTS").as_deref() != Ok("1") {
        eprintln!("skipping scale-tier arm (set SYNDCIM_SLOW_TESTS=1 to run)");
        return;
    }
    let lib = CellLibrary::syn40();
    let spec = MacroSpec {
        h: 256,
        w: 256,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let nets = mac.module.net_count();
    assert!(nets >= 100_000, "scale tier needs >= 1e5 nets, generated {nets}");
    let wires = WireLoads::zero(nets);

    let t0 = std::time::Instant::now();
    let cm = CompiledMacro::compile(&mac.module, &lib, &wires).unwrap();
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

    let bytes = cm.save_to_vec().unwrap();
    let t1 = std::time::Instant::now();
    let loaded = CompiledMacro::load_from_bytes(&bytes).unwrap();
    let load_ms = t1.elapsed().as_secs_f64() * 1e3;
    eprintln!("scale tier: {nets} nets, compile {compile_ms:.1} ms, load {load_ms:.1} ms");

    assert!(
        load_ms < compile_ms / 3.0,
        "loading the {nets}-net artifact ({load_ms:.1} ms) must cost well under \
         the compile it replaces ({compile_ms:.1} ms)"
    );
    let op = OperatingPoint::at_voltage(0.9);
    assert_eq!(loaded.sta.fmax_mhz(op), cm.sta.fmax_mhz(op), "scale-tier fmax must survive the roundtrip");
}
