//! Determinism suite for the parallel layout phases.
//!
//! The layout parallelization contract: placement, DRC verdicts and
//! extracted parasitics are **byte-identical for every worker count** —
//! each strip/band/chunk is a pure function of its own inputs, and all
//! job counts and floating-point fold orders derive from geometry or
//! fixed constants, never from the thread count. This suite pins that
//! on the 64×64 paper chip; `cargo bench -p syndcim-bench --bench
//! layout` pins the same invariant on the 256×256 scale tier.
//!
//! The scale-tier `implement` arm (slow: several seconds) runs only
//! under `SYNDCIM_SLOW_TESTS=1`.

use syndcim_core::{assemble, implement, DesignChoice, MacroSpec};
use syndcim_ir::Lowering;
use syndcim_layout::{
    check_drc, check_drc_threads, extract_wires_threads, place, place_threads, place_with_symbols,
    FloorplanConfig, LayoutError, Rect,
};
use syndcim_netlist::{optimize, Module};
use syndcim_pdk::{CellLibrary, OperatingPoint};

/// The paper's 64×64 MCR-2 macro.
fn paper_spec() -> MacroSpec {
    MacroSpec {
        h: 64,
        w: 64,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

/// Assemble + optimize the paper chip exactly as the implement flow
/// does before placement.
fn paper_module(lib: &CellLibrary) -> Module {
    let mut mac = assemble(lib, &paper_spec(), &DesignChoice::default());
    let _ = optimize(&mut mac.module, lib);
    mac.module
}

#[test]
fn paper_chip_placement_is_byte_identical_across_worker_counts() {
    let lib = CellLibrary::syn40();
    let m = paper_module(&lib);
    let cfg = FloorplanConfig::default();
    let serial = place_threads(&m, &lib, cfg, 1).expect("paper chip places");
    for t in [2, 8] {
        let par = place_threads(&m, &lib, cfg, t).expect("paper chip places");
        // Placement derives PartialEq over every field: die, every cell
        // rect (f64 bit patterns), region names/rects, utilization.
        assert!(serial == par, "placement diverged at {t} workers");
    }
    // The auto arm (threads = 0) and the plain entry point agree too.
    let auto = place(&m, &lib, cfg).expect("paper chip places");
    assert!(serial == auto, "auto-threaded placement diverged from the single-worker arm");
}

#[test]
fn symbol_keyed_zoning_places_identically_to_string_zoning() {
    let lib = CellLibrary::syn40();
    let m = paper_module(&lib);
    let lowering = Lowering::validated(&m, &lib).expect("paper chip lowers");
    let via_strings = place(&m, &lib, FloorplanConfig::default()).unwrap();
    let via_symbols = place_with_symbols(&m, &lib, FloorplanConfig::default(), lowering.symbols()).unwrap();
    assert!(via_strings == via_symbols, "zone source must not change the placement");
}

#[test]
fn paper_chip_extraction_is_byte_identical_across_worker_counts() {
    let lib = CellLibrary::syn40();
    let m = paper_module(&lib);
    let p = place(&m, &lib, FloorplanConfig::default()).expect("paper chip places");
    let serial = extract_wires_threads(&m, &lib, &p, 1).expect("paper chip extracts");
    assert!(serial.total_wirelength_um > 0.0);
    for t in [2, 8] {
        let par = extract_wires_threads(&m, &lib, &p, t).expect("paper chip extracts");
        assert!(serial == par, "wire estimates diverged at {t} workers");
    }
}

#[test]
fn drc_overlap_report_is_deterministic_under_sharding() {
    // Corrupt the paper-chip placement with several far-apart overlaps
    // (different grid bands) plus one cluster; every worker count and
    // every repetition must blame the same lowest-(a, b) pair.
    let lib = CellLibrary::syn40();
    let m = paper_module(&lib);
    let mut p = place(&m, &lib, FloorplanConfig::default()).expect("paper chip places");
    let n = p.cells.len();
    for (victim, target) in [(n / 2, n / 2 + 1), (n / 4, n / 4 + 7), (n - 3, n - 1), (10, 11)] {
        p.cells[victim].rect = p.cells[target].rect;
    }
    let expected = check_drc_threads(&m, &p, 1).expect_err("corrupted placement must fail DRC");
    assert!(matches!(expected, LayoutError::Overlap { .. }), "expected an overlap, got {expected:?}");
    for t in [1, 2, 8] {
        for run in 0..3 {
            let got = check_drc_threads(&m, &p, t).expect_err("corrupted placement must fail DRC");
            assert_eq!(got, expected, "DRC verdict diverged at {t} workers (run {run})");
        }
    }
}

#[test]
fn drc_reports_coverage_mismatch_instead_of_panicking() {
    let lib = CellLibrary::syn40();
    let m = paper_module(&lib);
    let p = place(&m, &lib, FloorplanConfig::default()).expect("paper chip places");

    let mut short = p.clone();
    short.cells.truncate(m.instance_count() - 5);
    assert_eq!(
        check_drc(&m, &short),
        Err(LayoutError::CoverageMismatch { placed: m.instance_count() - 5, instances: m.instance_count() })
    );

    let mut long = p;
    // Extra footprints land outside any overlap: coverage is checked
    // before geometry, so the count mismatch must win regardless.
    long.cells.push(syndcim_layout::PlacedCell {
        inst: syndcim_netlist::InstId(0),
        rect: Rect::new(0.0, 0.0, 1.0, 1.0),
    });
    assert_eq!(
        check_drc(&m, &long),
        Err(LayoutError::CoverageMismatch { placed: m.instance_count() + 1, instances: m.instance_count() })
    );
}

/// Scale-tier `implement` end-to-end — placement, clean DRC, extraction
/// and sign-off on the 256×256 / ~4.3×10⁵-net macro. Slow (seconds), so
/// gated behind `SYNDCIM_SLOW_TESTS=1`; CI exercises the same path via
/// `examples/scale_tier.rs` and the layout bench.
#[test]
fn scale_tier_implement_succeeds_with_clean_drc() {
    if std::env::var("SYNDCIM_SLOW_TESTS").map(|v| v != "1").unwrap_or(true) {
        eprintln!("skipping scale-tier implement arm (set SYNDCIM_SLOW_TESTS=1 to run)");
        return;
    }
    let lib = CellLibrary::syn40();
    let spec = MacroSpec { h: 256, w: 256, ..paper_spec() };
    let im = implement(&lib, &spec, &DesignChoice::default()).expect("scale-tier implement");
    assert!(im.mac.module.net_count() > 100_000, "scale tier must exceed 10^5 nets");
    // A returned macro already passed check_drc inside the flow; re-run
    // it explicitly so this test stands alone.
    check_drc(&im.mac.module, &im.placement).expect("scale-tier placement is DRC-clean");
    let fmax = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.9));
    assert!(fmax > 0.0, "scale-tier sign-off must yield positive fmax, got {fmax}");
}
