//! Differential test: the compiled bit-parallel engine against the
//! interpreted reference simulator, on the paper test-chip MAC netlist
//! (64×64, MCR 2, INT1–8 + FP4/FP8).
//!
//! Two layers of checking, both fully deterministic (seeded RNG):
//!
//! 1. **Adversarial random stimulus** — every input port of the macro
//!    (activations, write interface, precision/bank controls, FP
//!    operands) is driven with independent random bits in every lane
//!    and every cycle. After every cycle, *every net* of the macro must
//!    agree between the engine lane and an independent interpreter run;
//!    at the end, the per-net toggle tables must be bit-identical.
//! 2. **Golden MAC pass** — a real INT8 bit-serial pass per lane with
//!    preloaded random weights; engine channel outputs must equal the
//!    golden model (and, by layer 1, the interpreter).

use rand::Rng;
use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_engine::{BatchSim, EngineSim, Lowering, Program, SimdBackend};
use syndcim_netlist::NetId;
use syndcim_sim::golden::{bit_serial_schedule, twos_complement_bit, DcimChannelTrace};
use syndcim_sim::vectors::{random_ints, seeded_rng};
use syndcim_sim::{SimBackend, Simulator};

#[test]
fn engine_matches_interpreter_on_paper_test_chip_random_stimulus() {
    let lib = syndcim_pdk::CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    // One lowering shared by the compiled program AND every reference
    // interpreter instance below (`Simulator::with_lowering`) — the
    // per-lane runs stop paying a redundant connectivity walk each.
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);

    let lanes = 4usize;
    let cycles = 16usize;
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    // stimulus[lane][cycle][port] — derived from per-lane seeds.
    let stimulus: Vec<Vec<Vec<bool>>> = (0..lanes)
        .map(|l| {
            let mut rng = seeded_rng(0xC41F + l as u64);
            (0..cycles).map(|_| in_nets.iter().map(|_| rng.gen_bool(0.5)).collect()).collect()
        })
        .collect();

    // Engine: all lanes at once, snapshotting every net after each cycle.
    let mut eng = BatchSim::new(&prog, module, lanes);
    let mut snapshots: Vec<Vec<u64>> = Vec::with_capacity(cycles);
    for c in 0..cycles {
        for (pi, &net) in in_nets.iter().enumerate() {
            let mut word = 0u64;
            for (l, stim) in stimulus.iter().enumerate() {
                word |= (stim[c][pi] as u64) << l;
            }
            eng.poke_word(net, word);
        }
        eng.step();
        snapshots.push((0..module.net_count()).map(|n| eng.peek_word(NetId(n as u32))).collect());
    }

    // Interpreter: one independent run per lane; every net must agree
    // with the engine lane after every cycle, and toggles must sum to
    // the engine's table.
    let mut ref_toggles = vec![0u64; module.net_count()];
    for (l, stim) in stimulus.iter().enumerate() {
        let mut sim = Simulator::with_lowering(module, &lib, &low).unwrap();
        for (c, bits) in stim.iter().enumerate() {
            for (pi, &net) in in_nets.iter().enumerate() {
                sim.poke(net, bits[pi]);
            }
            Simulator::step(&mut sim);
            for (n, &word) in snapshots[c].iter().enumerate() {
                let eng_bit = (word >> l) & 1 == 1;
                assert_eq!(
                    sim.peek(NetId(n as u32)),
                    eng_bit,
                    "lane {l} cycle {c}: net `{}` diverges",
                    module.nets[n].name
                );
            }
        }
        for (t, s) in ref_toggles.iter_mut().zip(sim.toggle_table()) {
            *t += s;
        }
    }
    assert_eq!(
        eng.toggle_table(),
        &ref_toggles[..],
        "per-net toggle counts must be bit-identical to the summed interpreter runs"
    );
}

/// The 256-lane wide (`[u64; 4]`) backend against the `u64` backend on
/// the paper test chip: all 256 lanes of adversarial random stimulus,
/// checked on **every net, every cycle, every lane**, plus bit-identical
/// toggle tables. The `u64` backend is itself pinned to the interpreter
/// (net-for-net, toggle-for-toggle) by the test above, and a handful of
/// word-boundary lanes are additionally re-run on the interpreter here,
/// so the chain wide == narrow == interpreter is closed exactly.
#[test]
fn wide_backend_matches_u64_backend_and_interpreter_on_paper_test_chip() {
    let lib = syndcim_pdk::CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);

    let lanes = 256usize;
    let cycles = 6usize;
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    // stimulus[lane][cycle][port] — derived from per-lane seeds.
    let stimulus: Vec<Vec<Vec<bool>>> = (0..lanes)
        .map(|l| {
            let mut rng = seeded_rng(0x11DE + l as u64);
            (0..cycles).map(|_| in_nets.iter().map(|_| rng.gen_bool(0.5)).collect()).collect()
        })
        .collect();
    let word_of = |c: usize, pi: usize, wi: usize| -> u64 {
        let mut word = 0u64;
        for (l, stim) in stimulus.iter().enumerate().skip(wi * 64).take(64) {
            word |= (stim[c][pi] as u64) << (l - wi * 64);
        }
        word
    };

    // Wide backend: all 256 lanes in one executor.
    let mut wide = EngineSim::new_wide(&prog, module, lanes);
    let mut snapshots: Vec<Vec<[u64; 4]>> = Vec::with_capacity(cycles); // [cycle][net][word]
    for c in 0..cycles {
        for (pi, &net) in in_nets.iter().enumerate() {
            for wi in 0..4 {
                wide.poke_word_at(net, wi, word_of(c, pi, wi));
            }
        }
        wide.step();
        snapshots.push(
            (0..module.net_count())
                .map(|n| std::array::from_fn(|wi| wide.peek_word_at(NetId(n as u32), wi)))
                .collect(),
        );
    }

    // u64 backend: the same stimulus as four 64-lane chunks; every net
    // must agree after every cycle, and the chunk toggle tables must sum
    // to the wide table.
    let mut narrow_toggles = vec![0u64; module.net_count()];
    for wi in 0..4 {
        let mut eng = BatchSim::new(&prog, module, 64);
        for (c, snap) in snapshots.iter().enumerate() {
            for (pi, &net) in in_nets.iter().enumerate() {
                eng.poke_word(net, word_of(c, pi, wi));
            }
            eng.step();
            for (n, words) in snap.iter().enumerate() {
                assert_eq!(
                    eng.peek_word(NetId(n as u32)),
                    words[wi],
                    "chunk {wi} cycle {c}: net `{}` diverges between widths",
                    module.nets[n].name
                );
            }
        }
        for (t, s) in narrow_toggles.iter_mut().zip(eng.toggle_table()) {
            *t += s;
        }
    }
    assert_eq!(
        wide.toggle_table(),
        &narrow_toggles[..],
        "wide toggle table must equal the summed u64-chunk tables"
    );
    assert_eq!(wide.lane_cycles(), lanes as u64 * cycles as u64);

    // Interpreter spot-check on lanes straddling every word boundary.
    for l in [0usize, 63, 64, 127, 128, 191, 192, 255] {
        let mut sim = Simulator::with_lowering(module, &lib, &low).unwrap();
        for (c, snap) in snapshots.iter().enumerate() {
            for (pi, &net) in in_nets.iter().enumerate() {
                sim.poke(net, stimulus[l][c][pi]);
            }
            Simulator::step(&mut sim);
            for (n, words) in snap.iter().enumerate() {
                assert_eq!(
                    sim.peek(NetId(n as u32)),
                    (words[l / 64] >> (l % 64)) & 1 == 1,
                    "lane {l} cycle {c}: net `{}` diverges from the interpreter",
                    module.nets[n].name
                );
            }
        }
    }
}

/// Word-seam differential at the SIMD widths: every backend this host
/// can run (portable `[u64; N]`, AVX2, AVX-512, NEON) must produce
/// bit-identical per-net state snapshots and toggle tables on the paper
/// test chip, at 256 and at 512 lanes. The portable run is additionally
/// re-chunked onto the `u64` backend (chunk toggle tables summing to
/// the wide table), and in the 512-lane arm the lanes at every `u64`
/// seam of the 512-lane word — 255/256/448/511 and friends — are re-run
/// on the interpreter, closing `isa == portable == u64 == interpreter`
/// exactly at the seams.
#[test]
fn simd_backends_agree_at_every_word_seam() {
    let lib = syndcim_pdk::CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let low = Lowering::validated(module, &lib).unwrap();
    let prog = Program::from_lowering(&low, module, &lib);
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();
    let cycles = 6usize;

    for lanes in [256usize, 512] {
        let words = lanes / 64;
        // stimulus[lane][cycle][port] — derived from per-lane seeds.
        let stimulus: Vec<Vec<Vec<bool>>> = (0..lanes)
            .map(|l| {
                let mut rng = seeded_rng(0x5EA0 + l as u64);
                (0..cycles).map(|_| in_nets.iter().map(|_| rng.gen_bool(0.5)).collect()).collect()
            })
            .collect();
        let word_of = |c: usize, pi: usize, wi: usize| -> u64 {
            let mut word = 0u64;
            for (l, stim) in stimulus.iter().enumerate().skip(wi * 64).take(64) {
                word |= (stim[c][pi] as u64) << (l - wi * 64);
            }
            word
        };

        // One full run on a chosen backend: per-cycle snapshots of every
        // net's lane words, final toggle table, lane-cycle total.
        let run = |backend: SimdBackend| {
            let mut sim = EngineSim::with_backend(&prog, module, lanes, backend).unwrap();
            assert_eq!(sim.simd_backend(), backend);
            let mut snapshots: Vec<Vec<Vec<u64>>> = Vec::with_capacity(cycles);
            for c in 0..cycles {
                for (pi, &net) in in_nets.iter().enumerate() {
                    for wi in 0..words {
                        sim.poke_word_at(net, wi, word_of(c, pi, wi));
                    }
                }
                sim.step();
                snapshots.push(
                    (0..module.net_count())
                        .map(|n| (0..words).map(|wi| sim.peek_word_at(NetId(n as u32), wi)).collect())
                        .collect(),
                );
            }
            (snapshots, sim.toggle_table().to_vec(), sim.lane_cycles())
        };

        let (snapshots, toggles, lane_cycles) = run(SimdBackend::Portable);
        assert_eq!(lane_cycles, (lanes * cycles) as u64);
        for backend in [SimdBackend::Avx2, SimdBackend::Avx512, SimdBackend::Neon] {
            if !backend.detected() || backend.max_lanes() < lanes {
                continue;
            }
            let (snap, tog, lc) = run(backend);
            assert_eq!(snap, snapshots, "{backend}: state snapshots diverge at {lanes} lanes");
            assert_eq!(tog, toggles, "{backend}: toggle table diverges at {lanes} lanes");
            assert_eq!(lc, lane_cycles, "{backend}: lane cycles diverge at {lanes} lanes");
        }

        // The portable wide run re-chunked on the u64 backend: every
        // net, every cycle, every chunk; chunk toggles sum to the wide
        // table.
        let mut narrow_toggles = vec![0u64; module.net_count()];
        for wi in 0..words {
            let mut eng = BatchSim::new(&prog, module, 64);
            for (c, snap) in snapshots.iter().enumerate() {
                for (pi, &net) in in_nets.iter().enumerate() {
                    eng.poke_word(net, word_of(c, pi, wi));
                }
                eng.step();
                for (n, net_words) in snap.iter().enumerate() {
                    assert_eq!(
                        eng.peek_word(NetId(n as u32)),
                        net_words[wi],
                        "chunk {wi} cycle {c}: net `{}` diverges between widths",
                        module.nets[n].name
                    );
                }
            }
            for (t, s) in narrow_toggles.iter_mut().zip(eng.toggle_table()) {
                *t += s;
            }
        }
        assert_eq!(toggles, narrow_toggles, "wide toggle table must equal the summed u64-chunk tables");

        // Interpreter spot-check at the 512-lane word's u64 seams (the
        // 256-lane seams are interpreter-pinned by the test above).
        if lanes == 512 {
            for l in [0usize, 63, 64, 255, 256, 447, 448, 511] {
                let mut sim = Simulator::with_lowering(module, &lib, &low).unwrap();
                for (c, snap) in snapshots.iter().enumerate() {
                    for (pi, &net) in in_nets.iter().enumerate() {
                        sim.poke(net, stimulus[l][c][pi]);
                    }
                    Simulator::step(&mut sim);
                    for (n, net_words) in snap.iter().enumerate() {
                        assert_eq!(
                            sim.peek(NetId(n as u32)),
                            (net_words[l / 64] >> (l % 64)) & 1 == 1,
                            "lane {l} cycle {c}: net `{}` diverges from the interpreter",
                            module.nets[n].name
                        );
                    }
                }
            }
        }
    }
}

/// Engine-backed SCL characterization must reproduce the seed's
/// (interpreter-backed) energy records within sampling tolerance —
/// delay, area and leakage are computed by the same STA/stats either
/// way and must match exactly.
#[test]
fn engine_backed_scl_reproduces_seed_energy_records() {
    use syndcim_scl::Scl;
    use syndcim_subckt::AdderTreeConfig;

    let mut eng = Scl::new();
    let mut itp = Scl::interpreted();
    let cfg = AdderTreeConfig::default();
    // Tolerance note: both backends now take the same 512-sample
    // stimulus target, but from different random streams and warm-up
    // schedules — large records (trees, columns) land within ~1%, tiny
    // driver chains spread up to ~10%. 15% bounds every record kind.
    for (e, i) in [
        (eng.adder_tree(16, cfg), itp.adder_tree(16, cfg)),
        (eng.adder_tree(64, cfg), itp.adder_tree(64, cfg)),
        (eng.driver(64), itp.driver(64)),
    ] {
        assert_eq!(e.delay_ps, i.delay_ps);
        assert_eq!(e.area_um2, i.area_um2);
        assert_eq!(e.leakage_nw, i.leakage_nw);
        let rel = (e.energy_fj_per_cycle - i.energy_fj_per_cycle).abs() / i.energy_fj_per_cycle;
        assert!(rel < 0.15, "energy off by {:.1}%", rel * 100.0);
    }
}

#[test]
fn engine_runs_golden_int8_mac_pass_on_paper_test_chip() {
    let lib = syndcim_pdk::CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let prog = Program::compile(module, &lib).unwrap();

    let pa = 8u32;
    let lanes = 3usize;
    let channels = mac.w / pa as usize;
    let mut rng = seeded_rng(0x17E57);
    let weights: Vec<Vec<i64>> = (0..channels).map(|_| random_ints(&mut rng, mac.h, pa)).collect();
    let lane_acts: Vec<Vec<i64>> = (0..lanes).map(|_| random_ints(&mut rng, mac.h, pa)).collect();

    let mut sim = BatchSim::new(&prog, module, lanes);
    // Preload bank-0 weights (broadcast to every lane).
    for bc in &mac.bitcells {
        if bc.bank != 0 {
            continue;
        }
        let ch = bc.col / pa as usize;
        let j = (bc.col % pa as usize) as u32;
        sim.force_state_all(bc.inst, twos_complement_bit(weights[ch][bc.row], pa, j));
    }
    // Precision INT8, bank 0, write interface idle, then quiesce.
    let level = pa.trailing_zeros() as usize;
    for k in 0..=(mac.w_bits.trailing_zeros() as usize) {
        sim.set_all(&format!("prec[{k}]"), k == level);
    }
    for k in 0..mac.mcr.trailing_zeros() as usize {
        sim.set_all(&format!("bank_sel[{k}]"), false);
    }
    sim.set_all("wr_en", false);
    for r in 0..mac.h {
        sim.set_all(&format!("act[{r}]"), false);
    }
    sim.set_all("neg", false);
    sim.set_all("clear", false);
    sim.step();
    sim.step();

    // One bit-serial INT8 pass, lane l computing lane_acts[l].
    let depth = mac.mac_pipeline_depth as u32;
    let schedules: Vec<Vec<Vec<bool>>> = lane_acts.iter().map(|a| bit_serial_schedule(a, pa)).collect();
    let total = pa + depth + u32::from(mac.choice.ofu_extra_pipe);
    for cycle in 0..total {
        for r in 0..mac.h {
            for (l, sched) in schedules.iter().enumerate() {
                let bit = cycle < pa && sched[cycle as usize][r];
                sim.set_lane(&format!("act[{r}]"), l, bit);
            }
        }
        sim.set_all("clear", cycle == depth);
        sim.set_all("neg", cycle == pa - 1 + depth);
        sim.step();
    }

    // Every channel of every lane must match the golden model.
    let per_group = (mac.w_bits / pa) as usize;
    for (l, acts) in lane_acts.iter().enumerate() {
        for (ch, wv) in weights.iter().enumerate() {
            let g = ch / per_group;
            let i = ch % per_group;
            let width = mac.output_width(level) as u32;
            let raw = sim.get_bus_signed_lane(&mac.output_port(g, level, i), width, l);
            let got = raw >> (mac.act_bits - pa);
            let want = DcimChannelTrace::run(acts, wv, pa, pa).output;
            assert_eq!(got, want, "lane {l} channel {ch}");
        }
    }
}
