//! Levelized cycle-accurate two-value logic simulator with per-net
//! toggle counting.
//!
//! The simulator evaluates the combinational cone in one topological pass
//! per cycle (zero-delay semantics) and commits all sequential state at
//! the cycle boundary. Per-net toggle counts drive the power analysis,
//! playing the role gate-level simulation + SAIF plays in the paper's
//! PrimeTime sign-off.

use std::collections::HashMap;

use syndcim_ir::{Lowering, Symbols};
use syndcim_netlist::{levelize, validate, Connectivity, InstId, Module, NetId, NetlistError};
use syndcim_pdk::{CellLibrary, SeqUpdate};
use syndcim_telemetry as telemetry;

/// Port-name → net resolution strategy.
///
/// Simulators built from a shared [`Lowering`] resolve ports through
/// the lowering's interned [`Symbols`] table — an `Arc` handle, so the
/// constructor allocates **no** per-simulator name map. Only the
/// standalone [`Simulator::new`] path (no lowering available) still
/// builds an owned `HashMap`; each such build bumps the
/// `sim.port_table_allocs` telemetry counter, which the telemetry
/// tests use to prove the shared paths stopped allocating.
#[derive(Debug)]
enum PortLookup {
    Shared(Symbols),
    Owned(HashMap<String, NetId>),
}

impl PortLookup {
    fn net(&self, port: &str) -> Option<NetId> {
        match self {
            PortLookup::Shared(syms) => syms.port_net(port).map(NetId),
            PortLookup::Owned(map) => map.get(port).copied(),
        }
    }
}

/// Cycle-accurate simulator bound to one module.
#[derive(Debug)]
pub struct Simulator<'a> {
    module: &'a Module,
    lib: &'a CellLibrary,
    order: Vec<InstId>,
    /// Current logic value per net.
    values: Vec<bool>,
    /// Stored state per instance (only meaningful for sequential cells).
    state: Vec<bool>,
    /// Rising+falling transition count per net since the last reset.
    toggles: Vec<u64>,
    /// Completed clock cycles since the last reset.
    cycles: u64,
    ports: PortLookup,
    seq_insts: Vec<InstId>,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for `module`.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation (floating nets,
    /// multiple drivers) or contains a combinational loop.
    pub fn new(module: &'a Module, lib: &'a CellLibrary) -> Result<Self, NetlistError> {
        let conn = Connectivity::build(module)?;
        validate(module, &conn)?;
        let order = levelize(module, lib, &conn)?;
        telemetry::counter("sim.port_table_allocs").incr();
        let ports = PortLookup::Owned(module.ports.iter().map(|p| (p.name.clone(), p.net)).collect());
        Ok(Self::build(module, lib, order, ports))
    }

    /// Build a simulator over an already-performed
    /// [`Lowering`] of `module`, mirroring `Sta::with_lowering` /
    /// `PowerAnalyzer::from_lowering` — the shared-IR path: the
    /// connectivity walk and levelization are reused, so differential
    /// tests that run many interpreter instances against one compiled
    /// program stop paying a redundant traversal per instantiation.
    /// The lowering must have been built from the same `module`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FloatingNet`] if the lowering was built
    /// with `Lowering::new` (which tolerates floating reads) and the
    /// module violates the stricter simulation contract; a lowering
    /// from `Lowering::validated` skips that re-check entirely.
    pub fn with_lowering(
        module: &'a Module,
        lib: &'a CellLibrary,
        low: &Lowering,
    ) -> Result<Self, NetlistError> {
        debug_assert_eq!(low.net_count(), module.net_count(), "lowering belongs to a different module");
        if !low.is_validated() {
            validate(module, low.connectivity())?;
        }
        // Port names resolve through the lowering's shared symbol
        // table: a few `Arc` bumps, no owned name map per simulator.
        let ports = PortLookup::Shared(low.symbols().clone());
        Ok(Self::build(module, lib, low.order().to_vec(), ports))
    }

    /// Shared constructor body over a known-good levelized order.
    fn build(module: &'a Module, lib: &'a CellLibrary, order: Vec<InstId>, ports: PortLookup) -> Self {
        let seq_insts = module
            .instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| lib.cell(inst.cell).is_sequential())
            .map(|(i, _)| InstId(i as u32))
            .collect();
        Simulator {
            module,
            lib,
            order,
            values: vec![false; module.net_count()],
            state: vec![false; module.instance_count()],
            toggles: vec![0; module.net_count()],
            cycles: 0,
            ports,
            seq_insts,
        }
    }

    /// The module being simulated.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Net bound to boundary port `port`, resolved through the
    /// simulator's port table (the lowering's shared `Symbols` when
    /// built with [`Simulator::with_lowering`], an owned map
    /// otherwise).
    pub fn port_net(&self, port: &str) -> Option<NetId> {
        self.ports.net(port)
    }

    /// Set an input port by name.
    ///
    /// # Panics
    ///
    /// Panics if no port with that name exists.
    pub fn set(&mut self, port: &str, value: bool) {
        let net = self.ports.net(port).unwrap_or_else(|| panic!("no port named `{port}`"));
        self.poke(net, value);
    }

    /// Set an input net directly.
    pub fn poke(&mut self, net: NetId, value: bool) {
        if self.values[net.index()] != value {
            self.toggles[net.index()] += 1;
            self.values[net.index()] = value;
        }
    }

    /// Drive a bit-blasted bus `name[0..]` with the two's-complement bits
    /// of `value`.
    pub fn set_bus(&mut self, base: &str, width: u32, value: i64) {
        for i in 0..width {
            self.set(&format!("{base}[{i}]"), (value as u64 >> i) & 1 == 1);
        }
    }

    /// Read a net's current value.
    pub fn peek(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Read a port by name.
    ///
    /// # Panics
    ///
    /// Panics if no port with that name exists.
    pub fn get(&self, port: &str) -> bool {
        let net = self.ports.net(port).unwrap_or_else(|| panic!("no port named `{port}`"));
        self.peek(net)
    }

    /// Read a bit-blasted bus as an unsigned integer.
    pub fn get_bus_unsigned(&self, base: &str, width: u32) -> u64 {
        (0..width).fold(0u64, |acc, i| acc | (self.get(&format!("{base}[{i}]")) as u64) << i)
    }

    /// Read a bit-blasted bus as a signed (two's-complement) integer.
    pub fn get_bus_signed(&self, base: &str, width: u32) -> i64 {
        let u = self.get_bus_unsigned(base, width);
        let sign = 1u64 << (width - 1);
        if u & sign != 0 {
            (u as i64) - (1i64 << width)
        } else {
            u as i64
        }
    }

    /// Settle the combinational logic (no clock edge). Called implicitly
    /// by [`Simulator::step`]; call directly to observe outputs between
    /// input changes.
    pub fn settle(&mut self) {
        let mut ins = Vec::with_capacity(5);
        let mut outs = Vec::with_capacity(3);
        for &id in &self.order {
            let inst = &self.module.instances[id.index()];
            let cell = self.lib.cell(inst.cell);
            ins.clear();
            ins.extend(inst.inputs.iter().map(|n| self.values[n.index()]));
            cell.function.eval(&ins, false, &mut outs);
            for (pin, &v) in outs.iter().enumerate() {
                let net = inst.outputs[pin].index();
                if self.values[net] != v {
                    self.values[net] = v;
                    self.toggles[net] += 1;
                }
            }
        }
    }

    /// Advance one clock cycle: settle the combinational logic, then
    /// capture and commit every sequential element, then settle again so
    /// outputs reflect the new state.
    pub fn step(&mut self) {
        self.settle();
        // Capture phase: compute every next state from pre-edge values.
        let mut next: Vec<(usize, bool)> = Vec::with_capacity(self.seq_insts.len());
        for &id in &self.seq_insts {
            let inst = &self.module.instances[id.index()];
            let cell = self.lib.cell(inst.cell);
            let seq = cell.seq.expect("seq_insts holds only sequential cells");
            let cur = self.state[id.index()];
            let nv = match seq.update {
                SeqUpdate::Edge => self.values[inst.inputs[0].index()],
                SeqUpdate::EdgeEnable => {
                    if self.values[inst.inputs[1].index()] {
                        self.values[inst.inputs[0].index()]
                    } else {
                        cur
                    }
                }
                SeqUpdate::BitcellWrite => {
                    if self.values[inst.inputs[0].index()] {
                        self.values[inst.inputs[1].index()]
                    } else {
                        cur
                    }
                }
            };
            next.push((id.index(), nv));
        }
        // Commit phase: update states and their q nets.
        for (idx, nv) in next {
            self.state[idx] = nv;
            let qnet = self.module.instances[idx].outputs[0].index();
            if self.values[qnet] != nv {
                self.values[qnet] = nv;
                self.toggles[qnet] += 1;
            }
        }
        self.cycles += 1;
        self.settle();
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Force a sequential instance's stored state (e.g. preloading
    /// weights without a write sequence). The q net is updated on the
    /// next [`Simulator::settle`]/[`Simulator::step`].
    pub fn force_state(&mut self, inst: InstId, value: bool) {
        self.state[inst.index()] = value;
        let qnet = self.module.instances[inst.index()].outputs[0].index();
        if self.values[qnet] != value {
            self.values[qnet] = value;
            self.toggles[qnet] += 1;
        }
    }

    /// Current stored state of a sequential instance.
    pub fn state_of(&self, inst: InstId) -> bool {
        self.state[inst.index()]
    }

    /// Completed cycles since the last [`Simulator::reset_activity`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Transition count of one net.
    pub fn toggles_of(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// The full per-net toggle table (indexed by [`NetId::index`]).
    pub fn toggle_table(&self) -> &[u64] {
        &self.toggles
    }

    /// Zero all toggle counters and the cycle counter (state and values
    /// are preserved) — used to exclude warm-up/weight-load activity from
    /// power measurement.
    pub fn reset_activity(&mut self) {
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellKind;

    fn lib() -> CellLibrary {
        CellLibrary::syn40()
    }

    #[test]
    fn combinational_adder_settles() {
        let lib = lib();
        let mut b = NetlistBuilder::new("fa", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let ci = b.input("cin");
        let (s, co) = b.fa(a, c, ci);
        b.output("s", s);
        b.output("co", co);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for v in 0u32..8 {
            sim.set("a", v & 1 == 1);
            sim.set("b", v >> 1 & 1 == 1);
            sim.set("cin", v >> 2 & 1 == 1);
            sim.settle();
            let total = (v & 1) + (v >> 1 & 1) + (v >> 2 & 1);
            assert_eq!(sim.get("s"), total & 1 == 1);
            assert_eq!(sim.get("co"), total >= 2);
        }
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let lib = lib();
        let mut b = NetlistBuilder::new("reg", &lib);
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set("d", true);
        sim.settle();
        assert!(!sim.get("q"), "q must not change before the edge");
        sim.step();
        assert!(sim.get("q"), "q captures d at the edge");
        sim.set("d", false);
        sim.step();
        assert!(!sim.get("q"));
    }

    #[test]
    fn enabled_dff_holds_when_disabled() {
        let lib = lib();
        let mut b = NetlistBuilder::new("rege", &lib);
        let d = b.input("d");
        let en = b.input("en");
        let q = b.dffe(d, en);
        b.output("q", q);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set("d", true);
        sim.set("en", false);
        sim.step();
        assert!(!sim.get("q"));
        sim.set("en", true);
        sim.step();
        assert!(sim.get("q"));
        sim.set("d", false);
        sim.set("en", false);
        sim.step();
        assert!(sim.get("q"), "disabled register must hold");
    }

    #[test]
    fn bitcell_write_and_read() {
        let lib = lib();
        let mut b = NetlistBuilder::new("cellrw", &lib);
        let wwl = b.input("wwl");
        let wbl = b.input("wbl");
        let rbl = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
        b.output("rbl", rbl);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set("wwl", true);
        sim.set("wbl", true);
        sim.step();
        assert!(sim.get("rbl"));
        // Deselect and change wbl: state must hold.
        sim.set("wwl", false);
        sim.set("wbl", false);
        sim.step();
        assert!(sim.get("rbl"), "stored bit must survive with wwl low");
    }

    #[test]
    fn toggle_counting_counts_transitions() {
        let lib = lib();
        let mut b = NetlistBuilder::new("inv", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let y_net = m.port("y").unwrap().net;
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.settle(); // y rises to 1 (a=0): one toggle
        let t0 = sim.toggles_of(y_net);
        assert_eq!(t0, 1);
        for i in 0..10 {
            sim.set("a", i % 2 == 0);
            sim.settle();
        }
        assert_eq!(sim.toggles_of(y_net), t0 + 10);
        sim.reset_activity();
        assert_eq!(sim.toggles_of(y_net), 0);
        assert_eq!(sim.cycles(), 0);
    }

    #[test]
    fn with_lowering_matches_new_and_skips_revalidation() {
        let lib = lib();
        let mut b = NetlistBuilder::new("wl", &lib);
        let a = b.input("a");
        let x = b.not(a);
        let q = b.dff(x);
        b.output("q", q);
        let m = b.finish();
        let low = Lowering::validated(&m, &lib).unwrap();

        let mut fresh = Simulator::new(&m, &lib).unwrap();
        let mut shared = Simulator::with_lowering(&m, &lib, &low).unwrap();
        for i in 0..20 {
            fresh.set("a", i % 3 == 0);
            shared.set("a", i % 3 == 0);
            fresh.step();
            shared.step();
            assert_eq!(fresh.get("q"), shared.get("q"), "cycle {i}");
        }
        assert_eq!(fresh.toggle_table(), shared.toggle_table(), "toggles must be bit-identical");

        // An unvalidated lowering of a floating-read module is rejected
        // with the simulator's own contract.
        let mut b = NetlistBuilder::new("float", &lib);
        let dangling = b.net("dangling");
        let y = b.not(dangling);
        b.output("y", y);
        let m = b.finish();
        let low = Lowering::new(&m, &lib).unwrap();
        assert!(!low.is_validated());
        assert!(Simulator::with_lowering(&m, &lib, &low).is_err(), "floating reads must be rejected");
    }

    #[test]
    fn buses_roundtrip_signed_values() {
        let lib = lib();
        let mut b = NetlistBuilder::new("bus", &lib);
        let xs = b.input_bus("x", 8);
        b.output_bus("y", &xs);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for v in [-128i64, -1, 0, 1, 127, -77] {
            sim.set_bus("x", 8, v);
            sim.settle();
            assert_eq!(sim.get_bus_signed("y", 8), v);
        }
    }

    #[test]
    fn ripple_counter_counts() {
        // 3-bit ripple-free synchronous counter out of dffs and HAs.
        let lib = lib();
        let mut b = NetlistBuilder::new("cnt", &lib);
        let one = b.const1();
        // Build q registers with placeholder inputs, then patch.
        let p0 = b.net("p0");
        let p1 = b.net("p1");
        let p2 = b.net("p2");
        let q0 = b.add(CellKind::Dff, &[p0])[0];
        let q1 = b.add(CellKind::Dff, &[p1])[0];
        let q2 = b.add(CellKind::Dff, &[p2])[0];
        let (s0, c0) = b.ha(q0, one);
        let (s1, c1) = b.ha(q1, c0);
        let (s2, _c2) = b.ha(q2, c1);
        b.output_bus("q", &[q0, q1, q2]);
        let mut m = b.finish();
        m.instances[1].inputs[0] = s0; // dff q0 (index 1; index 0 is tiehi)
        m.instances[2].inputs[0] = s1;
        m.instances[3].inputs[0] = s2;
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for expect in 1..=10u64 {
            sim.step();
            assert_eq!(sim.get_bus_unsigned("q", 3), expect % 8);
        }
    }
}
