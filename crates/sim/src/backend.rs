//! The [`SimBackend`] abstraction: one trait over every cycle-accurate
//! simulation backend.
//!
//! Three implementations exist:
//!
//! * [`crate::Simulator`] — the interpreted, levelized reference
//!   implementation (1 lane);
//! * `syndcim_engine::BatchSim` — the compiled bit-parallel engine on
//!   `u64` lane words (up to 64 lanes);
//! * `syndcim_engine::BatchSim256` — the same engine on `[u64; 4]` wide
//!   words (up to 256 lanes), usually reached through
//!   `syndcim_engine::EngineSim`, which auto-selects the width.
//!
//! The trait is *word-oriented*: lanes are independent simulations of
//! the same module, packed 64 per `u64` word. A backend exposes
//! [`SimBackend::words`] 64-lane words per net; the word-indexed
//! accessors ([`SimBackend::poke_word_at`] / [`SimBackend::peek_word_at`])
//! address lane `l` as bit `l % 64` of word `l / 64`. The unindexed
//! [`SimBackend::poke_word`] / [`SimBackend::peek_word`] operate on word
//! 0, which keeps every ≤64-lane caller unchanged; a 1-lane backend
//! simply uses bit 0 of word 0. Per-net toggle counts aggregate
//! transitions across all active lanes, so an L-lane backend reports the
//! same totals as L separate 1-lane runs over the same per-lane stimulus
//! — the property the power analyzer and the engine differential tests
//! rely on.

use syndcim_netlist::{InstId, Module, NetId};

/// A cycle-accurate, toggle-counting simulation backend over one module.
pub trait SimBackend {
    /// Number of active simulation lanes (≥ 1).
    fn lanes(&self) -> usize;

    /// Number of 64-lane words per net (`ceil(lanes / 64)`).
    fn words(&self) -> usize {
        self.lanes().div_ceil(64)
    }

    /// The module being simulated.
    fn module(&self) -> &Module;

    /// Drive word 0 of a net (bit `l` = value in lane `l`, lanes 0..64),
    /// counting one toggle per lane whose value changes.
    fn poke_word(&mut self, net: NetId, word: u64);

    /// Read word 0 of a net.
    fn peek_word(&self, net: NetId) -> u64;

    /// Drive 64-lane word `word_idx` of a net (lane `word_idx*64 + b` is
    /// bit `b`), counting one toggle per lane whose value changes.
    /// Backends with a single word (the default) only accept index 0.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx >= self.words()`.
    fn poke_word_at(&mut self, net: NetId, word_idx: usize, word: u64) {
        assert_eq!(word_idx, 0, "backend carries {} lane word(s)", self.words());
        self.poke_word(net, word);
    }

    /// Read 64-lane word `word_idx` of a net.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx >= self.words()`.
    fn peek_word_at(&self, net: NetId, word_idx: usize) -> u64 {
        assert_eq!(word_idx, 0, "backend carries {} lane word(s)", self.words());
        self.peek_word(net)
    }

    /// Incremental-stimulus poke: drive 64-lane word `word_idx` of a net
    /// only if it differs from the current value. Because toggle
    /// accounting is `popcount(prev ^ next)`, re-driving an unchanged
    /// word contributes nothing — skipping it is bit-identical and lets
    /// measurement drivers avoid touching quiet input ports every cycle.
    fn drive_word_at(&mut self, net: NetId, word_idx: usize, word: u64) {
        if self.peek_word_at(net, word_idx) != word {
            self.poke_word_at(net, word_idx, word);
        }
    }

    /// Settle the combinational logic (no clock edge).
    fn settle(&mut self);

    /// Advance one clock cycle in every lane.
    fn step(&mut self);

    /// Force word 0 of the stored state of a sequential instance.
    fn force_state_word(&mut self, inst: InstId, word: u64);

    /// Word 0 of the stored state of a sequential instance.
    fn state_word(&self, inst: InstId) -> u64;

    /// Force 64-lane word `word_idx` of a sequential instance's state.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx >= self.words()`.
    fn force_state_word_at(&mut self, inst: InstId, word_idx: usize, word: u64) {
        assert_eq!(word_idx, 0, "backend carries {} lane word(s)", self.words());
        self.force_state_word(inst, word);
    }

    /// 64-lane word `word_idx` of a sequential instance's state.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx >= self.words()`.
    fn state_word_at(&self, inst: InstId, word_idx: usize) -> u64 {
        assert_eq!(word_idx, 0, "backend carries {} lane word(s)", self.words());
        self.state_word(inst)
    }

    /// Total *lane-cycles* completed since the last
    /// [`SimBackend::reset_activity`]: each [`SimBackend::step`] adds
    /// [`SimBackend::lanes`]. This is the denominator matching
    /// [`SimBackend::toggle_table`] for per-cycle activity averages.
    fn lane_cycles(&self) -> u64;

    /// Zero toggle counters and the lane-cycle counter (values and state
    /// are preserved).
    fn reset_activity(&mut self);

    /// Per-net toggle counts (indexed by [`NetId::index`]), summed over
    /// all active lanes.
    fn toggle_table(&self) -> &[u64];

    // ------------------------------------------------------------------
    // Name-based convenience helpers over the word primitives.
    // ------------------------------------------------------------------

    /// Net bound to a port.
    ///
    /// # Panics
    ///
    /// Panics if no port with that name exists.
    fn net_of(&self, port: &str) -> NetId {
        self.module().port(port).unwrap_or_else(|| panic!("no port named `{port}`")).net
    }

    /// Set a port to the same value in every lane.
    fn set_all(&mut self, port: &str, value: bool) {
        let net = self.net_of(port);
        let word = if value { !0 } else { 0 };
        for wi in 0..self.words() {
            self.drive_word_at(net, wi, word);
        }
    }

    /// Set one lane of a port, leaving other lanes unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not an active lane.
    fn set_lane(&mut self, port: &str, lane: usize, value: bool) {
        assert!(lane < self.lanes(), "lane {lane} out of range (backend has {} lanes)", self.lanes());
        let net = self.net_of(port);
        let old = self.peek_word_at(net, lane / 64);
        let bit = 1u64 << (lane % 64);
        self.poke_word_at(net, lane / 64, if value { old | bit } else { old & !bit });
    }

    /// Drive a bit-blasted bus with the same two's-complement value in
    /// every lane.
    fn set_bus_all(&mut self, base: &str, width: u32, value: i64) {
        for i in 0..width {
            self.set_all(&format!("{base}[{i}]"), (value as u64 >> i) & 1 == 1);
        }
    }

    /// Drive one lane of a bit-blasted bus.
    fn set_bus_lane(&mut self, base: &str, width: u32, lane: usize, value: i64) {
        for i in 0..width {
            self.set_lane(&format!("{base}[{i}]"), lane, (value as u64 >> i) & 1 == 1);
        }
    }

    /// Read one lane of a port.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not an active lane.
    fn get_lane(&self, port: &str, lane: usize) -> bool {
        assert!(lane < self.lanes(), "lane {lane} out of range (backend has {} lanes)", self.lanes());
        (self.peek_word_at(self.net_of(port), lane / 64) >> (lane % 64)) & 1 == 1
    }

    /// Read one lane of a bit-blasted bus as an unsigned integer.
    fn get_bus_unsigned_lane(&self, base: &str, width: u32, lane: usize) -> u64 {
        (0..width).fold(0u64, |acc, i| acc | (self.get_lane(&format!("{base}[{i}]"), lane) as u64) << i)
    }

    /// Read one lane of a bit-blasted bus as a signed integer.
    fn get_bus_signed_lane(&self, base: &str, width: u32, lane: usize) -> i64 {
        let u = self.get_bus_unsigned_lane(base, width, lane);
        let sign = 1u64 << (width - 1);
        if u & sign != 0 {
            (u as i64) - (1i64 << width)
        } else {
            u as i64
        }
    }

    /// Force a sequential instance's state to the same value in every
    /// lane.
    fn force_state_all(&mut self, inst: InstId, value: bool) {
        let word = if value { !0 } else { 0 };
        for wi in 0..self.words() {
            self.force_state_word_at(inst, wi, word);
        }
    }

    /// Stored state of a sequential instance in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not an active lane.
    fn state_of_lane(&self, inst: InstId, lane: usize) -> bool {
        assert!(lane < self.lanes(), "lane {lane} out of range (backend has {} lanes)", self.lanes());
        (self.state_word_at(inst, lane / 64) >> (lane % 64)) & 1 == 1
    }

    /// Run `n` cycles.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

impl SimBackend for crate::Simulator<'_> {
    fn lanes(&self) -> usize {
        1
    }

    fn module(&self) -> &Module {
        crate::Simulator::module(self)
    }

    fn net_of(&self, port: &str) -> NetId {
        self.port_net(port).unwrap_or_else(|| panic!("no port named `{port}`"))
    }

    fn poke_word(&mut self, net: NetId, word: u64) {
        self.poke(net, word & 1 == 1);
    }

    fn peek_word(&self, net: NetId) -> u64 {
        self.peek(net) as u64
    }

    fn settle(&mut self) {
        crate::Simulator::settle(self);
    }

    fn step(&mut self) {
        crate::Simulator::step(self);
    }

    fn force_state_word(&mut self, inst: InstId, word: u64) {
        self.force_state(inst, word & 1 == 1);
    }

    fn state_word(&self, inst: InstId) -> u64 {
        self.state_of(inst) as u64
    }

    fn lane_cycles(&self) -> u64 {
        self.cycles()
    }

    fn reset_activity(&mut self) {
        crate::Simulator::reset_activity(self);
    }

    fn toggle_table(&self) -> &[u64] {
        crate::Simulator::toggle_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellLibrary;

    #[test]
    fn simulator_implements_word_backend() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("fa", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let ci = b.input("cin");
        let (s, co) = b.fa(a, c, ci);
        b.output("s", s);
        b.output("co", co);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let be: &mut dyn SimBackend = &mut sim;
        assert_eq!(be.lanes(), 1);
        be.set_all("a", true);
        be.set_all("b", true);
        be.set_lane("cin", 0, true);
        be.settle();
        assert!(be.get_lane("s", 0));
        assert!(be.get_lane("co", 0));
        let s_net = be.net_of("s");
        assert_eq!(be.peek_word(s_net) & 1, 1);
    }

    #[test]
    fn bus_helpers_roundtrip_signed() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("bus", &lib);
        let xs = b.input_bus("x", 8);
        b.output_bus("y", &xs);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for v in [-128i64, -1, 0, 1, 127, -77] {
            SimBackend::set_bus_all(&mut sim, "x", 8, v);
            SimBackend::settle(&mut sim);
            assert_eq!(sim.get_bus_signed_lane("y", 8, 0), v);
        }
    }
}
