//! Number formats supported by SynDCIM macros.
//!
//! The paper's macros are bit-configurable across integer precisions
//! (INT1/2/4/8) and floating-point formats (FP4, FP8, BF16). Floating
//! point is handled RedCIM-style: the FP&INT alignment unit converts FP
//! operands into fixed-point mantissas aligned to the group-wise maximum
//! exponent (with hardware truncation of shifted-out bits), the array
//! performs an integer MAC, and the result carries the shared exponent.

/// A floating-point format as `(exponent bits, mantissa bits)` with an
/// implicit leading one and a sign bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpFormat {
    /// Exponent field width in bits.
    pub exp_bits: u32,
    /// Stored mantissa field width in bits (excluding the implicit one).
    pub man_bits: u32,
}

impl FpFormat {
    /// FP4 (E2M1).
    pub const FP4: FpFormat = FpFormat { exp_bits: 2, man_bits: 1 };
    /// FP8 (E4M3).
    pub const FP8: FpFormat = FpFormat { exp_bits: 4, man_bits: 3 };
    /// BF16 (E8M7).
    pub const BF16: FpFormat = FpFormat { exp_bits: 8, man_bits: 7 };

    /// Total storage width: sign + exponent + mantissa.
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Width of the signed aligned mantissa produced by the alignment
    /// unit: implicit one + stored mantissa + sign.
    pub fn aligned_bits(&self) -> u32 {
        self.man_bits + 2
    }

    /// Exponent bias (`2^(e-1) − 1`).
    pub fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Largest exponent field value (reserved encodings are not modelled;
    /// the DCIM datapath treats all exponents as finite).
    pub fn max_exp_field(&self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    /// Conventional name, e.g. `"FP8"` or `"BF16"`.
    pub fn name(&self) -> &'static str {
        match (self.exp_bits, self.man_bits) {
            (2, 1) => "FP4",
            (4, 3) => "FP8",
            (8, 7) => "BF16",
            _ => "FPx",
        }
    }
}

impl std::fmt::Display for FpFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (E{}M{})", self.name(), self.exp_bits, self.man_bits)
    }
}

/// An operand precision: signed integer of a given width, or floating
/// point in a given format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// Signed two's-complement integer of the given bit width.
    Int(u32),
    /// Floating point in the given format.
    Fp(FpFormat),
}

impl Precision {
    /// INT4 shorthand.
    pub const INT4: Precision = Precision::Int(4);
    /// INT8 shorthand.
    pub const INT8: Precision = Precision::Int(8);

    /// Storage bits of one operand.
    pub fn storage_bits(&self) -> u32 {
        match self {
            Precision::Int(b) => *b,
            Precision::Fp(f) => f.total_bits(),
        }
    }

    /// Width of the integer the datapath actually processes: the operand
    /// width for INT, or the signed aligned mantissa width for FP.
    pub fn datapath_bits(&self) -> u32 {
        match self {
            Precision::Int(b) => *b,
            Precision::Fp(f) => f.aligned_bits(),
        }
    }

    /// `true` for floating-point precisions (they require the FP&INT
    /// alignment unit and exponent-aware output fusion).
    pub fn is_fp(&self) -> bool {
        matches!(self, Precision::Fp(_))
    }

    /// Number of MAC operations counted per multiply-accumulate at this
    /// precision when normalizing to 1b×1b ops — the scaling used by the
    /// paper's "(scaling to 1b-1b)" TOPS numbers (ops scale with the
    /// product of operand widths).
    pub fn one_bit_op_scale(&self) -> f64 {
        let b = self.datapath_bits() as f64;
        b * b
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Int(b) => write!(f, "INT{b}"),
            Precision::Fp(fmt) => write!(f, "{}", fmt.name()),
        }
    }
}

/// A decoded floating-point operand: `(−1)^sign · 1.man · 2^(exp−bias)`.
///
/// Zero is represented with `exp_field == 0 && man_field == 0` and treated
/// as true zero (subnormals collapse to zero, as DCIM datapaths commonly
/// flush them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpValue {
    /// Sign bit.
    pub sign: bool,
    /// Raw exponent field.
    pub exp_field: u32,
    /// Raw mantissa field.
    pub man_field: u32,
}

impl FpValue {
    /// True zero.
    pub const ZERO: FpValue = FpValue { sign: false, exp_field: 0, man_field: 0 };

    /// `true` if the value is (flushed-to-)zero.
    pub fn is_zero(&self) -> bool {
        self.exp_field == 0 && self.man_field == 0
    }

    /// Pack into the raw bit encoding `[sign | exp | man]`.
    pub fn to_bits(&self, fmt: FpFormat) -> u32 {
        ((self.sign as u32) << (fmt.exp_bits + fmt.man_bits))
            | (self.exp_field << fmt.man_bits)
            | self.man_field
    }

    /// Unpack from the raw bit encoding.
    pub fn from_bits(bits: u32, fmt: FpFormat) -> Self {
        let man = bits & ((1 << fmt.man_bits) - 1);
        let exp = (bits >> fmt.man_bits) & ((1 << fmt.exp_bits) - 1);
        let sign = bits >> (fmt.exp_bits + fmt.man_bits) & 1 == 1;
        FpValue { sign, exp_field: exp, man_field: man }
    }

    /// The mantissa with the implicit leading one (0 for zero values).
    pub fn significand(&self, fmt: FpFormat) -> u32 {
        if self.is_zero() {
            0
        } else {
            (1 << fmt.man_bits) | self.man_field
        }
    }

    /// Exact real value as `f64` (all supported formats fit losslessly).
    pub fn to_f64(&self, fmt: FpFormat) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let mag = self.significand(fmt) as f64 / (1u64 << fmt.man_bits) as f64;
        let e = self.exp_field as i32 - fmt.bias();
        let v = mag * 2f64.powi(e);
        if self.sign {
            -v
        } else {
            v
        }
    }

    /// Encode the nearest representable value to `x` (round-to-nearest on
    /// the mantissa, exponent clamped to the finite range; overflow
    /// saturates to the largest finite value).
    pub fn from_f64(x: f64, fmt: FpFormat) -> Self {
        if x == 0.0 || !x.is_finite() {
            return FpValue::ZERO;
        }
        let sign = x < 0.0;
        let mag = x.abs();
        let mut e = mag.log2().floor() as i32;
        let mut frac = mag / 2f64.powi(e); // in [1, 2)
        let mut man = (frac * (1 << fmt.man_bits) as f64).round() as u32;
        if man >= 2 << fmt.man_bits {
            man >>= 1;
            e += 1;
            frac = 1.0;
        }
        let _ = frac;
        let exp_field = e + fmt.bias();
        if exp_field <= 0 {
            return FpValue::ZERO; // flush underflow
        }
        let exp_field = (exp_field as u32).min(fmt.max_exp_field());
        let man_field = man & ((1 << fmt.man_bits) - 1);
        FpValue { sign, exp_field, man_field }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bit_counts() {
        assert_eq!(FpFormat::FP4.total_bits(), 4);
        assert_eq!(FpFormat::FP8.total_bits(), 8);
        assert_eq!(FpFormat::BF16.total_bits(), 16);
        assert_eq!(FpFormat::FP8.aligned_bits(), 5);
        assert_eq!(FpFormat::BF16.bias(), 127);
    }

    #[test]
    fn fp_roundtrip_exact_values() {
        for fmt in [FpFormat::FP4, FpFormat::FP8, FpFormat::BF16] {
            for bits in 0..(1u32 << fmt.total_bits()) {
                let v = FpValue::from_bits(bits, fmt);
                if v.is_zero() || v.exp_field == 0 {
                    continue; // subnormal encodings flush; skip
                }
                let x = v.to_f64(fmt);
                let back = FpValue::from_f64(x, fmt);
                assert_eq!(back.to_f64(fmt), x, "{fmt} bits={bits:b}");
            }
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // FP8 E4M3: 1.0625 is halfway between 1.0 and 1.125 → rounds away
        // from zero per `f64::round`; 1.07 must become 1.125? No: nearest
        // of 1.07 among {1.0, 1.125} is 1.125 - 1.07 = 0.055 vs 0.07 → 1.125... check both.
        let fmt = FpFormat::FP8;
        assert_eq!(FpValue::from_f64(1.01, fmt).to_f64(fmt), 1.0);
        assert_eq!(FpValue::from_f64(1.12, fmt).to_f64(fmt), 1.125);
        assert_eq!(FpValue::from_f64(-2.24, fmt).to_f64(fmt), -2.25);
    }

    #[test]
    fn precision_display_and_scale() {
        assert_eq!(Precision::INT4.to_string(), "INT4");
        assert_eq!(Precision::Fp(FpFormat::BF16).to_string(), "BF16");
        assert_eq!(Precision::Int(1).one_bit_op_scale(), 1.0);
        assert_eq!(Precision::INT8.one_bit_op_scale(), 64.0);
        // FP8 datapath is the 5-bit aligned mantissa.
        assert_eq!(Precision::Fp(FpFormat::FP8).one_bit_op_scale(), 25.0);
    }

    #[test]
    fn zero_handling() {
        let z = FpValue::from_f64(0.0, FpFormat::FP8);
        assert!(z.is_zero());
        assert_eq!(z.significand(FpFormat::FP8), 0);
        assert_eq!(z.to_f64(FpFormat::FP8), 0.0);
    }

    #[test]
    fn overflow_saturates_not_infinite() {
        let fmt = FpFormat::FP4; // max finite: exp_field 3, man 1 → 1.5·2^(3-1)=6
        let v = FpValue::from_f64(1e9, fmt);
        assert_eq!(v.exp_field, fmt.max_exp_field());
        assert!(v.to_f64(fmt) > 0.0);
    }
}
