//! Workload vector generation for characterization and measurement.
//!
//! The paper evaluates macros under controlled operand statistics — e.g.
//! Table II measures at "input sparsity of 12.5 % and weight sparsity of
//! 50 % in INT4". These generators produce operand streams with exactly
//! those controllable statistics.

use crate::formats::{FpFormat, FpValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform signed integers representable in `bits` bits.
pub fn random_ints(rng: &mut StdRng, n: usize, bits: u32) -> Vec<i64> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (0..n).map(|_| rng.gen_range(min..=max)).collect()
}

/// Signed integers where each value is zero with probability
/// `zero_fraction` (value-level sparsity, as used for weights).
pub fn sparse_ints(rng: &mut StdRng, n: usize, bits: u32, zero_fraction: f64) -> Vec<i64> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (0..n).map(|_| if rng.gen_bool(zero_fraction) { 0 } else { rng.gen_range(min..=max) }).collect()
}

/// Non-negative integers whose *bits* are independently 1 with probability
/// `bit_density` (bit-level input sparsity: the statistic that directly
/// controls bit-serial DCIM switching activity).
pub fn ints_with_bit_density(rng: &mut StdRng, n: usize, bits: u32, bit_density: f64) -> Vec<i64> {
    (0..n)
        .map(|_| {
            let mut v = 0i64;
            // Keep the sign bit clear so the value statistics stay simple;
            // density applies to the magnitude bits.
            for b in 0..bits.saturating_sub(1) {
                if rng.gen_bool(bit_density) {
                    v |= 1 << b;
                }
            }
            v
        })
        .collect()
}

/// Measured fraction of 1 bits across the two's-complement encodings.
pub fn bit_density(vals: &[i64], bits: u32) -> f64 {
    let ones: u64 = vals.iter().map(|&v| (v as u64 & ((1u64 << bits) - 1)).count_ones() as u64).sum();
    ones as f64 / (vals.len() as f64 * bits as f64)
}

/// Uniform random FP values (finite, subnormals flushed).
pub fn random_fp(rng: &mut StdRng, n: usize, fmt: FpFormat) -> Vec<FpValue> {
    (0..n)
        .map(|_| {
            let bits = rng.gen_range(0..(1u32 << fmt.total_bits()));
            let v = FpValue::from_bits(bits, fmt);
            if v.exp_field == 0 {
                FpValue::ZERO
            } else {
                v
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_ints_respect_range() {
        let mut rng = seeded_rng(1);
        for v in random_ints(&mut rng, 1000, 4) {
            assert!((-8..=7).contains(&v));
        }
    }

    #[test]
    fn sparsity_is_statistically_respected() {
        let mut rng = seeded_rng(2);
        let vals = sparse_ints(&mut rng, 10_000, 8, 0.5);
        let zeros = vals.iter().filter(|&&v| v == 0).count() as f64 / vals.len() as f64;
        assert!((0.45..0.55).contains(&zeros), "zero fraction {zeros}");
    }

    #[test]
    fn bit_density_is_controllable() {
        let mut rng = seeded_rng(3);
        let vals = ints_with_bit_density(&mut rng, 5_000, 8, 0.125);
        // Sign bit is always 0, so measured density over magnitude bits:
        let d = bit_density(&vals, 7);
        assert!((0.10..0.15).contains(&d), "density {d}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = random_ints(&mut seeded_rng(42), 16, 8);
        let b = random_ints(&mut seeded_rng(42), 16, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn random_fp_has_no_subnormals() {
        let mut rng = seeded_rng(4);
        for v in random_fp(&mut rng, 1000, FpFormat::FP8) {
            assert!(v.is_zero() || v.exp_field > 0);
        }
    }
}
