//! # syndcim-sim — cycle-accurate simulation, golden models, workloads
//!
//! The verification and activity-measurement substrate:
//!
//! * [`Simulator`] — levelized two-value cycle simulator with per-net
//!   toggle counting (the gate-level-simulation role of the paper's
//!   sign-off flow);
//! * [`SimBackend`] — the word-oriented backend trait shared with the
//!   compiled bit-parallel engine (`syndcim-engine`); the interpreter
//!   is its 1-lane reference implementation;
//! * [`golden`] — behavioural models of the bit-serial DCIM MAC schedule
//!   (integer and aligned-FP), against which every generated netlist is
//!   checked bit-for-bit;
//! * [`formats`] — INT1/2/4/8, FP4, FP8, BF16 operand formats;
//! * [`vectors`] — operand generators with controllable sparsity and bit
//!   density, reproducing the paper's measurement conditions.
//!
//! ```
//! use syndcim_sim::golden::DcimChannelTrace;
//!
//! let acts = [3i64, -2, 7, 0];
//! let weights = [1i64, -4, 2, 5];
//! let trace = DcimChannelTrace::run(&acts, &weights, 4, 4);
//! assert_eq!(trace.output, acts.iter().zip(&weights).map(|(a, w)| a * w).sum::<i64>());
//! ```

pub mod backend;
pub mod formats;
pub mod golden;
pub mod simulator;
pub mod vectors;

pub use backend::SimBackend;
pub use formats::{FpFormat, FpValue, Precision};
pub use simulator::Simulator;
