//! Golden behavioural models of the DCIM MAC datapath.
//!
//! These models mirror the hardware schedule *exactly* — bit-serial
//! activations (LSB first, MSB cycle negatively weighted), per-column
//! 1-bit weights fused across columns by the output fusion unit, and
//! FP operands aligned to the group maximum exponent with truncation of
//! shifted-out mantissa bits. Every generated netlist is verified against
//! them bit-for-bit.

use crate::formats::{FpFormat, FpValue};

/// Exact signed dot product (the mathematical reference).
pub fn int_dot(acts: &[i64], weights: &[i64]) -> i64 {
    assert_eq!(acts.len(), weights.len(), "operand length mismatch");
    acts.iter().zip(weights).map(|(a, w)| a * w).sum()
}

/// Extract bit `t` of the two's-complement representation of `v` in
/// `bits` bits.
///
/// # Panics
///
/// Panics if `v` is not representable in `bits` signed bits.
pub fn twos_complement_bit(v: i64, bits: u32, t: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    assert!(v >= min && v <= max, "{v} not representable in INT{bits}");
    ((v as u64) >> t) & 1 == 1
}

/// The bit-serial input schedule: element `t` holds bit `t` (LSB first)
/// of every activation.
pub fn bit_serial_schedule(acts: &[i64], bits: u32) -> Vec<Vec<bool>> {
    (0..bits).map(|t| acts.iter().map(|&a| twos_complement_bit(a, bits, t)).collect()).collect()
}

/// Per-cycle column partial sum: the number of rows where both the
/// activation bit and the weight bit are 1 (what the adder tree reduces).
pub fn column_psum(act_bits: &[bool], w_bits: &[bool]) -> u64 {
    assert_eq!(act_bits.len(), w_bits.len());
    act_bits.iter().zip(w_bits).filter(|(a, w)| **a && **w).count() as u64
}

/// Cycle-by-cycle behavioural model of one DCIM output channel.
///
/// `acts` are signed activations in `act_bits` bits; `weights` are signed
/// weights in `w_bits` bits, stored across `w_bits` adjacent columns
/// (column `j` holds bit `j` of every weight). The model reproduces:
///
/// * the adder tree (per-column per-cycle popcount),
/// * the shift-and-adder (bit-serial accumulation with a negatively
///   weighted MSB cycle for signed activations),
/// * the output fusion unit (column fusion with a negatively weighted
///   MSB column for signed weights).
///
/// The result is exactly `Σᵢ actᵢ·weightᵢ`, which
/// [`DcimChannelTrace::output`] asserts structurally.
#[derive(Debug, Clone)]
pub struct DcimChannelTrace {
    /// `psum[j][t]` = adder-tree output of weight-bit column `j` in input
    /// cycle `t`.
    pub psum: Vec<Vec<u64>>,
    /// Shift-and-adder result per column after all input cycles.
    pub shift_add: Vec<i64>,
    /// Fused channel output.
    pub output: i64,
}

impl DcimChannelTrace {
    /// Run the behavioural schedule.
    pub fn run(acts: &[i64], weights: &[i64], act_bits: u32, w_bits: u32) -> Self {
        assert_eq!(acts.len(), weights.len());
        let schedule = bit_serial_schedule(acts, act_bits);
        // Column j holds bit j of each weight (two's complement).
        let w_cols: Vec<Vec<bool>> = (0..w_bits)
            .map(|j| weights.iter().map(|&w| twos_complement_bit(w, w_bits, j)).collect())
            .collect();

        let mut psum = vec![vec![0u64; act_bits as usize]; w_bits as usize];
        for (j, col) in w_cols.iter().enumerate() {
            for (t, bits) in schedule.iter().enumerate() {
                psum[j][t] = column_psum(bits, col);
            }
        }

        // Shift-and-adder: Σ_t ±2^t · psum_t, MSB cycle negative (signed
        // activations). For act_bits == 1 the single bit is the sign bit
        // (INT1 encodes {0, −1}).
        let shift_add: Vec<i64> = psum
            .iter()
            .map(|col| {
                col.iter()
                    .enumerate()
                    .map(|(t, &p)| {
                        let term = (p as i64) << t;
                        if t as u32 == act_bits - 1 && act_bits >= 1 {
                            -term
                        } else {
                            term
                        }
                    })
                    .sum()
            })
            .collect();

        // Output fusion: Σ_j ±2^j · sa_j, MSB column negative (signed
        // weights).
        let output = shift_add
            .iter()
            .enumerate()
            .map(|(j, &sa)| {
                let term = sa << j;
                if j as u32 == w_bits - 1 {
                    -term
                } else {
                    term
                }
            })
            .sum();

        DcimChannelTrace { psum, shift_add, output }
    }
}

/// Result of a hardware-faithful FP dot product: a fixed-point integer
/// sum plus the power-of-two scale shared by the whole group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpDotResult {
    /// Integer dot product of the aligned signed mantissas.
    pub int_sum: i64,
    /// Binary exponent such that the value is `int_sum · 2^scale_exp`.
    pub scale_exp: i32,
}

impl FpDotResult {
    /// The value as `f64`.
    pub fn to_f64(&self) -> f64 {
        self.int_sum as f64 * 2f64.powi(self.scale_exp)
    }
}

/// Align a slice of FP operands to their maximum exponent, producing
/// signed fixed-point mantissas with hardware truncation.
///
/// Returns `(aligned, e_max)`. Each aligned value is
/// `±(significand >> min(e_max − e, man_bits + 1))` — shifts beyond the
/// significand width flush to zero, exactly as the netlist shifter does.
pub fn fp_align(vals: &[FpValue], fmt: FpFormat) -> (Vec<i64>, i32) {
    let e_max = vals.iter().filter(|v| !v.is_zero()).map(|v| v.exp_field).max().unwrap_or(0) as i32;
    let aligned = vals
        .iter()
        .map(|v| {
            if v.is_zero() {
                return 0;
            }
            let shift = e_max - v.exp_field as i32;
            let sig = v.significand(fmt) as i64;
            let mag = if shift > fmt.man_bits as i32 + 1 { 0 } else { sig >> shift };
            if v.sign {
                -mag
            } else {
                mag
            }
        })
        .collect();
    (aligned, e_max)
}

/// Hardware-faithful FP dot product: align both operand groups to their
/// maximum exponents (with truncation), integer-MAC the aligned
/// mantissas, and carry the combined scale.
pub fn fp_dot(acts: &[FpValue], weights: &[FpValue], a_fmt: FpFormat, w_fmt: FpFormat) -> FpDotResult {
    assert_eq!(acts.len(), weights.len());
    let (a_al, ea) = fp_align(acts, a_fmt);
    let (w_al, ew) = fp_align(weights, w_fmt);
    let int_sum = int_dot(&a_al, &w_al);
    let scale_exp = (ea - a_fmt.bias() - a_fmt.man_bits as i32) + (ew - w_fmt.bias() - w_fmt.man_bits as i32);
    FpDotResult { int_sum, scale_exp }
}

/// Exact (f64) FP dot product, for error-bound checks against
/// [`fp_dot`].
pub fn fp_dot_exact(acts: &[FpValue], weights: &[FpValue], a_fmt: FpFormat, w_fmt: FpFormat) -> f64 {
    acts.iter().zip(weights).map(|(a, w)| a.to_f64(a_fmt) * w.to_f64(w_fmt)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_serial_channel_equals_direct_dot() {
        // Exhaustive over a small space: INT3 acts × INT2 weights, 2 rows.
        for a0 in -4i64..4 {
            for a1 in -4i64..4 {
                for w0 in -2i64..2 {
                    for w1 in -2i64..2 {
                        let tr = DcimChannelTrace::run(&[a0, a1], &[w0, w1], 3, 2);
                        assert_eq!(tr.output, a0 * w0 + a1 * w1, "a=({a0},{a1}) w=({w0},{w1})");
                    }
                }
            }
        }
    }

    #[test]
    fn int8_channel_random_rows() {
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let h = 64;
            let acts: Vec<i64> = (0..h).map(|_| (next() as i8) as i64).collect();
            let ws: Vec<i64> = (0..h).map(|_| (next() as i8) as i64).collect();
            let tr = DcimChannelTrace::run(&acts, &ws, 8, 8);
            assert_eq!(tr.output, int_dot(&acts, &ws));
        }
    }

    #[test]
    fn int1_uses_sign_encoding() {
        // INT1 two's complement: bit 1 means −1.
        let tr = DcimChannelTrace::run(&[-1, 0, -1], &[-1, -1, 0], 1, 1);
        assert_eq!(tr.output, 1); // (−1)·(−1) + 0 + 0
    }

    #[test]
    fn psum_matches_popcount() {
        let acts = vec![3i64, 1, 0, 2]; // bits t=0: 1,1,0,0 ; t=1: 1,0,0,1
        let ws = vec![-1i64, -1, -1, 0]; // INT1 encodes {0, −1}; −1 stores bit 1
        let tr = DcimChannelTrace::run(&acts, &ws, 3, 1);
        assert_eq!(tr.psum[0][0], 2); // rows 0,1 have act bit0=1 & w bit=1
        assert_eq!(tr.psum[0][1], 1); // row 0 only (row 3 has w bit=0)
    }

    #[test]
    fn fp_align_no_shift_is_exact() {
        let fmt = FpFormat::FP8;
        // Same exponent everywhere → no truncation, alignment is exact.
        let vals: Vec<FpValue> = [1.0, 1.25, -1.875].iter().map(|&x| FpValue::from_f64(x, fmt)).collect();
        let (aligned, emax) = fp_align(&vals, fmt);
        assert_eq!(emax, fmt.bias()); // exponent of 1.x
        assert_eq!(aligned, vec![8, 10, -15]); // significands of 1.0, 1.25, 1.875
    }

    #[test]
    fn fp_dot_exact_when_exponents_equal() {
        let fmt = FpFormat::FP8;
        let a: Vec<FpValue> = [1.0, -1.5, 1.125].iter().map(|&x| FpValue::from_f64(x, fmt)).collect();
        let w: Vec<FpValue> = [1.25, 1.0, -1.75].iter().map(|&x| FpValue::from_f64(x, fmt)).collect();
        let hw = fp_dot(&a, &w, fmt, fmt);
        let exact = fp_dot_exact(&a, &w, fmt, fmt);
        assert!((hw.to_f64() - exact).abs() < 1e-12, "hw={} exact={exact}", hw.to_f64());
    }

    #[test]
    fn fp_dot_truncation_error_is_bounded() {
        let fmt = FpFormat::FP8;
        let mut x: u64 = 12345;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..100 {
            let n = 16;
            let a: Vec<FpValue> = (0..n).map(|_| FpValue::from_bits(next() as u32 & 0xFF, fmt)).collect();
            let w: Vec<FpValue> = (0..n).map(|_| FpValue::from_bits(next() as u32 & 0xFF, fmt)).collect();
            let hw = fp_dot(&a, &w, fmt, fmt);
            let exact = fp_dot_exact(&a, &w, fmt, fmt);
            // Each aligned mantissa truncates < 1 ulp of the shared scale;
            // the product error is bounded by Σ (|a_i|+|w_i|+1)·ulp².
            let (a_al, ea) = fp_align(&a, fmt);
            let (w_al, ew) = fp_align(&w, fmt);
            let ulp_a = 2f64.powi(ea - fmt.bias() - fmt.man_bits as i32);
            let ulp_w = 2f64.powi(ew - fmt.bias() - fmt.man_bits as i32);
            let bound: f64 = a_al
                .iter()
                .zip(&w_al)
                .map(|(&ai, &wi)| {
                    ulp_a * (wi.abs() as f64 * ulp_w) + ulp_w * (ai.abs() as f64 * ulp_a) + ulp_a * ulp_w
                })
                .sum();
            assert!(
                (hw.to_f64() - exact).abs() <= bound,
                "error {} exceeds bound {bound}",
                (hw.to_f64() - exact).abs()
            );
        }
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn out_of_range_bit_extraction_panics() {
        twos_complement_bit(200, 8, 0);
    }
}
