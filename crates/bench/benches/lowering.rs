//! Scale-tier lowering bench: a generator-backed large macro (256×256,
//! MCR 2 — ≥10⁵ nets, well past the 64×64 paper chip) lowered through
//! the shared IR, plus the memory gate of the interned-symbol layer.
//!
//! Two things are measured and merged into `BENCH_engine.json`:
//!
//! * **lowering throughput** — `Lowering::validated` (connectivity +
//!   levelization + name interning) and the full `CompiledMacro`
//!   bundle compile on the large macro, in ms and nets/s;
//! * **name-table memory** — retained bytes of the interned name layer
//!   (symbol tables + one shared arena, counted once across the whole
//!   compiled trinity) versus the owned-`String`-table baseline the
//!   pre-interning artifacts carried (per-net + per-instance +
//!   per-instance-group clones in `CompiledSta`, head names in
//!   `CompiledPower`). **Fails unless the reduction is ≥ 2×** — the
//!   acceptance bar of the interning refactor.
//!
//! A smoke pass at the end proves the scale tier is actually usable:
//! the compiled bundle answers an STA query and a power report on the
//! ~4×10⁵-net macro.

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_bench::merge_bench_artifact;
use syndcim_core::{assemble, CompiledMacro, DesignChoice, MacroSpec};
use syndcim_ir::Lowering;
use syndcim_netlist::Module;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::WireLoads;

/// The scale-tier acceptance floor: the generated macro must be at
/// least this many nets (the paper chip is ~3×10⁴; this tier is the
/// "what if macros grow to 10⁵–10⁶ nets" regime the ROADMAP flagged).
const MIN_NETS: usize = 100_000;

/// Required memory reduction of interned names vs the string-table
/// baseline.
const MIN_MEMORY_REDUCTION: f64 = 2.0;

/// The 256×256 MCR-2 dense-INT spec backing the scale tier.
fn large_spec() -> MacroSpec {
    MacroSpec {
        h: 256,
        w: 256,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

/// Bytes the pre-interning compiled artifacts owned in `String` name
/// tables: `CompiledSta` cloned one net-name, one instance-name and one
/// full group-path string per element; `CompiledPower` cloned the
/// distinct head names. (`String` counted as struct + len bytes —
/// allocator slack ignored, which under-counts the baseline and makes
/// the asserted ratio conservative.)
fn string_table_bytes(m: &Module) -> usize {
    let s = std::mem::size_of::<String>();
    let nets: usize = m.nets.iter().map(|n| s + n.name.len()).sum();
    let insts: usize = m.instances.iter().map(|i| s + i.name.len()).sum();
    let inst_groups: usize = m.instances.iter().map(|i| s + m.group_name(i.group).len()).sum();
    let heads: usize = {
        let mut seen = std::collections::BTreeSet::new();
        m.instances
            .iter()
            .map(|i| {
                let g = m.group_name(i.group);
                let head = g.split('/').next().unwrap_or(g);
                if seen.insert(head) {
                    s + head.len()
                } else {
                    0
                }
            })
            .sum()
    };
    nets + insts + inst_groups + heads
}

fn bench_lowering(c: &mut Criterion) {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, &large_spec(), &DesignChoice::default());
    let module = &mac.module;
    let nets = module.net_count();
    assert!(nets >= MIN_NETS, "scale tier needs >= {MIN_NETS} nets, generated only {nets}");
    println!(
        "large macro: {} nets, {} instances, {} groups",
        nets,
        module.instance_count(),
        module.groups.len()
    );

    // --- lowering throughput on the large macro ----------------------
    let lower = c.bench_stats("lowering_256x256", |b| {
        b.iter(|| Lowering::validated(module, &lib).expect("generated macros are well-formed"))
    });
    let lowering_ms = lower.ns_per_iter / 1e6;
    let nets_per_s = nets as f64 / (lower.ns_per_iter * 1e-9);

    // --- full compiled-trinity bundle on the large macro -------------
    let wires = WireLoads::zero(nets);
    let bundle = c.bench_stats("compiled_macro_256x256", |b| {
        b.iter(|| CompiledMacro::compile(module, &lib, &wires).expect("generated macros compile"))
    });
    let bundle_ms = bundle.ns_per_iter / 1e6;

    // --- interned name layer vs the string-table baseline ------------
    let low = Lowering::validated(module, &lib).expect("generated macros are well-formed");
    let interned = low.symbols().heap_bytes();
    let baseline = string_table_bytes(module);
    let reduction = baseline as f64 / interned as f64;
    println!(
        "name tables: interned {:.2} MiB vs string baseline {:.2} MiB — {reduction:.2}x reduction",
        interned as f64 / (1 << 20) as f64,
        baseline as f64 / (1 << 20) as f64,
    );
    assert!(
        reduction >= MIN_MEMORY_REDUCTION,
        "interned name layer must be >= {MIN_MEMORY_REDUCTION}x smaller than the string-table \
         baseline, measured only {reduction:.2}x ({interned} vs {baseline} bytes)"
    );

    // --- smoke: the scale-tier bundle answers real queries -----------
    let cm = CompiledMacro::compile(module, &lib, &wires).expect("generated macros compile");
    let op = OperatingPoint::at_voltage(0.9);
    let fmax = cm.sta.fmax_mhz(op);
    assert!(fmax.is_finite() && fmax > 0.0, "scale-tier STA must produce a usable fmax, got {fmax}");
    let report = cm.power.report_static(0.1, 500.0, op);
    assert!(report.total_uw() > 0.0, "scale-tier power report must be non-trivial");
    assert!(cm.power.path_count() >= cm.power.group_count());
    println!("smoke: fmax {fmax:.0} MHz, static power {:.1} mW at 0.9 V", report.total_mw());

    merge_bench_artifact(
        &["lowering_", "intern_"],
        &[
            ("lowering_256x256_ms", lowering_ms),
            ("lowering_256x256_nets_vps", nets_per_s),
            ("lowering_compiled_macro_ms", bundle_ms),
            ("intern_bytes_mib", interned as f64 / (1 << 20) as f64),
            ("intern_reduction_over_strings", reduction),
        ],
    );
}

criterion_group!(benches, bench_lowering);
criterion_main!(benches);
