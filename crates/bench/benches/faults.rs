//! Fault-injection overhead guard on the paper test-chip MAC netlist.
//!
//! The per-lane fault masks live behind an `Option` inside the
//! engine's write path, so a run with **no plan installed** (and an
//! installed *empty* plan, which is the same state) must cost nothing.
//! This bench measures three arms on identical stimulus:
//!
//! * `nominal` — no fault plan was ever installed;
//! * `empty` — `install_faults(&FaultPlan::new())`, which must leave
//!   no state behind;
//! * `dormant` — a plan with one transient flip scheduled far past the
//!   run, so the mask tables are allocated and the masked write branch
//!   executes on every slot write while staying semantically neutral.
//!
//! It fails if the empty-plan arm loses more than 2% of the
//! `BENCH_baseline.json` `engine64_vps` throughput. The dormant-arm
//! cost is reported (and archived) as the price of an *active*
//! campaign. All keys merge into `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_engine::{BatchSim, FaultPlan, Program};
use syndcim_netlist::NetId;
use syndcim_pdk::CellLibrary;
use syndcim_sim::SimBackend;

/// Cheap xorshift stimulus source (identical cost in every arm).
fn next_word(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn bench_faults(c: &mut Criterion) {
    // Measure the engine alone, not the ambient tracing mode.
    syndcim_telemetry::set_mode(syndcim_telemetry::Mode::Off);

    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let prog = Program::compile(module, &lib).expect("paper test chip compiles");
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    let nominal = c.bench_stats("engine_64vectors_no_plan", |b| {
        let mut sim = BatchSim::new(&prog, module, 64);
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke_word(net, next_word(&mut state));
            }
            sim.step();
        });
    });

    let empty = c.bench_stats("engine_64vectors_empty_plan", |b| {
        let mut sim = BatchSim::new(&prog, module, 64);
        sim.install_faults(&FaultPlan::new()).expect("empty plan installs");
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke_word(net, next_word(&mut state));
            }
            sim.step();
        });
    });

    let dormant = c.bench_stats("engine_64vectors_dormant_plan", |b| {
        let mut sim = BatchSim::new(&prog, module, 64);
        let mut plan = FaultPlan::new();
        plan.flip_at(in_nets[0], 0, u64::MAX);
        sim.install_faults(&plan).expect("dormant plan installs");
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke_word(net, next_word(&mut state));
            }
            sim.step();
        });
    });

    let nominal_vps = 64.0 * 1e9 / nominal.ns_per_iter;
    let empty_vps = 64.0 * 1e9 / empty.ns_per_iter;
    let dormant_vps = 64.0 * 1e9 / dormant.ns_per_iter;
    println!("no plan:      {nominal_vps:>12.0} vectors/s");
    println!("empty plan:   {empty_vps:>12.0} vectors/s");
    println!("dormant plan: {dormant_vps:>12.0} vectors/s");

    // Empty-plan guard: within 2% of the *committed baseline* engine
    // throughput — the same yardstick the telemetry off-mode guard
    // uses, so a slow write path cannot hide behind run-to-run noise
    // in the nominal arm.
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let baseline = std::fs::read_to_string(baseline_path)
        .map(|text| syndcim_bench::parse_bench_artifact(&text))
        .unwrap_or_default();
    let empty_overhead_pct = baseline
        .get("engine64_vps")
        .map_or(0.0, |&base_vps| ((base_vps - empty_vps) / base_vps * 100.0).max(0.0));
    let dormant_overhead_pct = ((nominal_vps - dormant_vps) / nominal_vps * 100.0).max(0.0);
    println!("empty-plan overhead vs baseline engine64 vps: {empty_overhead_pct:.2}%");
    println!("dormant-plan overhead vs nominal arm:         {dormant_overhead_pct:.2}%");

    syndcim_bench::merge_bench_artifact(
        &["faults_"],
        &[
            ("faults_nominal_vps", nominal_vps),
            ("faults_empty_plan_vps", empty_vps),
            ("faults_dormant_plan_vps", dormant_vps),
            ("faults_empty_plan_overhead_pct", empty_overhead_pct),
            ("faults_dormant_plan_overhead_pct", dormant_overhead_pct),
        ],
    );

    assert!(
        empty_overhead_pct <= 2.0,
        "an empty fault plan must cost <= 2% of baseline engine64 throughput, lost {empty_overhead_pct:.2}%"
    );
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
