//! Reference vs. compiled STA on the sign-off paths that matter:
//!
//! * **shmoo grid** — the end-to-end product path. The reference arm is
//!   the seed behaviour (`StaBackend::Reference`: rebuild + walk the
//!   analyzer per voltage); the compiled arm sweeps the grid through
//!   the timing program the macro has carried since `implement`
//!   (`CompiledSta::fmax_many`). The one-time lowering cost — paid once
//!   per implementation, next to placement and extraction — is measured
//!   and reported separately as `sta_compile_ms`.
//! * **single analysis** — pure propagation speed on the 64×64 paper
//!   test-chip netlist, both analyzers prebuilt (isolates the SoA pass
//!   from `Sta::new` construction).
//!
//! Fails if the compiled shmoo grid is not ≥ 5× the reference. Numbers
//! are merged into `BENCH_engine.json` (same artifact the engine bench
//! writes; override the path with `BENCH_ENGINE_JSON`), preserving any
//! keys already recorded there.
//!
//! Correctness is *not* re-checked here beyond a pass-map equality
//! assert — the bit-identical pinning lives in
//! `tests/sta_compiled_differential.rs` and the core shmoo regression
//! tests.

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_core::{assemble, implement, shmoo_with, DesignChoice, MacroSpec, StaBackend};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::{Sta, WireLoads};

/// The shmoo grid swept by both arms: the paper's Fig. 9 axes at a
/// realistic density (13 voltages × 12 frequencies).
fn grid() -> (Vec<f64>, Vec<f64>) {
    let voltages: Vec<f64> = (0..13).map(|i| 0.55 + 0.06 * i as f64).collect();
    let freqs: Vec<f64> = (0..12).map(|i| 100.0 * 1.45f64.powi(i)).collect();
    (voltages, freqs)
}

fn bench_sta(c: &mut Criterion) {
    let lib = CellLibrary::syn40();

    // --- end-to-end shmoo grid on an implemented 16×16 macro ---------
    let spec = MacroSpec {
        h: 16,
        w: 16,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    let im = implement(&lib, &spec, &DesignChoice::default()).expect("bench spec implements");
    let (voltages, freqs) = grid();

    let reference = c.bench_stats("sta_shmoo_grid_reference", |b| {
        b.iter(|| shmoo_with(&im, &lib, &voltages, &freqs, StaBackend::Reference))
    });
    // The product path: the macro carries its timing program from
    // `implement` (compiled once, next to placement/extraction), so a
    // shmoo sweep is pure batched evaluation.
    let compiled = c.bench_stats("sta_shmoo_grid_compiled", |b| {
        b.iter(|| shmoo_with(&im, &lib, &voltages, &freqs, StaBackend::Compiled))
    });
    // One-time lowering cost, reported for transparency: this is paid
    // once per `implement`, not per grid.
    let compile_cost = c.bench_stats("sta_compile_16x16_macro", |b| {
        b.iter(|| {
            Sta::new(&im.mac.module, &lib)
                .expect("implemented macros are well-formed")
                .with_wire_loads(WireLoads {
                    cap_ff: im.wires.cap_ff.clone(),
                    delay_ps: im.wires.delay_ps.clone(),
                })
                .compile()
        })
    });
    let shmoo_ratio = reference.ns_per_iter / compiled.ns_per_iter;

    // Sanity: the two backends agree on the grid (cheap spot check; the
    // exhaustive pinning lives in the test suites).
    let fast = shmoo_with(&im, &lib, &voltages, &freqs, StaBackend::Compiled);
    let slow = shmoo_with(&im, &lib, &voltages, &freqs, StaBackend::Reference);
    assert_eq!(fast.pass, slow.pass, "backends must produce identical shmoo grids");

    // --- single-analysis propagation speed on the paper chip ---------
    let chip_spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &chip_spec, &DesignChoice::default());
    let sta = Sta::new(&mac.module, &lib).expect("paper chip is well-formed");
    let csta = sta.compile();
    let op = OperatingPoint::at_voltage(0.9);

    let walk = c.bench_stats("sta_analyze_reference_paper_chip", |b| b.iter(|| sta.analyze_at(1000.0, op)));
    let soa = c.bench_stats("sta_analyze_compiled_paper_chip", |b| b.iter(|| csta.analyze_at(1000.0, op)));
    let fmax = c.bench_stats("sta_fmax_many_compiled_paper_chip", |b| {
        let ops = [0.7, 0.8, 0.9, 1.05, 1.2].map(OperatingPoint::at_voltage);
        b.iter(|| csta.fmax_many(&ops))
    });
    let analyze_ratio = walk.ns_per_iter / soa.ns_per_iter;

    println!(
        "shmoo grid:   reference {:>9.1} ms   compiled {:>9.3} ms   ({shmoo_ratio:.1}x)",
        reference.ns_per_iter / 1e6,
        compiled.ns_per_iter / 1e6
    );
    println!("one-time compile (16x16 macro): {:>9.3} ms", compile_cost.ns_per_iter / 1e6);
    println!(
        "one analysis: reference {:>9.3} ms   compiled {:>9.3} ms   ({analyze_ratio:.1}x)",
        walk.ns_per_iter / 1e6,
        soa.ns_per_iter / 1e6
    );
    println!("fmax_many(5 corners): {:>9.3} ms", fmax.ns_per_iter / 1e6);

    syndcim_bench::merge_bench_artifact(
        &["sta_"],
        &[
            ("sta_shmoo_reference_ms", reference.ns_per_iter / 1e6),
            ("sta_shmoo_compiled_ms", compiled.ns_per_iter / 1e6),
            ("sta_shmoo_speedup", shmoo_ratio),
            ("sta_compile_ms", compile_cost.ns_per_iter / 1e6),
            ("sta_analyze_reference_ms", walk.ns_per_iter / 1e6),
            ("sta_analyze_compiled_ms", soa.ns_per_iter / 1e6),
            ("sta_analyze_speedup", analyze_ratio),
        ],
    );

    assert!(
        shmoo_ratio >= 5.0,
        "compiled STA must deliver >= 5x on a full shmoo grid, got {shmoo_ratio:.1}x"
    );
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
