//! Interpreter vs. compiled-engine vector throughput on the paper
//! test-chip MAC netlist (64×64, MCR 2, INT1–8 + FP4/FP8), plus the
//! engine-backed SCL characterization and parallel Pareto-search
//! timings.
//!
//! One "vector" is a full random input assignment stepped through one
//! clock cycle. The interpreter simulates one vector per step; the
//! `u64` engine 64 (one per lane); the wide `[u64; 4]` engine 256.
//! The bench reports iteration times, derived per-vector throughput
//! ratios and wall-clock timings for `Scl` warm-up and `search`, and
//! fails if
//!
//! * the `u64` engine is not ≥ 10× the interpreter (PR 1's bar),
//! * the 256-lane wide backend is not ≥ 2× the `u64` backend,
//! * an ISA-native backend (AVX2/AVX-512, measured only where the CPU
//!   supports it) is slower than the portable word at equal width, or
//!   the 512-lane AVX-512 word is not ≥ 1.5× the portable 256-lane
//!   word in vectors/sec at equal total work,
//! * engine-backed SCL characterization is not ≥ 2× the seed's
//!   interpreter-backed path,
//! * disabled-mode telemetry costs more than 2% of the baseline's
//!   `engine64_vps` (`BENCH_baseline.json`).
//!
//! All measured numbers are also written to `BENCH_engine.json`
//! (override the path with the `BENCH_ENGINE_JSON` env var) so CI can
//! archive the perf trajectory across PRs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_core::{assemble, search, DesignChoice, MacroSpec};
use syndcim_engine::{BatchSim, EngineSim, Program, SimdBackend};
use syndcim_netlist::NetId;
use syndcim_pdk::CellLibrary;
use syndcim_scl::Scl;
use syndcim_sim::{SimBackend, Simulator};
use syndcim_subckt::{AdderTreeConfig, BitcellKind, MultMuxKind, ShiftAddConfig};

/// Cheap xorshift stimulus source (identical cost in every arm).
fn next_word(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Wall-clock one closure, in milliseconds.
fn time_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Warm one SCL with a fixed, search-representative record set.
fn warm_scl(scl: &mut Scl) {
    let cfg = AdderTreeConfig::default();
    for h in [8, 16, 32, 64] {
        scl.adder_tree(h, cfg);
    }
    scl.column(16, 2, BitcellKind::Sram6T2T, MultMuxKind::TgNor);
    scl.shift_add(ShiftAddConfig { psum_bits: 7, act_bits: 8 });
    scl.driver(16);
    scl.driver(64);
}

fn bench_engine(c: &mut Criterion) {
    // The hot loops below are instrumented with telemetry sites; this
    // bench measures (and guards) their *disabled* cost, so pin the
    // mode regardless of the ambient `SYNDCIM_TRACE`.
    syndcim_telemetry::set_mode(syndcim_telemetry::Mode::Off);

    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let prog = Program::compile(module, &lib).expect("paper test chip compiles");
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    let interp = c.bench_stats("interpreter_vector_paper_chip", |b| {
        let mut sim = Simulator::new(module, &lib).unwrap();
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke(net, next_word(&mut state) & 1 == 1);
            }
            Simulator::step(&mut sim);
        });
    });

    let engine64 = c.bench_stats("engine_64vectors_paper_chip", |b| {
        let mut sim = BatchSim::new(&prog, module, 64);
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke_word(net, next_word(&mut state));
            }
            sim.step();
        });
    });

    let engine256 = c.bench_stats("engine_256vectors_paper_chip", |b| {
        let mut sim = EngineSim::new_wide(&prog, module, 256);
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                for wi in 0..sim.words() {
                    sim.poke_word_at(net, wi, next_word(&mut state));
                }
            }
            sim.step();
        });
    });

    // ISA-native SIMD backends vs the portable words, pinned per arm so
    // the comparison is apples-to-apples: same lane count, same
    // stimulus cost, only the lane word differs. ISA arms run only
    // where the CPU supports them; their keys are written only when
    // measured.
    let mut bench_backend = |name: &str, lanes: usize, backend: SimdBackend| {
        let stats = c.bench_stats(name, |b| {
            let mut sim = EngineSim::with_backend(&prog, module, lanes, backend).unwrap();
            let mut state = 0x5EED;
            b.iter(|| {
                for &net in &in_nets {
                    for wi in 0..sim.words() {
                        sim.poke_word_at(net, wi, next_word(&mut state));
                    }
                }
                sim.step();
            });
        });
        lanes as f64 * 1e9 / stats.ns_per_iter
    };
    let engine512_vps = bench_backend("engine_512vectors_paper_chip", 512, SimdBackend::Portable);
    let avx2_vps =
        SimdBackend::Avx2.detected().then(|| bench_backend("engine_avx2_256vectors", 256, SimdBackend::Avx2));
    let avx512_vps = SimdBackend::Avx512
        .detected()
        .then(|| bench_backend("engine_avx512_512vectors", 512, SimdBackend::Avx512));

    let interp_vps = 1e9 / interp.ns_per_iter;
    let engine64_vps = 64.0 * 1e9 / engine64.ns_per_iter;
    let engine256_vps = 256.0 * 1e9 / engine256.ns_per_iter;
    let ratio64 = engine64_vps / interp_vps;
    let wide_ratio = engine256_vps / engine64_vps;
    println!("interpreter:  {interp_vps:>12.0} vectors/s");
    println!("engine u64:   {engine64_vps:>12.0} vectors/s  ({ratio64:.1}x interpreter)");
    println!("engine wide:  {engine256_vps:>12.0} vectors/s  ({wide_ratio:.2}x u64 backend)");
    println!("engine w512:  {engine512_vps:>12.0} vectors/s  ({:.2}x W256)", engine512_vps / engine256_vps);
    if let Some(vps) = avx2_vps {
        println!("engine avx2:  {vps:>12.0} vectors/s  ({:.2}x portable W256)", vps / engine256_vps);
    }
    if let Some(vps) = avx512_vps {
        println!(
            "engine avx512:{vps:>12.0} vectors/s  ({:.2}x portable W512, {:.2}x portable W256)",
            vps / engine512_vps,
            vps / engine256_vps
        );
    }

    // SCL characterization: engine-backed vs the interpreter path over
    // the same record set at the same stimulus-sample target (512 per
    // record on both backends).
    let scl_eng_stats = c.bench_stats("scl_warmup_engine", |b| b.iter(|| warm_scl(&mut Scl::new())));
    let scl_itp_stats =
        c.bench_stats("scl_warmup_interpreter", |b| b.iter(|| warm_scl(&mut Scl::interpreted())));
    let scl_engine_ms = scl_eng_stats.ns_per_iter / 1e6;
    let scl_interp_ms = scl_itp_stats.ns_per_iter / 1e6;
    let scl_ratio = scl_interp_ms / scl_engine_ms;
    println!("scl warm-up:  engine {scl_engine_ms:>9.1} ms   interpreter {scl_interp_ms:>9.1} ms   ({scl_ratio:.1}x)");

    // Parallel Pareto search, cold cache and warm rerun.
    let search_spec = MacroSpec {
        h: 16,
        w: 16,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 700.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    let mut scl = Scl::new();
    let search_cold_ms = time_ms(|| {
        let r = search(&search_spec, &mut scl);
        assert!(!r.frontier.is_empty());
    });
    let search_warm_ms = time_ms(|| {
        let r = search(&search_spec, &mut scl);
        assert!(!r.frontier.is_empty());
    });
    println!("search 16x16: cold {search_cold_ms:>9.1} ms   warm {search_warm_ms:>9.1} ms");

    // Disabled-telemetry overhead guard: the instrumented engine, with
    // collection off, must hold the baseline's u64 vector throughput to
    // within 2% (instrumentation cost = one relaxed atomic load per
    // settle, amortized over 64 lanes).
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let baseline = std::fs::read_to_string(baseline_path)
        .map(|text| syndcim_bench::parse_bench_artifact(&text))
        .unwrap_or_default();
    let telemetry_overhead_pct = baseline
        .get("engine64_vps")
        .map_or(0.0, |&base_vps| ((base_vps - engine64_vps) / base_vps * 100.0).max(0.0));
    println!("telemetry off-mode overhead vs baseline: {telemetry_overhead_pct:.2}% of engine64 vps");

    let mut keys: Vec<(&str, f64)> = vec![
        ("interpreter_vps", interp_vps),
        ("engine64_vps", engine64_vps),
        ("engine256_vps", engine256_vps),
        ("engine512_vps", engine512_vps),
        ("engine64_over_interpreter", ratio64),
        ("engine256_over_engine64", wide_ratio),
        ("scl_engine_ms", scl_engine_ms),
        ("scl_interpreter_ms", scl_interp_ms),
        ("scl_speedup", scl_ratio),
        ("search_cold_ms", search_cold_ms),
        ("search_warm_ms", search_warm_ms),
        ("telemetry_disabled_overhead_pct", telemetry_overhead_pct),
    ];
    if let Some(vps) = avx2_vps {
        keys.push(("engine_avx2_vps", vps));
        keys.push(("engine_avx2_over_engine256", vps / engine256_vps));
    }
    if let Some(vps) = avx512_vps {
        keys.push(("engine_avx512_vps", vps));
        keys.push(("engine_avx512_over_engine512", vps / engine512_vps));
        keys.push(("engine_avx512_over_engine256", vps / engine256_vps));
    }
    syndcim_bench::merge_bench_artifact(&["interpreter_", "engine", "scl_", "search_", "telemetry_"], &keys);

    assert!(
        telemetry_overhead_pct <= 2.0,
        "disabled telemetry must cost <= 2% of baseline engine64 throughput, lost {telemetry_overhead_pct:.2}%"
    );

    assert!(ratio64 >= 10.0, "u64 engine must deliver >= 10x vector throughput, got {ratio64:.1}x");
    assert!(
        wide_ratio >= 2.0,
        "256-lane wide backend must deliver >= 2x vector throughput over u64, got {wide_ratio:.2}x"
    );
    assert!(
        scl_ratio >= 2.0,
        "engine-backed SCL characterization must be >= 2x the interpreter path, got {scl_ratio:.1}x"
    );
    if let Some(vps) = avx2_vps {
        assert!(
            vps >= engine256_vps,
            "AVX2 must be >= portable at equal width: {vps:.0} vs {engine256_vps:.0} vectors/s"
        );
    }
    if let Some(vps) = avx512_vps {
        assert!(
            vps >= engine512_vps,
            "AVX-512 must be >= portable at equal width: {vps:.0} vs {engine512_vps:.0} vectors/s"
        );
        let simd_ratio = vps / engine256_vps;
        assert!(
            simd_ratio >= 1.5,
            "512-lane AVX-512 must deliver >= 1.5x the portable W256 vector throughput, got {simd_ratio:.2}x"
        );
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
