//! Interpreter vs. compiled-engine vector throughput on the paper
//! test-chip MAC netlist (64×64, MCR 2, INT1–8 + FP4/FP8).
//!
//! One "vector" is a full random input assignment stepped through one
//! clock cycle. The interpreter simulates one vector per step; the
//! engine simulates 64 (one per `u64` lane). The bench reports both
//! iteration times and the resulting per-vector throughput ratio, and
//! fails if the engine is not at least 10× faster — the acceptance bar
//! for the compiled backend.

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_core::{assemble, DesignChoice, MacroSpec};
use syndcim_engine::{BatchSim, Program};
use syndcim_netlist::NetId;
use syndcim_pdk::CellLibrary;
use syndcim_sim::{SimBackend, Simulator};

/// Cheap xorshift stimulus source (identical cost in both arms).
fn next_word(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn bench_vector_throughput(c: &mut Criterion) {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let prog = Program::compile(module, &lib).expect("paper test chip compiles");
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();

    let interp = c.bench_stats("interpreter_vector_paper_chip", |b| {
        let mut sim = Simulator::new(module, &lib).unwrap();
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke(net, next_word(&mut state) & 1 == 1);
            }
            Simulator::step(&mut sim);
        });
    });

    let engine = c.bench_stats("engine_64vectors_paper_chip", |b| {
        let mut sim = BatchSim::new(&prog, module, 64);
        let mut state = 0x5EED;
        b.iter(|| {
            for &net in &in_nets {
                sim.poke_word(net, next_word(&mut state));
            }
            sim.step();
        });
    });

    let interp_vps = 1e9 / interp.ns_per_iter;
    let engine_vps = 64.0 * 1e9 / engine.ns_per_iter;
    let ratio = engine_vps / interp_vps;
    println!("interpreter: {interp_vps:>12.0} vectors/s");
    println!("engine:      {engine_vps:>12.0} vectors/s  ({ratio:.1}x)");
    assert!(ratio >= 10.0, "engine must deliver >= 10x vector throughput, got {ratio:.1}x");
}

criterion_group!(benches, bench_vector_throughput);
criterion_main!(benches);
