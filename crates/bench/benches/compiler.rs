//! Compiler-runtime benchmarks: the "agile EDA framework" claim.
use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_core::{assemble, implement, search, DesignChoice, MacroSpec};
use syndcim_scl::Scl;
use syndcim_subckt::AdderTreeConfig;

fn small_spec() -> MacroSpec {
    MacroSpec {
        h: 16,
        w: 16,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}

fn bench_search(c: &mut Criterion) {
    c.bench_function("mso_search_16x16_warm_scl", |b| {
        let spec = small_spec();
        let mut scl = Scl::new();
        search(&spec, &mut scl); // warm the LUTs
        b.iter(|| search(&spec, &mut scl));
    });
}

fn bench_characterize(c: &mut Criterion) {
    c.bench_function("characterize_tree64", |b| {
        b.iter(|| {
            let mut scl = Scl::new();
            scl.adder_tree(64, AdderTreeConfig::default())
        });
    });
}

fn bench_assemble(c: &mut Criterion) {
    let lib = syndcim_pdk::CellLibrary::syn40();
    let spec = small_spec();
    c.bench_function("assemble_16x16", |b| {
        b.iter(|| assemble(&lib, &spec, &DesignChoice::default()));
    });
}

fn bench_flow(c: &mut Criterion) {
    let lib = syndcim_pdk::CellLibrary::syn40();
    let spec = small_spec();
    c.bench_function("implement_16x16_full_flow", |b| {
        b.iter(|| implement(&lib, &spec, &DesignChoice::default()).unwrap());
    });
}

criterion_group!(benches, bench_search, bench_characterize, bench_assemble, bench_flow);
criterion_main!(benches);
