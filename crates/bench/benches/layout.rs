//! Scale-tier layout bench: the three layout phases (parallel SDP
//! placement, CSR-sharded DRC, fused parasitic extraction) timed on the
//! 256×256 MCR-2 macro (~4×10⁵ nets), plus a 64×64 paper-chip arm and
//! one full `implement` wall-clock run.
//!
//! Beyond the timings merged into `BENCH_engine.json`, the bench
//! **asserts** the two layout-parallelism contracts:
//!
//! * determinism — placements and wire estimates are byte-identical
//!   across 1/2/8 workers on the scale tier (the same invariant
//!   `tests/layout_parallel.rs` pins on the paper chip);
//! * speedup — multi-threaded placement is ≥ 2× the single-thread arm
//!   on the scale tier. Only checked on machines with ≥ 4 cores
//!   (speedup is meaningless on the 1-core fallback; the determinism
//!   asserts still run everywhere).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_bench::{int_spec, merge_bench_artifact};
use syndcim_core::{assemble, implement, DesignChoice};
use syndcim_layout::{check_drc_threads, extract_wires_threads, place_threads, FloorplanConfig};
use syndcim_netlist::optimize;
use syndcim_pdk::{CellLibrary, OperatingPoint};

/// The scale-tier acceptance floor (matches `--bench lowering`).
const MIN_NETS: usize = 100_000;

/// Required multi-thread placement speedup over the single-thread arm.
const MIN_PLACE_SPEEDUP: f64 = 2.0;

fn bench_layout(c: &mut Criterion) {
    let lib = CellLibrary::syn40();
    let cfg = FloorplanConfig::default();

    // Scale tier, optimized exactly as the implement flow would before
    // placement.
    let mut mac = assemble(&lib, &int_spec(256), &DesignChoice::default());
    let _ = optimize(&mut mac.module, &lib);
    let module = &mac.module;
    let nets = module.net_count();
    assert!(nets >= MIN_NETS, "scale tier needs >= {MIN_NETS} nets, generated only {nets}");
    println!("scale tier: {} nets, {} instances", nets, module.instance_count());

    // --- determinism pinning across 1/2/8 workers --------------------
    let placement = place_threads(module, &lib, cfg, 1).expect("scale-tier placement");
    for t in [2, 8] {
        let p = place_threads(module, &lib, cfg, t).expect("scale-tier placement");
        assert!(p == placement, "placement must be bit-identical across workers (diverged at {t})");
    }
    check_drc_threads(module, &placement, 0).expect("scale-tier placement is DRC-clean");
    let wires = extract_wires_threads(module, &lib, &placement, 1).expect("scale-tier extraction");
    for t in [2, 8] {
        let w = extract_wires_threads(module, &lib, &placement, t).expect("scale-tier extraction");
        assert!(w == wires, "wire estimates must be bit-identical across workers (diverged at {t})");
    }
    println!("determinism: placement + extraction byte-identical across 1/2/8 workers");

    // --- phase wall times on the scale tier --------------------------
    let place_serial = c.bench_stats("layout_place_scale_serial", |b| {
        b.iter(|| place_threads(module, &lib, cfg, 1).expect("placement"))
    });
    let place_par = c.bench_stats("layout_place_scale_parallel", |b| {
        b.iter(|| place_threads(module, &lib, cfg, 0).expect("placement"))
    });
    let drc = c.bench_stats("layout_drc_scale", |b| {
        b.iter(|| check_drc_threads(module, &placement, 0).expect("DRC"))
    });
    let wires_stats = c.bench_stats("layout_wires_scale", |b| {
        b.iter(|| extract_wires_threads(module, &lib, &placement, 0).expect("extraction"))
    });

    // --- paper-chip arm (64×64) --------------------------------------
    let mut paper = assemble(&lib, &int_spec(64), &DesignChoice::default());
    let _ = optimize(&mut paper.module, &lib);
    let paper_place = c.bench_stats("layout_place_paper", |b| {
        b.iter(|| place_threads(&paper.module, &lib, cfg, 0).expect("paper-chip placement"))
    });

    // --- full implement wall clock on the scale tier -----------------
    // One timed run (the flow takes seconds; the 25%-with-sustained-warn
    // regression gate absorbs single-run noise).
    let t0 = Instant::now();
    let im = implement(&lib, &int_spec(256), &DesignChoice::default()).expect("scale-tier implement");
    let implement_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fmax = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.9));
    assert!(fmax > 0.0, "scale-tier sign-off must produce a usable fmax, got {fmax}");
    println!("implement 256x256: {implement_ms:.0} ms end-to-end, fmax {fmax:.0} MHz @ 0.9 V");
    drop(im);

    // --- multi-core speedup gate -------------------------------------
    let speedup = place_serial.ns_per_iter / place_par.ns_per_iter;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("placement speedup: {speedup:.2}x on {cores} core(s)");
    if cores >= 4 {
        assert!(
            speedup >= MIN_PLACE_SPEEDUP,
            "multi-threaded placement must be >= {MIN_PLACE_SPEEDUP}x the single-thread arm on the \
             scale tier, measured only {speedup:.2}x on {cores} cores"
        );
    } else {
        println!("skipping >={MIN_PLACE_SPEEDUP}x speedup assert: needs >= 4 cores, have {cores}");
    }

    merge_bench_artifact(
        &["layout_"],
        &[
            ("layout_place_scale_serial_ms", place_serial.ns_per_iter / 1e6),
            ("layout_place_scale_ms", place_par.ns_per_iter / 1e6),
            ("layout_place_speedup", speedup),
            ("layout_drc_scale_ms", drc.ns_per_iter / 1e6),
            ("layout_wires_scale_ms", wires_stats.ns_per_iter / 1e6),
            ("layout_place_paper_ms", paper_place.ns_per_iter / 1e6),
            ("layout_implement_scale_ms", implement_ms),
        ],
    );
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
