//! Reference vs. compiled power analysis on the sign-off path that
//! matters: the power-annotated shmoo grid.
//!
//! Both arms run the identical pipeline — compiled-STA pass/fail grid
//! plus one engine activity measurement — and differ only in how every
//! passing `(V, f)` point is converted to µW:
//!
//! * **reference** (`PowerBackend::Reference`, the seed behaviour):
//!   rebuild `PowerAnalyzer` (one connectivity walk), then one full
//!   module walk with per-instance `BTreeMap<String, _>` group churn
//!   per point;
//! * **compiled** (`PowerBackend::Compiled`, the product path): the
//!   macro's `CompiledPower` — carried since `implement`, built from
//!   the same lowering as the simulation and timing programs — resolves
//!   the whole grid in one `report_many` batch over shared toggle-rate
//!   columns.
//!
//! Fails if the compiled grid is not ≥ 3× the reference. A second pair
//! isolates the per-report cost on the 64×64 paper test-chip netlist
//! (both analyzers prebuilt). Numbers are merged into
//! `BENCH_engine.json` (override the path with `BENCH_ENGINE_JSON`),
//! preserving any keys already recorded there.
//!
//! Correctness is *not* re-checked here beyond a grid-equality assert —
//! the bit-identical pinning lives in
//! `tests/power_compiled_differential.rs` and the core shmoo
//! regression tests.

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_core::{
    assemble, implement, shmoo_with_power_on, DesignChoice, MacroSpec, PowerBackend, StaBackend,
};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::PowerAnalyzer;
use syndcim_sim::vectors::{random_ints, seeded_rng};

/// The annotated shmoo grid swept by both arms: denser than the Fig. 9
/// axes (28 voltages × 18 frequencies, low-leaning frequency range so
/// most functional points pass and therefore get a power report).
fn grid() -> (Vec<f64>, Vec<f64>) {
    let voltages: Vec<f64> = (0..28).map(|i| 0.56 + 0.025 * i as f64).collect();
    let freqs: Vec<f64> = (0..18).map(|i| 50.0 * 1.25f64.powi(i)).collect();
    (voltages, freqs)
}

fn bench_power(c: &mut Criterion) {
    let lib = CellLibrary::syn40();

    // --- end-to-end power shmoo on an implemented 16×16 macro --------
    let spec = MacroSpec {
        h: 16,
        w: 16,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    let im = implement(&lib, &spec, &DesignChoice::default()).expect("bench spec implements");
    let (voltages, freqs) = grid();
    let mut rng = seeded_rng(0x5075);
    let weights: Vec<Vec<i64>> = (0..4).map(|_| random_ints(&mut rng, 16, 4)).collect();
    let passes: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 16, 4)).collect();

    let reference = c.bench_stats("power_shmoo_grid_reference", |b| {
        b.iter(|| {
            shmoo_with_power_on(
                &im,
                &lib,
                &voltages,
                &freqs,
                4,
                &passes,
                &weights,
                StaBackend::Compiled,
                PowerBackend::Reference,
            )
            .expect("workload verifies")
        })
    });
    let compiled = c.bench_stats("power_shmoo_grid_compiled", |b| {
        b.iter(|| {
            shmoo_with_power_on(
                &im,
                &lib,
                &voltages,
                &freqs,
                4,
                &passes,
                &weights,
                StaBackend::Compiled,
                PowerBackend::Compiled,
            )
            .expect("workload verifies")
        })
    });
    let shmoo_ratio = reference.ns_per_iter / compiled.ns_per_iter;

    // Sanity: the two backends agree on the annotated grid (cheap spot
    // check; the exhaustive pinning lives in the test suites).
    let fast = shmoo_with_power_on(
        &im,
        &lib,
        &voltages,
        &freqs,
        4,
        &passes,
        &weights,
        StaBackend::Compiled,
        PowerBackend::Compiled,
    )
    .unwrap();
    let slow = shmoo_with_power_on(
        &im,
        &lib,
        &voltages,
        &freqs,
        4,
        &passes,
        &weights,
        StaBackend::Compiled,
        PowerBackend::Reference,
    )
    .unwrap();
    assert_eq!(fast.shmoo.pass, slow.shmoo.pass, "backends must produce identical pass maps");
    assert_eq!(fast.power_uw, slow.power_uw, "backends must produce identical power annotations");
    let annotated = fast.power_uw.iter().flatten().filter(|p| p.is_some()).count();

    // --- single-report cost on the paper chip, both prebuilt ---------
    let chip_spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &chip_spec, &DesignChoice::default());
    let pa = PowerAnalyzer::new(&mac.module, &lib).expect("paper chip is well-formed");
    let cp = pa.compile();
    let toggles: Vec<u64> = (0..mac.module.net_count() as u64).map(|i| (i * 7) % 129).collect();
    let corners: Vec<(f64, OperatingPoint)> =
        (0..16).map(|i| (800.0, OperatingPoint::at_voltage(0.6 + 0.04 * i as f64))).collect();

    let walk = c.bench_stats("power_report_reference_paper_chip", |b| {
        b.iter(|| {
            corners.iter().map(|&(f, op)| pa.from_activity(&toggles, 64, f, op).total_uw()).sum::<f64>()
        })
    });
    let soa = c.bench_stats("power_report_many_compiled_paper_chip", |b| {
        b.iter(|| cp.report_many(&toggles, 64, &corners).iter().map(|r| r.total_uw()).sum::<f64>())
    });
    let report_ratio = walk.ns_per_iter / soa.ns_per_iter;

    println!(
        "power shmoo ({annotated} annotated pts): reference {:>9.1} ms   compiled {:>9.3} ms   ({shmoo_ratio:.1}x)",
        reference.ns_per_iter / 1e6,
        compiled.ns_per_iter / 1e6
    );
    println!(
        "16-corner report batch (paper chip): reference {:>9.3} ms   compiled {:>9.3} ms   ({report_ratio:.1}x)",
        walk.ns_per_iter / 1e6,
        soa.ns_per_iter / 1e6
    );

    syndcim_bench::merge_bench_artifact(
        &["power_"],
        &[
            ("power_shmoo_reference_ms", reference.ns_per_iter / 1e6),
            ("power_shmoo_compiled_ms", compiled.ns_per_iter / 1e6),
            ("power_shmoo_speedup", shmoo_ratio),
            ("power_report_reference_ms", walk.ns_per_iter / 1e6),
            ("power_report_compiled_ms", soa.ns_per_iter / 1e6),
            ("power_report_speedup", report_ratio),
        ],
    );

    assert!(
        shmoo_ratio >= 3.0,
        "compiled power must deliver >= 3x on a power-annotated shmoo grid, got {shmoo_ratio:.1}x"
    );
}

criterion_group!(benches, bench_power);
criterion_main!(benches);
