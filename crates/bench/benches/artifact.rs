//! Artifact bench: `.scim` save/load on the 64×64 paper test chip,
//! versus the compile it replaces.
//!
//! Three numbers are measured and merged into `BENCH_engine.json`:
//!
//! * **`artifact_save_ms` / `artifact_load_ms`** — serializing the
//!   compiled trinity to container bytes and loading it back (the
//!   wiring-only path: no lowering, levelization or interning);
//! * **`artifact_load_speedup`** — compile time over load time, the
//!   compile-once/serve-many headline (higher is better, gated by
//!   `bench_diff`'s `_speedup` direction inference);
//! * **`artifact_size_bytes`** — the container size, which is fully
//!   deterministic (no timestamps, exact IEEE-754 bit patterns) and so
//!   doubles as a format-drift tripwire.
//!
//! A smoke pass asserts the loaded bundle answers fmax bit-identically
//! before any number is recorded.

use criterion::{criterion_group, criterion_main, Criterion};
use syndcim_bench::merge_bench_artifact;
use syndcim_core::{assemble, CompiledMacro, DesignChoice, MacroSpec};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::WireLoads;

fn bench_artifact(c: &mut Criterion) {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec::paper_test_chip();
    let mac = assemble(&lib, &spec, &DesignChoice::default());
    let module = &mac.module;
    let wires = WireLoads::zero(module.net_count());

    let compile = c.bench_stats("artifact_compile_64x64", |b| {
        b.iter(|| CompiledMacro::compile(module, &lib, &wires).expect("the paper chip compiles"))
    });

    let cm = CompiledMacro::compile(module, &lib, &wires).expect("the paper chip compiles");
    let bytes = cm.save_to_vec().expect("save never fails in memory");
    let save = c.bench_stats("artifact_save_64x64", |b| b.iter(|| cm.save_to_vec().unwrap()));
    let load =
        c.bench_stats("artifact_load_64x64", |b| b.iter(|| CompiledMacro::load_from_bytes(&bytes).unwrap()));

    // Smoke: the loaded bundle must answer bit-identically before its
    // load time is worth recording.
    let loaded = CompiledMacro::load_from_bytes(&bytes).unwrap();
    let op = OperatingPoint::at_voltage(0.9);
    assert_eq!(loaded.sta.fmax_mhz(op), cm.sta.fmax_mhz(op), "loaded fmax must be bit-identical");
    assert_eq!(loaded.save_to_vec().unwrap(), bytes, "save→load→save must be a byte fixpoint");

    let compile_ms = compile.ns_per_iter / 1e6;
    let save_ms = save.ns_per_iter / 1e6;
    let load_ms = load.ns_per_iter / 1e6;
    let speedup = compile.ns_per_iter / load.ns_per_iter;
    println!(
        "artifact: {} bytes, compile {compile_ms:.2} ms, save {save_ms:.2} ms, \
         load {load_ms:.2} ms ({speedup:.1}x faster than the compile it replaces)",
        bytes.len()
    );

    merge_bench_artifact(
        &["artifact_"],
        &[
            ("artifact_compile_64x64_ms", compile_ms),
            ("artifact_save_ms", save_ms),
            ("artifact_load_ms", load_ms),
            ("artifact_load_speedup", speedup),
            ("artifact_size_bytes", bytes.len() as f64),
        ],
    );
}

criterion_group!(benches, bench_artifact);
criterion_main!(benches);
