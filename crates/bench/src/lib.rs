//! # syndcim-bench — harness regenerating every paper table and figure
//!
//! Each binary regenerates one artifact of the paper's evaluation
//! (§IV): `table1`, `fig7`, `fig8`, `fig9`, `fig10`, `table2`, plus the
//! `ablation_csa` / `ablation_search` studies. Criterion benches cover
//! compiler runtime (the "agile EDA" claim). Run binaries with
//! `--release`; see EXPERIMENTS.md for recorded outputs.

use syndcim_core::{implement, ImplementedMacro, MacroSpec};
use syndcim_scl::Scl;

/// Search + implement the preferred design for `spec`, returning the
/// macro and the cell library (panics on infeasible specs — the bench
/// specs are known-good).
pub fn implement_best(spec: &MacroSpec) -> (ImplementedMacro, syndcim_pdk::CellLibrary) {
    let mut scl = Scl::new();
    let res = syndcim_core::search(spec, &mut scl);
    let best = res.best(spec).expect("bench specs are feasible");
    let lib = scl.cell_library().clone();
    let im = implement(&lib, spec, &best.choice).expect("flow succeeds");
    (im, lib)
}

/// Dense INT spec without FP units, at the given dimension.
pub fn int_spec(dim: usize) -> MacroSpec {
    MacroSpec {
        h: dim,
        w: dim,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}
