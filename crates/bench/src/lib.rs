//! # syndcim-bench — harness regenerating every paper table and figure
//!
//! Each binary regenerates one artifact of the paper's evaluation
//! (§IV): `table1`, `fig7`, `fig8`, `fig9`, `fig10`, `table2`, plus the
//! `ablation_csa` / `ablation_search` studies. Criterion benches cover
//! compiler runtime (the "agile EDA" claim). Run binaries with
//! `--release`; see EXPERIMENTS.md for recorded outputs.

use std::collections::BTreeMap;

use syndcim_core::{implement, ImplementedMacro, MacroSpec};
use syndcim_scl::Scl;

/// Path of the shared bench artifact (`BENCH_ENGINE_JSON` env override,
/// defaulting to `BENCH_engine.json` in the working directory).
pub fn bench_artifact_path() -> String {
    std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| "BENCH_engine.json".into())
}

/// Parse the flat `{"key": number, ...}` JSON the benches write. No
/// serde in this offline workspace — the format is fixed and ours, and
/// this is the single parser every producer/consumer shares (the
/// benches merge through [`merge_bench_artifact`], `bench_diff` reads
/// through here), so writer and reader cannot drift apart.
pub fn parse_bench_artifact(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim().trim_matches('"');
        if key.is_empty() {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

/// Merge `entries` into the shared bench artifact: keep whatever other
/// benches already wrote, drop stale keys matching any of this bench's
/// `stale_prefixes`, insert the fresh numbers, rewrite the file
/// (sorted by key).
pub fn merge_bench_artifact(stale_prefixes: &[&str], entries: &[(&str, f64)]) {
    let path = bench_artifact_path();
    let mut map = std::fs::read_to_string(&path).map(|s| parse_bench_artifact(&s)).unwrap_or_default();
    map.retain(|k, _| !stale_prefixes.iter().any(|p| k.starts_with(p)));
    for (key, value) in entries {
        map.insert(key.to_string(), *value);
    }
    let lines: Vec<String> = map.iter().map(|(k, v)| format!("  \"{k}\": {v:.3}")).collect();
    let json = format!("{{\n{}\n}}\n", lines.join(",\n"));
    std::fs::write(&path, json).expect("write bench artifact");
    println!("wrote {path}");
}

/// Search + implement the preferred design for `spec`, returning the
/// macro and the cell library (panics on infeasible specs — the bench
/// specs are known-good).
pub fn implement_best(spec: &MacroSpec) -> (ImplementedMacro, syndcim_pdk::CellLibrary) {
    let mut scl = Scl::new();
    let res = syndcim_core::search(spec, &mut scl);
    let best = res.best(spec).expect("bench specs are feasible");
    let lib = scl.cell_library().clone();
    let im = implement(&lib, spec, &best.choice).expect("flow succeeds");
    (im, lib)
}

/// Dense INT spec without FP units, at the given dimension.
pub fn int_spec(dim: usize) -> MacroSpec {
    MacroSpec {
        h: dim,
        w: dim,
        mcr: 2,
        int_precisions: vec![1, 2, 4, 8],
        fp_precisions: vec![],
        f_mac_mhz: 500.0,
        f_wu_mhz: 500.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    }
}
