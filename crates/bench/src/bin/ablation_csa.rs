//! Ablation (§III-B, Fig. 4–5): adder-tree topology sweep — delay, area
//! and energy per variant, with and without carry reorder.
use syndcim_scl::Scl;
use syndcim_subckt::{AdderTreeConfig, AdderTreeKind};

fn main() {
    let mut scl = Scl::new();
    println!("Adder-tree ablation (per-column tree, pre-layout SCL characterization)");
    println!(
        "{:<16}{:>6}{:>12}{:>12}{:>14}{:>10}",
        "variant", "H", "delay ps", "area um2", "energy fJ/cy", "reorder"
    );
    for h in [16usize, 32, 64, 128] {
        for kind in [
            AdderTreeKind::RcaTree,
            AdderTreeKind::CompressorCsa,
            AdderTreeKind::MixedCsa { fa_rounds: 1 },
            AdderTreeKind::MixedCsa { fa_rounds: 2 },
            AdderTreeKind::MixedCsa { fa_rounds: 3 },
            AdderTreeKind::MixedCsa { fa_rounds: 99 },
        ] {
            for reorder in [false, true] {
                let cfg = AdderTreeConfig { kind, carry_reorder: reorder, final_cpa: true };
                let r = scl.adder_tree(h, cfg);
                println!(
                    "{:<16}{:>6}{:>12.0}{:>12.0}{:>14.0}{:>10}",
                    kind.to_string(),
                    h,
                    r.delay_ps,
                    r.area_um2,
                    r.energy_fj_per_cycle,
                    reorder
                );
            }
        }
    }
    println!("\npaper shape: compressor tree cheapest in area/energy; FA substitution shortens the path; reorder never hurts");
}
