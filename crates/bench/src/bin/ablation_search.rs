//! Ablation (§III-C): contribution of each Algorithm-1 move to the
//! frontier — what disappears when a move is disallowed.
use syndcim_core::{pareto_frontier, search, DesignPoint, MacroSpec};
use syndcim_scl::Scl;

/// A predicate keeping the design points a disallowed move would not have produced.
type MoveFilter = Box<dyn Fn(&DesignPoint) -> bool>;

fn frontier_stats(points: &[DesignPoint]) -> (usize, f64, f64) {
    let f = pareto_frontier(points);
    let best_p = f.iter().map(|p| p.est.power_uw).fold(f64::INFINITY, f64::min);
    let best_a = f.iter().map(|p| p.est.area_um2).fold(f64::INFINITY, f64::min);
    (f.len(), best_p, best_a)
}

fn main() {
    // A tight clock exercises every move.
    let mut spec = MacroSpec::paper_test_chip();
    spec.f_mac_mhz = 850.0;
    let mut scl = Scl::new();
    let res = search(&spec, &mut scl);
    println!("Search-move ablation @ {} MHz ({} feasible points)", spec.f_mac_mhz, res.feasible.len());
    println!("{:<34}{:>10}{:>16}{:>16}", "allowed moves", "frontier", "min power uW", "min area um2");
    let all = frontier_stats(&res.feasible);
    println!("{:<34}{:>10}{:>16.0}{:>16.0}", "all moves", all.0, all.1, all.2);
    let cases: Vec<(&str, MoveFilter)> = vec![
        ("no tree retiming", Box::new(|p: &DesignPoint| !p.choice.tree_retimed)),
        ("no column split", Box::new(|p: &DesignPoint| p.choice.column_split == 1)),
        ("no register merging", Box::new(|p: &DesignPoint| p.choice.pipe_tree_sa)),
        ("no OFU negate retiming", Box::new(|p: &DesignPoint| !p.choice.ofu_negate_retimed)),
        ("no OFU extra pipeline", Box::new(|p: &DesignPoint| !p.choice.ofu_extra_pipe)),
    ];
    for (name, keep) in cases {
        let subset: Vec<DesignPoint> = res.feasible.iter().filter(|p| keep(p)).cloned().collect();
        if subset.is_empty() {
            println!("{:<34}{:>10}{:>16}{:>16}", name, 0, "-", "-");
            continue;
        }
        let s = frontier_stats(&subset);
        println!("{:<34}{:>10}{:>16.0}{:>16.0}", name, s.0, s.1, s.2);
    }
}
