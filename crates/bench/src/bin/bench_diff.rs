//! `bench_diff` — compare a freshly measured `BENCH_engine.json`
//! against the committed `BENCH_baseline.json` and print a per-key
//! regression table.
//!
//! Two modes:
//!
//! * **warn-only** (default, the PR-4 behaviour): always exits 0 —
//!   bench numbers on shared CI runners are noisy, so drift is flagged
//!   for a human instead of failing the build.
//! * **hard mode** (`--fail-on-regression <pct>`): exits non-zero, but
//!   only on **sustained** regressions — a key must be worse than the
//!   baseline beyond `<pct>` in the current run *and* already be listed
//!   in the committed warnings file (`BENCH_warnings.txt` by default,
//!   override with `--warnings <path>`). A first-time regression only
//!   warns and prints the line to commit; if the next run still
//!   regresses, the committed trajectory carries the warning and the
//!   build fails. One noisy run therefore never breaks CI, two
//!   consecutive ones do.
//!
//! ```text
//! cargo run --release -p syndcim-bench --bin bench_diff -- \
//!     BENCH_baseline.json BENCH_engine.json \
//!     --fail-on-regression 25 --warnings BENCH_warnings.txt
//! ```
//!
//! Baseline-refresh cadence (see README): refresh `BENCH_baseline.json`
//! (and clear the matching `BENCH_warnings.txt` lines) whenever a PR
//! intentionally changes a measured number, and opportunistically when
//! the table drifts ≥ two keys in the *improved* direction — stale
//! baselines hide real regressions behind old slack.
//!
//! Direction is inferred from the key name: `*_ms` keys are
//! lower-is-better (times), `*_vps` / `*_speedup` / `*_over_*` /
//! `*_reduction*` keys are higher-is-better (throughputs and ratios).
//! Keys present on only one side are listed as added/removed.

use std::collections::BTreeSet;

use syndcim_bench::parse_bench_artifact;

/// Relative change beyond which a key is flagged in warn-only mode.
const WARN_THRESHOLD: f64 = 0.10;

/// `true` when a larger value of `key` is better.
fn higher_is_better(key: &str) -> bool {
    key.ends_with("_vps") || key.ends_with("_speedup") || key.contains("_over_") || key.contains("_reduction")
}

/// What a compared key amounts to under a threshold and the committed
/// warning trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Within tolerance.
    Ok,
    /// Beyond tolerance in the good direction.
    Improved,
    /// Regressed for the first time: warn, ask for a committed entry.
    FirstRegression,
    /// Regressed *and* already warned in the committed trajectory.
    Sustained,
}

/// Classify one key given its baseline/fresh values, the tolerance and
/// the committed warning set.
fn verdict(key: &str, base: f64, now: f64, threshold: f64, warned: &BTreeSet<String>) -> Verdict {
    let delta = if base != 0.0 { (now - base) / base } else { 0.0 };
    let regressed = if higher_is_better(key) { delta < -threshold } else { delta > threshold };
    if regressed {
        if warned.contains(key) {
            Verdict::Sustained
        } else {
            Verdict::FirstRegression
        }
    } else if delta.abs() <= threshold {
        Verdict::Ok
    } else {
        Verdict::Improved
    }
}

/// Parse the committed warnings file: one key per line, `#` comments
/// and blank lines ignored.
fn parse_warnings(text: &str) -> BTreeSet<String> {
    text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).map(str::to_string).collect()
}

/// Warned keys absent from the baseline or the fresh artifact — armed
/// gates that no longer measure anything (renamed key / bench stopped
/// merging). Hard mode refuses to pass while any exist.
fn missing_warned_keys(
    warned: &BTreeSet<String>,
    baseline: &std::collections::BTreeMap<String, f64>,
    fresh: &std::collections::BTreeMap<String, f64>,
) -> Vec<String> {
    warned.iter().filter(|k| !baseline.contains_key(*k) || !fresh.contains_key(*k)).cloned().collect()
}

/// What an unreadable baseline/fresh artifact amounts to, given the
/// committed warning trajectory. A missing artifact with no armed
/// warnings is a benign "nothing to compare"; with armed warnings it
/// means every warned key "no longer exists" in that artifact — the
/// gates cannot be checked, so hard mode must fail rather than silently
/// pass, and warn-only mode must say so loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnreadableVerdict {
    /// No warnings armed: comparing nothing is fine, exit 0 quietly.
    NothingToCompare,
    /// Armed warnings, warn-only mode: print the uncheckable keys.
    WarnUncheckable,
    /// Armed warnings, hard mode: fail the run.
    FailUncheckable,
}

fn unreadable_verdict(warned: &BTreeSet<String>, hard_mode: bool) -> UnreadableVerdict {
    match (warned.is_empty(), hard_mode) {
        (true, _) => UnreadableVerdict::NothingToCompare,
        (false, false) => UnreadableVerdict::WarnUncheckable,
        (false, true) => UnreadableVerdict::FailUncheckable,
    }
}

struct Args {
    baseline_path: String,
    fresh_path: String,
    /// `Some(relative threshold)` in hard mode.
    fail_threshold: Option<f64>,
    warnings_path: String,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        baseline_path: "BENCH_baseline.json".into(),
        fresh_path: "BENCH_engine.json".into(),
        fail_threshold: None,
        warnings_path: "BENCH_warnings.txt".into(),
    };
    let mut positional = 0usize;
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--fail-on-regression" => {
                let pct = argv.next().ok_or("--fail-on-regression needs a percentage")?;
                let pct: f64 = pct.parse().map_err(|_| format!("bad percentage `{pct}`"))?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err(format!("--fail-on-regression must be positive, got {pct}"));
                }
                args.fail_threshold = Some(pct / 100.0);
            }
            "--warnings" => {
                args.warnings_path = argv.next().ok_or("--warnings needs a path")?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => {
                match positional {
                    0 => args.baseline_path = path.to_string(),
                    1 => args.fresh_path = path.to_string(),
                    _ => return Err(format!("unexpected extra argument `{path}`")),
                }
                positional += 1;
            }
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            eprintln!(
                "usage: bench_diff [BASELINE] [FRESH] [--fail-on-regression <pct>] [--warnings <path>]"
            );
            std::process::exit(2);
        }
    };
    let threshold = args.fail_threshold.unwrap_or(WARN_THRESHOLD);

    // The committed warning trajectory is loaded first: an unreadable
    // artifact below means every warned key "no longer exists" on that
    // side, which must never disarm the gates silently.
    let warned = std::fs::read_to_string(&args.warnings_path).map(|s| parse_warnings(&s)).unwrap_or_default();
    let unreadable = |what: &str, path: &str, e: &std::io::Error| match unreadable_verdict(
        &warned,
        args.fail_threshold.is_some(),
    ) {
        UnreadableVerdict::NothingToCompare => {
            println!("bench_diff: no {what} at {path} ({e}) — nothing to compare, exiting 0");
        }
        UnreadableVerdict::WarnUncheckable => {
            println!(
                "bench_diff: ERROR — no {what} at {path} ({e}), so {} armed warning key(s) \
                     cannot be checked: {}",
                warned.len(),
                warned.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            );
        }
        UnreadableVerdict::FailUncheckable => {
            println!(
                "bench_diff: ERROR — no {what} at {path} ({e}), so {} armed warning key(s) \
                     cannot be checked: {}",
                warned.len(),
                warned.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            );
            println!("bench_diff: FAILING — armed gates must not disarm silently");
            std::process::exit(1);
        }
    };
    let baseline = match std::fs::read_to_string(&args.baseline_path) {
        Ok(s) => parse_bench_artifact(&s),
        Err(e) => {
            unreadable("baseline", &args.baseline_path, &e);
            return;
        }
    };
    let fresh = match std::fs::read_to_string(&args.fresh_path) {
        Ok(s) => parse_bench_artifact(&s),
        Err(e) => {
            unreadable("fresh artifact", &args.fresh_path, &e);
            return;
        }
    };

    let mode = match args.fail_threshold {
        Some(t) => format!("hard mode, fail sustained regressions beyond ±{:.0}%", t * 100.0),
        None => format!("warn-only at ±{:.0}%", threshold * 100.0),
    };
    println!("bench_diff: {} (baseline) vs {} (fresh), {mode}", args.baseline_path, args.fresh_path);
    println!("{:<38} {:>12} {:>12} {:>9}  verdict", "key", "baseline", "fresh", "delta");
    let mut first_warnings: Vec<&String> = Vec::new();
    let mut sustained: Vec<&String> = Vec::new();
    for (key, &base) in &baseline {
        let Some(&now) = fresh.get(key) else {
            println!("{key:<38} {base:>12.3} {:>12} {:>9}  (removed)", "-", "-");
            continue;
        };
        let delta = if base != 0.0 { (now - base) / base } else { 0.0 };
        let v = verdict(key, base, now, threshold, &warned);
        let label = match v {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::FirstRegression => {
                first_warnings.push(key);
                "⚠ REGRESSED (first)"
            }
            Verdict::Sustained => {
                sustained.push(key);
                "✗ REGRESSED (sustained)"
            }
        };
        println!("{key:<38} {base:>12.3} {now:>12.3} {:>+8.1}%  {label}", delta * 100.0);
    }
    for key in fresh.keys().filter(|k| !baseline.contains_key(*k)) {
        println!("{key:<38} {:>12} {:>12.3} {:>9}  (new key)", "-", fresh[key], "-");
    }
    // Recovered keys: warned in the committed trajectory but no longer
    // regressed — stale entries a baseline refresh should drop.
    let recovered: Vec<&String> = warned
        .iter()
        .filter(|k| {
            baseline.get(k.as_str()).zip(fresh.get(k.as_str())).is_some_and(|(&b, &n)| {
                !matches!(verdict(k, b, n, threshold, &warned), Verdict::Sustained | Verdict::FirstRegression)
            })
        })
        .collect();
    if !recovered.is_empty() {
        println!(
            "bench_diff: recovered since the committed warn ({}); remove from {} when refreshing",
            recovered.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", "),
            args.warnings_path
        );
    }
    // A warned key absent from either artifact means the gate it armed
    // no longer measures anything — renamed key or broken bench. Never
    // let that disarm silently: in hard mode it fails the run.
    let missing_warned = missing_warned_keys(&warned, &baseline, &fresh);
    if !missing_warned.is_empty() {
        println!(
            "bench_diff: warned key(s) missing from the artifacts ({}) — renamed or no longer \
             benched; fix the bench or remove the entry from {}",
            missing_warned.join(", "),
            args.warnings_path
        );
        if args.fail_threshold.is_some() {
            println!("bench_diff: FAILING — an armed gate would otherwise disarm silently");
            std::process::exit(1);
        }
    }

    if !first_warnings.is_empty() {
        println!(
            "bench_diff: {} key(s) regressed for the first time — not failing; if the next run \
             still regresses, commit the key(s) to {} to arm the gate:",
            first_warnings.len(),
            args.warnings_path
        );
        for key in &first_warnings {
            println!("    {key}");
        }
    }
    match (&args.fail_threshold, sustained.is_empty()) {
        (_, true) if first_warnings.is_empty() => {
            println!("bench_diff: no regressions beyond {:.0}%", threshold * 100.0);
        }
        (Some(_), false) => {
            println!(
                "bench_diff: FAILING — {} sustained regression(s) beyond {:.0}% (warned in the \
                 committed trajectory and still regressed): {}",
                sustained.len(),
                threshold * 100.0,
                sustained.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(1);
        }
        (None, false) => {
            println!(
                "bench_diff: {} sustained regression(s) — warn-only mode, not failing; \
                 refresh BENCH_baseline.json if the change is intentional",
                sustained.len()
            );
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_format() {
        let text = "{\n  \"engine64_vps\": 123456,\n  \"sta_shmoo_compiled_ms\": 1.5,\n}\n";
        let m = parse_bench_artifact(text);
        assert_eq!(m.len(), 2);
        assert_eq!(m["engine64_vps"], 123456.0);
        assert_eq!(m["sta_shmoo_compiled_ms"], 1.5);
    }

    #[test]
    fn direction_inference() {
        assert!(higher_is_better("engine64_vps"));
        assert!(higher_is_better("power_shmoo_speedup"));
        assert!(higher_is_better("engine64_over_interpreter"));
        assert!(higher_is_better("intern_reduction_over_strings"));
        assert!(!higher_is_better("scl_engine_ms"));
        assert!(!higher_is_better("lowering_256x256_ms"));
    }

    #[test]
    fn warnings_file_ignores_comments_and_blanks() {
        let w = parse_warnings("# noisy keys\n\n  engine64_vps  \nsta_grid_ms\n");
        assert_eq!(w.len(), 2);
        assert!(w.contains("engine64_vps") && w.contains("sta_grid_ms"));
    }

    #[test]
    fn sustained_requires_a_committed_warn() {
        let warned: BTreeSet<String> = ["slow_ms".to_string()].into();
        // 50% slower on a lower-is-better key at 25% tolerance:
        assert_eq!(verdict("slow_ms", 10.0, 15.0, 0.25, &warned), Verdict::Sustained);
        assert_eq!(verdict("other_ms", 10.0, 15.0, 0.25, &warned), Verdict::FirstRegression);
        // Within tolerance or improved never fails, warned or not.
        assert_eq!(verdict("slow_ms", 10.0, 11.0, 0.25, &warned), Verdict::Ok);
        assert_eq!(verdict("slow_ms", 10.0, 5.0, 0.25, &warned), Verdict::Improved);
        // Direction flips for higher-is-better keys.
        assert_eq!(verdict("fast_vps", 100.0, 60.0, 0.25, &BTreeSet::new()), Verdict::FirstRegression);
        assert_eq!(verdict("fast_vps", 100.0, 160.0, 0.25, &BTreeSet::new()), Verdict::Improved);
    }

    #[test]
    fn missing_warned_keys_are_flagged_from_either_side() {
        let warned: BTreeSet<String> =
            ["gone_ms".to_string(), "here_ms".to_string(), "fresh_only_ms".to_string()].into();
        let baseline: std::collections::BTreeMap<String, f64> =
            [("here_ms".to_string(), 1.0), ("gone_ms".to_string(), 2.0)].into();
        let fresh: std::collections::BTreeMap<String, f64> =
            [("here_ms".to_string(), 1.0), ("fresh_only_ms".to_string(), 3.0)].into();
        let missing = missing_warned_keys(&warned, &baseline, &fresh);
        assert_eq!(missing, vec!["fresh_only_ms".to_string(), "gone_ms".to_string()]);
    }

    #[test]
    fn unreadable_artifacts_never_silently_disarm_warned_keys() {
        let armed: BTreeSet<String> = ["engine64_vps".to_string()].into();
        // No warnings armed: a missing artifact is a benign no-op.
        assert_eq!(unreadable_verdict(&BTreeSet::new(), false), UnreadableVerdict::NothingToCompare);
        assert_eq!(unreadable_verdict(&BTreeSet::new(), true), UnreadableVerdict::NothingToCompare);
        // Armed warnings: warn-only mode prints the error, hard mode fails.
        assert_eq!(unreadable_verdict(&armed, false), UnreadableVerdict::WarnUncheckable);
        assert_eq!(unreadable_verdict(&armed, true), UnreadableVerdict::FailUncheckable);
    }

    #[test]
    fn arg_parsing_accepts_flags_anywhere() {
        let a = parse_args(
            ["base.json", "--fail-on-regression", "25", "fresh.json", "--warnings", "w.txt"]
                .map(String::from)
                .into_iter(),
        )
        .unwrap();
        assert_eq!(a.baseline_path, "base.json");
        assert_eq!(a.fresh_path, "fresh.json");
        assert_eq!(a.fail_threshold, Some(0.25));
        assert_eq!(a.warnings_path, "w.txt");
        assert!(parse_args(["--fail-on-regression"].map(String::from).into_iter()).is_err());
        assert!(parse_args(["--fail-on-regression", "-5"].map(String::from).into_iter()).is_err());
        assert!(parse_args(["--bogus"].map(String::from).into_iter()).is_err());
        // Defaults.
        let d = parse_args(std::iter::empty()).unwrap();
        assert_eq!(d.baseline_path, "BENCH_baseline.json");
        assert_eq!(d.fresh_path, "BENCH_engine.json");
        assert_eq!(d.fail_threshold, None);
        assert_eq!(d.warnings_path, "BENCH_warnings.txt");
    }
}
