//! `bench_diff` — compare a freshly measured `BENCH_engine.json`
//! against the committed `BENCH_baseline.json` and print a per-key
//! regression table.
//!
//! Seeds the ROADMAP "perf trajectory tracking" item: CI regenerates
//! the bench artifact every run but until now nothing diffed
//! consecutive numbers — regressions only surfaced when they crossed an
//! in-bench ratio assert. This tool is **warn-only** (always exits 0):
//! bench numbers on shared CI runners are noisy, so it flags drift for
//! a human instead of failing the build.
//!
//! ```text
//! cargo run --release -p syndcim-bench --bin bench_diff -- \
//!     BENCH_baseline.json BENCH_engine.json
//! ```
//!
//! Direction is inferred from the key name: `*_ms` keys are
//! lower-is-better (times), `*_vps` / `*_speedup` / `*_over_*` keys are
//! higher-is-better (throughputs and ratios). Regressions beyond
//! [`WARN_THRESHOLD`] are marked `⚠ REGRESSED`; keys present on only
//! one side are listed as added/removed.

use syndcim_bench::parse_bench_artifact;

/// Relative change beyond which a key is flagged as regressed.
const WARN_THRESHOLD: f64 = 0.10;

/// `true` when a larger value of `key` is better.
fn higher_is_better(key: &str) -> bool {
    key.ends_with("_vps") || key.ends_with("_speedup") || key.contains("_over_")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_engine.json".into());

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => parse_bench_artifact(&s),
        Err(e) => {
            println!("bench_diff: no baseline at {baseline_path} ({e}) — nothing to compare, exiting 0");
            return;
        }
    };
    let fresh = match std::fs::read_to_string(&fresh_path) {
        Ok(s) => parse_bench_artifact(&s),
        Err(e) => {
            println!("bench_diff: no fresh artifact at {fresh_path} ({e}) — nothing to compare, exiting 0");
            return;
        }
    };

    println!(
        "bench_diff: {baseline_path} (baseline) vs {fresh_path} (fresh), warn at ±{:.0}%",
        WARN_THRESHOLD * 100.0
    );
    println!("{:<38} {:>12} {:>12} {:>9}  verdict", "key", "baseline", "fresh", "delta");
    let mut regressions = 0usize;
    for (key, &base) in &baseline {
        let Some(&now) = fresh.get(key) else {
            println!("{key:<38} {base:>12.3} {:>12} {:>9}  (removed)", "-", "-");
            continue;
        };
        let delta = if base != 0.0 { (now - base) / base } else { 0.0 };
        // Improvement direction depends on what the key measures.
        let regressed = if higher_is_better(key) { delta < -WARN_THRESHOLD } else { delta > WARN_THRESHOLD };
        let verdict = if regressed {
            regressions += 1;
            "⚠ REGRESSED"
        } else if delta.abs() <= WARN_THRESHOLD {
            "ok"
        } else {
            "improved"
        };
        println!("{key:<38} {base:>12.3} {now:>12.3} {:>+8.1}%  {verdict}", delta * 100.0);
    }
    for key in fresh.keys().filter(|k| !baseline.contains_key(*k)) {
        println!("{key:<38} {:>12} {:>12.3} {:>9}  (new key)", "-", fresh[key], "-");
    }

    if regressions > 0 {
        println!(
            "bench_diff: {regressions} key(s) regressed beyond {:.0}% — warn-only, not failing the build; \
             refresh BENCH_baseline.json if the change is intentional",
            WARN_THRESHOLD * 100.0
        );
    } else {
        println!("bench_diff: no regressions beyond {:.0}%", WARN_THRESHOLD * 100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_format() {
        let text = "{\n  \"engine64_vps\": 123456,\n  \"sta_shmoo_compiled_ms\": 1.5,\n}\n";
        let m = parse_bench_artifact(text);
        assert_eq!(m.len(), 2);
        assert_eq!(m["engine64_vps"], 123456.0);
        assert_eq!(m["sta_shmoo_compiled_ms"], 1.5);
    }

    #[test]
    fn direction_inference() {
        assert!(higher_is_better("engine64_vps"));
        assert!(higher_is_better("power_shmoo_speedup"));
        assert!(higher_is_better("engine64_over_interpreter"));
        assert!(!higher_is_better("scl_engine_ms"));
    }
}
