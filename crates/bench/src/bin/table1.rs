//! Table I — feature comparison of emerging CIM compilers.
use syndcim_core::published::table1_compilers;

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

fn main() {
    println!("Table I: comparison with emerging CIM compilers");
    println!(
        "{:<22}{:<10}{:>8}{:>8}{:>6}{:>6}{:>12}{:>12}{:>9}",
        "compiler", "venue", "digital", "layout", "FP", "MCR", "perf-aware", "multi-spec", "silicon"
    );
    for r in table1_compilers() {
        println!(
            "{:<22}{:<10}{:>8}{:>8}{:>6}{:>6}{:>12}{:>12}{:>9}",
            r.name,
            r.venue,
            tick(r.digital),
            tick(r.layout_generation),
            tick(r.fp_support),
            tick(r.mcr_aware),
            tick(r.performance_aware),
            tick(r.multi_spec_synthesis),
            tick(r.silicon_validated),
        );
    }
}
