//! Fig. 7 — post-layout energy efficiency across precisions and
//! dimensions (INT4, INT8, FP8, BF16 on 32x32 … 256x256 macros).
use syndcim_bench::{implement_best, int_spec};
use syndcim_core::{measure_fp, measure_int, MacroSpec};
use syndcim_pdk::OperatingPoint;
use syndcim_sim::vectors::{random_fp, random_ints, seeded_rng};
use syndcim_sim::{FpFormat, FpValue};

/// Cluster exponents near the bias (normalized NN activations): uniform
/// random exponents would flush almost every mantissa during alignment
/// and make FP look artificially cheap.
fn clustered(vals: Vec<FpValue>, fmt: FpFormat) -> Vec<FpValue> {
    vals.into_iter()
        .map(|v| {
            if v.is_zero() {
                v
            } else {
                let e = (fmt.bias() - 1 + (v.exp_field % 4) as i32).clamp(1, fmt.max_exp_field() as i32);
                FpValue { exp_field: e as u32, ..v }
            }
        })
        .collect()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let dims: &[usize] = if full { &[32, 64, 128, 256] } else { &[32, 64, 128] };
    let op = OperatingPoint::at_voltage(0.9);
    let f = 500.0;
    let mut rng = seeded_rng(42);
    println!("Fig. 7: post-layout energy efficiency (TOPS/W at the stated precision), dense operands @0.9V");
    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>14}{:>14}",
        "dim", "INT4", "INT8", "FP8", "BF16", "FP8/INT4 pwr", "BF16/INT8 pwr"
    );
    for &dim in dims {
        // Integer macro (no alignment unit).
        let (im_int, lib) = implement_best(&int_spec(dim));
        let mut eff = std::collections::BTreeMap::new();
        let mut pwr = std::collections::BTreeMap::new();
        for pa in [4u32, 8] {
            let ch = dim / pa as usize;
            let w: Vec<Vec<i64>> = (0..ch).map(|_| random_ints(&mut rng, dim, pa)).collect();
            let a: Vec<Vec<i64>> = (0..4).map(|_| random_ints(&mut rng, dim, pa)).collect();
            let m = measure_int(&im_int, &lib, pa, &a, &w, op, f).expect("verified");
            eff.insert(format!("INT{pa}"), m.tops_per_w);
            pwr.insert(format!("INT{pa}"), m.power.total_uw());
        }
        // FP8 macro.
        let mut s8 = int_spec(dim);
        s8.fp_precisions = vec![FpFormat::FP8];
        let (im_fp8, lib8) = implement_best(&s8);
        {
            let ch = dim / 8;
            let w: Vec<Vec<_>> =
                (0..ch).map(|_| clustered(random_fp(&mut rng, dim, FpFormat::FP8), FpFormat::FP8)).collect();
            let a: Vec<Vec<_>> =
                (0..4).map(|_| clustered(random_fp(&mut rng, dim, FpFormat::FP8), FpFormat::FP8)).collect();
            let m = measure_fp(&im_fp8, &lib8, &a, &w, op, f).expect("verified");
            eff.insert("FP8".into(), m.tops_per_w);
            pwr.insert("FP8".into(), m.power.total_uw());
        }
        // BF16 macro (16-column channels).
        let mut s16 =
            MacroSpec { int_precisions: vec![8], fp_precisions: vec![FpFormat::BF16], ..int_spec(dim) };
        s16.w = dim.max(16);
        let (im_bf, lib16) = implement_best(&s16);
        {
            let ch = s16.w / 16;
            let w: Vec<Vec<_>> = (0..ch)
                .map(|_| clustered(random_fp(&mut rng, dim, FpFormat::BF16), FpFormat::BF16))
                .collect();
            let a: Vec<Vec<_>> =
                (0..4).map(|_| clustered(random_fp(&mut rng, dim, FpFormat::BF16), FpFormat::BF16)).collect();
            let m = measure_fp(&im_bf, &lib16, &a, &w, op, f).expect("verified");
            eff.insert("BF16".into(), m.tops_per_w);
            pwr.insert("BF16".into(), m.power.total_uw());
        }
        println!(
            "{:<10}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>13.2}x{:>13.2}x",
            format!("{dim}x{dim}"),
            eff["INT4"],
            eff["INT8"],
            eff["FP8"],
            eff["BF16"],
            pwr["FP8"] / pwr["INT4"],
            pwr["BF16"] / pwr["INT8"],
        );
    }
    println!(
        "\npaper shape: efficiency rises with dimension; FP8 ~= +10% power vs INT4, BF16 ~= +20% vs INT8"
    );
}
