//! Weight-update study (§II-B bitcell variants): write energy per bit,
//! write bandwidth and the update-frequency limit for each memory cell.
use syndcim_core::{implement, measure_weight_update, DesignChoice, MacroSpec};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_subckt::BitcellKind;

fn main() {
    let lib = CellLibrary::syn40();
    let spec = MacroSpec {
        h: 32,
        w: 32,
        mcr: 2,
        int_precisions: vec![1, 2, 4],
        fp_precisions: vec![],
        f_mac_mhz: 400.0,
        f_wu_mhz: 400.0,
        vdd_v: 0.9,
        ppa: Default::default(),
    };
    println!("Weight-update study: 32x32, MCR=2, writes at 400 MHz @0.9V (all bits verified)");
    println!(
        "{:<12}{:>16}{:>12}{:>16}{:>18}",
        "bitcell", "fJ/bit (mean)", "± std", "write Gb/s", "write setup ps"
    );
    for bitcell in BitcellKind::ALL {
        let choice = DesignChoice { bitcell: *bitcell, ..DesignChoice::default() };
        let im = implement(&lib, &spec, &choice).expect("flow");
        let m =
            measure_weight_update(&im, &lib, OperatingPoint::at_voltage(0.9), 400.0, 7).expect("verified");
        let setup = lib.cell(lib.id_of(bitcell.cell_kind())).seq.unwrap().setup_ps;
        println!(
            "{:<12}{:>16.1}{:>12.2}{:>16.1}{:>18.0}",
            bitcell.to_string(),
            m.energy_per_bit_fj,
            m.energy_per_bit_std_fj,
            m.bandwidth_gbps,
            setup
        );
    }
    println!("\npaper shape: the 8T latch is the robust fast-write cell; the 12T OAI cell trades area/write speed for design feasibility");
}
