//! Table II — measured test macro vs state-of-the-art DCIM silicon
//! (INT4, 12.5% input bit density, 50% weight sparsity, 25C).
use syndcim_bench::implement_best;
use syndcim_core::published::{paper_anchors, table2_references};
use syndcim_core::{measure_int, MacroSpec};
use syndcim_pdk::OperatingPoint;
use syndcim_sim::vectors::{ints_with_bit_density, seeded_rng, sparse_ints};

fn main() {
    let spec = MacroSpec::paper_test_chip();
    let (im, lib) = implement_best(&spec);
    let mut rng = seeded_rng(7);
    // Table II condition: low-voltage high-efficiency corner.
    let op = OperatingPoint::at_voltage(0.7);
    let f = im.fmax_mhz(&lib, op).floor();
    let ch = spec.w / 4;
    let weights: Vec<Vec<i64>> = (0..ch).map(|_| sparse_ints(&mut rng, spec.h, 4, 0.5)).collect();
    let acts: Vec<Vec<i64>> = (0..6).map(|_| ints_with_bit_density(&mut rng, spec.h, 4, 0.125)).collect();
    let m = measure_int(&im, &lib, 4, &acts, &weights, op, f).expect("verified");

    println!("Table II: test macro vs published DCIM silicon (1bx1b-normalized)");
    println!("{:<28}{:>6}{:>12}{:>14}{:>14}", "design", "node", "fmax MHz", "TOPS/W (1b)", "TOPS/mm2 (1b)");
    for r in table2_references() {
        println!(
            "{:<28}{:>6}{:>12.0}{:>14.0}{:>14.1}",
            r.name, r.node_nm, r.fmax_mhz, r.tops_per_w_1b, r.tops_per_mm2_1b
        );
    }
    let f12 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(1.2));
    let tput = syndcim_power::MacThroughput {
        h: spec.h,
        w: spec.w,
        act: syndcim_sim::Precision::Int(1),
        weight: syndcim_sim::Precision::Int(1),
    };
    let area_eff = syndcim_power::tops_per_mm2(tput.tops(f12), im.placement.die_area_um2());
    println!(
        "{:<28}{:>6}{:>12.0}{:>14.0}{:>14.1}   <-- this reproduction",
        "SynDCIM (this run)", 40, f12, m.tops_per_w_1b, area_eff
    );
    let a = paper_anchors();
    println!(
        "\npaper-reported chip: {:.0} TOPS/W (1b), {:.1} TOPS/mm2 (1b), measured @ {} checked outputs",
        a.tops_per_w_1b, a.tops_per_mm2_1b, m.checked_outputs
    );
    println!("measurement: INT4, input bit density 12.5%, weight sparsity 50%, {f:.0} MHz @0.7V, 25C");
}
