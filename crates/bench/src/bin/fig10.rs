//! Fig. 10 — the "die photo": floorplan render of the implemented macro.
use syndcim_bench::implement_best;
use syndcim_core::published::paper_anchors;
use syndcim_core::MacroSpec;
use syndcim_layout::{render_ascii, render_svg};

fn main() {
    let spec = MacroSpec::paper_test_chip();
    let (im, _lib) = implement_best(&spec);
    let svg = render_svg(&im.mac.module, &im.placement, 40_000);
    let path = "target/fig10_die.svg";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &svg).expect("write svg");
    println!("Fig. 10: floorplan written to {path} ({} bytes)", svg.len());
    println!("{}", render_ascii(&im.mac.module, &im.placement, 96, 24));
    let a = paper_anchors();
    println!(
        "die {:.0}x{:.0} um, area {:.3} mm2 (paper: 455x246 um, {:.3} mm2), utilization {:.0}%",
        im.placement.die.w_um,
        im.placement.die.h_um,
        im.area_mm2(),
        a.area_mm2,
        im.placement.utilization * 100.0
    );
}
