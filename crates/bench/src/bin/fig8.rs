//! Fig. 8 — searched Pareto frontier vs fixed-template baselines for the
//! spec H=W=64, MCR=2, INT4/8 + FP4/8, 800 MHz @ 0.9 V.
use syndcim_core::{implement, search, BaselineKind, MacroSpec, PpaWeights};
use syndcim_scl::Scl;

fn main() {
    let spec = MacroSpec::paper_test_chip();
    let mut scl = Scl::new();
    let res = search(&spec, &mut scl);
    let lib = scl.cell_library().clone();
    println!(
        "Fig. 8: MSO search over H=W=64, MCR=2, INT4/8+FP4/8, 800 MHz @0.9V — {} feasible, {} on the frontier",
        res.feasible.len(),
        res.frontier.len()
    );
    println!("\nPareto frontier (search estimates):");
    println!("{:<54}{:>12}{:>12}{:>9}", "design point", "power uW", "area um2", "latency");
    for p in &res.frontier {
        println!(
            "{:<54}{:>12.0}{:>12.0}{:>9}",
            p.choice.label(),
            p.est.power_uw,
            p.est.area_um2,
            p.est.latency_cycles
        );
    }

    // Implement four representative picks + the baselines through the
    // same flow for post-layout comparison.
    println!("\nimplemented comparison (post-layout):");
    println!("{:<54}{:>10}{:>12}{:>12}", "design", "area mm2", "fmax@0.9 MHz", "cells");
    let mut spec_e = spec.clone();
    spec_e.ppa = PpaWeights::energy_leaning();
    let mut spec_a = spec.clone();
    spec_a.ppa = PpaWeights::area_leaning();
    let picks = [
        ("searched: energy-leaning", res.best(&spec_e).unwrap().choice),
        ("searched: balanced", res.best(&spec).unwrap().choice),
        ("searched: area-leaning", res.best(&spec_a).unwrap().choice),
    ];
    for (name, choice) in picks {
        let im = implement(&lib, &spec, &choice).expect("flow");
        let f = im.fmax_mhz(&lib, syndcim_pdk::OperatingPoint::at_voltage(0.9));
        println!(
            "{:<54}{:>10.3}{:>12.0}{:>12}",
            format!("{name} [{}]", choice.label()),
            im.area_mm2(),
            f,
            im.mac.module.instance_count()
        );
    }
    for kind in BaselineKind::ALL {
        let im = implement(&lib, &spec, &kind.choice()).expect("flow");
        let f = im.fmax_mhz(&lib, syndcim_pdk::OperatingPoint::at_voltage(0.9));
        println!(
            "{:<54}{:>10.3}{:>12.0}{:>12}",
            kind.label(),
            im.area_mm2(),
            f,
            im.mac.module.instance_count()
        );
    }
    println!("\npaper shape: searched points span energy- and area-leaning corners; fixed templates sit off the frontier");
}
