//! Fig. 9 — shmoo plot of the SynDCIM-generated test macro.
use syndcim_bench::implement_best;
use syndcim_core::published::paper_anchors;
use syndcim_core::{shmoo, MacroSpec};
use syndcim_pdk::OperatingPoint;

fn main() {
    let spec = MacroSpec::paper_test_chip();
    let (im, lib) = implement_best(&spec);
    let voltages: Vec<f64> = (0..=12).map(|i| 0.60 + 0.05 * i as f64).collect();
    let freqs: Vec<f64> = (1..=12).map(|i| 100.0 * i as f64).collect();
    let s = shmoo(&im, &lib, &voltages, &freqs);
    println!("Fig. 9: shmoo of the 64x64 MCR=2 macro (post-layout STA)");
    print!("{}", s.render());
    let anchors = paper_anchors();
    let f12 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(1.2));
    let f07 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.7));
    println!("anchor            paper      measured");
    println!("fmax @1.2V     {:>7.0} MHz {:>9.0} MHz", anchors.fmax_1v2_mhz, f12);
    println!("fmax @0.7V     {:>7.0} MHz {:>9.0} MHz", anchors.fmax_0v7_mhz, f07);
    let tput = syndcim_power::MacThroughput {
        h: spec.h,
        w: spec.w,
        act: syndcim_sim::Precision::Int(1),
        weight: syndcim_sim::Precision::Int(1),
    };
    println!("TOPS(1b) @1.2V {:>7.1}     {:>9.1}", anchors.tops_1b, tput.tops(f12));
}
