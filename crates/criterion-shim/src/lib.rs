//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the [`Criterion`] / [`Bencher`] API surface plus the
//! [`criterion_group!`] / [`criterion_main!`] macros so `[[bench]]`
//! targets written against real criterion compile and run without
//! crates.io access. Measurement is a simple calibrated-batch wall-clock
//! mean (median of batch means) — adequate for the throughput-ratio
//! comparisons this workspace reports, without criterion's statistics.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver: times closures registered via
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measure_time: Duration,
    /// Number of batches the measurement is split into.
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure_time: Duration::from_millis(800), batches: 10 }
    }
}

/// Result of one benchmark: mean wall-clock time per iteration.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Median of per-batch mean iteration times, in nanoseconds.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iters: u64,
}

impl Criterion {
    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measure_time = t;
        self
    }

    /// Run one named benchmark and print its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_stats(name, f);
        self
    }

    /// Run one named benchmark and also return its stats (shim extension
    /// used by benches that report derived ratios).
    pub fn bench_stats<F>(&mut self, name: &str, mut f: F) -> BenchStats
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        // Calibration: find an iteration count filling one batch budget.
        let batch_budget = self.measure_time / self.batches;
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= batch_budget / 8 || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                64
            } else {
                (batch_budget.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 64) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }
        // Measurement batches.
        let mut means = Vec::with_capacity(self.batches as usize);
        let mut total_iters = 0u64;
        for _ in 0..self.batches {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            means.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            total_iters += b.iters;
        }
        means.sort_by(|a, c| a.partial_cmp(c).expect("bench times are finite"));
        let stats = BenchStats { ns_per_iter: means[means.len() / 2], iters: total_iters };
        println!("{name:<44} {:>14} /iter   ({} iters)", format_ns(stats.ns_per_iter), stats.iters);
        stats
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iters` times and record the elapsed wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions under one callable, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let stats = c.bench_stats("noop", |b| b.iter(|| 1 + 1));
        assert!(stats.iters > 0);
        assert!(stats.ns_per_iter.is_finite());
    }
}
