//! # syndcim-scl — the Subcircuit Library (SCL)
//!
//! §III-B: *"we build a Subcircuit Library that includes PPA lookup
//! tables for subcircuits of various topologies, dimensions, and timing
//! constraints."*
//!
//! Each subcircuit variant is characterized by actually building its
//! netlist and running the sign-off substrates on it: STA for delay,
//! cycle simulation with random vectors for switching energy, netlist
//! statistics for area/leakage. Results are cached in a lookup table
//! keyed by `(topology, dimensions)`; configurations that were never
//! characterized are estimated by scaling from the nearest
//! characterized dimension ("the PPA data for other configurations can
//! be estimated and scaled from synthesis data").
//!
//! Energy characterization runs on the compiled bit-parallel engine by
//! default ([`SclBackend::Engine`]): the subcircuit is compiled once
//! and 256 random stimulus lanes evaluate per pass on the wide
//! (`[u64; 4]`) word, which both cuts `Scl::new()` warm-up by orders of
//! magnitude and tightens the energy estimate (hundreds of samples per
//! record instead of 32). [`Scl::interpreted`] keeps the seed's
//! sequential `Simulator` path as the reference; both backends sample
//! the same stationary random-stimulus distribution, so their records
//! agree within sampling tolerance (pinned by a test below).
//!
//! ```
//! use syndcim_scl::Scl;
//! use syndcim_subckt::AdderTreeConfig;
//!
//! let mut scl = Scl::new();
//! let rec = scl.adder_tree(64, AdderTreeConfig::default());
//! assert!(rec.delay_ps > 0.0 && rec.area_um2 > 0.0);
//! ```

use std::collections::BTreeMap;

use rand::Rng;
use syndcim_engine::{EngineSim, Program};
use syndcim_ir::Lowering;
use syndcim_netlist::{Module, NetId, NetlistBuilder, NetlistStats};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::PowerAnalyzer;
use syndcim_sim::vectors::seeded_rng;
use syndcim_sim::{FpFormat, SimBackend, Simulator};
use syndcim_sta::Sta;
use syndcim_subckt::{
    build_adder_tree, build_array, build_drivers, build_ofu, build_shift_add, AdderTreeConfig, ArrayConfig,
    BitcellKind, DriverRole, FpRowPorts, MultMuxKind, OfuConfig, ShiftAddConfig, TreeOutput,
};

/// One characterized PPA record (the LUT row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaRecord {
    /// Worst input→output delay at the nominal corner, in ps.
    pub delay_ps: f64,
    /// Total cell area in µm² (pre-placement).
    pub area_um2: f64,
    /// Mean dynamic energy per cycle under random stimulus, in fJ.
    pub energy_fj_per_cycle: f64,
    /// Leakage at the nominal corner, in nW.
    pub leakage_nw: f64,
    /// Sequential element count (registers + bitcells).
    pub seq_cells: usize,
}

/// Lookup key: which subcircuit, which topology, which dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SclKey {
    /// Adder tree reducing `h` partial products.
    Tree {
        /// Number of reduced inputs.
        h: usize,
        /// Tree configuration.
        cfg: AdderTreeConfig,
    },
    /// One array column slice: `h` rows of bitcells + mux + multiplier.
    Column {
        /// Rows.
        h: usize,
        /// Banks.
        mcr: usize,
        /// Bitcell style.
        bitcell: BitcellKind,
        /// Multiplier/mux style.
        multmux: MultMuxKind,
    },
    /// Shift-and-adder.
    ShiftAdd {
        /// Configuration (psum width, serial bits).
        cfg: ShiftAddConfig,
    },
    /// Output fusion unit.
    Ofu {
        /// Configuration.
        cfg: OfuConfig,
    },
    /// FP&INT alignment unit for `h` rows.
    Align {
        /// Rows.
        h: usize,
        /// Exponent bits.
        exp_bits: u32,
        /// Mantissa bits.
        man_bits: u32,
        /// Comparator-tree pipeline register present.
        pipelined: bool,
    },
    /// Driver chain for a given fanout class.
    Driver {
        /// Receiver pin count (bucketed to powers of two).
        fanout: usize,
    },
}

/// Which simulation substrate characterizes switching energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SclBackend {
    /// Compiled wide-word engine: 256 random lanes per pass (default).
    #[default]
    Engine,
    /// Interpreted sequential simulator — the seed's reference path.
    Interpreter,
}

/// The subcircuit library: characterization engine + PPA cache.
///
/// Owns its [`CellLibrary`]; records are characterized lazily on first
/// lookup and cached. `Scl` is `Clone`, so a warm cache can be
/// snapshotted and handed to worker threads (the parallel Pareto search
/// does exactly that) and merged back with [`Scl::absorb`].
#[derive(Debug, Clone)]
pub struct Scl {
    lib: CellLibrary,
    table: BTreeMap<SclKey, PpaRecord>,
    /// Random-stimulus sample target per energy characterization (the
    /// interpreter takes this many sequential cycles; the engine rounds
    /// up to whole wide-word passes, so it takes at least this many).
    /// The seed used 32 — affordable for the sequential interpreter;
    /// the engine makes 512 cheaper than the interpreter's 32, so both
    /// backends now sample the same count and compare like-for-like.
    energy_cycles: u64,
    backend: SclBackend,
}

impl Default for Scl {
    fn default() -> Self {
        Self::new()
    }
}

impl Scl {
    /// Create an empty library over the syn40 process, characterizing
    /// energy on the compiled wide-word engine.
    pub fn new() -> Self {
        Self::with_backend(SclBackend::Engine)
    }

    /// Create an empty library characterizing on the interpreted
    /// reference simulator (the seed's original sequential path).
    pub fn interpreted() -> Self {
        Self::with_backend(SclBackend::Interpreter)
    }

    /// Create an empty library over an explicit backend choice.
    pub fn with_backend(backend: SclBackend) -> Self {
        Scl { lib: CellLibrary::syn40(), table: BTreeMap::new(), energy_cycles: 512, backend }
    }

    /// The characterization backend in use.
    pub fn backend(&self) -> SclBackend {
        self.backend
    }

    /// Merge another library's cached records into this one. Records are
    /// deterministic per `(key, backend)`, so absorbing caches grown
    /// from clones of the same `Scl` (the parallel-search pattern) is
    /// lossless.
    ///
    /// # Panics
    ///
    /// Panics if the two caches were characterized on different
    /// backends — their records sample differently and must not mix.
    pub fn absorb(&mut self, other: Scl) {
        assert_eq!(self.backend, other.backend, "cannot merge caches characterized on different backends");
        self.table.extend(other.table);
    }

    /// The cell library used for characterization.
    pub fn cell_library(&self) -> &CellLibrary {
        &self.lib
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` before anything has been characterized.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Characterized record for an adder tree.
    pub fn adder_tree(&mut self, h: usize, cfg: AdderTreeConfig) -> PpaRecord {
        let key = SclKey::Tree { h, cfg };
        if let Some(r) = self.table.get(&key) {
            return *r;
        }
        let r = characterize_module(&self.lib, self.energy_cycles, self.backend, |b| {
            let ins = b.input_bus("in", h);
            match build_adder_tree(b, &ins, cfg) {
                TreeOutput::Binary(s) => b.output_bus("sum", &s),
                TreeOutput::CarrySave { a, b: bb } => {
                    b.output_bus("csa_a", &a);
                    b.output_bus("csa_b", &bb);
                }
            }
        });
        self.table.insert(key, r);
        r
    }

    /// Characterized record for one array column slice (bitcells, mux,
    /// multiplier for `h` rows). Delay is the activation→product path.
    pub fn column(&mut self, h: usize, mcr: usize, bitcell: BitcellKind, multmux: MultMuxKind) -> PpaRecord {
        let key = SclKey::Column { h, mcr, bitcell, multmux };
        if let Some(r) = self.table.get(&key) {
            return *r;
        }
        let r = characterize_module(&self.lib, self.energy_cycles, self.backend, |b| {
            let act = b.input_bus("act", h);
            let wwl: Vec<Vec<NetId>> = (0..mcr).map(|k| b.input_bus(&format!("wwl{k}"), h)).collect();
            let wbl = b.input_bus("wbl", 1);
            let sel = b.input_bus("sel", mcr.trailing_zeros() as usize);
            let cfg = ArrayConfig { h, w: 1, mcr, bitcell, multmux };
            let out = build_array(b, cfg, &act, &wwl, &wbl, &[sel]);
            b.output_bus("p", &out.products[0]);
        });
        self.table.insert(key, r);
        r
    }

    /// Characterized record for a shift-and-adder.
    pub fn shift_add(&mut self, cfg: ShiftAddConfig) -> PpaRecord {
        let key = SclKey::ShiftAdd { cfg };
        if let Some(r) = self.table.get(&key) {
            return *r;
        }
        let r = characterize_module(&self.lib, self.energy_cycles, self.backend, |b| {
            let psum = b.input_bus("psum", cfg.psum_bits);
            let neg = b.input("neg");
            let clear = b.input("clear");
            let out = build_shift_add(b, cfg, &psum, neg, clear);
            b.output_bus("acc", &out.acc);
        });
        self.table.insert(key, r);
        r
    }

    /// Characterized record for an output fusion unit.
    pub fn ofu(&mut self, cfg: OfuConfig) -> PpaRecord {
        let key = SclKey::Ofu { cfg };
        if let Some(r) = self.table.get(&key) {
            return *r;
        }
        let r = characterize_module(&self.lib, self.energy_cycles, self.backend, |b| {
            let sa: Vec<Vec<NetId>> =
                (0..cfg.w_bits).map(|j| b.input_bus(&format!("sa{j}"), cfg.sa_bits)).collect();
            let prec = b.input_bus("prec", cfg.levels() + 1);
            let out = build_ofu(b, cfg, &sa, &prec);
            for (k, level) in out.levels.iter().enumerate().skip(1) {
                for (i, bus) in level.iter().enumerate() {
                    b.output_bus(&format!("l{k}_{i}"), bus);
                }
            }
        });
        self.table.insert(key, r);
        r
    }

    /// Characterized record for an FP&INT alignment unit.
    pub fn align(&mut self, h: usize, fmt: FpFormat, pipelined: bool) -> PpaRecord {
        let key = SclKey::Align { h, exp_bits: fmt.exp_bits, man_bits: fmt.man_bits, pipelined };
        if let Some(r) = self.table.get(&key) {
            return *r;
        }
        let r = characterize_module(&self.lib, self.energy_cycles, self.backend, |b| {
            let rows: Vec<FpRowPorts> = (0..h)
                .map(|r| FpRowPorts {
                    sign: b.input(format!("s{r}")),
                    exp: b.input_bus(&format!("e{r}"), fmt.exp_bits as usize),
                    man: b.input_bus(&format!("m{r}"), fmt.man_bits as usize),
                })
                .collect();
            let out = syndcim_subckt::build_align_pipelined(b, fmt, &rows, pipelined);
            for (r, bus) in out.aligned.iter().enumerate() {
                b.output_bus(&format!("a{r}"), bus);
            }
        });
        self.table.insert(key, r);
        r
    }

    /// Characterized record for a driver chain into `fanout` pins.
    /// Fanouts are bucketed to the next power of two so the table stays
    /// small.
    pub fn driver(&mut self, fanout: usize) -> PpaRecord {
        let bucket = fanout.next_power_of_two().max(4);
        let key = SclKey::Driver { fanout: bucket };
        if let Some(r) = self.table.get(&key) {
            return *r;
        }
        let r = characterize_module(&self.lib, self.energy_cycles, self.backend, |b| {
            let a = b.input("a");
            let driven = build_drivers(b, DriverRole::WordLine, &[a], bucket)[0];
            // Emulate the fanout load with parallel multiplier pins.
            let w = b.input("w");
            let mut outs = Vec::new();
            for _ in 0..bucket {
                outs.push(b.add(syndcim_pdk::CellKind::MultNor, &[driven, w])[0]);
            }
            b.output("y", outs[0]);
        });
        self.table.insert(key, r);
        r
    }

    /// Estimate a tree record for an uncharacterized height by scaling
    /// from the nearest characterized height with the same topology
    /// (delay ∝ log₂ h, area/energy/leakage ∝ h).
    pub fn adder_tree_estimate(&self, h: usize, cfg: AdderTreeConfig) -> Option<PpaRecord> {
        let nearest = self
            .table
            .iter()
            .filter_map(|(k, r)| match k {
                SclKey::Tree { h: hh, cfg: cc } if *cc == cfg => Some((*hh, *r)),
                _ => None,
            })
            .min_by_key(|(hh, _)| hh.abs_diff(h))?;
        let (h0, r0) = nearest;
        if h0 == h {
            return Some(r0);
        }
        let lin = h as f64 / h0 as f64;
        let log = (h as f64).log2() / (h0 as f64).log2();
        Some(PpaRecord {
            delay_ps: r0.delay_ps * log,
            area_um2: r0.area_um2 * lin,
            energy_fj_per_cycle: r0.energy_fj_per_cycle * lin,
            leakage_nw: r0.leakage_nw * lin,
            seq_cells: r0.seq_cells,
        })
    }
}

/// Lanes one engine-backed characterization pass evaluates at once.
const ENERGY_LANES: usize = 256;

/// Warm-up cycles before the engine's measured window — enough to pull
/// every lane off the all-zero reset state into the stationary
/// random-stimulus distribution before toggles start counting.
const ENERGY_WARMUP_CYCLES: u64 = 4;

/// Characterize one freshly built module: STA for delay, random-vector
/// simulation for energy, stats for area/leakage.
///
/// The netlist is lowered **once** per record — the shared [`Lowering`]
/// feeds the timing analyzer, the compiled simulation program and the
/// power model, where the seed walked the connectivity three separate
/// times (`Sta::new`, `Program::compile`, `PowerAnalyzer::new`) for
/// every record of every characterization sweep. The hoist applies to
/// both backends; what differs per backend is which analyzer consumes
/// the IR (compiled vs reference), never how often the netlist is
/// walked.
fn characterize_module(
    lib: &CellLibrary,
    energy_cycles: u64,
    backend: SclBackend,
    build: impl FnOnce(&mut NetlistBuilder<'_>),
) -> PpaRecord {
    let mut b = NetlistBuilder::new("dut", lib);
    build(&mut b);
    let module: Module = b.finish();

    let stats = NetlistStats::of(&module, lib);
    let low = Lowering::validated(&module, lib).expect("generated subcircuits are well-formed");
    let sta = Sta::with_lowering(&module, lib, low.clone());
    // Delay rides the backend choice like energy does: the engine path
    // runs the compiled SoA pass (bit-identical to the reference walk,
    // pinned by the `backends_agree` test), so the search ladder's
    // timing gates are fed by compiled STA while `Scl::interpreted()`
    // keeps the seed's reference analyzer.
    let delay = match backend {
        SclBackend::Engine => sta.compile().analyze(1e9).max_delay_ps,
        SclBackend::Interpreter => sta.analyze(1e9).max_delay_ps,
    };

    let (toggles, lane_cycles) = match backend {
        SclBackend::Engine => engine_energy_activity(lib, &module, &low, energy_cycles),
        SclBackend::Interpreter => interpreter_energy_activity(lib, &module, energy_cycles),
    };
    let pa = PowerAnalyzer::from_lowering(&module, lib, &low, &[]);
    let op = OperatingPoint::nominal(lib.process());
    // The engine backend completes the compiled trinity (sim + STA +
    // power all on the shared IR); the reference path keeps the seed's
    // module-walking report, fed by the hoisted analyzer.
    let report = match backend {
        SclBackend::Engine => pa.compile().report(&toggles, lane_cycles, 1000.0, op),
        SclBackend::Interpreter => pa.from_activity(&toggles, lane_cycles, 1000.0, op),
    };

    PpaRecord {
        delay_ps: delay,
        area_um2: stats.cell_area_um2,
        energy_fj_per_cycle: report.energy_per_cycle_pj * 1000.0,
        leakage_nw: stats.leakage_nw,
        seq_cells: stats.sequential,
    }
}

/// The seed's sequential reference sampler: one interpreted run,
/// `energy_cycles` cycles of fresh random vectors.
fn interpreter_energy_activity(lib: &CellLibrary, module: &Module, energy_cycles: u64) -> (Vec<u64>, u64) {
    let mut sim = Simulator::new(module, lib).expect("generated subcircuits simulate");
    let mut rng = seeded_rng(0xC1A0 ^ module.net_count() as u64);
    let inputs: Vec<String> = module.input_ports().map(|p| p.name.clone()).collect();
    sim.step();
    sim.reset_activity();
    for _ in 0..energy_cycles {
        for name in &inputs {
            let v = rng.gen_bool(0.5);
            sim.set(name, v);
        }
        sim.step();
    }
    (sim.toggle_table().to_vec(), sim.cycles())
}

/// Engine sampler: compile once (from the record's shared [`Lowering`]),
/// then evaluate [`ENERGY_LANES`] independent random-stimulus lanes per
/// pass on the wide word. After a short warm-up the measured window
/// takes at least `energy_cycles` lane-cycle samples (one wide pass
/// already covers 256), so each record averages over far more stimulus
/// than the sequential path at a small fraction of its cost.
fn engine_energy_activity(
    lib: &CellLibrary,
    module: &Module,
    low: &Lowering,
    energy_cycles: u64,
) -> (Vec<u64>, u64) {
    let prog = Program::from_lowering(low, module, lib);
    let mut sim = EngineSim::new(&prog, module, ENERGY_LANES);
    let mut rng = seeded_rng(0xC1A0 ^ module.net_count() as u64);
    let in_nets: Vec<NetId> = module.input_ports().map(|p| p.net).collect();
    let measured = energy_cycles.div_ceil(ENERGY_LANES as u64).max(2);
    for cycle in 0..ENERGY_WARMUP_CYCLES + measured {
        if cycle == ENERGY_WARMUP_CYCLES {
            sim.reset_activity();
        }
        for &net in &in_nets {
            for wi in 0..sim.words() {
                sim.poke_word_at(net, wi, rng.next_u64());
            }
        }
        sim.step();
    }
    (sim.toggle_table().to_vec(), sim.lane_cycles())
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_subckt::AdderTreeKind;

    /// Both characterization backends sample the same stationary
    /// random-stimulus distribution; delay/area/leakage are computed
    /// identically and energy must agree within sampling tolerance.
    #[test]
    fn engine_energy_matches_interpreter_within_tolerance() {
        let mut eng = Scl::new();
        let mut itp = Scl::interpreted();
        assert_eq!(eng.backend(), SclBackend::Engine);
        assert_eq!(itp.backend(), SclBackend::Interpreter);
        let cfg = AdderTreeConfig::default();
        let pairs = [
            (eng.adder_tree(32, cfg), itp.adder_tree(32, cfg)),
            (
                eng.column(16, 2, BitcellKind::Sram6T2T, MultMuxKind::TgNor),
                itp.column(16, 2, BitcellKind::Sram6T2T, MultMuxKind::TgNor),
            ),
            (
                eng.shift_add(ShiftAddConfig { psum_bits: 7, act_bits: 8 }),
                itp.shift_add(ShiftAddConfig { psum_bits: 7, act_bits: 8 }),
            ),
            (eng.driver(16), itp.driver(16)),
        ];
        for (e, i) in pairs {
            assert_eq!(e.delay_ps, i.delay_ps, "delay comes from the same STA");
            assert_eq!(e.area_um2, i.area_um2, "area comes from the same stats");
            assert_eq!(e.leakage_nw, i.leakage_nw);
            assert_eq!(e.seq_cells, i.seq_cells);
            let rel = (e.energy_fj_per_cycle - i.energy_fj_per_cycle).abs() / i.energy_fj_per_cycle;
            assert!(
                rel < 0.15,
                "energy off by {:.1}% (engine {} vs interpreter {})",
                rel * 100.0,
                e.energy_fj_per_cycle,
                i.energy_fj_per_cycle
            );
        }
    }

    /// Cloned caches grown independently merge back losslessly.
    #[test]
    fn clone_and_absorb_merge_caches() {
        let mut base = Scl::new();
        base.driver(8);
        let mut a = base.clone();
        let mut b = base.clone();
        let ra = a.adder_tree(16, AdderTreeConfig::default());
        b.shift_add(ShiftAddConfig { psum_bits: 5, act_bits: 4 });
        b.adder_tree(16, AdderTreeConfig::default()); // duplicated work, identical record
        base.absorb(a);
        base.absorb(b);
        assert_eq!(base.len(), 3);
        assert_eq!(base.adder_tree(16, AdderTreeConfig::default()), ra);
    }

    #[test]
    fn records_are_cached() {
        let mut scl = Scl::new();
        let a = scl.adder_tree(16, AdderTreeConfig::default());
        assert_eq!(scl.len(), 1);
        let b = scl.adder_tree(16, AdderTreeConfig::default());
        assert_eq!(scl.len(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn tree_ppa_scales_with_height() {
        let mut scl = Scl::new();
        let small = scl.adder_tree(16, AdderTreeConfig::default());
        let big = scl.adder_tree(64, AdderTreeConfig::default());
        assert!(big.area_um2 > 2.0 * small.area_um2);
        assert!(big.delay_ps > small.delay_ps);
        assert!(big.energy_fj_per_cycle > small.energy_fj_per_cycle);
    }

    #[test]
    fn column_variants_follow_cell_tradeoffs() {
        let mut scl = Scl::new();
        let pg = scl.column(16, 2, BitcellKind::Sram6T2T, MultMuxKind::PassGate1T);
        let tg = scl.column(16, 2, BitcellKind::Sram6T2T, MultMuxKind::TgNor);
        let fused = scl.column(16, 2, BitcellKind::Sram6T2T, MultMuxKind::Oai22Fused);
        // Pass gate: smallest but slowest; fused: most energy-efficient.
        assert!(pg.area_um2 < tg.area_um2, "pg {} tg {}", pg.area_um2, tg.area_um2);
        assert!(pg.delay_ps > tg.delay_ps, "pg {} tg {}", pg.delay_ps, tg.delay_ps);
        assert!(
            fused.energy_fj_per_cycle < tg.energy_fj_per_cycle,
            "fused {} tg {}",
            fused.energy_fj_per_cycle,
            tg.energy_fj_per_cycle
        );
    }

    #[test]
    fn shift_add_and_ofu_have_registers() {
        let mut scl = Scl::new();
        let sa = scl.shift_add(ShiftAddConfig { psum_bits: 7, act_bits: 8 });
        assert_eq!(sa.seq_cells, 15);
        let ofu = scl.ofu(OfuConfig { w_bits: 4, sa_bits: 10, negate_stage: true, extra_pipeline: true });
        assert!(ofu.seq_cells > 0, "extra pipeline adds registers");
    }

    #[test]
    fn align_grows_with_format() {
        let mut scl = Scl::new();
        let fp8 = scl.align(8, FpFormat::FP8, false);
        let bf16 = scl.align(8, FpFormat::BF16, false);
        assert!(bf16.area_um2 > fp8.area_um2);
        assert!(bf16.delay_ps > fp8.delay_ps);
    }

    #[test]
    fn estimate_interpolates_between_characterized_heights() {
        let mut scl = Scl::new();
        let cfg = AdderTreeConfig::default();
        let r32 = scl.adder_tree(32, cfg);
        let est64 = scl.adder_tree_estimate(64, cfg).unwrap();
        assert!((est64.area_um2 - 2.0 * r32.area_um2).abs() < 1e-9);
        assert!(est64.delay_ps > r32.delay_ps);
        // Exact hits return the measured record.
        let exact = scl.adder_tree_estimate(32, cfg).unwrap();
        assert_eq!(exact, r32);
        // Unknown topology yields None.
        let missing = scl.adder_tree_estimate(
            128,
            AdderTreeConfig { kind: AdderTreeKind::MixedCsa { fa_rounds: 7 }, ..cfg },
        );
        assert!(missing.is_none());
    }

    #[test]
    fn driver_buckets_cover_fanouts() {
        let mut scl = Scl::new();
        let d8 = scl.driver(8);
        let d64 = scl.driver(64);
        assert!(d64.delay_ps > d8.delay_ps * 0.5, "sized chains stay shallow");
        assert!(d64.area_um2 > d8.area_um2);
        // Bucketing: 63 and 64 share one record.
        let before = scl.len();
        scl.driver(63);
        assert_eq!(scl.len(), before);
    }
}
