//! Compiled static timing analysis: the engine-style fast path.
//!
//! [`Sta::analyze_at`] walks the module graph on every call — instance
//! lookups, per-cell arc vectors, logical-effort evaluation — which is
//! fine for one report but dominates the sign-off loop once shmoo grids
//! and search ladders ask for hundreds of operating points. This module
//! applies the same compile-once/evaluate-many structure the simulation
//! engine uses: [`Sta::compile`] lowers the analyzer into a
//! [`CompiledSta`] whose launches, timing arcs and endpoints live in
//! flat struct-of-arrays buffers over the engine's dense net slots, and
//! every analysis is then one linear pass over those arrays.
//!
//! The transformation is exact, not approximate. Per arc the reference
//! computes `arc_delay_ps(arc, τ, load) · scale + wire`, where only
//! `scale` depends on the operating point; the compiler evaluates the
//! load-dependent factor once and the runtime pass replays the identical
//! `base · scale + wire` arithmetic in the identical order, so arrival
//! times, slacks, critical paths and `f_max` are **bit-identical** to
//! the reference analyzer — pinned by differential tests here, in
//! `tests/sta_compiled_differential.rs` and in the shmoo regression
//! suite.

use syndcim_ir::{parallel_map, Symbols};
use syndcim_pdk::{OperatingPoint, Process};
use syndcim_telemetry as telemetry;

use crate::{PathStep, Sta, TimingReport};

/// Sentinel for "no predecessor recorded" in the path-reconstruction
/// tables (the net is a primary input or unreached).
const NO_PRED: u32 = u32::MAX;

/// Corner count above which [`CompiledSta::fmax_many`] fans the batch
/// across worker threads. Each grid point is an independent pass over
/// shared read-only arrays, but one 16×16-macro pass is only ~10 µs —
/// below this, thread spawn overhead beats the parallel win.
const FMAX_PARALLEL_THRESHOLD: usize = 32;

/// Corners per parallel job: small enough to load-balance across
/// workers, large enough to amortize each job's arrival buffer.
const FMAX_PARALLEL_CHUNK: usize = 8;

/// A timing analyzer compiled into struct-of-arrays form.
///
/// Build one from a configured (wire-annotated) [`Sta`] with
/// [`Sta::compile`]. The compiled program has no borrow of the module
/// and can be stored in long-lived structures
/// (`syndcim_core::ImplementedMacro` keeps one per implemented macro);
/// the net/instance names used for critical-path reports are interned
/// [`Symbols`] shared with the lowering and resolved lazily — never
/// owned `String` tables.
///
/// ```
/// use syndcim_netlist::NetlistBuilder;
/// use syndcim_pdk::{CellLibrary, OperatingPoint};
/// use syndcim_sta::Sta;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = CellLibrary::syn40();
/// let mut b = NetlistBuilder::new("pipe", &lib);
/// let a = b.input("a");
/// let x = b.xor2(a, a);
/// let q = b.dff(x);
/// b.output("q", q);
/// let m = b.finish();
///
/// let sta = Sta::new(&m, &lib)?;
/// let csta = sta.compile(); // one-time lowering
/// // One forward pass per operating point, bit-identical to `sta`:
/// for v in [0.7, 0.9, 1.2] {
///     let op = OperatingPoint::at_voltage(v);
///     assert_eq!(csta.fmax_mhz(op), sta.fmax_mhz(op));
/// }
/// // Batch entry point for shmoo/search grids:
/// let ops: Vec<_> = [0.7, 0.9, 1.2].map(OperatingPoint::at_voltage).into();
/// assert_eq!(csta.fmax_many(&ops).len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSta {
    /// Process parameters (cloned so the program is self-contained).
    pub(crate) process: Process,
    pub(crate) net_count: usize,

    /// Slots of primary-input nets (arrival 0 at analysis start).
    pub(crate) input_slots: Vec<u32>,

    // Launch records — one per sequential instance, in instance order.
    pub(crate) launch_slot: Vec<u32>,
    pub(crate) launch_base_ps: Vec<f64>,
    pub(crate) launch_wire_ps: Vec<f64>,
    pub(crate) launch_inst: Vec<u32>,

    // Timing arcs in levelized order (SoA). `base_ps` is the
    // load-dependent logical-effort delay at the nominal corner;
    // `wire_ps` the unscaled RC wire delay at the arc's output net.
    pub(crate) arc_src: Vec<u32>,
    pub(crate) arc_dst: Vec<u32>,
    pub(crate) arc_base_ps: Vec<f64>,
    pub(crate) arc_wire_ps: Vec<f64>,
    pub(crate) arc_inst: Vec<u32>,

    // Endpoints: output ports first (no setup), then sequential data
    // pins (setup scales with the operating point) — the reference
    // analyzer's exact visitation order, so ties break identically.
    pub(crate) port_end_slot: Vec<u32>,
    pub(crate) seq_end_slot: Vec<u32>,
    pub(crate) seq_end_setup_ps: Vec<f64>,

    /// Interned net/instance/group names for critical-path
    /// reconstruction — shared `Arc` handles into the lowering's
    /// [`Symbols`], resolved lazily when a report is built. The
    /// compiled program owns **no** `String` tables: on a 10⁶-net macro
    /// the name footprint is the 4-byte symbol tables plus one shared
    /// interner, instead of three owned string clones per element.
    pub(crate) syms: Symbols,
}

impl<'a> Sta<'a> {
    /// Lower this analyzer into a [`CompiledSta`].
    ///
    /// Compilation reuses the traversal already performed by
    /// [`Sta::new`] (the engine's shared lowering: levelized order and
    /// dense net slots) and bakes in the current wire annotation — call
    /// it *after* [`Sta::with_wire_loads`]. The one-time cost is a
    /// single linear pass over the instances; every subsequent analysis
    /// saves the graph walk.
    pub fn compile(&self) -> CompiledSta {
        telemetry::span!("sta.compile");
        let module = self.module;
        let process = self.lib.process();
        let n = module.net_count();

        let input_slots = module.input_ports().map(|p| self.low.slot(p.net)).collect();

        let mut launch_slot = Vec::new();
        let mut launch_base_ps = Vec::new();
        let mut launch_wire_ps = Vec::new();
        let mut launch_inst = Vec::new();
        let mut seq_end_slot = Vec::new();
        let mut seq_end_setup_ps = Vec::new();
        for (i, inst) in module.instances.iter().enumerate() {
            let cell = self.lib.cell(inst.cell);
            let Some(seq) = cell.seq else { continue };
            let qnet = inst.outputs[0];
            launch_slot.push(self.low.slot(qnet));
            launch_base_ps.push(seq.clk_to_q_ps);
            launch_wire_ps.push(self.wire_delay(qnet));
            launch_inst.push(i as u32);
            for &dnet in &inst.inputs {
                seq_end_slot.push(self.low.slot(dnet));
                seq_end_setup_ps.push(seq.setup_ps);
            }
        }

        let mut arc_src = Vec::new();
        let mut arc_dst = Vec::new();
        let mut arc_base_ps = Vec::new();
        let mut arc_wire_ps = Vec::new();
        let mut arc_inst = Vec::new();
        for &id in self.low.order() {
            let inst = &module.instances[id.index()];
            let cell = self.lib.cell(inst.cell);
            for arc in &cell.arcs {
                let in_net = inst.inputs[arc.from_input];
                let out_net = inst.outputs[arc.to_output];
                arc_src.push(self.low.slot(in_net));
                arc_dst.push(self.low.slot(out_net));
                arc_base_ps.push(cell.arc_delay_ps(arc, process.tau_ps, self.load_ff[out_net.index()]));
                arc_wire_ps.push(self.wire_delay(out_net));
                arc_inst.push(id.index() as u32);
            }
        }

        let port_end_slot = module.output_ports().map(|p| self.low.slot(p.net)).collect();

        let csta = CompiledSta {
            process: process.clone(),
            net_count: n,
            input_slots,
            launch_slot,
            launch_base_ps,
            launch_wire_ps,
            launch_inst,
            arc_src,
            arc_dst,
            arc_base_ps,
            arc_wire_ps,
            arc_inst,
            port_end_slot,
            seq_end_slot,
            seq_end_setup_ps,
            // A few Arc bumps — the lowering's interned tables are
            // shared, not cloned (ROADMAP: "interned names would shrink
            // the program if macros grow to ~10⁶ nets").
            syms: self.low.symbols().clone(),
        };
        telemetry::counter("sta.arcs_emitted").add(csta.arc_count() as u64);
        telemetry::gauge("sta.retained_bytes").set(csta.retained_bytes() as u64);
        csta
    }
}

/// Reusable per-analysis scratch buffers (arrival + predecessor
/// tables), so batch entry points allocate once per grid instead of
/// once per point.
#[derive(Debug, Default)]
struct Scratch {
    arrival: Vec<f64>,
    pred_inst: Vec<u32>,
    pred_from: Vec<u32>,
}

impl CompiledSta {
    /// Number of nets the program analyzes.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of compiled timing arcs (diagnostics).
    pub fn arc_count(&self) -> usize {
        self.arc_src.len()
    }

    /// The interned name tables critical-path reports resolve against
    /// (shared with the lowering this program was compiled from).
    pub fn symbols(&self) -> &Symbols {
        &self.syms
    }

    /// Retained heap bytes of the compiled timing program: launch,
    /// arc and endpoint struct-of-arrays columns plus its share of the
    /// interned name tables (`Arc`-shared with the lowering). Reported
    /// as the `sta.retained_bytes` telemetry gauge at compile time.
    pub fn retained_bytes(&self) -> usize {
        let u32s = self.input_slots.len()
            + self.launch_slot.len()
            + self.launch_inst.len()
            + self.arc_src.len()
            + self.arc_dst.len()
            + self.arc_inst.len()
            + self.port_end_slot.len()
            + self.seq_end_slot.len();
        let f64s = self.launch_base_ps.len()
            + self.launch_wire_ps.len()
            + self.arc_base_ps.len()
            + self.arc_wire_ps.len()
            + self.seq_end_setup_ps.len();
        u32s * std::mem::size_of::<u32>() + f64s * std::mem::size_of::<f64>() + self.syms.heap_bytes()
    }

    /// Analyze at the nominal operating point against `period_ps`
    /// (mirrors [`Sta::analyze`]).
    pub fn analyze(&self, period_ps: f64) -> TimingReport {
        self.analyze_at(period_ps, OperatingPoint::nominal(&self.process))
    }

    /// Analyze against `period_ps` at an explicit operating point.
    ///
    /// One linear pass over the compiled arc arrays; the result —
    /// arrival times, worst slack, `f_max`, critical path — is
    /// bit-identical to [`Sta::analyze_at`] on the analyzer this
    /// program was compiled from.
    pub fn analyze_at(&self, period_ps: f64, op: OperatingPoint) -> TimingReport {
        let mut scratch = Scratch::default();
        self.analyze_into(period_ps, op, &mut scratch)
    }

    /// Analyze a batch of `(period_ps, operating point)` pairs, reusing
    /// scratch buffers across points. Equivalent to calling
    /// [`CompiledSta::analyze_at`] per point, minus the per-point
    /// allocations.
    pub fn analyze_many(&self, points: &[(f64, OperatingPoint)]) -> Vec<TimingReport> {
        telemetry::span!("sta.analyze_many");
        telemetry::counter("sta.analyze_points").add(points.len() as u64);
        let mut scratch = Scratch::default();
        points.iter().map(|&(period_ps, op)| self.analyze_into(period_ps, op, &mut scratch)).collect()
    }

    /// `f_max` in MHz at an operating point (mirrors
    /// [`Sta::fmax_mhz`]).
    pub fn fmax_mhz(&self, op: OperatingPoint) -> f64 {
        self.analyze_at(1.0, op).fmax_mhz
    }

    /// `f_max` in MHz at each operating point of a batch.
    ///
    /// This is the shmoo/search fast path: path reconstruction is
    /// skipped entirely (predecessor tracking off), so each point costs
    /// exactly one arrival pass plus the endpoint max-reduction. The
    /// values are identical to per-point [`CompiledSta::fmax_mhz`]
    /// calls — predecessor tracking never affects arrival times.
    ///
    /// Dense grids fan out across cores: every corner is an independent
    /// pass over the shared read-only arc arrays, so batches of
    /// `FMAX_PARALLEL_THRESHOLD` (32) or more corners are chunked onto
    /// the scoped-thread runner. Results come back in corner order and each
    /// corner runs the identical serial arithmetic, so the output is
    /// order-identical to the sequential evaluation (pinned by tests
    /// here and by the shmoo regression suite).
    pub fn fmax_many(&self, ops: &[OperatingPoint]) -> Vec<f64> {
        telemetry::span!("sta.fmax_many");
        telemetry::counter("sta.fmax_batches").incr();
        telemetry::counter("sta.fmax_points").add(ops.len() as u64);
        let start = telemetry::enabled().then(std::time::Instant::now);
        let out = if ops.len() >= FMAX_PARALLEL_THRESHOLD {
            let chunks: Vec<&[OperatingPoint]> = ops.chunks(FMAX_PARALLEL_CHUNK).collect();
            parallel_map(chunks, |_, chunk| self.fmax_serial(chunk)).into_iter().flatten().collect()
        } else {
            self.fmax_serial(ops)
        };
        if let Some(t) = start {
            telemetry::histogram("sta.fmax_batch_ns").record(t.elapsed());
        }
        out
    }

    /// Sequential `f_max` batch sharing one arrival buffer.
    fn fmax_serial(&self, ops: &[OperatingPoint]) -> Vec<f64> {
        let mut arrival = vec![f64::NEG_INFINITY; self.net_count];
        ops.iter()
            .map(|op| {
                let scale = op.delay_scale(&self.process);
                self.propagate::<false>(scale, &mut arrival, &mut [], &mut []);
                let (max_delay, _) = self.reduce_endpoints(scale, &arrival);
                if max_delay > 0.0 {
                    1e6 / max_delay
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }

    /// `f_max` at each `(operating point, gate-delay multiplier)` pair —
    /// the Monte-Carlo generalization of [`CompiledSta::fmax_many`].
    ///
    /// The multiplier models per-die process variation on top of the
    /// corner's voltage/temperature `delay_scale`: every gate delay and
    /// setup time scales by `delay_scale · mult` while unscaled wire
    /// delay stays fixed, exactly the "second column" split the timing
    /// model reserved. A multiplier of `1.0` reproduces the plain
    /// corner **bit-identically** (IEEE-754 multiplication by one is
    /// exact), so a zero-variation Monte-Carlo grid equals the nominal
    /// shmoo run. Batches at or above the parallel threshold fan out
    /// across cores with the same chunking — and therefore the same
    /// order-identical results — as `fmax_many`.
    pub fn fmax_many_scaled(&self, points: &[(OperatingPoint, f64)]) -> Vec<f64> {
        telemetry::span!("sta.fmax_many_scaled");
        telemetry::counter("sta.fmax_batches").incr();
        telemetry::counter("sta.fmax_points").add(points.len() as u64);
        let start = telemetry::enabled().then(std::time::Instant::now);
        let out = if points.len() >= FMAX_PARALLEL_THRESHOLD {
            let chunks: Vec<&[(OperatingPoint, f64)]> = points.chunks(FMAX_PARALLEL_CHUNK).collect();
            parallel_map(chunks, |_, chunk| self.fmax_serial_scaled(chunk)).into_iter().flatten().collect()
        } else {
            self.fmax_serial_scaled(points)
        };
        if let Some(t) = start {
            telemetry::histogram("sta.fmax_batch_ns").record(t.elapsed());
        }
        out
    }

    /// `f_max` of every Monte-Carlo sample at one operating point:
    /// `lane_scales[l]` is lane `l`'s gate-delay multiplier (drawn from
    /// a [`crate::VariationModel`]), and entry `l` of the result is
    /// that virtual die's `f_max`. A thin lane-indexed veneer over
    /// [`CompiledSta::fmax_many_scaled`], so 256 samples ride the same
    /// parallel batch machinery as a 256-corner shmoo row.
    pub fn fmax_distribution(&self, op: OperatingPoint, lane_scales: &[f64]) -> Vec<f64> {
        let points: Vec<(OperatingPoint, f64)> = lane_scales.iter().map(|&s| (op, s)).collect();
        self.fmax_many_scaled(&points)
    }

    /// Sequential scaled batch sharing one arrival buffer.
    fn fmax_serial_scaled(&self, points: &[(OperatingPoint, f64)]) -> Vec<f64> {
        let mut arrival = vec![f64::NEG_INFINITY; self.net_count];
        points
            .iter()
            .map(|&(op, mult)| {
                let scale = op.delay_scale(&self.process) * mult;
                self.propagate::<false>(scale, &mut arrival, &mut [], &mut []);
                let (max_delay, _) = self.reduce_endpoints(scale, &arrival);
                if max_delay > 0.0 {
                    1e6 / max_delay
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }

    /// One full analysis into caller-provided scratch space.
    fn analyze_into(&self, period_ps: f64, op: OperatingPoint, scratch: &mut Scratch) -> TimingReport {
        let scale = op.delay_scale(&self.process);
        scratch.arrival.resize(self.net_count, f64::NEG_INFINITY);
        scratch.pred_inst.clear();
        scratch.pred_inst.resize(self.net_count, NO_PRED);
        scratch.pred_from.clear();
        scratch.pred_from.resize(self.net_count, 0);

        self.propagate::<true>(scale, &mut scratch.arrival, &mut scratch.pred_inst, &mut scratch.pred_from);
        let (max_delay, worst_slot) = self.reduce_endpoints(scale, &scratch.arrival);

        let critical_path = worst_slot
            .map(|w| self.walk_path(w, &scratch.arrival, &scratch.pred_inst, &scratch.pred_from))
            .unwrap_or_default();
        let fmax_mhz = if max_delay > 0.0 { 1e6 / max_delay } else { f64::INFINITY };
        TimingReport {
            arrival_ps: scratch.arrival.clone(),
            max_delay_ps: max_delay,
            wns_ps: period_ps - max_delay,
            fmax_mhz,
            critical_path,
            period_ps,
        }
    }

    /// Forward arrival propagation: launches, then the levelized arc
    /// stream. With `TRACK` the predecessor tables record the winning
    /// arc per net for path reconstruction; without it the pass is pure
    /// SoA arithmetic.
    fn propagate<const TRACK: bool>(
        &self,
        scale: f64,
        arrival: &mut [f64],
        pred_inst: &mut [u32],
        pred_from: &mut [u32],
    ) {
        arrival.fill(f64::NEG_INFINITY);
        for &s in &self.input_slots {
            arrival[s as usize] = 0.0;
        }

        let launches = self.launch_slot.iter().zip(&self.launch_base_ps).zip(&self.launch_wire_ps);
        for (k, ((&slot, &base), &wire)) in launches.enumerate() {
            let q = slot as usize;
            let a = base * scale + wire;
            if a > arrival[q] {
                arrival[q] = a;
                if TRACK {
                    pred_inst[q] = self.launch_inst[k];
                    pred_from[q] = slot; // from == self: launch point
                }
            }
        }

        let arcs = self.arc_src.iter().zip(&self.arc_dst).zip(&self.arc_base_ps).zip(&self.arc_wire_ps);
        for (k, (((&src, &dst), &base), &wire)) in arcs.enumerate() {
            let a_in = arrival[src as usize];
            if a_in == f64::NEG_INFINITY {
                continue; // constant input: no path through it
            }
            let cand = a_in + (base * scale + wire);
            let dst = dst as usize;
            if cand > arrival[dst] {
                arrival[dst] = cand;
                if TRACK {
                    pred_inst[dst] = self.arc_inst[k];
                    pred_from[dst] = src;
                }
            }
        }
    }

    /// Max-reduce the endpoint set (ports, then sequential data pins
    /// with scaled setup), returning the worst total delay and the slot
    /// it ends on.
    fn reduce_endpoints(&self, scale: f64, arrival: &[f64]) -> (f64, Option<u32>) {
        let mut max_delay = 0.0f64;
        let mut worst: Option<u32> = None;
        for &s in &self.port_end_slot {
            let a = arrival[s as usize];
            if a == f64::NEG_INFINITY {
                continue;
            }
            if a > max_delay {
                max_delay = a;
                worst = Some(s);
            }
        }
        for k in 0..self.seq_end_slot.len() {
            let s = self.seq_end_slot[k];
            let a = arrival[s as usize];
            if a == f64::NEG_INFINITY {
                continue;
            }
            let total = a + self.seq_end_setup_ps[k] * scale;
            if total > max_delay {
                max_delay = total;
                worst = Some(s);
            }
        }
        (max_delay, worst)
    }

    /// Reconstruct the critical path from the predecessor tables
    /// (mirrors the reference analyzer's walk, using the owned name
    /// tables).
    fn walk_path(&self, end: u32, arrival: &[f64], pred_inst: &[u32], pred_from: &[u32]) -> Vec<PathStep> {
        let mut steps = Vec::new();
        let mut cur = end as usize;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > self.net_count + 2 {
                break; // defensive: malformed pred chain
            }
            let inst = pred_inst[cur];
            if inst == NO_PRED {
                steps.push(PathStep {
                    through: "<port>".to_string(),
                    group: "top".to_string(),
                    net: self.syms.net_name(cur).to_string(),
                    arrival_ps: arrival[cur],
                });
                break;
            }
            let from = pred_from[cur] as usize;
            steps.push(PathStep {
                through: self.syms.inst_name(inst as usize).to_string(),
                group: self.syms.group_name(self.syms.group_of(inst as usize)).to_string(),
                net: self.syms.net_name(cur).to_string(),
                arrival_ps: arrival[cur],
            });
            if from == cur {
                break; // sequential launch point
            }
            cur = from;
        }
        steps.reverse();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireLoads;
    use syndcim_netlist::{Module, NetlistBuilder};
    use syndcim_pdk::{CellKind, CellLibrary};

    fn lib() -> CellLibrary {
        CellLibrary::syn40()
    }

    /// A circuit touching every structural case: ports, constants,
    /// multi-output cells, three sequential kinds, named groups.
    fn mixed_module(lib: &CellLibrary) -> Module {
        let mut b = NetlistBuilder::new("mix", lib);
        let a = b.input("a");
        let c = b.input("c");
        b.push_group("front");
        let one = b.const1();
        let x = b.and2(a, one);
        let (s, co) = b.fa(x, c, a);
        b.pop_group();
        b.push_group("regs");
        let q0 = b.dff(s);
        let q1 = b.dffe(co, c);
        let rbl = b.add(CellKind::Sram6T2T, &[a, s])[0];
        b.pop_group();
        let mut y = b.xor2(q0, q1);
        for _ in 0..5 {
            y = b.xor2(y, rbl);
        }
        b.output("y", y);
        b.output("s_out", s);
        b.finish()
    }

    fn assert_reports_identical(r: &TimingReport, c: &TimingReport) {
        assert_eq!(r.arrival_ps, c.arrival_ps, "arrival times must be bit-identical");
        assert_eq!(r.max_delay_ps, c.max_delay_ps);
        assert_eq!(r.wns_ps, c.wns_ps);
        assert_eq!(r.fmax_mhz, c.fmax_mhz);
        assert_eq!(r.period_ps, c.period_ps);
        assert_eq!(r.critical_path, c.critical_path, "critical paths must match step for step");
    }

    #[test]
    fn compiled_matches_reference_across_operating_points() {
        let lib = lib();
        let m = mixed_module(&lib);
        let sta = Sta::new(&m, &lib).unwrap();
        let csta = sta.compile();
        for v in [0.6, 0.7, 0.9, 1.05, 1.2] {
            for period in [100.0, 850.0, 4000.0] {
                let op = OperatingPoint::at_voltage(v);
                assert_reports_identical(&sta.analyze_at(period, op), &csta.analyze_at(period, op));
            }
        }
    }

    #[test]
    fn compiled_matches_reference_with_wire_loads() {
        let lib = lib();
        let m = mixed_module(&lib);
        let mut wires = WireLoads::zero(m.net_count());
        for (i, c) in wires.cap_ff.iter_mut().enumerate() {
            *c = (i % 7) as f64 * 3.5;
        }
        for (i, d) in wires.delay_ps.iter_mut().enumerate() {
            *d = (i % 5) as f64 * 11.0;
        }
        let sta = Sta::new(&m, &lib).unwrap().with_wire_loads(wires);
        let csta = sta.compile();
        let op = OperatingPoint { vdd_v: 0.8, temp_c: 85.0 };
        assert_reports_identical(&sta.analyze_at(900.0, op), &csta.analyze_at(900.0, op));
    }

    #[test]
    fn fmax_many_equals_per_point_reference_fmax() {
        let lib = lib();
        let m = mixed_module(&lib);
        let sta = Sta::new(&m, &lib).unwrap();
        let csta = sta.compile();
        let ops: Vec<OperatingPoint> =
            [0.55, 0.62, 0.75, 0.9, 1.1, 1.2].iter().map(|&v| OperatingPoint::at_voltage(v)).collect();
        let batch = csta.fmax_many(&ops);
        for (op, f) in ops.iter().zip(&batch) {
            assert_eq!(*f, sta.fmax_mhz(*op), "batch fmax must equal the reference at {op:?}");
        }
    }

    /// Above the parallel threshold `fmax_many` fans corners across
    /// worker threads; the result must stay order-identical to the
    /// per-point serial queries, corner for corner.
    #[test]
    fn parallel_fmax_many_is_order_identical_to_serial() {
        let lib = lib();
        let m = mixed_module(&lib);
        let sta = Sta::new(&m, &lib).unwrap();
        let csta = sta.compile();
        let ops: Vec<OperatingPoint> = (0..(FMAX_PARALLEL_THRESHOLD * 2 + 3))
            .map(|i| OperatingPoint::at_voltage(0.55 + 0.01 * i as f64))
            .collect();
        assert!(ops.len() >= FMAX_PARALLEL_THRESHOLD);
        let batch = csta.fmax_many(&ops);
        assert_eq!(batch, csta.fmax_serial(&ops), "parallel batch must equal the serial pass");
        for (op, f) in ops.iter().zip(&batch) {
            assert_eq!(*f, sta.fmax_mhz(*op), "corner {op:?} must match the reference");
        }
    }

    #[test]
    fn analyze_many_matches_per_point_analyses() {
        let lib = lib();
        let m = mixed_module(&lib);
        let sta = Sta::new(&m, &lib).unwrap();
        let csta = sta.compile();
        let points: Vec<(f64, OperatingPoint)> = [(500.0, 0.9), (1200.0, 0.7), (250.0, 1.2)]
            .map(|(p, v)| (p, OperatingPoint::at_voltage(v)))
            .into();
        let many = csta.analyze_many(&points);
        for (&(period, op), got) in points.iter().zip(&many) {
            assert_reports_identical(&sta.analyze_at(period, op), got);
        }
    }

    #[test]
    fn below_threshold_supply_degrades_identically() {
        // delay_scale is infinite at/below Vth: both analyzers must agree
        // on the degenerate report (fmax 0, infinite delay).
        let lib = lib();
        let m = mixed_module(&lib);
        let sta = Sta::new(&m, &lib).unwrap();
        let csta = sta.compile();
        let op = OperatingPoint::at_voltage(0.3);
        let r = sta.analyze_at(1000.0, op);
        let c = csta.analyze_at(1000.0, op);
        assert_eq!(r.max_delay_ps, c.max_delay_ps);
        assert_eq!(r.fmax_mhz, c.fmax_mhz);
    }

    /// A unit multiplier must leave the batch bit-identical to the
    /// plain corner pass, and per-sample results must equal sequential
    /// single-sample queries in order.
    #[test]
    fn unit_multiplier_is_bit_identical_to_fmax_many() {
        let lib = lib();
        let m = mixed_module(&lib);
        let csta = Sta::new(&m, &lib).unwrap().compile();
        let ops: Vec<OperatingPoint> = (0..(FMAX_PARALLEL_THRESHOLD + 5))
            .map(|i| OperatingPoint::at_voltage(0.55 + 0.01 * i as f64))
            .collect();
        let unit: Vec<(OperatingPoint, f64)> = ops.iter().map(|&op| (op, 1.0)).collect();
        assert_eq!(csta.fmax_many_scaled(&unit), csta.fmax_many(&ops));
    }

    #[test]
    fn fmax_distribution_equals_sequential_single_sample_queries() {
        let lib = lib();
        let m = mixed_module(&lib);
        let csta = Sta::new(&m, &lib).unwrap().compile();
        let op = OperatingPoint::at_voltage(0.85);
        let scales = crate::VariationModel::gaussian(0.08).sample(0xD1E, 64);
        let batch = csta.fmax_distribution(op, &scales);
        for (l, &s) in scales.iter().enumerate() {
            assert_eq!(batch[l], csta.fmax_many_scaled(&[(op, s)])[0], "lane {l}");
        }
        // Slower dies (larger multipliers) can never be faster.
        for (l, &s) in scales.iter().enumerate() {
            if s > 1.0 {
                assert!(batch[l] <= csta.fmax_mhz(op), "lane {l}");
            }
        }
    }

    /// Sub-Vth corners degrade to fmax 0 instead of panicking, with or
    /// without a variation multiplier.
    #[test]
    fn scaled_sub_threshold_corner_degrades_gracefully() {
        let lib = lib();
        let m = mixed_module(&lib);
        let csta = Sta::new(&m, &lib).unwrap().compile();
        let op = OperatingPoint::at_voltage(0.3);
        assert_eq!(csta.fmax_many_scaled(&[(op, 0.9), (op, 1.1)]), vec![0.0, 0.0]);
    }

    #[test]
    fn critical_groups_match_reference() {
        let lib = lib();
        let m = mixed_module(&lib);
        let sta = Sta::new(&m, &lib).unwrap();
        let csta = sta.compile();
        let op = OperatingPoint::at_voltage(0.9);
        assert_eq!(sta.analyze_at(700.0, op).critical_groups(), csta.analyze_at(700.0, op).critical_groups());
    }
}
