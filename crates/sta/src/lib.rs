//! # syndcim-sta — static timing analysis
//!
//! Graph-based STA over [`syndcim_netlist::Module`]s, playing the
//! PrimeTime role in the reproduction's sign-off loop:
//!
//! * arrival-time propagation in levelized order using the library's
//!   logical-effort arcs and real per-net loads (pin caps + annotated
//!   wire caps);
//! * setup checks at sequential endpoints and output ports, worst
//!   negative slack, and `f_max`;
//! * critical-path extraction with per-instance steps (the searcher uses
//!   the groups on the path to decide *which* subcircuit to fix);
//! * operating-point scaling (alpha-power voltage model + temperature
//!   derate) for shmoo generation.
//!
//! Hold analysis is not modelled: the zero-delay cycle simulator and the
//! single-clock macros make hold fixes a constant-margin detail that the
//! paper's search never optimizes over.
//!
//! ```
//! use syndcim_netlist::NetlistBuilder;
//! use syndcim_pdk::CellLibrary;
//! use syndcim_sta::Sta;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::syn40();
//! let mut b = NetlistBuilder::new("pipe", &lib);
//! let a = b.input("a");
//! let x = b.xor2(a, a);
//! let q = b.dff(x);
//! b.output("q", q);
//! let m = b.finish();
//! let sta = Sta::new(&m, &lib)?;
//! let report = sta.analyze(1000.0);
//! assert!(report.wns_ps > 0.0, "a 1 ns clock is easy to meet");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use syndcim_ir::Lowering;
use syndcim_netlist::{Connectivity, InstId, Module, NetId, NetlistError, PortDir};
use syndcim_pdk::{CellLibrary, OperatingPoint};

pub mod artifact;
pub mod compiled;
pub mod variation;

pub use compiled::CompiledSta;
pub use variation::VariationModel;

/// Post-layout wire annotations, indexed by [`NetId::index`].
#[derive(Debug, Clone, Default)]
pub struct WireLoads {
    /// Extra capacitance per net in fF (added to pin loads).
    pub cap_ff: Vec<f64>,
    /// Extra (unscaled) wire delay per net in ps, added at the driver.
    pub delay_ps: Vec<f64>,
}

impl WireLoads {
    /// No-wire (pre-layout) annotation for a module with `nets` nets.
    pub fn zero(nets: usize) -> Self {
        WireLoads { cap_ff: vec![0.0; nets], delay_ps: vec![0.0; nets] }
    }
}

/// One step on a timing path, driver side.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Instance name (or `"<port>"` for the launching input port).
    pub through: String,
    /// Group name of the instance (`"top"` for ports).
    pub group: String,
    /// Net the step arrives on.
    pub net: String,
    /// Arrival time at that net in ps.
    pub arrival_ps: f64,
}

/// Result of one STA run at one operating point.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time per net in ps (`NEG_INFINITY` = constant/unreached).
    pub arrival_ps: Vec<f64>,
    /// Worst path delay (including launch clk-to-q and capture setup).
    pub max_delay_ps: f64,
    /// Worst slack against the analyzed clock period.
    pub wns_ps: f64,
    /// Maximum operating frequency in MHz implied by `max_delay_ps`.
    pub fmax_mhz: f64,
    /// The critical path, launch to capture.
    pub critical_path: Vec<PathStep>,
    /// The clock period analyzed against, in ps.
    pub period_ps: f64,
}

impl TimingReport {
    /// `true` if every endpoint meets the analyzed period.
    pub fn met(&self) -> bool {
        self.wns_ps >= 0.0
    }

    /// Names of the groups traversed by the critical path (deduplicated,
    /// in path order). The searcher uses this to decide which subcircuit
    /// to substitute, retime or split.
    pub fn critical_groups(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.critical_path {
            if out.last().map(String::as_str) != Some(s.group.as_str()) {
                out.push(s.group.clone());
            }
        }
        out
    }
}

/// Static timing analyzer bound to one module.
///
/// `Sta` is the *reference* analyzer: a direct graph walk, kept simple
/// and obviously correct. The engine-style fast path is obtained by
/// lowering it once with [`Sta::compile`] into a [`CompiledSta`], which
/// is differentially pinned to this implementation.
#[derive(Debug)]
pub struct Sta<'a> {
    module: &'a Module,
    lib: &'a CellLibrary,
    /// Shared netlist lowering (connectivity + levelized order + dense
    /// slots), reused by [`Sta::compile`].
    low: Lowering,
    wires: WireLoads,
    /// Total load per net in fF (sink pins + port load + wire).
    load_ff: Vec<f64>,
    /// Capacitive load assumed on each output port, in fF.
    port_load_ff: f64,
}

impl<'a> Sta<'a> {
    /// Build an analyzer with zero wire parasitics (pre-layout timing).
    ///
    /// # Errors
    ///
    /// Fails if the netlist has connectivity errors or combinational
    /// loops.
    pub fn new(module: &'a Module, lib: &'a CellLibrary) -> Result<Self, NetlistError> {
        let low = Lowering::new(module, lib)?;
        Ok(Self::with_lowering(module, lib, low))
    }

    /// Build an analyzer over an already-performed [`Lowering`] of
    /// `module` (zero wire parasitics; annotate with
    /// [`Sta::with_wire_loads`] afterwards).
    ///
    /// This is how the shared-IR flow avoids re-walking the netlist:
    /// `syndcim-core` lowers a macro once and hands the same traversal
    /// to the simulation, timing and power compilers. The lowering must
    /// have been built from the same `module`.
    pub fn with_lowering(module: &'a Module, lib: &'a CellLibrary, low: Lowering) -> Self {
        debug_assert_eq!(low.net_count(), module.net_count(), "lowering belongs to a different module");
        let port_load_ff = 4.0 * lib.process().cin_unit_ff;
        let mut sta = Sta {
            module,
            lib,
            low,
            wires: WireLoads::zero(module.net_count()),
            load_ff: Vec::new(),
            port_load_ff,
        };
        sta.rebuild_loads();
        sta
    }

    /// Annotate post-layout wire parasitics (replacing any previous
    /// annotation) and return the analyzer.
    ///
    /// # Panics
    ///
    /// Panics if the annotation tables do not cover every net.
    pub fn with_wire_loads(mut self, wires: WireLoads) -> Self {
        assert!(wires.cap_ff.len() >= self.module.net_count(), "wire cap table too short");
        assert!(wires.delay_ps.len() >= self.module.net_count(), "wire delay table too short");
        self.wires = wires;
        self.rebuild_loads();
        self
    }

    fn rebuild_loads(&mut self) {
        let n = self.module.net_count();
        let mut load = vec![0.0f64; n];
        for inst in &self.module.instances {
            let cell = self.lib.cell(inst.cell);
            for (pin, &net) in inst.inputs.iter().enumerate() {
                load[net.index()] += cell.input_cap_ff[pin];
            }
        }
        for p in self.module.ports.iter().filter(|p| p.dir == PortDir::Output) {
            load[p.net.index()] += self.port_load_ff;
        }
        for (i, l) in load.iter_mut().enumerate() {
            *l += self.wires.cap_ff.get(i).copied().unwrap_or(0.0);
        }
        self.load_ff = load;
    }

    /// Analyze at the nominal operating point against `period_ps`.
    pub fn analyze(&self, period_ps: f64) -> TimingReport {
        self.analyze_at(period_ps, OperatingPoint::nominal(self.lib.process()))
    }

    /// Analyze against `period_ps` at an explicit operating point.
    /// Gate delays and setup/clk-to-q scale with the alpha-power voltage
    /// model; annotated wire delays are RC and do not scale.
    pub fn analyze_at(&self, period_ps: f64, op: OperatingPoint) -> TimingReport {
        let scale = op.delay_scale(self.lib.process());
        let process = self.lib.process();
        let n = self.module.net_count();
        let mut arrival = vec![f64::NEG_INFINITY; n];
        // Predecessor for path reconstruction: (driving inst, from net).
        let mut pred: Vec<Option<(InstId, NetId)>> = vec![None; n];

        for p in self.module.input_ports() {
            arrival[p.net.index()] = 0.0;
        }
        for (i, inst) in self.module.instances.iter().enumerate() {
            let cell = self.lib.cell(inst.cell);
            if let Some(seq) = cell.seq {
                let qnet = inst.outputs[0];
                let a = seq.clk_to_q_ps * scale + self.wire_delay(qnet);
                if a > arrival[qnet.index()] {
                    arrival[qnet.index()] = a;
                    pred[qnet.index()] = Some((InstId(i as u32), qnet));
                }
            }
        }

        for &id in self.low.order() {
            let inst = &self.module.instances[id.index()];
            let cell = self.lib.cell(inst.cell);
            for arc in &cell.arcs {
                let in_net = inst.inputs[arc.from_input];
                let a_in = arrival[in_net.index()];
                if a_in == f64::NEG_INFINITY {
                    continue; // constant input: no path through it
                }
                let out_net = inst.outputs[arc.to_output];
                let d = cell.arc_delay_ps(arc, process.tau_ps, self.load_ff[out_net.index()]) * scale
                    + self.wire_delay(out_net);
                let cand = a_in + d;
                if cand > arrival[out_net.index()] {
                    arrival[out_net.index()] = cand;
                    pred[out_net.index()] = Some((id, in_net));
                }
            }
        }

        // Endpoints.
        let mut max_delay = 0.0f64;
        let mut worst_net: Option<NetId> = None;
        let consider = |net: NetId, extra: f64, worst: &mut Option<NetId>, maxd: &mut f64| {
            let a = arrival[net.index()];
            if a == f64::NEG_INFINITY {
                return;
            }
            let total = a + extra;
            if total > *maxd {
                *maxd = total;
                *worst = Some(net);
            }
        };
        for p in self.module.output_ports() {
            consider(p.net, 0.0, &mut worst_net, &mut max_delay);
        }
        for inst in &self.module.instances {
            let cell = self.lib.cell(inst.cell);
            if let Some(seq) = cell.seq {
                for &dnet in &inst.inputs {
                    consider(dnet, seq.setup_ps * scale, &mut worst_net, &mut max_delay);
                }
            }
        }

        let critical_path = worst_net.map(|w| self.walk_path(w, &arrival, &pred)).unwrap_or_default();
        let fmax_mhz = if max_delay > 0.0 { 1e6 / max_delay } else { f64::INFINITY };
        TimingReport {
            arrival_ps: arrival,
            max_delay_ps: max_delay,
            wns_ps: period_ps - max_delay,
            fmax_mhz,
            critical_path,
            period_ps,
        }
    }

    fn wire_delay(&self, net: NetId) -> f64 {
        self.wires.delay_ps.get(net.index()).copied().unwrap_or(0.0)
    }

    fn walk_path(&self, end: NetId, arrival: &[f64], pred: &[Option<(InstId, NetId)>]) -> Vec<PathStep> {
        let mut steps = Vec::new();
        let mut cur = end;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > self.module.net_count() + 2 {
                break; // defensive: malformed pred chain
            }
            match pred[cur.index()] {
                Some((inst, from)) => {
                    let i = &self.module.instances[inst.index()];
                    steps.push(PathStep {
                        through: i.name.clone(),
                        group: self.module.group_name(i.group).to_string(),
                        net: self.module.nets[cur.index()].name.clone(),
                        arrival_ps: arrival[cur.index()],
                    });
                    if from == cur {
                        break; // sequential launch point
                    }
                    cur = from;
                }
                None => {
                    steps.push(PathStep {
                        through: "<port>".to_string(),
                        group: "top".to_string(),
                        net: self.module.nets[cur.index()].name.clone(),
                        arrival_ps: arrival[cur.index()],
                    });
                    break;
                }
            }
        }
        steps.reverse();
        steps
    }

    /// `f_max` in MHz at an operating point (the period argument does not
    /// affect arrival times, so no search is needed).
    pub fn fmax_mhz(&self, op: OperatingPoint) -> f64 {
        self.analyze_at(1.0, op).fmax_mhz
    }

    /// Total load on a net in fF (for inspection/tests).
    pub fn net_load_ff(&self, net: NetId) -> f64 {
        self.load_ff[net.index()]
    }

    /// Connectivity tables (shared with other consumers).
    pub fn connectivity(&self) -> &Connectivity {
        self.low.connectivity()
    }

    /// Fanout count of the most-loaded net (diagnostics for driver
    /// sizing).
    pub fn max_fanout(&self) -> usize {
        let conn = self.low.connectivity();
        (0..self.module.net_count()).map(|i| conn.fanout(NetId(i as u32))).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellKind;

    fn lib() -> CellLibrary {
        CellLibrary::syn40()
    }

    #[test]
    fn chain_delay_adds_up() {
        let lib = lib();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.input("a");
        let mut x = a;
        for _ in 0..8 {
            x = b.not(x);
        }
        b.output("y", x);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let r = sta.analyze(10_000.0);
        // 7 inverters drive one inverter load each, the last drives the
        // port load (4 units): 7·τ(1+1) + τ(1+4) = 19τ.
        let expect = lib.process().tau_ps * 19.0;
        assert!((r.max_delay_ps - expect).abs() < 1e-6, "got {} want {expect}", r.max_delay_ps);
        assert!(r.met());
        assert_eq!(r.critical_path.len(), 9); // port + 8 inverters
    }

    #[test]
    fn register_paths_include_clk_to_q_and_setup() {
        let lib = lib();
        let mut b = NetlistBuilder::new("r2r", &lib);
        let a = b.input("a");
        let q1 = b.dff(a);
        let x = b.not(q1);
        let q2 = b.dff(x);
        b.output("q", q2);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let r = sta.analyze(10_000.0);
        let dff = lib.cell(lib.id_of(CellKind::Dff));
        let seq = dff.seq.unwrap();
        // clk2q + inv(load = dff d-pin cap) + setup
        let inv_delay =
            lib.process().tau_ps * (1.0 + 1.0 * (dff.input_cap_ff[0] / lib.process().cin_unit_ff));
        let expect = seq.clk_to_q_ps + inv_delay + seq.setup_ps;
        assert!((r.max_delay_ps - expect).abs() < 1e-6, "got {} want {expect}", r.max_delay_ps);
    }

    #[test]
    fn fmax_scales_down_with_voltage() {
        let lib = lib();
        let mut b = NetlistBuilder::new("f", &lib);
        let a = b.input("a");
        let x = b.xor2(a, a);
        let q = b.dff(x);
        b.output("q", q);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let f09 = sta.fmax_mhz(OperatingPoint::at_voltage(0.9));
        let f12 = sta.fmax_mhz(OperatingPoint::at_voltage(1.2));
        let f07 = sta.fmax_mhz(OperatingPoint::at_voltage(0.7));
        assert!(f12 > f09 && f09 > f07, "f12={f12} f09={f09} f07={f07}");
    }

    #[test]
    fn wire_loads_slow_the_path() {
        let lib = lib();
        let mut b = NetlistBuilder::new("w", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let base = Sta::new(&m, &lib).unwrap().analyze(1_000.0).max_delay_ps;
        let mut wires = WireLoads::zero(m.net_count());
        for c in wires.cap_ff.iter_mut() {
            *c = 50.0;
        }
        for d in wires.delay_ps.iter_mut() {
            *d = 30.0;
        }
        let loaded = Sta::new(&m, &lib).unwrap().with_wire_loads(wires).analyze(1_000.0).max_delay_ps;
        assert!(loaded > base + 50.0, "base={base} loaded={loaded}");
    }

    #[test]
    fn constant_nets_do_not_create_paths() {
        let lib = lib();
        let mut b = NetlistBuilder::new("c", &lib);
        let a = b.input("a");
        let one = b.const1();
        let y = b.and2(a, one);
        b.output("y", y);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let r = sta.analyze(1_000.0);
        // Path must start at port `a`, not at the tie cell.
        assert_eq!(r.critical_path.first().unwrap().through, "<port>");
    }

    #[test]
    fn critical_groups_name_the_culprit() {
        let lib = lib();
        let mut b = NetlistBuilder::new("g", &lib);
        let a = b.input("a");
        b.push_group("fast");
        let x = b.not(a);
        b.pop_group();
        b.push_group("slow");
        let mut y = x;
        for _ in 0..6 {
            y = b.xor2(y, y);
        }
        b.pop_group();
        b.output("y", y);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let groups = sta.analyze(1_000.0).critical_groups();
        assert!(groups.contains(&"slow".to_string()), "{groups:?}");
    }

    #[test]
    fn wns_sign_tracks_period() {
        let lib = lib();
        let mut b = NetlistBuilder::new("p", &lib);
        let a = b.input("a");
        let mut x = a;
        for _ in 0..20 {
            x = b.xor2(x, x);
        }
        b.output("y", x);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let d = sta.analyze(0.0).max_delay_ps;
        assert!(!sta.analyze(d - 1.0).met());
        assert!(sta.analyze(d + 1.0).met());
    }

    #[test]
    fn bitcell_launch_models_simultaneous_mac_and_update() {
        // Weight nets launch from the bitcell with its read access time —
        // this is what lets the flow check MAC timing while weights are
        // being updated (the "simultaneous MAC and write" property).
        let lib = lib();
        let mut b = NetlistBuilder::new("bc", &lib);
        let wwl = b.input("wwl");
        let wbl = b.input("wbl");
        let act = b.input("act");
        let rbl = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
        let y = b.add(CellKind::MultNor, &[act, rbl])[0];
        b.output("y", y);
        let m = b.finish();
        let sta = Sta::new(&m, &lib).unwrap();
        let r = sta.analyze(10_000.0);
        let access = lib.cell(lib.id_of(CellKind::Sram6T2T)).seq.unwrap().clk_to_q_ps;
        assert!(r.max_delay_ps > access, "path must include the bitcell access time");
    }
}
