//! `.scim` codec for the compiled timing program
//! ([`SectionId::Sta`](syndcim_ir::artifact::SectionId)).
//!
//! The section is the [`CompiledSta`] struct-of-arrays columns written
//! verbatim: process record, launch table, levelized arc stream and the
//! two endpoint tables, every `f64` as its exact IEEE-754 bit pattern —
//! so a loaded program's `fmax_mhz`/`analyze_at` results are
//! bit-identical to the in-memory compile (pinned by
//! `tests/artifact_roundtrip.rs`). Decoding re-validates the bounds the
//! analysis passes index without checking: every slot below
//! `net_count` (the arrival buffer's extent) and every launch/arc
//! instance below the symbol tables' instance count (critical-path
//! reconstruction resolves instance names by index).

use syndcim_ir::artifact::{ArtifactError, SectionReader, SectionWriter};
use syndcim_ir::Symbols;

use crate::CompiledSta;

/// Encode `sta` into a [`SectionId::Sta`](syndcim_ir::artifact::SectionId)
/// payload. The shared [`Symbols`] live in their own section and are
/// re-attached on decode.
pub fn encode_sta(sta: &CompiledSta) -> SectionWriter {
    let mut w = SectionWriter::new();
    syndcim_ir::artifact::put_process(&mut w, &sta.process);
    w.put_u64(sta.net_count as u64);
    w.put_u32s(&sta.input_slots);
    w.put_u32s(&sta.launch_slot);
    w.put_f64s(&sta.launch_base_ps);
    w.put_f64s(&sta.launch_wire_ps);
    w.put_u32s(&sta.launch_inst);
    w.put_u32s(&sta.arc_src);
    w.put_u32s(&sta.arc_dst);
    w.put_f64s(&sta.arc_base_ps);
    w.put_f64s(&sta.arc_wire_ps);
    w.put_u32s(&sta.arc_inst);
    w.put_u32s(&sta.port_end_slot);
    w.put_u32s(&sta.seq_end_slot);
    w.put_f64s(&sta.seq_end_setup_ps);
    w
}

/// Decode a [`SectionId::Sta`](syndcim_ir::artifact::SectionId) payload
/// against the already-decoded shared `symbols`.
pub fn decode_sta(r: &mut SectionReader<'_>, symbols: &Symbols) -> Result<CompiledSta, ArtifactError> {
    let process = syndcim_ir::artifact::get_process(r)?;
    let net_count = r.get_u64("sta net count")? as usize;
    if net_count != symbols.net_count() {
        return Err(
            r.malformed(format!("net count {net_count} disagrees with symbols ({})", symbols.net_count()))
        );
    }
    let inst_count = symbols.inst_count();

    let input_slots = r.get_u32s("input slots")?;
    let launch_slot = r.get_u32s("launch slots")?;
    let launch_base_ps = r.get_f64s("launch base delays")?;
    let launch_wire_ps = r.get_f64s("launch wire delays")?;
    let launch_inst = r.get_u32s("launch instances")?;
    let arc_src = r.get_u32s("arc sources")?;
    let arc_dst = r.get_u32s("arc destinations")?;
    let arc_base_ps = r.get_f64s("arc base delays")?;
    let arc_wire_ps = r.get_f64s("arc wire delays")?;
    let arc_inst = r.get_u32s("arc instances")?;
    let port_end_slot = r.get_u32s("port endpoints")?;
    let seq_end_slot = r.get_u32s("sequential endpoints")?;
    let seq_end_setup_ps = r.get_f64s("sequential setup times")?;

    let launches = launch_slot.len();
    if launch_base_ps.len() != launches || launch_wire_ps.len() != launches || launch_inst.len() != launches {
        return Err(r.malformed("launch table column lengths disagree"));
    }
    let arcs = arc_src.len();
    if arc_dst.len() != arcs
        || arc_base_ps.len() != arcs
        || arc_wire_ps.len() != arcs
        || arc_inst.len() != arcs
    {
        return Err(r.malformed("arc table column lengths disagree"));
    }
    if seq_end_setup_ps.len() != seq_end_slot.len() {
        return Err(r.malformed("sequential endpoint column lengths disagree"));
    }
    for (what, slots) in [
        ("input slot", &input_slots),
        ("launch slot", &launch_slot),
        ("arc source slot", &arc_src),
        ("arc destination slot", &arc_dst),
        ("port endpoint slot", &port_end_slot),
        ("sequential endpoint slot", &seq_end_slot),
    ] {
        for &s in slots.iter() {
            if s as usize >= net_count {
                return Err(r.malformed(format!("{what} {s} out of range ({net_count} nets)")));
            }
        }
    }
    for (what, insts) in [("launch instance", &launch_inst), ("arc instance", &arc_inst)] {
        for &i in insts.iter() {
            if i as usize >= inst_count {
                return Err(r.malformed(format!("{what} {i} out of range ({inst_count} instances)")));
            }
        }
    }

    Ok(CompiledSta {
        process,
        net_count,
        input_slots,
        launch_slot,
        launch_base_ps,
        launch_wire_ps,
        launch_inst,
        arc_src,
        arc_dst,
        arc_base_ps,
        arc_wire_ps,
        arc_inst,
        port_end_slot,
        seq_end_slot,
        seq_end_setup_ps,
        syms: symbols.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sta, WireLoads};
    use syndcim_ir::artifact::{ArtifactReader, ArtifactWriter, SectionId};
    use syndcim_ir::Lowering;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::{CellLibrary, OperatingPoint};

    fn frame(payload: SectionWriter) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ArtifactWriter::new(&mut out, 1).unwrap();
        w.write_section(SectionId::Sta, payload).unwrap();
        w.finish().unwrap();
        out
    }

    #[test]
    fn sta_codec_roundtrips_bit_identical_fmax_and_reports() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("pipe", &lib);
        let a = b.input("a");
        let x = b.xor2(a, a);
        let x2 = b.not(x);
        let q = b.dff(x2);
        b.output("q", q);
        let m = b.finish();
        let low = Lowering::new(&m, &lib).unwrap();
        let mut wires = WireLoads::zero(m.net_count());
        wires.cap_ff[x.index()] = 1.5;
        wires.delay_ps[x.index()] = 2.25;
        let sta = Sta::with_lowering(&m, &lib, low.clone()).with_wire_loads(wires).compile();

        let bytes = frame(encode_sta(&sta));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Sta).unwrap();
        let back = decode_sta(&mut r, low.symbols()).unwrap();
        r.finish().unwrap();

        for v in [0.7, 0.9, 1.2] {
            let op = OperatingPoint::at_voltage(v);
            assert_eq!(back.fmax_mhz(op), sta.fmax_mhz(op), "fmax at {v} V");
            let (want, got) = (sta.analyze_at(900.0, op), back.analyze_at(900.0, op));
            assert_eq!(got.arrival_ps, want.arrival_ps);
            assert_eq!(got.wns_ps, want.wns_ps);
            assert_eq!(got.critical_path, want.critical_path);
        }
    }

    #[test]
    fn dangling_slots_are_rejected() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("pipe", &lib);
        let a = b.input("a");
        let q = b.dff(a);
        b.output("q", q);
        let m = b.finish();
        let low = Lowering::new(&m, &lib).unwrap();
        let mut sta = Sta::with_lowering(&m, &lib, low.clone()).compile();
        sta.seq_end_slot[0] = 10_000;
        let bytes = frame(encode_sta(&sta));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Sta).unwrap();
        assert!(matches!(decode_sta(&mut r, low.symbols()), Err(ArtifactError::Malformed { .. })));
    }
}
