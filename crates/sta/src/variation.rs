//! Process-variation sampling for Monte-Carlo timing.
//!
//! A [`VariationModel`] describes the lane-to-lane spread of the gate
//! delay multiplier: each Monte-Carlo sample (one engine lane, one
//! virtual die) gets its own multiplier applied on top of the
//! operating point's voltage/temperature `delay_scale`. Sampling is
//! fully deterministic — the same `(model, seed, lanes)` triple always
//! yields the same vector, and a zero-sigma model yields *exactly*
//! `1.0` for every lane, which
//! [`CompiledSta::fmax_distribution`](crate::CompiledSta::fmax_distribution)
//! turns into a run bit-identical to the nominal `fmax_many` pass
//! (pinned by `tests/faults_variation.rs`).
//!
//! The gaussian draw is an Irwin–Hall sum (twelve uniforms minus six):
//! mean 0, variance 1, no transcendental functions, so the sampled
//! stream is reproducible bit-for-bit on every platform the rand shim
//! runs on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multipliers closer to zero than this are clamped: a die that slow
/// is a yield loss, not a timing model, and non-positive scales would
/// corrupt the arrival recursion.
const MIN_SCALE: f64 = 0.05;

/// A per-lane gate-delay-multiplier distribution (one sample = one
/// virtual die).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Mean multiplier (`1.0` = the nominal corner).
    pub mean: f64,
    /// Standard deviation of the multiplier (`0.0` = no variation).
    pub sigma: f64,
}

impl VariationModel {
    /// The degenerate no-variation model: every sample is exactly
    /// `1.0`, making Monte-Carlo passes bit-identical to nominal.
    pub fn nominal() -> Self {
        VariationModel { mean: 1.0, sigma: 0.0 }
    }

    /// Gaussian spread around the nominal multiplier.
    pub fn gaussian(sigma: f64) -> Self {
        VariationModel { mean: 1.0, sigma }
    }

    /// Whether sampling this model can only ever produce `1.0`.
    pub fn is_nominal(&self) -> bool {
        self.sigma == 0.0 && self.mean == 1.0
    }

    /// Draw one deterministic multiplier vector, one entry per lane.
    /// Samples are clamped to at least `0.05` (a positive scale keeps
    /// the arrival recursion well-defined). With `sigma == 0` no
    /// random draw happens at all — every entry is exactly `mean`.
    pub fn sample(&self, seed: u64, lanes: usize) -> Vec<f64> {
        if self.sigma == 0.0 {
            return vec![self.mean.max(MIN_SCALE); lanes];
        }
        let mut rng = StdRng::seed_from_u64(seed);
        (0..lanes)
            .map(|_| {
                // Irwin–Hall standard normal: Σ₁₂ U(0,1) − 6.
                let mut z = -6.0;
                for _ in 0..12 {
                    z += ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                }
                (self.mean + self.sigma * z).max(MIN_SCALE)
            })
            .collect()
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_model_samples_exactly_one() {
        let v = VariationModel::nominal().sample(42, 256);
        assert_eq!(v, vec![1.0; 256]);
        assert!(VariationModel::nominal().is_nominal());
        assert!(!VariationModel::gaussian(0.05).is_nominal());
    }

    #[test]
    fn sampling_is_deterministic_and_spread_tracks_sigma() {
        let m = VariationModel::gaussian(0.1);
        let a = m.sample(7, 1000);
        assert_eq!(a, m.sample(7, 1000), "same seed, same vector");
        assert_ne!(a, m.sample(8, 1000), "different seed, different vector");
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let var = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / a.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn samples_are_clamped_positive() {
        // A huge sigma would otherwise produce non-positive scales.
        let v = VariationModel::gaussian(10.0).sample(1, 512);
        assert!(v.iter().all(|&s| s >= 0.05));
    }
}
