//! Global-routing estimation and parasitic extraction.
//!
//! After placement, every net's half-perimeter wirelength (HPWL) is
//! measured from its pin positions; wire capacitance and Elmore delay are
//! derived from the process constants with a detour factor. The result
//! back-annotates STA and power analysis — the "post-layout simulation"
//! step of the paper's flow.
//!
//! ## Fused parallel sweep
//!
//! Pin-load and bounding-box accumulation are one fused pass: the
//! instance table is cut into a **fixed** number of contiguous stripes
//! (never a function of the worker count), each stripe accumulates both
//! quantities into private per-net arrays, and a second parallel pass
//! merges the stripes **in stripe order** per net chunk. Pin-load sums
//! therefore fold in a fixed order and bbox merges are min/max (exactly
//! associative), so the extracted parasitics are bit-identical for any
//! thread count.

use crate::par::DisjointWriter;
use crate::place::Placement;
use syndcim_ir::{default_threads, parallel_map_threads};
use syndcim_netlist::{Module, NetlistError};
use syndcim_pdk::CellLibrary;
use syndcim_telemetry as telemetry;

/// Per-net parasitic estimates, indexed by `NetId::index`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEstimates {
    /// Half-perimeter wirelength per net in µm.
    pub hpwl_um: Vec<f64>,
    /// Wire capacitance per net in fF.
    pub cap_ff: Vec<f64>,
    /// Elmore wire delay per net in ps.
    pub delay_ps: Vec<f64>,
    /// Total routed length in µm (sum of detoured HPWL).
    pub total_wirelength_um: f64,
}

/// Routing detour factor applied on HPWL (global routing is never
/// perfectly L-shaped).
pub const DETOUR: f64 = 1.15;

/// Instance stripes for the fused sweep. Fixed so the floating-point
/// fold order — and thus every extracted value — is independent of the
/// worker count.
const STRIPES: usize = 4;

/// Nets per merge/derive chunk (fixed for the same reason).
const NET_CHUNK: usize = 8192;

/// Per-net pin bounding box.
#[derive(Debug, Clone, Copy)]
struct BBox {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    pins: u32,
}

const EMPTY_BBOX: BBox =
    BBox { x0: f64::INFINITY, y0: f64::INFINITY, x1: f64::NEG_INFINITY, y1: f64::NEG_INFINITY, pins: 0 };

impl BBox {
    #[inline]
    fn grow(&mut self, x: f64, y: f64) {
        self.x0 = self.x0.min(x);
        self.y0 = self.y0.min(y);
        self.x1 = self.x1.max(x);
        self.y1 = self.y1.max(y);
        self.pins += 1;
    }

    #[inline]
    fn union(mut self, o: &BBox) -> BBox {
        self.x0 = self.x0.min(o.x0);
        self.y0 = self.y0.min(o.y0);
        self.x1 = self.x1.max(o.x1);
        self.y1 = self.y1.max(o.y1);
        self.pins += o.pins;
        self
    }
}

/// Extract wire parasitics for `module` under `placement` (auto worker
/// count).
///
/// Pins are approximated at cell centres; port pins sit on the die edge
/// nearest the net's internal centroid, which reproduces the
/// boundary-driver wire loads of an abutment-ready hard macro.
///
/// # Errors
///
/// The `NetlistError` contract is kept for callers that extract from
/// unvalidated netlists; inside the `implement` flow the module has
/// already passed `Lowering::validated`, and extraction itself performs
/// no fallible connectivity work (the former redundant
/// `Connectivity::build` was removed).
pub fn extract_wires(
    module: &Module,
    lib: &CellLibrary,
    placement: &Placement,
) -> Result<WireEstimates, NetlistError> {
    extract_wires_threads(module, lib, placement, 0)
}

/// [`extract_wires`] with an explicit worker-thread count (`0` = auto).
/// The estimates are bit-identical for every thread count.
pub fn extract_wires_threads(
    module: &Module,
    lib: &CellLibrary,
    placement: &Placement,
    threads: usize,
) -> Result<WireEstimates, NetlistError> {
    let n = module.net_count();
    let n_inst = module.instances.len();
    let process = lib.process();
    let workers = |jobs: usize| if threads == 0 { default_threads(jobs) } else { threads };

    // Fused sweep: each stripe accumulates pin load AND pin bboxes for
    // its contiguous instance range in one walk over the instances.
    let stripe_jobs: Vec<(usize, usize)> =
        (0..STRIPES).map(|s| (s * n_inst / STRIPES, (s + 1) * n_inst / STRIPES)).collect();
    let stripes: Vec<(Vec<f64>, Vec<BBox>)> = {
        telemetry::span!("wires.sweep");
        parallel_map_threads(stripe_jobs, workers(STRIPES), |_, (lo, hi)| {
            let mut pin_load = vec![0.0f64; n];
            let mut bbox = vec![EMPTY_BBOX; n];
            for idx in lo..hi {
                let inst = &module.instances[idx];
                let cell = lib.cell(inst.cell);
                let (x, y) = placement.cells[idx].rect.center();
                for (pin, &net) in inst.inputs.iter().enumerate() {
                    pin_load[net.index()] += cell.input_cap_ff[pin];
                    bbox[net.index()].grow(x, y);
                }
                for &net in &inst.outputs {
                    bbox[net.index()].grow(x, y);
                }
            }
            (pin_load, bbox)
        })
    };

    // Deterministic merge: per net, fold the stripes in stripe order.
    let chunk_jobs: Vec<(usize, usize)> =
        (0..n.div_ceil(NET_CHUNK)).map(|c| (c * NET_CHUNK, ((c + 1) * NET_CHUNK).min(n))).collect();
    let mut pin_load = vec![0.0f64; n];
    let mut bbox = vec![EMPTY_BBOX; n];
    {
        telemetry::span!("wires.merge");
        let load_w = DisjointWriter::new(&mut pin_load);
        let bbox_w = DisjointWriter::new(&mut bbox);
        parallel_map_threads(chunk_jobs.clone(), workers(chunk_jobs.len()), |_, (lo, hi)| {
            for i in lo..hi {
                let mut load = 0.0f64;
                let mut b = EMPTY_BBOX;
                for (stripe_load, stripe_bbox) in &stripes {
                    load += stripe_load[i];
                    b = b.union(&stripe_bbox[i]);
                }
                load_w.set(i, load);
                bbox_w.set(i, b);
            }
        });
    }
    drop(stripes);

    // Macro pins sit on the die edge nearest the logic they connect to
    // (as an abutment-ready hard macro places them): project each port
    // net's internal centroid onto the closest edge. Serial — the port
    // list is a handful of nets.
    for p in &module.ports {
        let b = bbox[p.net.index()];
        let (cx, cy) =
            if b.pins > 0 { ((b.x0 + b.x1) / 2.0, (b.y0 + b.y1) / 2.0) } else { placement.die.center() };
        let die = placement.die;
        let d_left = cx - die.x_um;
        let d_right = die.right() - cx;
        let d_bot = cy - die.y_um;
        let d_top = die.top() - cy;
        let min = d_left.min(d_right).min(d_bot).min(d_top);
        let (x, y) = if min == d_left {
            (die.x_um, cy)
        } else if min == d_right {
            (die.right(), cy)
        } else if min == d_bot {
            (cx, die.y_um)
        } else {
            (cx, die.top())
        };
        bbox[p.net.index()].grow(x, y);
    }

    // Derive per-net parasitics in parallel chunks; partial wirelength
    // totals merge in chunk order.
    let mut hpwl = vec![0.0f64; n];
    let mut cap = vec![0.0f64; n];
    let mut delay = vec![0.0f64; n];
    let totals: Vec<f64> = {
        telemetry::span!("wires.derive");
        let hpwl_w = DisjointWriter::new(&mut hpwl);
        let cap_w = DisjointWriter::new(&mut cap);
        let delay_w = DisjointWriter::new(&mut delay);
        parallel_map_threads(chunk_jobs, workers(n.div_ceil(NET_CHUNK)), |_, (lo, hi)| {
            let mut total = 0.0f64;
            for i in lo..hi {
                let b = bbox[i];
                if b.pins < 2 {
                    continue;
                }
                let l = ((b.x1 - b.x0) + (b.y1 - b.y0)) * DETOUR;
                hpwl_w.set(i, l / DETOUR);
                cap_w.set(i, l * process.wire_cap_ff_per_um);
                delay_w.set(i, process.wire_delay_ps(l, pin_load[i]));
                total += l;
            }
            total
        })
    };
    let total = totals.iter().sum();
    Ok(WireEstimates { hpwl_um: hpwl, cap_ff: cap, delay_ps: delay, total_wirelength_um: total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, FloorplanConfig};
    use syndcim_netlist::NetlistBuilder;

    #[test]
    fn parasitics_are_positive_and_bounded_by_die() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("w", &lib);
        let a = b.input("a");
        b.push_group("col0");
        let mut x = a;
        for _ in 0..24 {
            x = b.not(x);
        }
        b.pop_group();
        b.output("y", x);
        let m = b.finish();
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let w = extract_wires(&m, &lib, &p).unwrap();
        let max_possible = (p.die.w_um + p.die.h_um) * DETOUR;
        let mut some_wire = false;
        for i in 0..m.net_count() {
            assert!(w.cap_ff[i] >= 0.0 && w.delay_ps[i] >= 0.0);
            assert!(w.hpwl_um[i] * DETOUR <= max_possible + 1e-9);
            some_wire |= w.hpwl_um[i] > 0.0;
        }
        assert!(some_wire, "at least the port nets must have length");
        assert!(w.total_wirelength_um > 0.0);
    }

    #[test]
    fn single_pin_nets_have_no_wire() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("s", &lib);
        let a = b.input("a");
        let y = b.not(a);
        let _dangling = b.net("dangling");
        b.output("y", y);
        let m = b.finish();
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let w = extract_wires(&m, &lib, &p).unwrap();
        let dangling_idx = m.nets.iter().position(|n| n.name == "dangling").unwrap();
        assert_eq!(w.hpwl_um[dangling_idx], 0.0);
        assert_eq!(w.cap_ff[dangling_idx], 0.0);
    }

    #[test]
    fn thread_counts_produce_identical_estimates() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        b.push_group("col0");
        let mut x = a;
        for _ in 0..60 {
            x = b.xor2(x, a);
        }
        b.pop_group();
        b.output("y", x);
        let m = b.finish();
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let serial = extract_wires_threads(&m, &lib, &p, 1).unwrap();
        for t in [2, 4, 8] {
            let par = extract_wires_threads(&m, &lib, &p, t).unwrap();
            assert_eq!(serial, par, "estimates must be bit-identical at {t} workers");
        }
    }
}
