//! Global-routing estimation and parasitic extraction.
//!
//! After placement, every net's half-perimeter wirelength (HPWL) is
//! measured from its pin positions; wire capacitance and Elmore delay are
//! derived from the process constants with a detour factor. The result
//! back-annotates STA and power analysis — the "post-layout simulation"
//! step of the paper's flow.

use crate::place::Placement;
use syndcim_netlist::{Connectivity, Module, NetlistError};
use syndcim_pdk::CellLibrary;

/// Per-net parasitic estimates, indexed by `NetId::index`.
#[derive(Debug, Clone)]
pub struct WireEstimates {
    /// Half-perimeter wirelength per net in µm.
    pub hpwl_um: Vec<f64>,
    /// Wire capacitance per net in fF.
    pub cap_ff: Vec<f64>,
    /// Elmore wire delay per net in ps.
    pub delay_ps: Vec<f64>,
    /// Total routed length in µm (sum of detoured HPWL).
    pub total_wirelength_um: f64,
}

/// Routing detour factor applied on HPWL (global routing is never
/// perfectly L-shaped).
pub const DETOUR: f64 = 1.15;

/// Extract wire parasitics for `module` under `placement`.
///
/// Pins are approximated at cell centres; port pins sit on the die edge
/// nearest the core (left edge for inputs, right edge for outputs),
/// which reproduces the boundary-driver wire loads of a real macro.
///
/// # Errors
///
/// Fails if the netlist has connectivity errors.
pub fn extract_wires(
    module: &Module,
    lib: &CellLibrary,
    placement: &Placement,
) -> Result<WireEstimates, NetlistError> {
    let conn = Connectivity::build(module)?;
    let n = module.net_count();
    let process = lib.process();

    // Pin load per net (needed for Elmore delay).
    let mut pin_load = vec![0.0f64; n];
    for inst in &module.instances {
        let cell = lib.cell(inst.cell);
        for (pin, &net) in inst.inputs.iter().enumerate() {
            pin_load[net.index()] += cell.input_cap_ff[pin];
        }
    }

    // Bounding box per net.
    #[derive(Clone, Copy)]
    struct BBox {
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        pins: u32,
    }
    let empty =
        BBox { x0: f64::INFINITY, y0: f64::INFINITY, x1: f64::NEG_INFINITY, y1: f64::NEG_INFINITY, pins: 0 };
    let mut bbox = vec![empty; n];
    let grow = |net: usize, x: f64, y: f64, bbox: &mut Vec<BBox>| {
        let b = &mut bbox[net];
        b.x0 = b.x0.min(x);
        b.y0 = b.y0.min(y);
        b.x1 = b.x1.max(x);
        b.y1 = b.y1.max(y);
        b.pins += 1;
    };
    for (idx, inst) in module.instances.iter().enumerate() {
        let (x, y) = placement.cells[idx].rect.center();
        for &net in inst.inputs.iter().chain(inst.outputs.iter()) {
            grow(net.index(), x, y, &mut bbox);
        }
    }
    // Macro pins sit on the die edge nearest the logic they connect to
    // (as an abutment-ready hard macro places them): project each port
    // net's internal centroid onto the closest edge.
    for p in &module.ports {
        let b = bbox[p.net.index()];
        let (cx, cy) =
            if b.pins > 0 { ((b.x0 + b.x1) / 2.0, (b.y0 + b.y1) / 2.0) } else { placement.die.center() };
        let die = placement.die;
        let d_left = cx - die.x_um;
        let d_right = die.right() - cx;
        let d_bot = cy - die.y_um;
        let d_top = die.top() - cy;
        let min = d_left.min(d_right).min(d_bot).min(d_top);
        let (x, y) = if min == d_left {
            (die.x_um, cy)
        } else if min == d_right {
            (die.right(), cy)
        } else if min == d_bot {
            (cx, die.y_um)
        } else {
            (cx, die.top())
        };
        grow(p.net.index(), x, y, &mut bbox);
    }
    let _ = conn;

    let mut hpwl = vec![0.0f64; n];
    let mut cap = vec![0.0f64; n];
    let mut delay = vec![0.0f64; n];
    let mut total = 0.0;
    for i in 0..n {
        let b = bbox[i];
        if b.pins < 2 {
            continue;
        }
        let l = ((b.x1 - b.x0) + (b.y1 - b.y0)) * DETOUR;
        hpwl[i] = l / DETOUR;
        cap[i] = l * process.wire_cap_ff_per_um;
        delay[i] = process.wire_delay_ps(l, pin_load[i]);
        total += l;
    }
    Ok(WireEstimates { hpwl_um: hpwl, cap_ff: cap, delay_ps: delay, total_wirelength_um: total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, FloorplanConfig};
    use syndcim_netlist::NetlistBuilder;

    #[test]
    fn parasitics_are_positive_and_bounded_by_die() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("w", &lib);
        let a = b.input("a");
        b.push_group("col0");
        let mut x = a;
        for _ in 0..24 {
            x = b.not(x);
        }
        b.pop_group();
        b.output("y", x);
        let m = b.finish();
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let w = extract_wires(&m, &lib, &p).unwrap();
        let max_possible = (p.die.w_um + p.die.h_um) * DETOUR;
        let mut some_wire = false;
        for i in 0..m.net_count() {
            assert!(w.cap_ff[i] >= 0.0 && w.delay_ps[i] >= 0.0);
            assert!(w.hpwl_um[i] * DETOUR <= max_possible + 1e-9);
            some_wire |= w.hpwl_um[i] > 0.0;
        }
        assert!(some_wire, "at least the port nets must have length");
        assert!(w.total_wirelength_um > 0.0);
    }

    #[test]
    fn single_pin_nets_have_no_wire() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("s", &lib);
        let a = b.input("a");
        let y = b.not(a);
        let _dangling = b.net("dangling");
        b.output("y", y);
        let m = b.finish();
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let w = extract_wires(&m, &lib, &p).unwrap();
        let dangling_idx = m.nets.iter().position(|n| n.name == "dangling").unwrap();
        assert_eq!(w.hpwl_um[dangling_idx], 0.0);
        assert_eq!(w.cap_ff[dangling_idx], 0.0);
    }
}
