//! Crate-internal helper for disjoint parallel writes.
//!
//! The layout phases fan independent work items across
//! [`syndcim_ir::parallel_map_threads`] workers, and every item owns a
//! *disjoint* set of output indices by construction (each instance
//! belongs to exactly one floorplan strip; each net range belongs to
//! exactly one merge chunk). [`DisjointWriter`] lets those workers
//! write their slots of one shared output buffer directly — no
//! per-worker result vectors, no serial scatter pass afterwards —
//! which is what keeps the serial fraction of placement small enough
//! for the ≥2× multi-core bar the layout bench pins.

/// A raw shared view of a `&mut [T]` for workers that write disjoint
/// index sets.
///
/// # Safety contract (callers inside this crate)
///
/// * every index is written by **at most one** worker;
/// * no other access to the underlying slice happens while workers run
///   (the borrow is re-established only after the scoped threads join);
/// * indices stay in bounds (`len` is checked on every write).
pub(crate) struct DisjointWriter<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for DisjointWriter<T> {}
unsafe impl<T: Send> Send for DisjointWriter<T> {}

impl<T> DisjointWriter<T> {
    /// Wrap `slice` for disjoint writes from scoped workers.
    pub(crate) fn new(slice: &mut [T]) -> Self {
        DisjointWriter { ptr: slice.as_mut_ptr(), len: slice.len() }
    }

    /// Overwrite slot `i`. Bounds-checked; disjointness is the
    /// caller's obligation (see the struct docs).
    #[inline]
    pub(crate) fn set(&self, i: usize, value: T) {
        assert!(i < self.len, "disjoint write out of bounds: {i} >= {}", self.len);
        // SAFETY: in-bounds (checked above); the crate-internal callers
        // guarantee each index is written by exactly one worker while
        // no other reference to the slice is live.
        unsafe { self.ptr.add(i).write(value) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_ir::parallel_map_threads;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u32; 64];
        let w = DisjointWriter::new(&mut data);
        let jobs: Vec<usize> = (0..8).collect();
        parallel_map_threads(jobs, 4, |_, chunk| {
            for i in (chunk * 8)..(chunk * 8 + 8) {
                w.set(i, i as u32 + 1);
            }
        });
        assert_eq!(data, (1..=64).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let mut data = vec![0u8; 4];
        let w = DisjointWriter::new(&mut data);
        w.set(4, 1);
    }
}
