//! Floorplan rendering: SVG (the reproduction's "die photo") and an
//! ASCII density map for terminal inspection.

use crate::place::Placement;
use std::fmt::Write as _;
use syndcim_netlist::Module;

const PALETTE: &[&str] = &[
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7", "#9c755f",
    "#bab0ac",
];

fn color_for(name: &str) -> &'static str {
    let mut h = 0usize;
    for b in name.bytes() {
        h = h.wrapping_mul(31).wrapping_add(b as usize);
    }
    PALETTE[h % PALETTE.len()]
}

/// Render the placement as an SVG document. Cells are drawn individually
/// up to `max_cells`; beyond that only the region outlines are drawn
/// (large macros would otherwise produce multi-hundred-MB files).
pub fn render_svg(module: &Module, placement: &Placement, max_cells: usize) -> String {
    let scale = 2.0; // px per µm
    let w = placement.die.w_um * scale;
    let h = placement.die.h_um * scale;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.2} {h:.2}">"#
    );
    let _ = writeln!(s, r##"<rect x="0" y="0" width="{w:.2}" height="{h:.2}" fill="#1b1b22"/>"##);
    let flip = |y: f64, rh: f64| h - (y + rh) * scale;

    if placement.cells.len() <= max_cells {
        for (i, pc) in placement.cells.iter().enumerate() {
            let g = module.group_name(module.instances[i].group);
            let head = g.split('/').next().unwrap_or(g);
            let r = pc.rect;
            let _ = writeln!(
                s,
                r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" fill-opacity="0.85"/>"#,
                r.x_um * scale,
                flip(r.y_um, r.h_um),
                r.w_um * scale,
                r.h_um * scale,
                color_for(head)
            );
        }
    }
    for region in &placement.regions {
        let r = region.rect;
        let _ = writeln!(
            s,
            r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="none" stroke="{}" stroke-width="1"/>"#,
            r.x_um * scale,
            flip(r.y_um, r.h_um),
            r.w_um * scale,
            r.h_um * scale,
            color_for(&region.name)
        );
        let _ = writeln!(
            s,
            r##"<text x="{:.2}" y="{:.2}" font-size="8" fill="#ffffff">{}</text>"##,
            r.x_um * scale + 2.0,
            flip(r.y_um, r.h_um) + 10.0,
            region.name
        );
    }
    let _ = writeln!(
        s,
        r##"<text x="4" y="{:.2}" font-size="10" fill="#cccccc">{} — {:.0}×{:.0} µm², {:.3} mm², util {:.0}%</text>"##,
        h - 4.0,
        module.name,
        placement.die.w_um,
        placement.die.h_um,
        placement.die_area_mm2(),
        placement.utilization * 100.0
    );
    s.push_str("</svg>\n");
    s
}

/// Render an ASCII density map (`cols`×`rows` characters). Each cell is
/// the initial of the dominant group in that bin, or `.` for whitespace.
pub fn render_ascii(module: &Module, placement: &Placement, cols: usize, rows: usize) -> String {
    let mut best: Vec<(f64, char)> = vec![(0.0, '.'); cols * rows];
    let bw = placement.die.w_um / cols as f64;
    let bh = placement.die.h_um / rows as f64;
    let mut occupancy: Vec<std::collections::BTreeMap<char, f64>> = vec![Default::default(); cols * rows];
    for (i, pc) in placement.cells.iter().enumerate() {
        let g = module.group_name(module.instances[i].group);
        let head = g.split('/').next().unwrap_or(g);
        let ch = head.chars().next().unwrap_or('?');
        let (cx, cy) = pc.rect.center();
        let gx = ((cx / bw) as usize).min(cols - 1);
        let gy = ((cy / bh) as usize).min(rows - 1);
        *occupancy[gy * cols + gx].entry(ch).or_insert(0.0) += pc.rect.area_um2();
    }
    for (i, occ) in occupancy.iter().enumerate() {
        if let Some((&ch, &a)) = occ.iter().max_by(|a, b| a.1.partial_cmp(b.1).expect("finite areas")) {
            best[i] = (a, ch);
        }
    }
    let mut s = String::new();
    for gy in (0..rows).rev() {
        for gx in 0..cols {
            s.push(best[gy * cols + gx].1);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, FloorplanConfig};
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::{CellKind, CellLibrary};

    fn modl(lib: &CellLibrary) -> Module {
        let mut b = NetlistBuilder::new("r", lib);
        let a = b.input("a");
        b.push_group("col0");
        let x = b.add(CellKind::Sram6T2T, &[a, a])[0];
        let y = b.and2(x, a);
        b.pop_group();
        b.push_group("ofu");
        let z = b.not(y);
        b.pop_group();
        b.output("z", z);
        b.finish()
    }

    #[test]
    fn svg_contains_regions_and_summary() {
        let lib = CellLibrary::syn40();
        let m = modl(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let svg = render_svg(&m, &p, 10_000);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("col0"));
        assert!(svg.contains("mm²"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn svg_omits_cells_beyond_cap() {
        let lib = CellLibrary::syn40();
        let m = modl(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let small = render_svg(&m, &p, 0);
        let full = render_svg(&m, &p, 10_000);
        assert!(full.len() > small.len());
    }

    #[test]
    fn ascii_map_has_expected_shape() {
        let lib = CellLibrary::syn40();
        let m = modl(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let art = render_ascii(&m, &p, 40, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        assert!(art.contains('c') || art.contains('o'), "group initials expected:\n{art}");
    }
}
