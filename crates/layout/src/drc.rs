//! Design-rule and layout-vs-schematic style checks.
//!
//! The paper's flow runs DRC and LVS before post-layout sign-off. In
//! this reproduction:
//!
//! * **DRC** — no two placed cells overlap, every cell lies within the
//!   die outline (checked with a spatial hash so macros with hundreds of
//!   thousands of cells stay fast);
//! * **LVS** — the placement covers exactly the instances of the netlist
//!   (one footprint per instance, no extras), so layout and "schematic"
//!   agree by construction; the check validates that invariant.

use crate::place::{LayoutError, Placement};
use syndcim_netlist::Module;

/// Run all layout checks.
///
/// # Errors
///
/// Returns the first violation found ([`LayoutError::Overlap`] or
/// [`LayoutError::OutOfDie`]).
pub fn check_drc(module: &Module, placement: &Placement) -> Result<(), LayoutError> {
    // LVS-style coverage: one placed footprint per netlist instance.
    assert_eq!(
        placement.cells.len(),
        module.instance_count(),
        "placement must cover exactly the netlist instances"
    );

    // Die containment.
    for pc in &placement.cells {
        if !placement.die.contains(&pc.rect) {
            return Err(LayoutError::OutOfDie { inst: module.instances[pc.inst.index()].name.clone() });
        }
    }

    // Overlaps via a uniform spatial hash.
    let bin = 8.0f64; // µm
    let nx = (placement.die.w_um / bin).ceil().max(1.0) as usize;
    let ny = (placement.die.h_um / bin).ceil().max(1.0) as usize;
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
    let clamp = |v: f64, n: usize| -> usize { (v / bin).floor().max(0.0).min((n - 1) as f64) as usize };
    for (i, pc) in placement.cells.iter().enumerate() {
        let x0 = clamp(pc.rect.x_um, nx);
        let x1 = clamp(pc.rect.right(), nx);
        let y0 = clamp(pc.rect.y_um, ny);
        let y1 = clamp(pc.rect.top(), ny);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                let cell_bin = &mut grid[gy * nx + gx];
                for &j in cell_bin.iter() {
                    let other = &placement.cells[j as usize];
                    if pc.rect.overlaps(&other.rect) {
                        return Err(LayoutError::Overlap {
                            a: module.instances[other.inst.index()].name.clone(),
                            b: module.instances[pc.inst.index()].name.clone(),
                        });
                    }
                }
                cell_bin.push(i as u32);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::place::{place, FloorplanConfig};
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellLibrary;

    fn small(lib: &CellLibrary) -> Module {
        let mut b = NetlistBuilder::new("s", lib);
        let a = b.input("a");
        b.push_group("col0");
        let x = b.not(a);
        let y = b.xor2(x, a);
        b.pop_group();
        b.output("y", y);
        b.finish()
    }

    #[test]
    fn clean_placement_passes() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        check_drc(&m, &p).unwrap();
    }

    #[test]
    fn forced_overlap_is_caught() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        p.cells[1].rect = p.cells[0].rect;
        assert!(matches!(check_drc(&m, &p), Err(LayoutError::Overlap { .. })));
    }

    #[test]
    fn out_of_die_is_caught() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        p.cells[0].rect = Rect::new(p.die.right() + 1.0, 0.0, 1.0, 1.0);
        assert!(matches!(check_drc(&m, &p), Err(LayoutError::OutOfDie { .. })));
    }
}
