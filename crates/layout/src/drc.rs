//! Design-rule and layout-vs-schematic style checks.
//!
//! The paper's flow runs DRC and LVS before post-layout sign-off. In
//! this reproduction:
//!
//! * **DRC** — no two placed cells overlap, every cell lies within the
//!   die outline;
//! * **LVS** — the placement covers exactly the instances of the netlist
//!   (one footprint per instance, no extras), so layout and "schematic"
//!   agree by construction; the check validates that invariant and
//!   reports [`LayoutError::CoverageMismatch`] instead of panicking.
//!
//! ## Sharded overlap checking
//!
//! Overlap detection builds a uniform grid as a **two-pass counting-sort
//! CSR structure**: one pass counts how many footprints touch each bin,
//! a prefix sum turns the counts into bin offsets, and a second pass
//! drops instance indices into one flat `entries` array — zero per-bin
//! `Vec`s, and entries within each bin are ascending by instance index
//! by construction. Grid rows are then grouped into fixed-size bands
//! (a geometry-derived count, never the worker count) and the bands fan
//! across [`syndcim_ir::parallel_map_threads`] workers; each band
//! reports its lexicographically smallest violating `(a, b)` index pair
//! and the fold over bands (in band order) keeps the global minimum, so
//! the reported violation is **identical for any thread count**.

use crate::place::{LayoutError, Placement};
use syndcim_ir::{default_threads, parallel_map_threads};
use syndcim_netlist::Module;
use syndcim_telemetry as telemetry;

/// Grid rows per overlap-checking shard. A fixed constant: the band
/// count depends only on die geometry, so work decomposition — and the
/// reported violation — never varies with the worker count.
const BAND_ROWS: usize = 8;

/// Run all layout checks (auto worker count).
///
/// # Errors
///
/// * [`LayoutError::CoverageMismatch`] — placement size ≠ instance count;
/// * [`LayoutError::OutOfDie`] — lowest-index cell outside the die;
/// * [`LayoutError::Overlap`] — the overlapping pair with the
///   lexicographically smallest `(a, b)` instance-index pair.
pub fn check_drc(module: &Module, placement: &Placement) -> Result<(), LayoutError> {
    check_drc_threads(module, placement, 0)
}

/// [`check_drc`] with an explicit worker-thread count (`0` = auto).
/// The verdict — including *which* violation is reported — is identical
/// for every thread count.
pub fn check_drc_threads(module: &Module, placement: &Placement, threads: usize) -> Result<(), LayoutError> {
    // LVS-style coverage: one placed footprint per netlist instance.
    if placement.cells.len() != module.instance_count() {
        return Err(LayoutError::CoverageMismatch {
            placed: placement.cells.len(),
            instances: module.instance_count(),
        });
    }

    // Die containment: serial scan, so the lowest-index offender wins.
    for pc in &placement.cells {
        if !placement.die.contains(&pc.rect) {
            return Err(LayoutError::OutOfDie { inst: module.instances[pc.inst.index()].name.clone() });
        }
    }

    let n = placement.cells.len();
    if n == 0 {
        return Ok(());
    }

    // Bin size adapts to the average footprint: ~2 cells per bin edge
    // keeps bin populations O(1) whether the die is all SRAM pushes or
    // sparse periphery rows.
    let avg_area: f64 = placement.cells.iter().map(|pc| pc.rect.area_um2()).sum::<f64>() / n as f64;
    let bin = (2.0 * avg_area.max(0.0).sqrt()).clamp(1.0, 8.0);
    let nx = (placement.die.w_um / bin).ceil().max(1.0) as usize;
    let ny = (placement.die.h_um / bin).ceil().max(1.0) as usize;
    telemetry::gauge("layout.drc_bins").set((nx * ny) as u64);
    let clamp = |v: f64, n: usize| -> usize { (v / bin).floor().max(0.0).min((n - 1) as f64) as usize };
    let span_of = |i: usize| -> (usize, usize, usize, usize) {
        let r = &placement.cells[i].rect;
        (clamp(r.x_um, nx), clamp(r.right(), nx), clamp(r.y_um, ny), clamp(r.top(), ny))
    };

    // Counting-sort CSR grid: count pass → prefix sum → fill pass.
    let (starts, entries) = {
        telemetry::span!("drc.grid");
        let mut counts = vec![0u32; nx * ny + 1];
        for i in 0..n {
            let (x0, x1, y0, y1) = span_of(i);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    counts[gy * nx + gx + 1] += 1;
                }
            }
        }
        for b in 1..counts.len() {
            counts[b] += counts[b - 1];
        }
        let starts = counts.clone();
        let total = starts[nx * ny] as usize;
        let mut cursors = starts.clone();
        let mut entries = vec![0u32; total];
        // Cells visited in index order, so each bin's slice is ascending.
        for i in 0..n {
            let (x0, x1, y0, y1) = span_of(i);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    let c = &mut cursors[gy * nx + gx];
                    entries[*c as usize] = i as u32;
                    *c += 1;
                }
            }
        }
        (starts, entries)
    };

    // Shard by fixed-size row bands; each band keeps its lexicographic
    // minimum (i, j) violation, the fold keeps the global minimum.
    let bands: Vec<usize> = (0..ny.div_ceil(BAND_ROWS)).collect();
    let t = if threads == 0 { default_threads(bands.len()) } else { threads };
    let hit = {
        telemetry::span!("drc.bands");
        parallel_map_threads(bands, t, |_, band| {
            telemetry::span!("drc.band");
            let mut best: Option<(u32, u32)> = None;
            let row0 = band * BAND_ROWS;
            let row1 = (row0 + BAND_ROWS).min(ny);
            for gy in row0..row1 {
                for gx in 0..nx {
                    let b = gy * nx + gx;
                    let slot = &entries[starts[b] as usize..starts[b + 1] as usize];
                    for (p, &i) in slot.iter().enumerate() {
                        let ri = &placement.cells[i as usize].rect;
                        for &j in &slot[p + 1..] {
                            if best.is_some_and(|m| m <= (i, j)) {
                                break; // entries ascend: (i, j) only grows
                            }
                            if ri.overlaps(&placement.cells[j as usize].rect) {
                                best = Some((i, j));
                                break;
                            }
                        }
                    }
                }
            }
            best
        })
        .into_iter()
        .flatten()
        .min()
    };

    if let Some((i, j)) = hit {
        return Err(LayoutError::Overlap {
            a: module.instances[placement.cells[i as usize].inst.index()].name.clone(),
            b: module.instances[placement.cells[j as usize].inst.index()].name.clone(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::place::{place, FloorplanConfig};
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellLibrary;

    fn small(lib: &CellLibrary) -> Module {
        let mut b = NetlistBuilder::new("s", lib);
        let a = b.input("a");
        b.push_group("col0");
        let x = b.not(a);
        let y = b.xor2(x, a);
        b.pop_group();
        b.output("y", y);
        b.finish()
    }

    #[test]
    fn clean_placement_passes() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        check_drc(&m, &p).unwrap();
    }

    #[test]
    fn forced_overlap_is_caught() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        p.cells[1].rect = p.cells[0].rect;
        assert!(matches!(check_drc(&m, &p), Err(LayoutError::Overlap { .. })));
    }

    #[test]
    fn out_of_die_is_caught() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        p.cells[0].rect = Rect::new(p.die.right() + 1.0, 0.0, 1.0, 1.0);
        assert!(matches!(check_drc(&m, &p), Err(LayoutError::OutOfDie { .. })));
    }

    #[test]
    fn coverage_mismatch_too_few_footprints() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        p.cells.pop();
        assert_eq!(
            check_drc(&m, &p),
            Err(LayoutError::CoverageMismatch {
                placed: m.instance_count() - 1,
                instances: m.instance_count()
            })
        );
    }

    #[test]
    fn coverage_mismatch_too_many_footprints() {
        let lib = CellLibrary::syn40();
        let m = small(&lib);
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let extra = p.cells[0].clone();
        p.cells.push(extra);
        assert_eq!(
            check_drc(&m, &p),
            Err(LayoutError::CoverageMismatch {
                placed: m.instance_count() + 1,
                instances: m.instance_count()
            })
        );
    }

    #[test]
    fn overlap_report_is_thread_count_invariant() {
        // Three mutually overlapping footprints: every worker count and
        // every repetition must blame the same lowest-(a, b) pair.
        let lib = CellLibrary::syn40();
        let m = {
            let mut b = NetlistBuilder::new("multi", &lib);
            let a = b.input("a");
            b.push_group("col0");
            let mut y = b.not(a);
            for _ in 0..6 {
                y = b.xor2(y, a);
            }
            b.pop_group();
            b.output("y", y);
            b.finish()
        };
        let mut p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let r = p.cells[0].rect;
        p.cells[1].rect = r;
        p.cells[2].rect = Rect::new(r.x_um + 0.1, r.y_um, r.w_um, r.h_um);
        let expected = check_drc_threads(&m, &p, 1).unwrap_err();
        assert!(matches!(expected, LayoutError::Overlap { .. }));
        for t in [1, 2, 8] {
            for _ in 0..3 {
                assert_eq!(check_drc_threads(&m, &p, t).unwrap_err(), expected, "threads = {t}");
            }
        }
    }
}
