//! Planar geometry primitives for placement.

/// An axis-aligned rectangle in micrometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x_um: f64,
    /// Bottom edge.
    pub y_um: f64,
    /// Width.
    pub w_um: f64,
    /// Height.
    pub h_um: f64,
}

impl Rect {
    /// Construct from origin and size.
    pub fn new(x_um: f64, y_um: f64, w_um: f64, h_um: f64) -> Self {
        Rect { x_um, y_um, w_um, h_um }
    }

    /// Area in µm².
    pub fn area_um2(&self) -> f64 {
        self.w_um * self.h_um
    }

    /// Centre point `(x, y)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x_um + self.w_um / 2.0, self.y_um + self.h_um / 2.0)
    }

    /// Right edge.
    pub fn right(&self) -> f64 {
        self.x_um + self.w_um
    }

    /// Top edge.
    pub fn top(&self) -> f64 {
        self.y_um + self.h_um
    }

    /// `true` if the interiors overlap (shared edges are allowed).
    pub fn overlaps(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x_um + EPS < other.right()
            && other.x_um + EPS < self.right()
            && self.y_um + EPS < other.top()
            && other.y_um + EPS < self.top()
    }

    /// `true` if `other` lies entirely inside `self` (edges allowed).
    pub fn contains(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        other.x_um >= self.x_um - EPS
            && other.y_um >= self.y_um - EPS
            && other.right() <= self.right() + EPS
            && other.top() <= self.top() + EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(2.0, 0.0, 2.0, 2.0); // touches a's right edge
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "edge contact is not an overlap");
    }

    #[test]
    fn containment_and_center() {
        let die = Rect::new(0.0, 0.0, 10.0, 10.0);
        let cell = Rect::new(9.0, 9.0, 1.0, 1.0);
        assert!(die.contains(&cell));
        assert!(!die.contains(&Rect::new(9.5, 9.5, 1.0, 1.0)));
        assert_eq!(die.center(), (5.0, 5.0));
        assert_eq!(die.area_um2(), 100.0);
    }
}
