//! # syndcim-layout — SDP placement, routing estimation, DRC, rendering
//!
//! The automatic-place-and-route substrate of the reproduction,
//! mirroring the paper's Innovus + SDP-script recipe: structured SRAM
//! placement per column, adder cells filling the gaps beside each SRAM
//! column, peripheral logic wrapped around the array, HPWL-based global
//! routing estimates back-annotated into timing and power, DRC/LVS-style
//! checks, and an SVG "die photo" renderer.
//!
//! ```
//! use syndcim_layout::{place, FloorplanConfig, check_drc};
//! use syndcim_netlist::NetlistBuilder;
//! use syndcim_pdk::CellLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::syn40();
//! let mut b = NetlistBuilder::new("demo", &lib);
//! let a = b.input("a");
//! b.push_group("col0");
//! let y = b.not(a);
//! b.pop_group();
//! b.output("y", y);
//! let m = b.finish();
//! let p = place(&m, &lib, FloorplanConfig::default())?;
//! check_drc(&m, &p)?;
//! assert!(p.die_area_um2() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod drc;
pub mod geometry;
mod par;
pub mod place;
pub mod render;
pub mod wires;

pub use drc::{check_drc, check_drc_threads};
pub use geometry::Rect;
pub use place::{
    place, place_threads, place_with_symbols, FloorplanConfig, LayoutError, PlacedCell, Placement, Region,
};
pub use render::{render_ascii, render_svg};
pub use wires::{extract_wires, extract_wires_threads, WireEstimates, DETOUR};
