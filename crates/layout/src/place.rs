//! Structured-data-path (SDP) placement for DCIM macros.
//!
//! The paper (§III-D): *"we adopt the structured data path (SDP)
//! capability in Cadence Innovus with a scalable script. … After placing
//! the SRAM cells using SDP, we fill the gaps between SRAM columns with
//! adder cells and place the peripheral logic around the array."*
//!
//! This module is that script: it understands the group-naming convention
//! used by the subcircuit generators and produces the same floorplan
//! topology —
//!
//! ```text
//! ┌─────────────────────────────────────────────┐
//! │        bl_drivers  +  align   (top strips)  │
//! │ ┌────┐ ┌────┬────┬────┬────┬──────────────┐ │
//! │ │ wl │ │col0│col1│col2│ …  │   (strips:   │ │
//! │ │drv │ │    │    │    │    │ bitcell grid │ │
//! │ │    │ │    │    │    │    │ + datapath)  │ │
//! │ └────┘ └────┴────┴────┴────┴──────────────┘ │
//! │        ofu + top misc        (bottom strip) │
//! └─────────────────────────────────────────────┘
//! ```
//!
//! Bitcells are tiled on a pushed-rule grid at the top of each column
//! strip (the "regular SRAM place"); the column's multiplier, adder-tree
//! and shift-adder cells are row-packed directly beneath ("fill the gaps
//! between SRAM columns with adder cells"); drivers, alignment and fusion
//! logic wrap the array.
//!
//! ## Parallel hierarchical placement
//!
//! The floorplan is hierarchical by construction: every column strip
//! owns a disjoint `(x0, w_col)` band and a disjoint set of instances,
//! and the three wrap strips (left / top / bottom) are disjoint from the
//! columns and from each other. Placement exploits that:
//!
//! 1. zone assignment is resolved **once per group** into a
//!    `Vec<Zone>` indexed by group id (from the interned
//!    [`Symbols`] head table when available, falling back to
//!    `module.groups`) — no per-instance string splitting;
//! 2. the independent strips fan across cores via
//!    [`syndcim_ir::parallel_map_threads`], each worker writing its
//!    instances' footprints directly into the shared cell table
//!    (disjoint indices, so no scatter pass);
//! 3. every strip is a pure function of its own inputs, so the
//!    resulting [`Placement`] is **bit-identical for any worker
//!    count** — pinned by `tests/layout_parallel.rs` and the layout
//!    bench.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::geometry::Rect;
use crate::par::DisjointWriter;
use syndcim_ir::{default_threads, parallel_map_threads, Symbols};
use syndcim_netlist::{InstId, Module};
use syndcim_pdk::{CellLibrary, DensityClass};
use syndcim_telemetry as telemetry;

/// Placement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloorplanConfig {
    /// Target core aspect ratio, width / height.
    pub aspect: f64,
    /// Standard-cell row utilization inside packed rows (the rest is
    /// routing space).
    pub row_util: f64,
    /// Margin around the core (power ring, IO) in µm.
    pub margin_um: f64,
}

impl Default for FloorplanConfig {
    fn default() -> Self {
        // Aspect mirrors the paper's 455×246 µm die photo (≈1.85).
        FloorplanConfig { aspect: 1.85, row_util: 0.80, margin_um: 4.0 }
    }
}

/// A placed instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedCell {
    /// The instance this footprint belongs to.
    pub inst: InstId,
    /// Its placed footprint.
    pub rect: Rect,
}

/// A named region of the floorplan (for rendering and reports).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region name (`"col17"`, `"align"`, …).
    pub name: String,
    /// Region bounding box.
    pub rect: Rect,
}

/// The completed placement of one macro.
///
/// `PartialEq` compares every field exactly (all coordinates are `f64`
/// bit patterns produced by deterministic arithmetic) — the equality
/// the thread-count-invariance tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Die outline (origin at (0,0)).
    pub die: Rect,
    /// One placed footprint per instance, indexed by [`InstId::index`].
    pub cells: Vec<PlacedCell>,
    /// Floorplan regions.
    pub regions: Vec<Region>,
    /// Σ cell area / die area.
    pub utilization: f64,
}

impl Placement {
    /// Die area in µm².
    pub fn die_area_um2(&self) -> f64 {
        self.die.area_um2()
    }

    /// Die area in mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.die_area_um2() * 1e-6
    }

    /// Centre of an instance's footprint.
    pub fn position_of(&self, inst: InstId) -> (f64, f64) {
        self.cells[inst.index()].rect.center()
    }
}

/// Error raised by placement or design-rule checking.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// The module has no instances to place.
    EmptyModule,
    /// Two placed cells overlap.
    Overlap {
        /// First instance name (the lower instance index).
        a: String,
        /// Second instance name (the higher instance index).
        b: String,
    },
    /// A cell lies outside the die.
    OutOfDie {
        /// Offending instance name.
        inst: String,
    },
    /// LVS-style coverage failure: the placement does not carry exactly
    /// one footprint per netlist instance.
    CoverageMismatch {
        /// Footprints in the placement.
        placed: usize,
        /// Instances in the netlist.
        instances: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::EmptyModule => write!(f, "module has no instances to place"),
            LayoutError::Overlap { a, b } => write!(f, "placed cells `{a}` and `{b}` overlap"),
            LayoutError::OutOfDie { inst } => write!(f, "cell `{inst}` lies outside the die"),
            LayoutError::CoverageMismatch { placed, instances } => {
                write!(f, "placement covers {placed} footprints but the netlist has {instances} instances")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Per-column instance bucket with running sizing sums (accumulated in
/// instance order during the partition pass, so the floating-point sums
/// match a serial walk exactly).
#[derive(Default)]
struct Bucket {
    bitcells: Vec<usize>,
    datapath: Vec<usize>,
    /// Σ bitcell area (µm², raw — utilization divided in later).
    bitcell_area: f64,
    /// Σ datapath area (µm², raw).
    datapath_area: f64,
}

/// Zone assignment derived from the group-name head.
fn zone_of(head: &str) -> Zone {
    if let Some(rest) = head.strip_prefix("col") {
        if let Ok(c) = rest.parse::<usize>() {
            return Zone::Column(c);
        }
    }
    match head {
        "wl_drivers" => Zone::Left,
        "bl_drivers" | "align" => Zone::Top,
        _ => Zone::Bottom, // ofu, top, misc
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Zone {
    Column(usize),
    Left,
    Top,
    Bottom,
}

/// Resolve the zone of every group from the module's group-path table:
/// one `head` split + parse per **group**, never per instance.
fn zone_table_from_groups(groups: &[String]) -> Vec<Zone> {
    groups.iter().map(|g| zone_of(g.split('/').next().unwrap_or(g))).collect()
}

/// Resolve the zone of every group from the interned [`Symbols`] head
/// table (PR 5's parents-first group tree): the head of each group path
/// is already a dedicated symbol, so this never re-splits a path.
fn zone_table_from_symbols(symbols: &Symbols) -> Vec<Zone> {
    (0..symbols.group_count() as u32).map(|g| zone_of(symbols.resolve(symbols.group_head_sym(g)))).collect()
}

/// Run SDP placement on `module` (auto worker count).
///
/// # Errors
///
/// Returns [`LayoutError::EmptyModule`] for an instance-free module.
pub fn place(module: &Module, lib: &CellLibrary, config: FloorplanConfig) -> Result<Placement, LayoutError> {
    place_threads(module, lib, config, 0)
}

/// [`place`] with an explicit worker-thread count (`0` = auto, `1` =
/// fully serial). The result is **bit-identical for every thread
/// count** — each strip is placed by a pure function of its own inputs
/// regardless of which worker runs it.
pub fn place_threads(
    module: &Module,
    lib: &CellLibrary,
    config: FloorplanConfig,
    threads: usize,
) -> Result<Placement, LayoutError> {
    let zones = zone_table_from_groups(&module.groups);
    place_impl(module, lib, config, &zones, threads)
}

/// [`place`] resolving zones from an interned [`Symbols`] table (built
/// by the lowering the flow already owns) instead of re-deriving group
/// heads from `module.groups`. `symbols` must describe `module`; a
/// mismatched table (different group count) falls back to the
/// module-derived zone table, which yields the identical placement.
pub fn place_with_symbols(
    module: &Module,
    lib: &CellLibrary,
    config: FloorplanConfig,
    symbols: &Symbols,
) -> Result<Placement, LayoutError> {
    let zones = if symbols.group_count() == module.groups.len() {
        zone_table_from_symbols(symbols)
    } else {
        zone_table_from_groups(&module.groups)
    };
    place_impl(module, lib, config, &zones, 0)
}

/// One parallel placement job: a strip owning a disjoint instance set
/// and a disjoint floorplan band.
enum StripJob<'a> {
    /// A column strip: bitcell grid on top, datapath rows beneath.
    Column { x0: f64, y0: f64, w: f64, bucket: &'a Bucket },
    /// A row-packed strip (the left WL-driver band).
    Rows { ids: &'a [usize], x0: f64, y0: f64, w: f64 },
    /// A group-clustered strip (top / bottom wrap bands). `y0` may be a
    /// relative origin (0.0) when the strip's absolute base is known
    /// only after the columns finish; the caller shifts the rects.
    Clustered { ids: &'a [usize], x0: f64, y0: f64, w: f64 },
}

fn run_strip(
    job: &StripJob<'_>,
    module: &Module,
    lib: &CellLibrary,
    out: &DisjointWriter<PlacedCell>,
    row_h: f64,
    util: f64,
) -> f64 {
    telemetry::span!("place.strip");
    let set = |i: usize, rect: Rect| out.set(i, PlacedCell { inst: InstId(i as u32), rect });
    match *job {
        StripJob::Column { x0, y0, w, bucket } => {
            let mut y = y0;
            // 1) bitcell grid (pushed-rule SDP rows).
            if !bucket.bitcells.is_empty() {
                let bw = lib.cell(module.instances[bucket.bitcells[0]].cell).width_um.max(0.2);
                let bh = {
                    let a = lib.cell(module.instances[bucket.bitcells[0]].cell).area_um2;
                    (a / bw).max(0.2)
                };
                let per_row = ((w * 0.98) / bw).floor().max(1.0) as usize;
                for (k, &i) in bucket.bitcells.iter().enumerate() {
                    let col = k % per_row;
                    let row = k / per_row;
                    set(i, Rect::new(x0 + col as f64 * bw, y + row as f64 * bh, bw, bh));
                }
                let rows = bucket.bitcells.len().div_ceil(per_row);
                y += rows as f64 * bh + 0.4; // gap between SRAM grid and logic
            }
            // 2) datapath rows ("adder cells fill the gaps next to the
            // SRAM").
            pack_rows(&set, module, lib, &bucket.datapath, x0, y, w, row_h, util)
        }
        StripJob::Rows { ids, x0, y0, w } => pack_rows(&set, module, lib, ids, x0, y0, w, row_h, util),
        StripJob::Clustered { ids, x0, y0, w } => {
            pack_clustered(&set, module, lib, ids, x0, y0, w, row_h, util)
        }
    }
}

fn place_impl(
    module: &Module,
    lib: &CellLibrary,
    config: FloorplanConfig,
    zones: &[Zone],
    threads: usize,
) -> Result<Placement, LayoutError> {
    if module.instances.is_empty() {
        return Err(LayoutError::EmptyModule);
    }
    let process = lib.process();
    let row_h = process.row_height_um;

    // Bitcell classification resolved once per *library cell*, not per
    // instance (the spec list is tiny; the instance list is not).
    let specs = syndcim_pdk::cell_specs();
    let is_bitcell: Vec<bool> = lib
        .cells()
        .iter()
        .map(|c| {
            specs
                .iter()
                .find(|s| s.kind == c.kind)
                .map(|s| s.density == DensityClass::SramArray)
                .unwrap_or(false)
        })
        .collect();

    // Partition instances by zone via the per-group table, accumulating
    // every sizing sum in the same pass (instance order, so the
    // floating-point totals are walk-order exact).
    let mut columns: BTreeMap<usize, Bucket> = BTreeMap::new();
    let mut left: Vec<usize> = Vec::new();
    let mut top: Vec<usize> = Vec::new();
    let mut bottom: Vec<usize> = Vec::new();
    let mut widest_dp = 0.0f64;
    let mut left_area_raw = 0.0f64;
    let mut widest_left = 0.0f64;
    let mut total_cell_area = 0.0f64;
    {
        telemetry::span!("place.partition");
        for (i, inst) in module.instances.iter().enumerate() {
            let cell = lib.cell(inst.cell);
            total_cell_area += cell.area_um2;
            match zones[inst.group.index()] {
                Zone::Column(c) => {
                    let bucket = columns.entry(c).or_default();
                    if is_bitcell[inst.cell.index()] {
                        bucket.bitcells.push(i);
                        bucket.bitcell_area += cell.area_um2;
                    } else {
                        bucket.datapath.push(i);
                        bucket.datapath_area += cell.area_um2;
                        widest_dp = widest_dp.max(cell.width_um);
                    }
                }
                Zone::Left => {
                    left.push(i);
                    left_area_raw += cell.area_um2;
                    widest_left = widest_left.max(cell.width_um);
                }
                Zone::Top => top.push(i),
                Zone::Bottom => bottom.push(i),
            }
        }
    }

    // Core sizing.
    let n_cols = columns.len().max(1);
    telemetry::gauge("layout.columns").set(n_cols as u64);
    let core_area: f64 = columns
        .values()
        .map(|b| b.bitcell_area / 0.98 + b.datapath_area / config.row_util)
        .sum::<f64>()
        .max(1.0);
    // Left/top/bottom strips consume width/height; aim the *core* at the
    // configured aspect. The strip must at least fit its widest cell.
    let core_h = (core_area / config.aspect).sqrt();
    let w_col = (core_area / core_h / n_cols as f64).max(3.0 * row_h).max(widest_dp / config.row_util + 0.2);

    let mut cells: Vec<PlacedCell> = (0..module.instances.len())
        .map(|i| PlacedCell { inst: InstId(i as u32), rect: Rect::default() })
        .collect();
    let mut regions = Vec::new();

    // Left strip (WL drivers): packed rows, vertical strip.
    let left_area = left_area_raw / config.row_util;
    let left_w = if left.is_empty() {
        0.0
    } else {
        (left_area / core_h).max(2.0 * row_h).max(widest_left / config.row_util + 0.2)
    };
    let core_x0 = config.margin_um + left_w + if left.is_empty() { 0.0 } else { 2.0 };
    let core_y0 = config.margin_um;

    // Wave 1: the column strips plus the left wrap strip — every job
    // owns a disjoint (x-band, instance set) pair with a known origin,
    // so they all run concurrently and write their footprints in place.
    let out = DisjointWriter::new(&mut cells);
    let mut jobs: Vec<StripJob<'_>> = Vec::with_capacity(columns.len() + 1);
    for (slot, bucket) in columns.values().enumerate() {
        jobs.push(StripJob::Column { x0: core_x0 + slot as f64 * w_col, y0: core_y0, w: w_col, bucket });
    }
    if !left.is_empty() {
        jobs.push(StripJob::Rows { ids: &left, x0: config.margin_um, y0: core_y0, w: left_w });
    }
    let workers = |jobs: usize| if threads == 0 { default_threads(jobs) } else { threads };
    let wave1 = {
        telemetry::span!("place.strips");
        let t = workers(jobs.len());
        parallel_map_threads(jobs, t, |_, job| run_strip(&job, module, lib, &out, row_h, config.row_util))
    };

    let mut max_strip_top = core_y0;
    for (slot, (c, _)) in columns.iter().enumerate() {
        let y_end = wave1[slot];
        let x0 = core_x0 + slot as f64 * w_col;
        regions
            .push(Region { name: format!("col{c}"), rect: Rect::new(x0, core_y0, w_col, y_end - core_y0) });
        max_strip_top = max_strip_top.max(y_end);
    }
    let core_w = n_cols as f64 * w_col;
    let core_top = max_strip_top;
    if !left.is_empty() {
        let y_end = wave1[columns.len()];
        regions.push(Region {
            name: "wl_drivers".into(),
            rect: Rect::new(config.margin_um, core_y0, left_w, y_end - core_y0),
        });
        max_strip_top = max_strip_top.max(y_end);
    }

    // Wave 2: the top strip's base is known now (just above the tallest
    // column), so it packs at absolute coordinates; the bottom strip's
    // base depends on the top strip's height, so it packs at a relative
    // origin concurrently and is shifted afterwards (a constant y
    // offset — still a pure function of the inputs, still
    // thread-count-invariant).
    let mut jobs2: Vec<StripJob<'_>> = Vec::with_capacity(2);
    let y_top_base = core_top + 1.0;
    if !top.is_empty() {
        jobs2.push(StripJob::Clustered { ids: &top, x0: core_x0, y0: y_top_base, w: core_w });
    }
    if !bottom.is_empty() {
        jobs2.push(StripJob::Clustered { ids: &bottom, x0: core_x0, y0: 0.0, w: core_w });
    }
    let wave2 = {
        telemetry::span!("place.strips");
        let t = workers(jobs2.len());
        parallel_map_threads(jobs2, t, |_, job| run_strip(&job, module, lib, &out, row_h, config.row_util))
    };

    let mut y_top = y_top_base;
    let mut next = 0;
    if !top.is_empty() {
        let y_end = wave2[next];
        next += 1;
        regions
            .push(Region { name: "align+bl".into(), rect: Rect::new(core_x0, y_top, core_w, y_end - y_top) });
        y_top = y_end;
    }
    let mut y_bot = y_top + 1.0;
    if !bottom.is_empty() {
        let height = wave2[next];
        for &i in &bottom {
            cells[i].rect.y_um += y_bot;
        }
        regions.push(Region { name: "ofu+misc".into(), rect: Rect::new(core_x0, y_bot, core_w, height) });
        y_bot += height;
    }

    let die_w = core_x0 + core_w + config.margin_um;
    let die_h = y_bot.max(max_strip_top) + config.margin_um;
    let die = Rect::new(0.0, 0.0, die_w, die_h);
    Ok(Placement { die, cells, regions, utilization: total_cell_area / die.area_um2() })
}

/// Pack `ids` into side-by-side sub-strips, one per distinct (full)
/// group name, within a band of total width `w`. Bit-sliced blocks
/// (e.g. the OFU's per-group fusion levels) then stack vertically with
/// short inter-level wires instead of smearing across the whole strip.
/// Returns the y coordinate after the tallest sub-strip.
#[allow(clippy::too_many_arguments)]
fn pack_clustered<S: Fn(usize, Rect)>(
    set: &S,
    module: &Module,
    lib: &CellLibrary,
    ids: &[usize],
    x0: f64,
    y0: f64,
    w: f64,
    row_h: f64,
    util: f64,
) -> f64 {
    // Cluster by group id, preserving first-appearance order (indexed —
    // the OFU strip of a scale-tier macro has hundreds of groups).
    let mut order: Vec<(syndcim_netlist::GroupId, Vec<usize>)> = Vec::new();
    let mut index: HashMap<syndcim_netlist::GroupId, usize> = HashMap::new();
    for &i in ids {
        let g = module.instances[i].group;
        match index.get(&g) {
            Some(&k) => order[k].1.push(i),
            None => {
                index.insert(g, order.len());
                order.push((g, vec![i]));
            }
        }
    }
    let widest = ids.iter().map(|&i| lib.cell(module.instances[i].cell).width_um).fold(0.0f64, f64::max);
    let min_w = (widest / util + 0.2).max(3.0 * row_h);
    let per_band = ((w / min_w).floor() as usize).clamp(1, order.len().max(1));
    let strip_w = w / per_band as f64;
    let mut y_band = y0;
    let mut y_end_total = y0;
    for band in order.chunks(per_band) {
        let mut band_bottom = y_band;
        for (k, (_, cluster)) in band.iter().enumerate() {
            let x = x0 + k as f64 * strip_w;
            let y_end = pack_rows(set, module, lib, cluster, x, y_band, strip_w, row_h, util);
            band_bottom = band_bottom.max(y_end);
        }
        y_band = band_bottom + 0.4;
        y_end_total = band_bottom;
    }
    y_end_total
}

/// Pack `ids` into rows of width `w` starting at `(x0, y0)`; returns the
/// y coordinate after the last row. Rows are packed in serpentine order
/// (alternating direction) so logically consecutive cells that wrap a
/// row stay physically adjacent — without this, every row wrap turns a
/// local ripple-carry net into a full-row-span wire.
#[allow(clippy::too_many_arguments)]
fn pack_rows<S: Fn(usize, Rect)>(
    set: &S,
    module: &Module,
    lib: &CellLibrary,
    ids: &[usize],
    x0: f64,
    y0: f64,
    w: f64,
    row_h: f64,
    util: f64,
) -> f64 {
    let mut x = x0;
    let mut y = y0;
    let mut rightward = true;
    let mut used_any = false;
    for &i in ids {
        let cell = lib.cell(module.instances[i].cell);
        let cw = cell.width_um.max(0.2);
        let advance = cw / util;
        if rightward {
            if x + cw > x0 + w && x > x0 {
                y += row_h;
                rightward = false;
                x = x0 + w;
            }
        } else if x - cw < x0 && x < x0 + w {
            y += row_h;
            rightward = true;
            x = x0;
        }
        if rightward {
            set(i, Rect::new(x, y, cw, row_h));
            x += advance;
        } else {
            set(i, Rect::new(x - cw, y, cw, row_h));
            x -= advance;
        }
        used_any = true;
    }
    if used_any {
        y + row_h
    } else {
        y0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellKind;

    /// A miniature DCIM-shaped module following the naming convention.
    fn mini_macro(lib: &CellLibrary) -> Module {
        let mut b = NetlistBuilder::new("mini", lib);
        let act = b.input("act");
        let wwl = b.input("wwl");
        let wbl = b.input("wbl");
        let mut outs = Vec::new();
        for c in 0..4 {
            b.push_group(&format!("col{c}"));
            b.push_group("bitcells");
            let r0 = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
            let r1 = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
            b.pop_group();
            b.push_group("tree");
            let m0 = b.add(CellKind::MultNor, &[act, r0])[0];
            let m1 = b.add(CellKind::MultNor, &[act, r1])[0];
            let (s, _) = b.ha(m0, m1);
            b.pop_group();
            b.push_group("sa");
            let q = b.dff(s);
            b.pop_group();
            b.pop_group();
            outs.push(q);
        }
        b.push_group("wl_drivers");
        let _ = b.add(CellKind::BufX4, &[act]);
        b.pop_group();
        b.push_group("align");
        let _ = b.add(CellKind::Xor2, &[outs[0], outs[1]]);
        b.pop_group();
        b.push_group("ofu");
        let (f, _) = b.ha(outs[2], outs[3]);
        b.pop_group();
        b.output("f", f);
        b.finish()
    }

    #[test]
    fn placement_covers_every_instance_inside_die() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        assert_eq!(p.cells.len(), m.instance_count());
        for c in &p.cells {
            assert!(c.rect.w_um > 0.0 && c.rect.h_um > 0.0, "unplaced cell {:?}", c.inst);
            assert!(p.die.contains(&c.rect), "cell outside die: {:?}", c.inst);
        }
        assert!(p.utilization > 0.05 && p.utilization <= 1.0, "utilization {}", p.utilization);
    }

    #[test]
    fn column_regions_are_ordered_left_to_right() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let cols: Vec<&Region> = p.regions.iter().filter(|r| r.name.starts_with("col")).collect();
        assert_eq!(cols.len(), 4);
        for w in cols.windows(2) {
            assert!(w[0].rect.x_um < w[1].rect.x_um);
        }
    }

    #[test]
    fn empty_module_is_rejected() {
        let lib = CellLibrary::syn40();
        let m = Module::new("empty");
        assert_eq!(place(&m, &lib, FloorplanConfig::default()).unwrap_err(), LayoutError::EmptyModule);
    }

    #[test]
    fn bitcells_form_a_grid() {
        // All bitcells of one column must share x-coordinates (grid
        // columns) and have uniform size — the "regular SRAM placement".
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let mut bit_rects = Vec::new();
        for (i, inst) in m.instances.iter().enumerate() {
            if lib.cell(inst.cell).kind == CellKind::Sram6T2T && m.group_name(inst.group).starts_with("col0")
            {
                bit_rects.push(p.cells[i].rect);
            }
        }
        assert_eq!(bit_rects.len(), 2);
        assert_eq!(bit_rects[0].w_um, bit_rects[1].w_um);
    }

    #[test]
    fn thread_counts_produce_identical_placements() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let serial = place_threads(&m, &lib, FloorplanConfig::default(), 1).unwrap();
        for t in [2, 4, 8] {
            let parallel = place_threads(&m, &lib, FloorplanConfig::default(), t).unwrap();
            assert_eq!(serial, parallel, "placement must be bit-identical at {t} workers");
        }
    }

    #[test]
    fn symbol_keyed_zoning_matches_string_zoning() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let syms = Symbols::from_module(&m);
        let via_strings = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let via_symbols = place_with_symbols(&m, &lib, FloorplanConfig::default(), &syms).unwrap();
        assert_eq!(via_strings, via_symbols);
    }

    #[test]
    fn zone_table_resolves_once_per_group() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let zones = zone_table_from_groups(&m.groups);
        assert_eq!(zones.len(), m.groups.len());
        // Every nested group under `colN` inherits the column zone.
        for (gid, name) in m.groups.iter().enumerate() {
            if name.starts_with("col1") {
                assert_eq!(zones[gid], Zone::Column(1), "group `{name}`");
            }
        }
        let syms = Symbols::from_module(&m);
        assert_eq!(zones, zone_table_from_symbols(&syms));
    }
}
