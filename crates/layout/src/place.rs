//! Structured-data-path (SDP) placement for DCIM macros.
//!
//! The paper (§III-D): *"we adopt the structured data path (SDP)
//! capability in Cadence Innovus with a scalable script. … After placing
//! the SRAM cells using SDP, we fill the gaps between SRAM columns with
//! adder cells and place the peripheral logic around the array."*
//!
//! This module is that script: it understands the group-naming convention
//! used by the subcircuit generators and produces the same floorplan
//! topology —
//!
//! ```text
//! ┌─────────────────────────────────────────────┐
//! │        bl_drivers  +  align   (top strips)  │
//! │ ┌────┐ ┌────┬────┬────┬────┬──────────────┐ │
//! │ │ wl │ │col0│col1│col2│ …  │   (strips:   │ │
//! │ │drv │ │    │    │    │    │ bitcell grid │ │
//! │ │    │ │    │    │    │    │ + datapath)  │ │
//! │ └────┘ └────┴────┴────┴────┴──────────────┘ │
//! │        ofu + top misc        (bottom strip) │
//! └─────────────────────────────────────────────┘
//! ```
//!
//! Bitcells are tiled on a pushed-rule grid at the top of each column
//! strip (the "regular SRAM place"); the column's multiplier, adder-tree
//! and shift-adder cells are row-packed directly beneath ("fill the gaps
//! between SRAM columns with adder cells"); drivers, alignment and fusion
//! logic wrap the array.

use std::collections::BTreeMap;
use std::fmt;

use crate::geometry::Rect;
use syndcim_netlist::{InstId, Module};
use syndcim_pdk::{CellLibrary, DensityClass};

/// Placement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloorplanConfig {
    /// Target core aspect ratio, width / height.
    pub aspect: f64,
    /// Standard-cell row utilization inside packed rows (the rest is
    /// routing space).
    pub row_util: f64,
    /// Margin around the core (power ring, IO) in µm.
    pub margin_um: f64,
}

impl Default for FloorplanConfig {
    fn default() -> Self {
        // Aspect mirrors the paper's 455×246 µm die photo (≈1.85).
        FloorplanConfig { aspect: 1.85, row_util: 0.80, margin_um: 4.0 }
    }
}

/// A placed instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedCell {
    /// The instance this footprint belongs to.
    pub inst: InstId,
    /// Its placed footprint.
    pub rect: Rect,
}

/// A named region of the floorplan (for rendering and reports).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region name (`"col17"`, `"align"`, …).
    pub name: String,
    /// Region bounding box.
    pub rect: Rect,
}

/// The completed placement of one macro.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Die outline (origin at (0,0)).
    pub die: Rect,
    /// One placed footprint per instance, indexed by [`InstId::index`].
    pub cells: Vec<PlacedCell>,
    /// Floorplan regions.
    pub regions: Vec<Region>,
    /// Σ cell area / die area.
    pub utilization: f64,
}

impl Placement {
    /// Die area in µm².
    pub fn die_area_um2(&self) -> f64 {
        self.die.area_um2()
    }

    /// Die area in mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.die_area_um2() * 1e-6
    }

    /// Centre of an instance's footprint.
    pub fn position_of(&self, inst: InstId) -> (f64, f64) {
        self.cells[inst.index()].rect.center()
    }
}

/// Error raised by placement or design-rule checking.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// The module has no instances to place.
    EmptyModule,
    /// Two placed cells overlap.
    Overlap {
        /// First instance name.
        a: String,
        /// Second instance name.
        b: String,
    },
    /// A cell lies outside the die.
    OutOfDie {
        /// Offending instance name.
        inst: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::EmptyModule => write!(f, "module has no instances to place"),
            LayoutError::Overlap { a, b } => write!(f, "placed cells `{a}` and `{b}` overlap"),
            LayoutError::OutOfDie { inst } => write!(f, "cell `{inst}` lies outside the die"),
        }
    }
}

impl std::error::Error for LayoutError {}

#[derive(Default)]
struct Bucket {
    bitcells: Vec<usize>,
    datapath: Vec<usize>,
}

/// Zone assignment derived from the group-name head.
fn zone_of(head: &str) -> Zone {
    if let Some(rest) = head.strip_prefix("col") {
        if let Ok(c) = rest.parse::<usize>() {
            return Zone::Column(c);
        }
    }
    match head {
        "wl_drivers" => Zone::Left,
        "bl_drivers" | "align" => Zone::Top,
        _ => Zone::Bottom, // ofu, top, misc
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Zone {
    Column(usize),
    Left,
    Top,
    Bottom,
}

/// Run SDP placement on `module`.
///
/// # Errors
///
/// Returns [`LayoutError::EmptyModule`] for an instance-free module.
pub fn place(module: &Module, lib: &CellLibrary, config: FloorplanConfig) -> Result<Placement, LayoutError> {
    if module.instances.is_empty() {
        return Err(LayoutError::EmptyModule);
    }
    let process = lib.process();
    let row_h = process.row_height_um;

    // Specs indexed by cell id for density lookup.
    let specs = syndcim_pdk::cell_specs();

    // Partition instances by zone.
    let mut columns: BTreeMap<usize, Bucket> = BTreeMap::new();
    let mut left: Vec<usize> = Vec::new();
    let mut top: Vec<usize> = Vec::new();
    let mut bottom: Vec<usize> = Vec::new();
    for (i, inst) in module.instances.iter().enumerate() {
        let gname = module.group_name(inst.group);
        let head = gname.split('/').next().unwrap_or(gname);
        match zone_of(head) {
            Zone::Column(c) => {
                let cell = lib.cell(inst.cell);
                let is_bitcell = specs
                    .iter()
                    .find(|s| s.kind == cell.kind)
                    .map(|s| s.density == DensityClass::SramArray)
                    .unwrap_or(false);
                let bucket = columns.entry(c).or_default();
                if is_bitcell {
                    bucket.bitcells.push(i);
                } else {
                    bucket.datapath.push(i);
                }
            }
            Zone::Left => left.push(i),
            Zone::Top => top.push(i),
            Zone::Bottom => bottom.push(i),
        }
    }

    let area_of = |ids: &[usize], util: f64| -> f64 {
        ids.iter().map(|&i| lib.cell(module.instances[i].cell).area_um2).sum::<f64>() / util
    };

    // Core sizing.
    let n_cols = columns.len().max(1);
    let core_area: f64 = columns
        .values()
        .map(|b| area_of(&b.bitcells, 0.98) + area_of(&b.datapath, config.row_util))
        .sum::<f64>()
        .max(1.0);
    // Left/top/bottom strips consume width/height; aim the *core* at the
    // configured aspect. The strip must at least fit its widest cell.
    let widest_dp = columns
        .values()
        .flat_map(|bkt| bkt.datapath.iter())
        .map(|&i| lib.cell(module.instances[i].cell).width_um)
        .fold(0.0f64, f64::max);
    let core_h = (core_area / config.aspect).sqrt();
    let w_col = (core_area / core_h / n_cols as f64).max(3.0 * row_h).max(widest_dp / config.row_util + 0.2);

    let mut cells: Vec<PlacedCell> = (0..module.instances.len())
        .map(|i| PlacedCell { inst: InstId(i as u32), rect: Rect::default() })
        .collect();
    let mut regions = Vec::new();

    // Left strip (WL drivers): packed rows, vertical strip.
    let left_area = area_of(&left, config.row_util);
    let widest_left =
        left.iter().map(|&i| lib.cell(module.instances[i].cell).width_um).fold(0.0f64, f64::max);
    let left_w = if left.is_empty() {
        0.0
    } else {
        (left_area / core_h).max(2.0 * row_h).max(widest_left / config.row_util + 0.2)
    };
    let core_x0 = config.margin_um + left_w + if left.is_empty() { 0.0 } else { 2.0 };
    let core_y0 = config.margin_um;

    // Place column strips.
    let mut max_strip_top = core_y0;
    for (slot, (c, bucket)) in columns.iter().enumerate() {
        let x0 = core_x0 + slot as f64 * w_col;
        let mut y = core_y0;
        // 1) bitcell grid (pushed-rule SDP rows).
        if !bucket.bitcells.is_empty() {
            let bw = lib.cell(module.instances[bucket.bitcells[0]].cell).width_um.max(0.2);
            let bh = {
                let a = lib.cell(module.instances[bucket.bitcells[0]].cell).area_um2;
                (a / bw).max(0.2)
            };
            let per_row = ((w_col * 0.98) / bw).floor().max(1.0) as usize;
            for (k, &i) in bucket.bitcells.iter().enumerate() {
                let col = k % per_row;
                let row = k / per_row;
                cells[i].rect = Rect::new(x0 + col as f64 * bw, y + row as f64 * bh, bw, bh);
            }
            let rows = bucket.bitcells.len().div_ceil(per_row);
            y += rows as f64 * bh + 0.4; // gap between SRAM grid and logic
        }
        // 2) datapath rows ("adder cells fill the gaps next to the SRAM").
        y = pack_rows(&mut cells, module, lib, &bucket.datapath, x0, y, w_col, row_h, config.row_util);
        regions.push(Region { name: format!("col{c}"), rect: Rect::new(x0, core_y0, w_col, y - core_y0) });
        max_strip_top = max_strip_top.max(y);
    }
    let core_w = n_cols as f64 * w_col;
    let core_top = max_strip_top;

    // Left strip cells.
    if !left.is_empty() {
        let y_end = pack_rows(
            &mut cells,
            module,
            lib,
            &left,
            config.margin_um,
            core_y0,
            left_w,
            row_h,
            config.row_util,
        );
        regions.push(Region {
            name: "wl_drivers".into(),
            rect: Rect::new(config.margin_um, core_y0, left_w, y_end - core_y0),
        });
        max_strip_top = max_strip_top.max(y_end);
    }

    // Top strips (BL drivers + alignment) across the core width.
    let mut y_top = core_top + 1.0;
    if !top.is_empty() {
        let y_end =
            pack_clustered(&mut cells, module, lib, &top, core_x0, y_top, core_w, row_h, config.row_util);
        regions
            .push(Region { name: "align+bl".into(), rect: Rect::new(core_x0, y_top, core_w, y_end - y_top) });
        y_top = y_end;
    }

    // Bottom strip is placed *above* the top strip region in coordinates
    // (keeping all y positive); conceptually it wraps the array. Cells
    // are clustered by their full group name so each OFU fusion group
    // stacks vertically in its own sub-strip (short inter-level wires).
    let mut y_bot = y_top + 1.0;
    if !bottom.is_empty() {
        let y_end =
            pack_clustered(&mut cells, module, lib, &bottom, core_x0, y_bot, core_w, row_h, config.row_util);
        regions
            .push(Region { name: "ofu+misc".into(), rect: Rect::new(core_x0, y_bot, core_w, y_end - y_bot) });
        y_bot = y_end;
    }

    let die_w = core_x0 + core_w + config.margin_um;
    let die_h = y_bot.max(max_strip_top) + config.margin_um;
    let die = Rect::new(0.0, 0.0, die_w, die_h);
    let total_cell_area: f64 = module.instances.iter().map(|i| lib.cell(i.cell).area_um2).sum();
    Ok(Placement { die, cells, regions, utilization: total_cell_area / die.area_um2() })
}

/// Pack `ids` into side-by-side sub-strips, one per distinct (full)
/// group name, within a band of total width `w`. Bit-sliced blocks
/// (e.g. the OFU's per-group fusion levels) then stack vertically with
/// short inter-level wires instead of smearing across the whole strip.
/// Returns the y coordinate after the tallest sub-strip.
#[allow(clippy::too_many_arguments)]
fn pack_clustered(
    cells: &mut [PlacedCell],
    module: &Module,
    lib: &CellLibrary,
    ids: &[usize],
    x0: f64,
    y0: f64,
    w: f64,
    row_h: f64,
    util: f64,
) -> f64 {
    // Cluster by group id, preserving first-appearance order.
    let mut order: Vec<crate::place::Bucketed> = Vec::new();
    for &i in ids {
        let g = module.instances[i].group;
        match order.iter_mut().find(|c| c.group == g) {
            Some(c) => c.ids.push(i),
            None => order.push(Bucketed { group: g, ids: vec![i] }),
        }
    }
    let widest = ids.iter().map(|&i| lib.cell(module.instances[i].cell).width_um).fold(0.0f64, f64::max);
    let min_w = (widest / util + 0.2).max(3.0 * row_h);
    let per_band = ((w / min_w).floor() as usize).clamp(1, order.len().max(1));
    let strip_w = w / per_band as f64;
    let mut y_band = y0;
    let mut y_end_total = y0;
    for band in order.chunks(per_band) {
        let mut band_bottom = y_band;
        for (k, cluster) in band.iter().enumerate() {
            let x = x0 + k as f64 * strip_w;
            let y_end = pack_rows(cells, module, lib, &cluster.ids, x, y_band, strip_w, row_h, util);
            band_bottom = band_bottom.max(y_end);
        }
        y_band = band_bottom + 0.4;
        y_end_total = band_bottom;
    }
    y_end_total
}

struct Bucketed {
    group: crate::place::GroupIdAlias,
    ids: Vec<usize>,
}

type GroupIdAlias = syndcim_netlist::GroupId;

/// Pack `ids` into rows of width `w` starting at `(x0, y0)`; returns the
/// y coordinate after the last row. Rows are packed in serpentine order
/// (alternating direction) so logically consecutive cells that wrap a
/// row stay physically adjacent — without this, every row wrap turns a
/// local ripple-carry net into a full-row-span wire.
#[allow(clippy::too_many_arguments)]
fn pack_rows(
    cells: &mut [PlacedCell],
    module: &Module,
    lib: &CellLibrary,
    ids: &[usize],
    x0: f64,
    y0: f64,
    w: f64,
    row_h: f64,
    util: f64,
) -> f64 {
    let mut x = x0;
    let mut y = y0;
    let mut rightward = true;
    let mut used_any = false;
    for &i in ids {
        let cell = lib.cell(module.instances[i].cell);
        let cw = cell.width_um.max(0.2);
        let advance = cw / util;
        if rightward {
            if x + cw > x0 + w && x > x0 {
                y += row_h;
                rightward = false;
                x = x0 + w;
            }
        } else if x - cw < x0 && x < x0 + w {
            y += row_h;
            rightward = true;
            x = x0;
        }
        if rightward {
            cells[i].rect = Rect::new(x, y, cw, row_h);
            x += advance;
        } else {
            cells[i].rect = Rect::new(x - cw, y, cw, row_h);
            x -= advance;
        }
        used_any = true;
    }
    if used_any {
        y + row_h
    } else {
        y0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellKind;

    /// A miniature DCIM-shaped module following the naming convention.
    fn mini_macro(lib: &CellLibrary) -> Module {
        let mut b = NetlistBuilder::new("mini", lib);
        let act = b.input("act");
        let wwl = b.input("wwl");
        let wbl = b.input("wbl");
        let mut outs = Vec::new();
        for c in 0..4 {
            b.push_group(&format!("col{c}"));
            b.push_group("bitcells");
            let r0 = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
            let r1 = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
            b.pop_group();
            b.push_group("tree");
            let m0 = b.add(CellKind::MultNor, &[act, r0])[0];
            let m1 = b.add(CellKind::MultNor, &[act, r1])[0];
            let (s, _) = b.ha(m0, m1);
            b.pop_group();
            b.push_group("sa");
            let q = b.dff(s);
            b.pop_group();
            b.pop_group();
            outs.push(q);
        }
        b.push_group("wl_drivers");
        let _ = b.add(CellKind::BufX4, &[act]);
        b.pop_group();
        b.push_group("align");
        let _ = b.add(CellKind::Xor2, &[outs[0], outs[1]]);
        b.pop_group();
        b.push_group("ofu");
        let (f, _) = b.ha(outs[2], outs[3]);
        b.pop_group();
        b.output("f", f);
        b.finish()
    }

    #[test]
    fn placement_covers_every_instance_inside_die() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        assert_eq!(p.cells.len(), m.instance_count());
        for c in &p.cells {
            assert!(c.rect.w_um > 0.0 && c.rect.h_um > 0.0, "unplaced cell {:?}", c.inst);
            assert!(p.die.contains(&c.rect), "cell outside die: {:?}", c.inst);
        }
        assert!(p.utilization > 0.05 && p.utilization <= 1.0, "utilization {}", p.utilization);
    }

    #[test]
    fn column_regions_are_ordered_left_to_right() {
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let cols: Vec<&Region> = p.regions.iter().filter(|r| r.name.starts_with("col")).collect();
        assert_eq!(cols.len(), 4);
        for w in cols.windows(2) {
            assert!(w[0].rect.x_um < w[1].rect.x_um);
        }
    }

    #[test]
    fn empty_module_is_rejected() {
        let lib = CellLibrary::syn40();
        let m = Module::new("empty");
        assert_eq!(place(&m, &lib, FloorplanConfig::default()).unwrap_err(), LayoutError::EmptyModule);
    }

    #[test]
    fn bitcells_form_a_grid() {
        // All bitcells of one column must share x-coordinates (grid
        // columns) and have uniform size — the "regular SRAM placement".
        let lib = CellLibrary::syn40();
        let m = mini_macro(&lib);
        let p = place(&m, &lib, FloorplanConfig::default()).unwrap();
        let mut bit_rects = Vec::new();
        for (i, inst) in m.instances.iter().enumerate() {
            if lib.cell(inst.cell).kind == CellKind::Sram6T2T && m.group_name(inst.group).starts_with("col0")
            {
                bit_rects.push(p.cells[i].rect);
            }
        }
        assert_eq!(bit_rects.len(), 2);
        assert_eq!(bit_rects[0].w_um, bit_rects[1].w_um);
    }
}
