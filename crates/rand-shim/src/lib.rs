//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the small API subset the SynDCIM crates use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed, which
//! is all the reproducibility-focused callers rely on. It is **not** a
//! drop-in for real `rand` stream-compatibility.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface: raw words plus derived samplers.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        // 53 uniform mantissa bits → [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform sample from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to keep the draw unbiased.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-8i64..=7);
            assert!((-8..=7).contains(&v));
            let u = rng.gen_range(0u32..16);
            assert!(u < 16);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_signed_domain_range_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
