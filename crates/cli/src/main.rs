//! `syndcim` — compile DCIM macros to `.scim` artifacts and answer
//! timing/power queries from them.
//!
//! The compile-once/serve-many entry point of the workspace:
//!
//! ```text
//! syndcim compile --out chip.scim            # spec → netlist → .scim
//! syndcim info chip.scim                     # header/section/size dump
//! syndcim verify chip.scim                   # checksums + decode + recompile diff
//! syndcim query fmax chip.scim --vdd 0.9     # answered from the artifact alone
//! syndcim query power chip.scim --freq 800   #     "        "        "
//! ```
//!
//! `compile` is deterministic (no timestamps, zero-wire annotation, the
//! default design choice), so `verify` can recompile the same spec and
//! compare the artifact byte-for-byte. The query commands never touch a
//! netlist: they load the compiled programs and evaluate — on the paper
//! test chip a query answers in milliseconds where a fresh compile pays
//! the full lowering + trinity cost.

use std::process::ExitCode;

use syndcim_core::{assemble, CompiledMacro, DesignChoice, MacroSpec};
use syndcim_ir::artifact::ArtifactReader;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::WireLoads;

fn usage() -> &'static str {
    "syndcim — SynDCIM artifact tool\n\
     \n\
     USAGE:\n\
       syndcim compile --out <file.scim> [spec flags]\n\
       syndcim info <file.scim>\n\
       syndcim verify <file.scim> [spec flags]\n\
       syndcim query fmax <file.scim> [--vdd <V>] [--temp <C>]\n\
       syndcim query power <file.scim> [--vdd <V>] [--temp <C>] [--freq <MHz>] [--alpha <a>]\n\
     \n\
     SPEC FLAGS (default: the 64×64 paper test chip):\n\
       --h <rows> --w <cols> --mcr <n> --fmac <MHz> --vdd <V>\n"
}

/// Parsed `--key value` flags after the positional arguments.
struct Flags {
    h: Option<usize>,
    w: Option<usize>,
    mcr: Option<usize>,
    fmac: Option<f64>,
    vdd: Option<f64>,
    temp: Option<f64>,
    freq: Option<f64>,
    alpha: Option<f64>,
    out: Option<String>,
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("flag `{flag}`: cannot parse `{value}`"))
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        h: None,
        w: None,
        mcr: None,
        fmac: None,
        vdd: None,
        temp: None,
        freq: None,
        alpha: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("flag `{flag}` needs a value"))?;
        match flag.as_str() {
            "--h" => f.h = Some(parse_value(flag, value)?),
            "--w" => f.w = Some(parse_value(flag, value)?),
            "--mcr" => f.mcr = Some(parse_value(flag, value)?),
            "--fmac" => f.fmac = Some(parse_value(flag, value)?),
            "--vdd" => f.vdd = Some(parse_value(flag, value)?),
            "--temp" => f.temp = Some(parse_value(flag, value)?),
            "--freq" => f.freq = Some(parse_value(flag, value)?),
            "--alpha" => f.alpha = Some(parse_value(flag, value)?),
            "--out" => f.out = Some(value.clone()),
            _ => return Err(format!("unknown flag `{flag}`")),
        }
    }
    Ok(f)
}

impl Flags {
    /// The macro spec these flags describe (paper test chip defaults).
    fn spec(&self) -> MacroSpec {
        let mut spec = MacroSpec::paper_test_chip();
        if let Some(h) = self.h {
            spec.h = h;
        }
        if let Some(w) = self.w {
            spec.w = w;
        }
        if let Some(mcr) = self.mcr {
            spec.mcr = mcr;
        }
        if let Some(f) = self.fmac {
            spec.f_mac_mhz = f;
            spec.f_wu_mhz = f;
        }
        if let Some(v) = self.vdd {
            spec.vdd_v = v;
        }
        spec
    }

    /// The operating point for query commands (defaults to the spec
    /// voltage at 25 °C).
    fn op(&self, default_vdd: f64) -> OperatingPoint {
        let mut op = OperatingPoint::at_voltage(self.vdd.unwrap_or(default_vdd));
        if let Some(t) = self.temp {
            op.temp_c = t;
        }
        op
    }
}

/// Deterministic spec → compiled bundle (the byte source of both
/// `compile` and `verify`'s reference).
fn compile_spec(spec: &MacroSpec) -> Result<CompiledMacro, String> {
    let lib = CellLibrary::syn40();
    let mac = assemble(&lib, spec, &DesignChoice::default());
    CompiledMacro::compile(&mac.module, &lib, &WireLoads::zero(mac.module.net_count()))
        .map_err(|e| format!("netlist failed to compile: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = flags.out.clone().ok_or("compile needs --out <file.scim>")?;
    let spec = flags.spec();
    let cm = compile_spec(&spec)?;
    let bytes = cm.save_to_vec().map_err(|e| e.to_string())?;
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "compiled {}x{} mcr {} ({} nets, {} instances) -> {out} ({} bytes)",
        spec.h,
        spec.w,
        spec.mcr,
        cm.lowering.net_count(),
        cm.lowering.symbols().inst_count(),
        bytes.len()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a <file.scim> argument")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let reader = ArtifactReader::parse(&bytes).map_err(|e| e.to_string())?;
    let meta = syndcim_core::artifact::read_meta(&reader).map_err(|e| e.to_string())?;
    println!("{path}: {} v{} ({} bytes)", meta.format, syndcim_ir::artifact::FORMAT_VERSION, bytes.len());
    println!("  producer:  {}", meta.producer);
    println!("  nets:      {}", meta.net_count);
    println!("  instances: {}", meta.inst_count);
    println!("  sections:");
    for e in reader.entries() {
        println!("    {:<8} {:>12} bytes  crc32 {:#010x}", e.id.name(), e.len, e.stored_crc);
    }
    let cm = CompiledMacro::load_from_bytes(&bytes).map_err(|e| e.to_string())?;
    println!("  retained:  {} bytes in memory after load", syndcim_core::artifact::retained_bytes(&cm));
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("verify needs a <file.scim> argument")?;
    let flags = parse_flags(&args[1..])?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;

    let reader = ArtifactReader::parse(&bytes).map_err(|e| format!("framing: {e}"))?;
    let checked = reader.verify_checksums().map_err(|e| format!("checksum: {e}"))?;
    println!("{path}: {checked} section checksums ok");

    let cm = CompiledMacro::load_from_bytes(&bytes).map_err(|e| format!("decode: {e}"))?;
    println!("{path}: full decode ok ({} nets)", cm.lowering.net_count());

    let spec = flags.spec();
    let fresh = compile_spec(&spec)?;
    let fresh_bytes = fresh.save_to_vec().map_err(|e| e.to_string())?;
    if fresh_bytes != bytes {
        return Err(format!(
            "content differs from a fresh compile of the {}x{} mcr {} spec \
             (artifact {} bytes, fresh {} bytes) — wrong spec flags, or a stale artifact",
            spec.h,
            spec.w,
            spec.mcr,
            bytes.len(),
            fresh_bytes.len()
        ));
    }
    println!("{path}: byte-identical to a fresh compile of the {}x{} mcr {} spec", spec.h, spec.w, spec.mcr);
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let what = args.first().ok_or("query needs a subcommand: fmax | power")?;
    let path = args.get(1).ok_or("query needs a <file.scim> argument")?;
    let flags = parse_flags(&args[2..])?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let cm = CompiledMacro::load_from_bytes(&bytes).map_err(|e| e.to_string())?;
    let op = flags.op(0.9);
    match what.as_str() {
        "fmax" => {
            let fmax = cm.sta.fmax_mhz(op);
            println!("fmax @ {:.3} V / {:.1} C: {fmax:.3} MHz", op.vdd_v, op.temp_c);
        }
        "power" => {
            let freq = flags.freq.unwrap_or(800.0);
            let alpha = flags.alpha.unwrap_or(0.2);
            let report = cm.power.report_static(alpha, freq, op);
            println!(
                "power @ {:.3} V / {:.1} C, {freq:.1} MHz, alpha {alpha:.2}: {:.3} uW total",
                op.vdd_v,
                op.temp_c,
                report.total_uw()
            );
            println!("  dynamic: {:.3} uW", report.dynamic_uw);
            println!("  clock:   {:.3} uW", report.clock_uw);
            println!("  leakage: {:.3} uW", report.leakage_uw);
            for (group, pj) in &report.by_group_pj {
                println!("  group {group}: {pj:.4} pJ/cycle");
            }
        }
        other => return Err(format!("unknown query `{other}` (expected fmax | power)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "compile" => cmd_compile(rest),
        "info" => cmd_info(rest),
        "verify" => cmd_verify(rest),
        "query" => cmd_query(rest),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("syndcim: {msg}");
            ExitCode::FAILURE
        }
    }
}
