//! Flow-wide instrumentation for the SynDCIM compiler: RAII timing
//! spans, atomic counters and gauges, fixed-bucket duration histograms,
//! and deterministic run reports ([`Report`]) that the implementation
//! flow serializes as a `FlowReport`.
//!
//! The crate is **dependency-free by design** — the same offline
//! constraint that produced the `rand`/`criterion` shims rules out
//! `tracing` — and built around three rules:
//!
//! 1. **Near-zero cost when disabled.** Every instrumentation site is
//!    gated on one relaxed atomic load ([`enabled`]). Disabled spans
//!    allocate nothing, take no locks and read no clocks; disabled
//!    counters are a single load-and-branch. The engine bench guard
//!    (`cargo bench -p syndcim-bench --bench engine`) pins the
//!    disabled-mode overhead on the vector-throughput hot loop.
//! 2. **Deterministic aggregation.** The span collector merges spans by
//!    `(parent, name)` — a site entered 12 times (or by 12 worker
//!    threads) is *one* tree node with `count == 12` — and counters are
//!    commutative atomic sums, so the report's structure, names and
//!    counts are identical regardless of thread count or interleaving.
//!    Only the duration fields vary run to run, and consumers are
//!    expected not to assert on them (see [`SpanSnapshot::signature`]).
//! 3. **Thread-aware nesting.** The current span is thread-local;
//!    `syndcim_ir::parallel_map` captures the caller's span with
//!    [`current_span`] and adopts it in every worker via [`adopt`], so
//!    work fanned across threads lands under the span that spawned it.
//!
//! Collection is controlled by the `SYNDCIM_TRACE` environment
//! variable — `off` (default), `summary` or `json` — read once on
//! first use; tests and binaries can override it with [`set_mode`].
//! The distinction between `summary` and `json` is an *emission*
//! policy for the binary that owns the run (human tree vs
//! `FlowReport.json`); collection itself is identical in both.
//!
//! ```
//! use syndcim_telemetry as telemetry;
//!
//! telemetry::set_mode(telemetry::Mode::Summary);
//! telemetry::reset();
//! {
//!     telemetry::span!("compile");
//!     telemetry::counter("ops_emitted").add(42);
//! }
//! let report = telemetry::snapshot();
//! assert_eq!(report.root.children[0].name, "compile");
//! assert_eq!(report.counter("ops_emitted"), Some(42));
//! telemetry::set_mode(telemetry::Mode::Off);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------
// Mode and the global enable gate
// ---------------------------------------------------------------------

/// Collection/emission mode, from `SYNDCIM_TRACE` or [`set_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No collection. Every site costs one relaxed atomic load.
    Off,
    /// Collect; owners of the run emit a human-readable summary tree.
    Summary,
    /// Collect; owners of the run emit deterministic-schema JSON.
    Json,
}

const MODE_UNINIT: u8 = 0xFF;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[cold]
fn init_mode_from_env() -> u8 {
    let m = match std::env::var("SYNDCIM_TRACE").ok().as_deref() {
        Some("summary") => Mode::Summary,
        Some("json") => Mode::Json,
        _ => Mode::Off,
    } as u8;
    // Racing first calls agree (the env var is stable), so a plain
    // store is fine; `set_mode` wins over the env either way.
    MODE.store(m, Ordering::Relaxed);
    m
}

#[inline]
fn mode_byte() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m == MODE_UNINIT {
        init_mode_from_env()
    } else {
        m
    }
}

/// The active [`Mode`].
pub fn mode() -> Mode {
    match mode_byte() {
        1 => Mode::Summary,
        2 => Mode::Json,
        _ => Mode::Off,
    }
}

/// Override the mode (takes precedence over `SYNDCIM_TRACE`). Used by
/// tests and by binaries that force collection on.
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Whether collection is active. **One relaxed atomic load** — this is
/// the whole cost every instrumentation site pays when telemetry is
/// off, and the bound the engine bench guard pins.
#[inline]
pub fn enabled() -> bool {
    mode_byte() > Mode::Off as u8
}

// ---------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------

/// Number of log₂(ns) histogram buckets: bucket `i` holds durations in
/// `[2^(i-1), 2^i)` ns (bucket 0 holds `0 ns`), so bucket 39 already
/// covers ~9 minutes.
pub const HIST_BUCKETS: usize = 40;

enum Metric {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    // Boxed so the enum stays one word + tag; the cell is leaked once at
    // registration anyway, so the extra indirection is off the hot path.
    Histogram(Box<[AtomicU64; HIST_BUCKETS]>),
}

/// Name → leaked metric cell. Metrics are interned forever (the set of
/// instrumentation sites is small and static); handles returned to
/// callers are `&'static`, so hot sites resolve their name once and
/// then pay only the atomic op.
static METRICS: Mutex<BTreeMap<&'static str, &'static Metric>> = Mutex::new(BTreeMap::new());

fn metric(name: &'static str, make: fn() -> Metric) -> &'static Metric {
    let mut map = METRICS.lock().expect("telemetry registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::new(make())))
}

/// A named monotonically-increasing counter. Obtain with [`counter`];
/// cheap to copy and cacheable in `'static` struct fields.
#[derive(Clone, Copy)]
pub struct Counter(&'static Metric);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Find or create the counter `name`.
pub fn counter(name: &'static str) -> Counter {
    Counter(metric(name, || Metric::Counter(AtomicU64::new(0))))
}

impl Counter {
    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            if let Metric::Counter(c) = self.0 {
                c.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Add 1 (no-op while disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 while nothing recorded).
    pub fn get(&self) -> u64 {
        match self.0 {
            Metric::Counter(c) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

/// A named last-write-wins gauge (e.g. retained bytes of a compiled
/// artifact). Obtain with [`gauge`].
#[derive(Clone, Copy)]
pub struct Gauge(&'static Metric);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Find or create the gauge `name`.
pub fn gauge(name: &'static str) -> Gauge {
    Gauge(metric(name, || Metric::Gauge(AtomicU64::new(0))))
}

impl Gauge {
    /// Set the gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            if let Metric::Gauge(g) = self.0 {
                g.store(v, Ordering::Relaxed);
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        match self.0 {
            Metric::Gauge(g) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

/// A named fixed-bucket (log₂ ns) duration histogram. Obtain with
/// [`histogram`].
#[derive(Clone, Copy)]
pub struct Histogram(&'static Metric);

/// Find or create the histogram `name`.
pub fn histogram(name: &'static str) -> Histogram {
    Histogram(metric(name, || Metric::Histogram(Box::new(std::array::from_fn(|_| AtomicU64::new(0))))))
}

impl Histogram {
    /// Record a duration in nanoseconds (no-op while disabled).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if enabled() {
            if let Metric::Histogram(buckets) = self.0 {
                let b = (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1);
                buckets[b].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record an elapsed [`std::time::Duration`].
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

struct SpanNode {
    name: &'static str,
    count: u64,
    total_ns: u64,
    children: Vec<u32>,
}

/// Node 0 is the implicit root; it never accumulates time itself.
static TREE: Mutex<Vec<SpanNode>> = Mutex::new(Vec::new());

thread_local! {
    /// The innermost open span on this thread (tree node id).
    static CURRENT: Cell<u32> = const { Cell::new(0) };
}

fn with_tree<R>(f: impl FnOnce(&mut Vec<SpanNode>) -> R) -> R {
    let mut tree = TREE.lock().expect("telemetry span tree poisoned");
    if tree.is_empty() {
        tree.push(SpanNode { name: "root", count: 0, total_ns: 0, children: Vec::new() });
    }
    f(&mut tree)
}

/// Opaque handle to an open span, used to parent work that hops
/// threads (see [`current_span`] / [`adopt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// The innermost open span on the calling thread (the root if none).
pub fn current_span() -> SpanId {
    SpanId(CURRENT.with(|c| c.get()))
}

/// Make `parent` the calling thread's current span until the returned
/// guard drops. `parallel_map` wraps every worker invocation in one of
/// these so worker spans nest under the span that spawned the fan-out.
pub fn adopt(parent: SpanId) -> AdoptGuard {
    let prev = CURRENT.with(|c| c.replace(parent.0));
    AdoptGuard { prev }
}

/// RAII guard restoring the thread's previous current span. See
/// [`adopt`].
pub struct AdoptGuard {
    prev: u32,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// RAII guard for one span entry; created by [`span()`] (usually via the
/// [`span!`] macro). Entry bumps the merged `(parent, name)` tree
/// node's count (so a snapshot taken inside an open span still sees
/// it); drop adds the elapsed time. Inert (and allocation-free) when
/// telemetry is disabled.
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

struct SpanGuardInner {
    node: u32,
    prev: u32,
    start: Instant,
}

/// Enter the span `name` under the thread's current span, merging with
/// any previous entry of the same name at the same position.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let parent = CURRENT.with(|c| c.get());
    let node = with_tree(|tree| {
        let id = if let Some(&id) =
            tree[parent as usize].children.iter().find(|&&c| tree[c as usize].name == name)
        {
            id
        } else {
            let id = tree.len() as u32;
            tree.push(SpanNode { name, count: 0, total_ns: 0, children: Vec::new() });
            tree[parent as usize].children.push(id);
            id
        };
        tree[id as usize].count += 1;
        id
    });
    CURRENT.with(|c| c.set(node));
    SpanGuard { inner: Some(SpanGuardInner { node, prev: parent, start: Instant::now() }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_tree(|tree| tree[inner.node as usize].total_ns += ns);
            CURRENT.with(|c| c.set(inner.prev));
        }
    }
}

/// Open a span for the rest of the enclosing scope:
/// `telemetry::span!("engine.compile");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _syndcim_span_guard = $crate::span($name);
    };
}

// ---------------------------------------------------------------------
// Snapshots and reports
// ---------------------------------------------------------------------

/// One merged span node in a [`Report`]: every entry of the same name
/// at the same tree position, from any thread, aggregated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total time spent inside (including children), in nanoseconds.
    /// Wall-clock: **never assert on this field** — compare
    /// [`SpanSnapshot::signature`]s instead.
    pub total_ns: u64,
    /// Child spans, sorted by name (deterministic regardless of the
    /// thread interleaving that created them).
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// A copy with every `total_ns` zeroed — the deterministic part of
    /// the tree (names, nesting, counts), safe to assert equality on.
    pub fn signature(&self) -> SpanSnapshot {
        SpanSnapshot {
            name: self.name.clone(),
            count: self.count,
            total_ns: 0,
            children: self.children.iter().map(SpanSnapshot::signature).collect(),
        }
    }
}

/// A point-in-time copy of everything the collector holds. The
/// implementation flow attaches one to each `ImplementedMacro` as its
/// `FlowReport`; [`Report::to_json`] serializes it with a deterministic
/// schema and key order so runs can be diffed.
#[derive(Debug, Clone)]
pub struct Report {
    /// The merged span tree (the root's `count`/`total_ns` are 0).
    pub root: SpanSnapshot,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name; each as sparse
    /// `(bucket, count)` pairs where bucket `i` covers
    /// `[2^(i-1), 2^i)` ns.
    pub histograms: Vec<(String, Vec<(u32, u64)>)>,
}

fn snapshot_node(tree: &[SpanNode], id: u32) -> SpanSnapshot {
    let n = &tree[id as usize];
    let mut children: Vec<SpanSnapshot> = n.children.iter().map(|&c| snapshot_node(tree, c)).collect();
    children.sort_by(|a, b| a.name.cmp(&b.name));
    SpanSnapshot { name: n.name.to_string(), count: n.count, total_ns: n.total_ns, children }
}

/// Snapshot the collector (span tree + counters + gauges + histograms).
/// Cheap relative to any instrumented workload; safe to call with
/// spans still open (open spans have not yet added their time).
pub fn snapshot() -> Report {
    let root = with_tree(|tree| snapshot_node(tree, 0));
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (&name, m) in METRICS.lock().expect("telemetry registry poisoned").iter() {
        match m {
            Metric::Counter(c) => counters.push((name.to_string(), c.load(Ordering::Relaxed))),
            Metric::Gauge(g) => gauges.push((name.to_string(), g.load(Ordering::Relaxed))),
            Metric::Histogram(buckets) => {
                let sparse: Vec<(u32, u64)> = buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let v = b.load(Ordering::Relaxed);
                        (v > 0).then_some((i as u32, v))
                    })
                    .collect();
                histograms.push((name.to_string(), sparse));
            }
        }
    }
    Report { root, counters, gauges, histograms }
}

/// Clear the span tree and zero every counter, gauge and histogram
/// (registrations and cached handles stay valid). Call at the start of
/// a run whose report should not include earlier activity.
pub fn reset() {
    with_tree(|tree| {
        tree.clear();
        tree.push(SpanNode { name: "root", count: 0, total_ns: 0, children: Vec::new() });
    });
    for m in METRICS.lock().expect("telemetry registry poisoned").values() {
        match m {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.store(0, Ordering::Relaxed),
            Metric::Histogram(buckets) => {
                for b in buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_span(s: &SpanSnapshot, out: &mut String) {
    out.push_str("{\"name\":");
    json_escape(&s.name, out);
    out.push_str(&format!(",\"count\":{},\"total_ns\":{},\"children\":[", s.count, s.total_ns));
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_span(c, out);
    }
    out.push_str("]}");
}

impl Report {
    /// Value of counter `name` in this snapshot, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of gauge `name` in this snapshot, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Serialize with a deterministic schema: fixed top-level key
    /// order (`schema`, `spans`, `counters`, `gauges`, `histograms`),
    /// counters/gauges/histograms sorted by name, span children sorted
    /// by name. The only fields that vary between identical runs are
    /// the `total_ns` durations and the histogram bucket placements —
    /// diff tooling asserts on everything else.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"syndcim-flow-report-v1\",\"spans\":");
        json_span(&self.root, &mut out);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape(name, &mut out);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape(name, &mut out);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, sparse)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape(name, &mut out);
            out.push_str(":[");
            for (j, (bucket, count)) in sparse.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bucket},{count}]"));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Human-readable summary: indented span tree with times, then the
    /// counter and gauge tables.
    pub fn render(&self) -> String {
        fn walk(s: &SpanSnapshot, depth: usize, out: &mut String) {
            let ms = s.total_ns as f64 / 1e6;
            out.push_str(&format!(
                "{:indent$}{:<32} {:>10.2} ms  x{}\n",
                "",
                s.name,
                ms,
                s.count,
                indent = depth * 2
            ));
            for c in &s.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::from("spans:\n");
        for c in &self.root.children {
            walk(c, 1, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global telemetry state is shared across tests in this binary;
    /// serialize the ones that reset it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_record_nothing() {
        let _l = LOCK.lock().unwrap();
        set_mode(Mode::Off);
        reset();
        {
            span!("ghost");
            counter("ghost.count").incr();
            gauge("ghost.gauge").set(7);
            histogram("ghost.hist").record_ns(100);
        }
        let r = snapshot();
        assert!(r.root.children.is_empty(), "no spans recorded while off");
        assert_eq!(r.counter("ghost.count"), Some(0));
        assert_eq!(r.gauge("ghost.gauge"), Some(0));
    }

    #[test]
    fn spans_merge_by_parent_and_name() {
        let _l = LOCK.lock().unwrap();
        set_mode(Mode::Summary);
        reset();
        for _ in 0..3 {
            span!("outer");
            span!("inner");
        }
        let r = snapshot();
        set_mode(Mode::Off);
        assert_eq!(r.root.children.len(), 1);
        let outer = &r.root.children[0];
        assert_eq!((outer.name.as_str(), outer.count), ("outer", 3));
        assert_eq!(outer.children.len(), 1);
        assert_eq!((outer.children[0].name.as_str(), outer.children[0].count), ("inner", 3));
    }

    #[test]
    fn adopt_parents_cross_thread_spans() {
        let _l = LOCK.lock().unwrap();
        set_mode(Mode::Summary);
        reset();
        {
            let g = span("parent");
            let here = current_span();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _a = adopt(here);
                        span!("worker");
                    });
                }
            });
            drop(g);
        }
        let r = snapshot();
        set_mode(Mode::Off);
        let parent = &r.root.children[0];
        assert_eq!(parent.name, "parent");
        assert_eq!(parent.children.len(), 1, "4 worker entries merge into one node");
        assert_eq!(parent.children[0].count, 4);
    }

    #[test]
    fn json_schema_is_stable() {
        let _l = LOCK.lock().unwrap();
        set_mode(Mode::Json);
        reset();
        {
            span!("a");
            counter("z.counter").add(2);
            counter("a.counter").add(1);
        }
        let r = snapshot();
        set_mode(Mode::Off);
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"syndcim-flow-report-v1\""));
        let az = json.find("\"a.counter\"").zip(json.find("\"z.counter\""));
        let (a, z) = az.expect("both counters serialized");
        assert!(a < z, "counters sorted by name");
        let sig = r.root.signature();
        assert_eq!(sig.children[0].total_ns, 0);
    }
}
