//! # syndcim-power — power, energy and efficiency analysis
//!
//! The power-sign-off substrate: toggle-driven dynamic power (from the
//! cycle simulator), clock and leakage power, and the TOPS / TOPS/W /
//! TOPS/mm² metrics in which the paper reports results.
//!
//! Like simulation and timing, power analysis has a reference and a
//! compiled backend: [`PowerAnalyzer`] walks the module per report,
//! [`CompiledPower`] (from [`PowerAnalyzer::compile`]) bakes the walk
//! into dense struct-of-arrays columns over the shared IR's net slots
//! so one report is one linear `toggles·column` pass — bit-identical to
//! the reference, batched over corners by
//! [`CompiledPower::report_many`].
//!
//! ```
//! use syndcim_power::{MacThroughput, tops_per_w};
//! use syndcim_sim::Precision;
//!
//! let t = MacThroughput { h: 64, w: 64, act: Precision::Int(1), weight: Precision::Int(1) };
//! let tops = t.tops(1100.0); // ≈ 9 TOPS, the paper's headline
//! assert!(tops > 8.9 && tops < 9.1);
//! assert!(tops_per_w(tops, 50_000.0) > 100.0);
//! ```

pub mod analyzer;
pub mod artifact;
pub mod compiled;
pub mod metrics;

pub use analyzer::{PowerAnalyzer, PowerReport};
pub use compiled::CompiledPower;
pub use metrics::{tops_per_mm2, tops_per_w, MacThroughput};
