//! `.scim` codec for the compiled power program
//! ([`SectionId::Power`](syndcim_ir::artifact::SectionId)).
//!
//! The section stores the [`CompiledPower`] struct-of-arrays columns
//! verbatim — capacitance/energy columns, the instance-output CSR, the
//! dense group-head table, port loads, the clock/leakage scalars and
//! the per-head/per-node clock and leakage columns —
//! every `f64` as its exact bit pattern, so a loaded program's
//! `report`/`by_group_pj`/`by_path_pj` results are bit-identical to the
//! in-memory compile (pinned by `tests/artifact_roundtrip.rs`).
//! Decoding re-validates the CSR shape and every slot, group and symbol
//! index the report passes rely on.

use syndcim_ir::artifact::{ArtifactError, SectionReader, SectionWriter};
use syndcim_ir::Symbols;

use crate::CompiledPower;

/// Encode `power` into a
/// [`SectionId::Power`](syndcim_ir::artifact::SectionId) payload. The
/// shared [`Symbols`] live in their own section and are re-attached on
/// decode.
pub fn encode_power(power: &CompiledPower) -> SectionWriter {
    let mut w = SectionWriter::new();
    syndcim_ir::artifact::put_process(&mut w, &power.process);
    w.put_u64(power.net_count as u64);
    w.put_u32s(&power.out_slot);
    w.put_f64s(&power.out_cap_ff);
    w.put_f64s(&power.out_internal_fj);
    w.put_u32s(&power.inst_out_start);
    w.put_u32s(&power.inst_group);
    w.put_symbols(&power.group_head_syms);
    w.put_u32s(&power.in_port_slot);
    w.put_f64s(&power.in_port_load_ff);
    w.put_f64(power.clock_regs_fj);
    w.put_f64(power.leakage_total_nw);
    w.put_f64(power.glitch_factor);
    w.put_f64(power.clock_tree_overhead);
    w.put_f64s(&power.head_clock_fj);
    w.put_f64s(&power.node_clock_fj);
    w.put_f64s(&power.node_leakage_nw);
    w
}

/// Decode a [`SectionId::Power`](syndcim_ir::artifact::SectionId)
/// payload against the already-decoded shared `symbols`.
pub fn decode_power(r: &mut SectionReader<'_>, symbols: &Symbols) -> Result<CompiledPower, ArtifactError> {
    let process = syndcim_ir::artifact::get_process(r)?;
    let net_count = r.get_u64("power net count")? as usize;
    if net_count != symbols.net_count() {
        return Err(
            r.malformed(format!("net count {net_count} disagrees with symbols ({})", symbols.net_count()))
        );
    }
    let inst_count = symbols.inst_count();

    let out_slot = r.get_u32s("output slots")?;
    let out_cap_ff = r.get_f64s("output capacitances")?;
    let out_internal_fj = r.get_f64s("output internal energies")?;
    let inst_out_start = r.get_u32s("instance output offsets")?;
    let inst_group = r.get_u32s("instance group ids")?;
    let group_head_syms = r.get_symbols(symbols.interner().len(), "group head symbols")?;
    let in_port_slot = r.get_u32s("input port slots")?;
    let in_port_load_ff = r.get_f64s("input port loads")?;
    let clock_regs_fj = r.get_f64("clock register energy")?;
    let leakage_total_nw = r.get_f64("total leakage")?;
    let glitch_factor = r.get_f64("glitch factor")?;
    let clock_tree_overhead = r.get_f64("clock tree overhead")?;
    let head_clock_fj = r.get_f64s("per-head clock energies")?;
    let node_clock_fj = r.get_f64s("per-node clock energies")?;
    let node_leakage_nw = r.get_f64s("per-node leakage")?;

    let outputs = out_slot.len();
    if out_cap_ff.len() != outputs || out_internal_fj.len() != outputs {
        return Err(r.malformed("output column lengths disagree"));
    }
    if inst_out_start.len() != inst_count + 1
        || inst_out_start.first().copied().unwrap_or(1) != 0
        || inst_out_start.last().copied().unwrap_or(0) as usize != outputs
    {
        return Err(r.malformed("instance output offset table has wrong shape"));
    }
    for pair in inst_out_start.windows(2) {
        if pair[0] > pair[1] {
            return Err(r.malformed("instance output offsets not monotone"));
        }
    }
    if inst_group.len() != inst_count {
        return Err(r.malformed(format!(
            "instance group table covers {} instances, symbols have {inst_count}",
            inst_group.len()
        )));
    }
    for &g in &inst_group {
        if g as usize >= group_head_syms.len() {
            return Err(
                r.malformed(format!("instance group id {g} out of range ({} heads)", group_head_syms.len()))
            );
        }
    }
    for (what, slots) in [("output slot", &out_slot), ("input port slot", &in_port_slot)] {
        for &s in slots.iter() {
            if s as usize >= net_count {
                return Err(r.malformed(format!("{what} {s} out of range ({net_count} nets)")));
            }
        }
    }
    if in_port_load_ff.len() != in_port_slot.len() {
        return Err(r.malformed("input port column lengths disagree"));
    }
    if head_clock_fj.len() != group_head_syms.len() {
        return Err(r.malformed(format!(
            "per-head clock column covers {} heads, table has {}",
            head_clock_fj.len(),
            group_head_syms.len()
        )));
    }
    let nodes = symbols.node_count();
    if node_clock_fj.len() != nodes || node_leakage_nw.len() != nodes {
        return Err(r.malformed(format!(
            "per-node clock/leakage columns cover {}/{} nodes, symbols have {nodes}",
            node_clock_fj.len(),
            node_leakage_nw.len()
        )));
    }

    Ok(CompiledPower {
        process,
        net_count,
        out_slot,
        out_cap_ff,
        out_internal_fj,
        inst_out_start,
        inst_group,
        group_head_syms,
        syms: symbols.clone(),
        in_port_slot,
        in_port_load_ff,
        clock_regs_fj,
        leakage_total_nw,
        head_clock_fj,
        node_clock_fj,
        node_leakage_nw,
        glitch_factor,
        clock_tree_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerAnalyzer;
    use syndcim_ir::artifact::{ArtifactReader, ArtifactWriter, SectionId};
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::{CellLibrary, OperatingPoint};

    fn frame(payload: SectionWriter) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ArtifactWriter::new(&mut out, 1).unwrap();
        w.write_section(SectionId::Power, payload).unwrap();
        w.finish().unwrap();
        out
    }

    #[test]
    fn power_codec_roundtrips_bit_identical_reports() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("pipe", &lib);
        let a = b.input("a");
        b.push_group("regs/bank0");
        let q = b.dff(a);
        b.pop_group();
        let y = b.not(q);
        b.output("y", y);
        let m = b.finish();
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let cp = pa.compile();

        let bytes = frame(encode_power(&cp));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Power).unwrap();
        let back = decode_power(&mut r, cp.symbols()).unwrap();
        r.finish().unwrap();

        let toggles = vec![6u64; m.net_count()];
        for v in [0.7, 0.9, 1.2] {
            let op = OperatingPoint::at_voltage(v);
            let (want, got) = (cp.report(&toggles, 12, 800.0, op), back.report(&toggles, 12, 800.0, op));
            assert_eq!(got.total_uw(), want.total_uw(), "total at {v} V");
            assert_eq!(got.by_group_pj, want.by_group_pj, "group breakdown at {v} V");
            assert_eq!(back.by_path_pj(&toggles, 12, op), cp.by_path_pj(&toggles, 12, op));
        }
        let op = OperatingPoint::at_voltage(0.9);
        assert_eq!(back.leakage_uw(op), cp.leakage_uw(op));
    }

    #[test]
    fn malformed_csr_is_rejected() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("inv", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let mut cp = PowerAnalyzer::new(&m, &lib).unwrap().compile();
        let last = cp.inst_out_start.len() - 1;
        cp.inst_out_start[last] += 7;
        let bytes = frame(encode_power(&cp));
        let reader = ArtifactReader::parse(&bytes).unwrap();
        let mut r = reader.reader(SectionId::Power).unwrap();
        assert!(matches!(decode_power(&mut r, cp.symbols()), Err(ArtifactError::Malformed { .. })));
    }
}
