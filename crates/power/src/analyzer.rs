//! Activity-based power analysis.
//!
//! Two modes, mirroring the paper's flow:
//!
//! * **simulation-driven** ([`PowerAnalyzer::from_activity`]) — consumes
//!   the per-net toggle counts produced by `syndcim_sim::Simulator` on
//!   realistic vectors, the way PrimeTime consumes SAIF from gate-level
//!   simulation;
//! * **static-activity** ([`PowerAnalyzer::from_static_activity`]) — a
//!   uniform toggle-rate estimate used during subcircuit library
//!   characterization scaling, where simulating every configuration
//!   would be wasteful.
//!
//! Energy per net transition is `½·C_net·V²` (pin + wire capacitance)
//! plus the driving cell's characterized internal energy. Zero-delay
//! simulation cannot see glitches, which matter in deep adder trees, so
//! combinational dynamic energy is multiplied by a configurable glitch
//! factor (default 1.25).

use std::collections::BTreeMap;

use syndcim_ir::{Lowering, Symbols};
use syndcim_netlist::{Connectivity, Module, NetlistError, PortDir};
use syndcim_pdk::{CellLibrary, OperatingPoint};

/// Result of one power analysis run.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// Combinational + data-path dynamic power in µW.
    pub dynamic_uw: f64,
    /// Clock-tree + sequential clock-pin power in µW.
    pub clock_uw: f64,
    /// Leakage power in µW at the analyzed corner.
    pub leakage_uw: f64,
    /// Dynamic energy per cycle in pJ (excluding leakage).
    pub energy_per_cycle_pj: f64,
    /// The frequency the power numbers are quoted at, in MHz.
    pub freq_mhz: f64,
    /// Dynamic energy share per top-level group, in pJ/cycle.
    pub by_group_pj: BTreeMap<String, f64>,
}

impl PowerReport {
    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.clock_uw + self.leakage_uw
    }

    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.total_uw() / 1000.0
    }
}

/// Power analyzer bound to one module.
///
/// This is the *reference* analyzer: a direct walk over the module's
/// instances per report. The engine-style fast path is obtained by
/// lowering it once with [`PowerAnalyzer::compile`] into a
/// [`CompiledPower`](crate::CompiledPower), which is differentially
/// pinned to this implementation.
#[derive(Debug)]
pub struct PowerAnalyzer<'a> {
    pub(crate) module: &'a Module,
    pub(crate) lib: &'a CellLibrary,
    /// Load per net in fF (pins + wire).
    pub(crate) load_ff: Vec<f64>,
    /// Internal energy of each net's driver in fJ (0 for ports/ties).
    pub(crate) driver_internal_fj: Vec<f64>,
    /// Interned name tables — shared with the lowering when built via
    /// [`PowerAnalyzer::from_lowering`], interned locally otherwise.
    /// Group heads for breakdowns resolve through here (no per-instance
    /// `String` table), and [`PowerAnalyzer::compile`] hands the same
    /// handles to the compiled program.
    pub(crate) symbols: Symbols,
    /// Glitch multiplier on combinational dynamic energy.
    pub(crate) glitch_factor: f64,
    /// Clock-tree distribution overhead on top of register clock pins.
    pub(crate) clock_tree_overhead: f64,
}

impl<'a> PowerAnalyzer<'a> {
    /// Build an analyzer with zero wire capacitance (pre-layout power).
    ///
    /// # Errors
    ///
    /// Fails if the netlist has connectivity errors.
    pub fn new(module: &'a Module, lib: &'a CellLibrary) -> Result<Self, NetlistError> {
        Self::with_wire_caps(module, lib, &[])
    }

    /// Build an analyzer with per-net wire capacitance in fF (missing
    /// entries are treated as zero).
    ///
    /// # Errors
    ///
    /// Fails if the netlist has connectivity errors.
    pub fn with_wire_caps(
        module: &'a Module,
        lib: &'a CellLibrary,
        wire_cap_ff: &[f64],
    ) -> Result<Self, NetlistError> {
        // The walk itself never needs the connectivity tables; building
        // them here keeps the seed's error contract (reject multi-driven
        // nets) for callers that have not lowered the module yet.
        let _conn = Connectivity::build(module)?;
        Ok(Self::build(module, lib, wire_cap_ff, Symbols::from_module(module)))
    }

    /// Build an analyzer over an already-performed [`Lowering`] of
    /// `module` — the shared-IR path: the lowering has already built and
    /// checked connectivity, so no additional netlist walk happens here.
    /// The lowering must have been built from the same `module`.
    pub fn from_lowering(
        module: &'a Module,
        lib: &'a CellLibrary,
        low: &Lowering,
        wire_cap_ff: &[f64],
    ) -> Self {
        debug_assert_eq!(low.net_count(), module.net_count(), "lowering belongs to a different module");
        Self::build(module, lib, wire_cap_ff, low.symbols().clone())
    }

    /// The shared constructor body: per-net loads, driver internal
    /// energies and group heads in one instance pass.
    fn build(module: &'a Module, lib: &'a CellLibrary, wire_cap_ff: &[f64], symbols: Symbols) -> Self {
        let n = module.net_count();
        let mut load = vec![0.0f64; n];
        for inst in &module.instances {
            let cell = lib.cell(inst.cell);
            for (pin, &net) in inst.inputs.iter().enumerate() {
                load[net.index()] += cell.input_cap_ff[pin];
            }
        }
        let port_load = 4.0 * lib.process().cin_unit_ff;
        for p in module.ports.iter().filter(|p| p.dir == PortDir::Output) {
            load[p.net.index()] += port_load;
        }
        for (i, l) in load.iter_mut().enumerate() {
            *l += wire_cap_ff.get(i).copied().unwrap_or(0.0);
        }

        let mut driver_internal = vec![0.0f64; n];
        for inst in &module.instances {
            let cell = lib.cell(inst.cell);
            for &net in &inst.outputs {
                driver_internal[net.index()] = cell.internal_energy_fj;
            }
        }

        PowerAnalyzer {
            module,
            lib,
            load_ff: load,
            driver_internal_fj: driver_internal,
            symbols,
            glitch_factor: 1.25,
            clock_tree_overhead: 0.30,
        }
    }

    /// Top-level group name of instance `idx` (the segment before the
    /// first `/`), resolved through the interned tables — the key the
    /// breakdown maps aggregate by. Identical to the seed's
    /// `group_name(..).split('/').next()` string.
    fn inst_group_head(&self, idx: usize) -> &str {
        self.symbols.resolve(self.symbols.group_head_sym(self.symbols.group_of(idx)))
    }

    /// Override the glitch multiplier (1.0 disables glitch padding).
    pub fn set_glitch_factor(&mut self, f: f64) {
        self.glitch_factor = f;
    }

    /// Power from measured per-net toggle counts over `cycles` cycles at
    /// `freq_mhz`, at operating point `op`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or the toggle table is shorter than the
    /// net count.
    pub fn from_activity(
        &self,
        toggles: &[u64],
        cycles: u64,
        freq_mhz: f64,
        op: OperatingPoint,
    ) -> PowerReport {
        assert!(cycles > 0, "need at least one simulated cycle");
        assert!(toggles.len() >= self.module.net_count(), "toggle table too short");
        let escale = self.lib.process().energy_scale(op.vdd_v);
        let v = op.vdd_v;

        // Per-instance output energy, aggregated per group.
        let mut by_group: BTreeMap<String, f64> = BTreeMap::new();
        let mut switch_fj_total = 0.0f64;
        for (idx, inst) in self.module.instances.iter().enumerate() {
            let mut inst_fj = 0.0;
            for &net in &inst.outputs {
                let t = toggles[net.index()] as f64 / cycles as f64;
                let cap = self.load_ff[net.index()];
                inst_fj += t * (0.5 * cap * v * v + self.driver_internal_fj[net.index()] * escale);
            }
            inst_fj *= self.glitch_factor;
            switch_fj_total += inst_fj;
            *by_group.entry(self.inst_group_head(idx).to_string()).or_insert(0.0) += inst_fj / 1000.0;
        }
        // Input-port nets: charged by the external driver but loading our
        // pins still burns CV² in the receiving macro rail; count half.
        for p in self.module.input_ports() {
            let t = toggles[p.net.index()] as f64 / cycles as f64;
            switch_fj_total += 0.5 * t * 0.5 * self.load_ff[p.net.index()] * v * v;
        }

        let clock_fj = self.clock_energy_fj_per_cycle(escale);
        let leakage_uw = self.leakage_uw(op);
        let energy_per_cycle_pj = (switch_fj_total + clock_fj) / 1000.0;
        // fJ/cycle × MHz → 1e-3 µW.
        let dynamic_uw = switch_fj_total * freq_mhz * 1e-3;
        let clock_uw = clock_fj * freq_mhz * 1e-3;
        PowerReport { dynamic_uw, clock_uw, leakage_uw, energy_per_cycle_pj, freq_mhz, by_group_pj: by_group }
    }

    /// Power assuming every non-constant net toggles `alpha` times per
    /// cycle (static activity estimate).
    pub fn from_static_activity(&self, alpha: f64, freq_mhz: f64, op: OperatingPoint) -> PowerReport {
        let escale = self.lib.process().energy_scale(op.vdd_v);
        let v = op.vdd_v;
        let mut by_group: BTreeMap<String, f64> = BTreeMap::new();
        let mut switch_fj_total = 0.0f64;
        for (idx, inst) in self.module.instances.iter().enumerate() {
            let mut inst_fj = 0.0;
            for &net in &inst.outputs {
                let cap = self.load_ff[net.index()];
                inst_fj += alpha * (0.5 * cap * v * v + self.driver_internal_fj[net.index()] * escale);
            }
            inst_fj *= self.glitch_factor;
            switch_fj_total += inst_fj;
            *by_group.entry(self.inst_group_head(idx).to_string()).or_insert(0.0) += inst_fj / 1000.0;
        }
        let clock_fj = self.clock_energy_fj_per_cycle(escale);
        PowerReport {
            dynamic_uw: switch_fj_total * freq_mhz * 1e-3,
            clock_uw: clock_fj * freq_mhz * 1e-3,
            leakage_uw: self.leakage_uw(op),
            energy_per_cycle_pj: (switch_fj_total + clock_fj) / 1000.0,
            freq_mhz,
            by_group_pj: by_group,
        }
    }

    /// Per-cycle clock-pin energy per top-level group, in pJ/cycle,
    /// including the clock-tree distribution overhead. Every group head
    /// appears (0.0 for register-free groups); the values sum to the
    /// clock term of `energy_per_cycle_pj`. The compiled program's
    /// [`CompiledPower::clock_by_group_pj`](crate::CompiledPower::clock_by_group_pj)
    /// is differentially pinned bit-identical to this walk.
    pub fn clock_by_group_pj(&self, op: OperatingPoint) -> BTreeMap<String, f64> {
        let escale = self.lib.process().energy_scale(op.vdd_v);
        let mut raw: BTreeMap<String, f64> = BTreeMap::new();
        for (idx, inst) in self.module.instances.iter().enumerate() {
            let fj = raw.entry(self.inst_group_head(idx).to_string()).or_insert(0.0);
            if let Some(seq) = self.lib.cell(inst.cell).seq {
                *fj += seq.clk_energy_fj;
            }
        }
        let cscale = escale * (1.0 + self.clock_tree_overhead);
        raw.into_iter().map(|(head, fj)| (head, fj * cscale / 1000.0)).collect()
    }

    fn clock_energy_fj_per_cycle(&self, escale: f64) -> f64 {
        let regs: f64 = self
            .module
            .instances
            .iter()
            .filter_map(|i| self.lib.cell(i.cell).seq)
            .map(|s| s.clk_energy_fj)
            .sum();
        regs * escale * (1.0 + self.clock_tree_overhead)
    }

    /// Leakage power in µW at a corner.
    pub fn leakage_uw(&self, op: OperatingPoint) -> f64 {
        let scale = self.lib.process().leakage_scale(op.vdd_v, op.temp_c);
        let nw: f64 = self.module.instances.iter().map(|i| self.lib.cell(i.cell).leakage_nw).sum();
        nw * scale / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_sim::Simulator;

    fn toggler() -> (Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        b.push_group("datapath");
        let x = b.xor2(a, a); // constant 0 but still evaluated
        let y = b.not(a);
        b.pop_group();
        let q = b.dff(y);
        b.output("y", y);
        b.output("x", x);
        b.output("q", q);
        (b.finish(), lib)
    }

    #[test]
    fn toggling_input_produces_dynamic_power() {
        let (m, lib) = toggler();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for i in 0..100 {
            sim.set("a", i % 2 == 0);
            sim.step();
        }
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let r = pa.from_activity(sim.toggle_table(), sim.cycles(), 800.0, OperatingPoint::at_voltage(0.9));
        assert!(r.dynamic_uw > 0.0);
        assert!(r.clock_uw > 0.0);
        assert!(r.leakage_uw > 0.0);
        assert!(r.total_uw() > r.dynamic_uw);
        assert!(r.by_group_pj.contains_key("datapath"));
    }

    #[test]
    fn idle_circuit_burns_only_clock_and_leakage() {
        let (m, lib) = toggler();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.step(); // settle constants
        sim.reset_activity();
        for _ in 0..50 {
            sim.step();
        }
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let r = pa.from_activity(sim.toggle_table(), sim.cycles(), 800.0, OperatingPoint::at_voltage(0.9));
        assert_eq!(r.dynamic_uw, 0.0, "no input toggles → no switching power");
        assert!(r.clock_uw > 0.0);
    }

    #[test]
    fn power_scales_quadratically_with_voltage() {
        let (m, lib) = toggler();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for i in 0..100 {
            sim.set("a", i % 2 == 0);
            sim.step();
        }
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let lo = pa.from_activity(sim.toggle_table(), sim.cycles(), 800.0, OperatingPoint::at_voltage(0.6));
        let hi = pa.from_activity(sim.toggle_table(), sim.cycles(), 800.0, OperatingPoint::at_voltage(1.2));
        let ratio = hi.dynamic_uw / lo.dynamic_uw;
        assert!((ratio - 4.0).abs() < 1e-6, "V² scaling: {ratio}");
    }

    #[test]
    fn static_activity_mode_is_monotone_in_alpha() {
        let (m, lib) = toggler();
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let op = OperatingPoint::at_voltage(0.9);
        let a1 = pa.from_static_activity(0.1, 800.0, op);
        let a2 = pa.from_static_activity(0.2, 800.0, op);
        assert!(a2.dynamic_uw > a1.dynamic_uw);
        assert_eq!(a1.clock_uw, a2.clock_uw);
    }

    #[test]
    fn wire_caps_increase_power() {
        let (m, lib) = toggler();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for i in 0..100 {
            sim.set("a", i % 2 == 0);
            sim.step();
        }
        let base = PowerAnalyzer::new(&m, &lib).unwrap().from_activity(
            sim.toggle_table(),
            sim.cycles(),
            800.0,
            OperatingPoint::at_voltage(0.9),
        );
        let caps = vec![25.0; m.net_count()];
        let wired = PowerAnalyzer::with_wire_caps(&m, &lib, &caps).unwrap().from_activity(
            sim.toggle_table(),
            sim.cycles(),
            800.0,
            OperatingPoint::at_voltage(0.9),
        );
        assert!(wired.dynamic_uw > base.dynamic_uw);
    }

    #[test]
    fn glitch_factor_scales_dynamic_only() {
        let (m, lib) = toggler();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for i in 0..100 {
            sim.set("a", i % 2 == 0);
            sim.step();
        }
        let mut pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let op = OperatingPoint::at_voltage(0.9);
        let with_glitch = pa.from_activity(sim.toggle_table(), sim.cycles(), 800.0, op);
        pa.set_glitch_factor(1.0);
        let without = pa.from_activity(sim.toggle_table(), sim.cycles(), 800.0, op);
        // Gate switching scales by 1.25; the (unscaled) input-port pin
        // charging keeps the overall ratio slightly below 1.25.
        let ratio = with_glitch.dynamic_uw / without.dynamic_uw;
        assert!(ratio > 1.05 && ratio <= 1.25, "ratio {ratio}");
        assert_eq!(with_glitch.clock_uw, without.clock_uw);
    }
}
