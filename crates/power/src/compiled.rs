//! Compiled power analysis: the engine-style fast path.
//!
//! [`PowerAnalyzer::from_activity`] walks the module's instances on
//! every call — pin lookups, per-instance output vectors, a
//! `BTreeMap<String, _>` group accumulation with one string clone per
//! instance — which is fine for one report but dominates the sign-off
//! loop once `shmoo_with_power` grids and SCL characterization ask for
//! hundreds of operating points over the *same* netlist. This module
//! applies the same compile-once/evaluate-many structure the simulation
//! engine and the compiled STA use: [`PowerAnalyzer::compile`] bakes
//! per-net switched capacitance, per-driver internal energy, clock-tree
//! load, leakage and group membership into dense struct-of-arrays
//! columns indexed by the shared IR's net slots, and every report is
//! then one linear `toggles·column` pass.
//!
//! The transformation is exact, not approximate. Per instance output
//! the reference computes `t · (½·C·V² + E_int·escale)` where only the
//! toggle rate `t` and the corner scalars depend on the query; the
//! compiler freezes the capacitance and internal-energy columns and the
//! runtime pass replays the identical arithmetic in the identical
//! order, so every report — totals *and* the `by_group_pj` breakdown —
//! is **bit-identical** to the reference analyzer. Pinned by
//! `tests/power_compiled_differential.rs` on the 64×64 paper test-chip
//! across corners, wire loads and glitch factors.

use std::collections::{BTreeMap, HashMap};

use syndcim_ir::{Symbol, Symbols};
use syndcim_pdk::{OperatingPoint, Process};
use syndcim_telemetry as telemetry;

use crate::analyzer::{PowerAnalyzer, PowerReport};

/// A power analyzer compiled into struct-of-arrays form.
///
/// Build one from a configured (wire-annotated, glitch-adjusted)
/// [`PowerAnalyzer`] with [`PowerAnalyzer::compile`]. The compiled
/// program has no borrow of the module and can be stored in long-lived
/// structures (`syndcim_core::CompiledMacro` keeps one per implemented
/// macro); the group names used for breakdowns are interned
/// [`Symbols`] shared with the lowering and resolved lazily per report
/// — never owned `String` tables. Group membership is carried as a
/// hierarchical parent/prefix tree over the interned group ids, so the
/// seed-pinned top-level `by_group_pj` aggregation coexists with the
/// [`CompiledPower::by_path_pj`] per-subcircuit drill-down.
///
/// ```
/// use syndcim_netlist::NetlistBuilder;
/// use syndcim_pdk::{CellLibrary, OperatingPoint};
/// use syndcim_power::PowerAnalyzer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = CellLibrary::syn40();
/// let mut b = NetlistBuilder::new("pipe", &lib);
/// let a = b.input("a");
/// let x = b.not(a);
/// let q = b.dff(x);
/// b.output("q", q);
/// let m = b.finish();
///
/// let pa = PowerAnalyzer::new(&m, &lib)?;
/// let cp = pa.compile(); // one-time lowering
/// let toggles = vec![8u64; m.net_count()];
/// // One linear pass per report, bit-identical to the reference:
/// for v in [0.7, 0.9, 1.2] {
///     let op = OperatingPoint::at_voltage(v);
///     let fast = cp.report(&toggles, 16, 800.0, op);
///     let slow = pa.from_activity(&toggles, 16, 800.0, op);
///     assert_eq!(fast.total_uw(), slow.total_uw());
///     assert_eq!(fast.by_group_pj, slow.by_group_pj);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPower {
    /// Process parameters (cloned so the program is self-contained).
    pub(crate) process: Process,
    pub(crate) net_count: usize,

    // Flattened instance outputs, instance-major in instance order
    // (SoA). `out_cap_ff` is the baked total load (pins + port + wire),
    // `out_internal_fj` the driving cell's internal energy.
    pub(crate) out_slot: Vec<u32>,
    pub(crate) out_cap_ff: Vec<f64>,
    pub(crate) out_internal_fj: Vec<f64>,
    /// Outputs of instance `i` span `inst_out_start[i]..inst_out_start[i+1]`.
    pub(crate) inst_out_start: Vec<u32>,
    /// Dense group-head index per instance (top-level aggregation, the
    /// seed semantics of `by_group_pj`).
    pub(crate) inst_group: Vec<u32>,
    /// Interned group-head names, indexed by `inst_group` values —
    /// resolved lazily against `syms`; the program owns no name
    /// `String`s.
    pub(crate) group_head_syms: Vec<Symbol>,
    /// Shared interned name tables (from the lowering's interner) —
    /// also carry the hierarchical group-path tree (`group_node` /
    /// `node_parent`) behind the [`CompiledPower::by_path_pj`]
    /// drill-down.
    pub(crate) syms: Symbols,

    // Input-port nets: pin load charged by the external driver.
    pub(crate) in_port_slot: Vec<u32>,
    pub(crate) in_port_load_ff: Vec<f64>,

    /// Sum of sequential clock-pin energies in fJ (instance order).
    pub(crate) clock_regs_fj: f64,
    /// Total cell leakage in nW (instance order).
    pub(crate) leakage_total_nw: f64,
    /// Raw sequential clock-pin fJ per dense group head, accumulated in
    /// instance order — the numerator of
    /// [`CompiledPower::clock_by_group_pj`]. Indexed like
    /// `group_head_syms`.
    pub(crate) head_clock_fj: Vec<f64>,
    /// Raw sequential clock-pin fJ per group-path node (instance
    /// order): each register's clock pin attributed to its own
    /// subcircuit, rolled up by [`CompiledPower::by_path_pj`].
    pub(crate) node_clock_fj: Vec<f64>,
    /// Raw cell leakage in nW per group-path node (instance order),
    /// behind [`CompiledPower::leakage_by_path_uw`].
    pub(crate) node_leakage_nw: Vec<f64>,
    pub(crate) glitch_factor: f64,
    pub(crate) clock_tree_overhead: f64,
}

impl<'a> PowerAnalyzer<'a> {
    /// Lower this analyzer into a [`CompiledPower`].
    ///
    /// Compilation bakes in the current wire annotation and glitch
    /// factor — call it *after* [`PowerAnalyzer::with_wire_caps`] /
    /// [`PowerAnalyzer::set_glitch_factor`]. The one-time cost is a
    /// single linear pass over the instances; every subsequent report
    /// saves the module walk and the per-instance group-string churn.
    pub fn compile(&self) -> CompiledPower {
        telemetry::span!("power.compile");
        let module = self.module;
        let syms = self.symbols.clone();
        let mut out_slot = Vec::new();
        let mut out_cap_ff = Vec::new();
        let mut out_internal_fj = Vec::new();
        let mut inst_out_start = vec![0u32];
        let mut inst_group = Vec::with_capacity(module.instance_count());
        // Dense head ids in first-encounter order — the exact dense
        // assignment the pre-interning compiler produced from head
        // strings, so the `by_group_pj` accumulation order (and thus
        // its floating-point result) is unchanged. Interning makes
        // symbol equality string equality, so keying by `Symbol` is
        // keying by name.
        let mut group_head_syms: Vec<Symbol> = Vec::new();
        let mut head_index: HashMap<Symbol, u32> = HashMap::new();
        let mut head_clock_fj: Vec<f64> = Vec::new();
        let mut node_clock_fj = vec![0.0f64; syms.node_count()];
        let mut node_leakage_nw = vec![0.0f64; syms.node_count()];

        for inst in module.instances.iter() {
            for &net in &inst.outputs {
                out_slot.push(net.index() as u32);
                out_cap_ff.push(self.load_ff[net.index()]);
                out_internal_fj.push(self.driver_internal_fj[net.index()]);
            }
            inst_out_start.push(out_slot.len() as u32);
            let head = syms.group_head_sym(inst.group.0);
            let g = *head_index.entry(head).or_insert_with(|| {
                group_head_syms.push(head);
                head_clock_fj.push(0.0);
                group_head_syms.len() as u32 - 1
            });
            inst_group.push(g);
            let cell = self.lib.cell(inst.cell);
            let node = syms.group_node(inst.group.0) as usize;
            node_leakage_nw[node] += cell.leakage_nw;
            if let Some(seq) = cell.seq {
                head_clock_fj[g as usize] += seq.clk_energy_fj;
                node_clock_fj[node] += seq.clk_energy_fj;
            }
        }

        let in_port_slot: Vec<u32> = module.input_ports().map(|p| p.net.index() as u32).collect();
        let in_port_load_ff: Vec<f64> = module.input_ports().map(|p| self.load_ff[p.net.index()]).collect();

        let clock_regs_fj: f64 =
            module.instances.iter().filter_map(|i| self.lib.cell(i.cell).seq).map(|s| s.clk_energy_fj).sum();
        let leakage_total_nw: f64 = module.instances.iter().map(|i| self.lib.cell(i.cell).leakage_nw).sum();

        let cp = CompiledPower {
            process: self.lib.process().clone(),
            net_count: module.net_count(),
            out_slot,
            out_cap_ff,
            out_internal_fj,
            inst_out_start,
            inst_group,
            group_head_syms,
            syms,
            in_port_slot,
            in_port_load_ff,
            clock_regs_fj,
            leakage_total_nw,
            head_clock_fj,
            node_clock_fj,
            node_leakage_nw,
            glitch_factor: self.glitch_factor,
            clock_tree_overhead: self.clock_tree_overhead,
        };
        telemetry::gauge("power.retained_bytes").set(cp.retained_bytes() as u64);
        cp
    }
}

impl CompiledPower {
    /// Number of nets the program analyzes.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of top-level groups in the breakdown table.
    pub fn group_count(&self) -> usize {
        self.group_head_syms.len()
    }

    /// Number of nodes in the hierarchical group-path tree (full paths
    /// plus their ancestors; always ≥ [`CompiledPower::group_count`]).
    pub fn path_count(&self) -> usize {
        self.syms.node_count()
    }

    /// The interned name tables group breakdowns resolve against
    /// (shared with the lowering this program was compiled from).
    pub fn symbols(&self) -> &Symbols {
        &self.syms
    }

    /// Retained heap bytes of the compiled power program: the
    /// struct-of-arrays capacitance/energy/group columns plus its share
    /// of the interned name tables (`Arc`-shared with the lowering).
    /// Reported as the `power.retained_bytes` telemetry gauge at
    /// compile time.
    pub fn retained_bytes(&self) -> usize {
        let u32s =
            self.out_slot.len() + self.inst_out_start.len() + self.inst_group.len() + self.in_port_slot.len();
        let f64s = self.out_cap_ff.len()
            + self.out_internal_fj.len()
            + self.in_port_load_ff.len()
            + self.head_clock_fj.len()
            + self.node_clock_fj.len()
            + self.node_leakage_nw.len();
        u32s * std::mem::size_of::<u32>()
            + f64s * std::mem::size_of::<f64>()
            + self.group_head_syms.len() * std::mem::size_of::<Symbol>()
            + self.syms.heap_bytes()
    }

    /// Power from measured per-net toggle counts over `cycles` cycles
    /// at `freq_mhz`, at operating point `op` — the compiled equivalent
    /// of [`PowerAnalyzer::from_activity`], bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or the toggle table is shorter than the
    /// net count.
    pub fn report(&self, toggles: &[u64], cycles: u64, freq_mhz: f64, op: OperatingPoint) -> PowerReport {
        self.report_many(toggles, cycles, &[(freq_mhz, op)]).pop().expect("one report per point")
    }

    /// One report per `(freq_mhz, operating point)` over a shared
    /// activity measurement — the shmoo fast path. The toggle-rate
    /// column is resolved once and every corner is then a linear pass
    /// over the shared read-only arrays; each report equals the
    /// corresponding [`CompiledPower::report`] call exactly.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or the toggle table is shorter than the
    /// net count.
    pub fn report_many(
        &self,
        toggles: &[u64],
        cycles: u64,
        points: &[(f64, OperatingPoint)],
    ) -> Vec<PowerReport> {
        assert!(cycles > 0, "need at least one simulated cycle");
        assert!(toggles.len() >= self.net_count, "toggle table too short");
        telemetry::span!("power.report_many");
        telemetry::counter("power.report_batches").incr();
        telemetry::counter("power.report_points").add(points.len() as u64);
        let start = telemetry::enabled().then(std::time::Instant::now);
        let out_rate: Vec<f64> =
            self.out_slot.iter().map(|&s| toggles[s as usize] as f64 / cycles as f64).collect();
        let port_rate: Vec<f64> =
            self.in_port_slot.iter().map(|&s| toggles[s as usize] as f64 / cycles as f64).collect();
        let reports: Vec<PowerReport> = points
            .iter()
            .map(|&(freq_mhz, op)| self.pass(&out_rate, Some(&port_rate), freq_mhz, op))
            .collect();
        if let Some(t) = start {
            telemetry::histogram("power.report_batch_ns").record(t.elapsed());
        }
        reports
    }

    /// Power assuming every non-constant net toggles `alpha` times per
    /// cycle — the compiled equivalent of
    /// [`PowerAnalyzer::from_static_activity`], bit-identical to it.
    pub fn report_static(&self, alpha: f64, freq_mhz: f64, op: OperatingPoint) -> PowerReport {
        let out_rate = vec![alpha; self.out_slot.len()];
        self.pass(&out_rate, None, freq_mhz, op)
    }

    /// Leakage power in µW at a corner (mirrors
    /// [`PowerAnalyzer::leakage_uw`]).
    pub fn leakage_uw(&self, op: OperatingPoint) -> f64 {
        let scale = self.process.leakage_scale(op.vdd_v, op.temp_c);
        self.leakage_total_nw * scale / 1000.0
    }

    /// One corner's linear pass: per-instance switching energy from the
    /// rate columns (instance-major, replaying the reference analyzer's
    /// accumulation order exactly), plus the optional input-port pin
    /// charge, clock tree and leakage.
    fn pass(
        &self,
        out_rate: &[f64],
        port_rate: Option<&[f64]>,
        freq_mhz: f64,
        op: OperatingPoint,
    ) -> PowerReport {
        let escale = self.process.energy_scale(op.vdd_v);
        let v = op.vdd_v;

        let mut by_group = vec![0.0f64; self.group_head_syms.len()];
        let mut switch_fj_total = 0.0f64;
        for (i, &g) in self.inst_group.iter().enumerate() {
            let (s, e) = (self.inst_out_start[i] as usize, self.inst_out_start[i + 1] as usize);
            let mut inst_fj = 0.0;
            let rates = out_rate[s..e].iter();
            let cols = self.out_cap_ff[s..e].iter().zip(&self.out_internal_fj[s..e]);
            for (&t, (&cap, &internal)) in rates.zip(cols) {
                inst_fj += t * (0.5 * cap * v * v + internal * escale);
            }
            inst_fj *= self.glitch_factor;
            switch_fj_total += inst_fj;
            by_group[g as usize] += inst_fj / 1000.0;
        }
        if let Some(rates) = port_rate {
            // Input-port nets: charged by the external driver but loading
            // our pins still burns CV² in the receiving macro rail; count
            // half (the reference analyzer's exact expression).
            for (&t, &load) in rates.iter().zip(&self.in_port_load_ff) {
                switch_fj_total += 0.5 * t * 0.5 * load * v * v;
            }
        }

        let clock_fj = self.clock_regs_fj * escale * (1.0 + self.clock_tree_overhead);
        let leakage_uw = self.leakage_uw(op);
        let energy_per_cycle_pj = (switch_fj_total + clock_fj) / 1000.0;
        let dynamic_uw = switch_fj_total * freq_mhz * 1e-3;
        let clock_uw = clock_fj * freq_mhz * 1e-3;
        // Names materialize only here, per report — the program stores
        // interned symbols, never owned group-name strings.
        let by_group_pj: BTreeMap<String, f64> =
            self.group_head_syms.iter().map(|&s| self.syms.resolve(s).to_string()).zip(by_group).collect();
        PowerReport { dynamic_uw, clock_uw, leakage_uw, energy_per_cycle_pj, freq_mhz, by_group_pj }
    }

    /// Hierarchical drill-down of the per-cycle dynamic energy: one
    /// entry per full group path (e.g. `"regs"` *and* `"regs/bank0"`),
    /// in pJ/cycle, where every node **includes its descendants**.
    /// Each node carries its instances' switching energy plus the
    /// clock-pin energy of its registers (with the clock-tree overhead),
    /// so a root entry equals the corresponding
    /// [`PowerReport::by_group_pj`] head total *plus* the head's
    /// [`CompiledPower::clock_by_group_pj`] share (up to floating-point
    /// accumulation order), and drilling one level deeper splits both
    /// by subcircuit.
    ///
    /// Top-level aggregation semantics are untouched: `report*` still
    /// produce the seed-pinned `by_group_pj`; this accessor is the new
    /// per-subcircuit view over the same interned group-path tree.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or the toggle table is shorter than the
    /// net count.
    pub fn by_path_pj(&self, toggles: &[u64], cycles: u64, op: OperatingPoint) -> BTreeMap<String, f64> {
        assert!(cycles > 0, "need at least one simulated cycle");
        assert!(toggles.len() >= self.net_count, "toggle table too short");
        let escale = self.process.energy_scale(op.vdd_v);
        let v = op.vdd_v;
        let mut by_path = vec![0.0f64; self.syms.node_count()];
        for i in 0..self.inst_group.len() {
            let node = self.syms.group_node(self.syms.group_of(i));
            let (s, e) = (self.inst_out_start[i] as usize, self.inst_out_start[i + 1] as usize);
            let mut inst_fj = 0.0;
            for k in s..e {
                let t = toggles[self.out_slot[k] as usize] as f64 / cycles as f64;
                inst_fj += t * (0.5 * self.out_cap_ff[k] * v * v + self.out_internal_fj[k] * escale);
            }
            by_path[node as usize] += inst_fj * self.glitch_factor / 1000.0;
        }
        // Clock-pin energy lands at each register's own subcircuit node
        // (the clock tree serves the whole hierarchy, so its overhead
        // is applied uniformly, exactly as in the head-level totals).
        let cscale = escale * (1.0 + self.clock_tree_overhead);
        for (node, &fj) in self.node_clock_fj.iter().enumerate() {
            by_path[node] += fj * cscale / 1000.0;
        }
        // Parent node ids precede their children's by construction:
        // one reverse pass rolls every subtree up into its ancestors.
        for i in (0..by_path.len()).rev() {
            if let Some(parent) = self.syms.node_parent(i as u32) {
                let v = by_path[i];
                by_path[parent as usize] += v;
            }
        }
        (0..self.syms.node_count() as u32)
            .map(|n| (self.syms.node_name(n).to_string(), by_path[n as usize]))
            .collect()
    }

    /// Per-cycle clock-pin energy per top-level group, in pJ/cycle,
    /// including the clock-tree distribution overhead. Every head of
    /// [`PowerReport::by_group_pj`] appears (0.0 for register-free
    /// groups), and the values sum to the clock term of
    /// `energy_per_cycle_pj` — bit-identical to
    /// [`PowerAnalyzer::clock_by_group_pj`].
    pub fn clock_by_group_pj(&self, op: OperatingPoint) -> BTreeMap<String, f64> {
        let cscale = self.process.energy_scale(op.vdd_v) * (1.0 + self.clock_tree_overhead);
        self.group_head_syms
            .iter()
            .zip(&self.head_clock_fj)
            .map(|(&s, &fj)| (self.syms.resolve(s).to_string(), fj * cscale / 1000.0))
            .collect()
    }

    /// Hierarchical drill-down of leakage power at a corner: one entry
    /// per full group path in µW, every node including its descendants
    /// — the leakage analogue of [`CompiledPower::by_path_pj`]. The
    /// root entries sum to [`CompiledPower::leakage_uw`] (up to
    /// floating-point accumulation order).
    pub fn leakage_by_path_uw(&self, op: OperatingPoint) -> BTreeMap<String, f64> {
        let scale = self.process.leakage_scale(op.vdd_v, op.temp_c);
        let mut by_path: Vec<f64> = self.node_leakage_nw.iter().map(|&nw| nw * scale / 1000.0).collect();
        for i in (0..by_path.len()).rev() {
            if let Some(parent) = self.syms.node_parent(i as u32) {
                let v = by_path[i];
                by_path[parent as usize] += v;
            }
        }
        (0..self.syms.node_count() as u32)
            .map(|n| (self.syms.node_name(n).to_string(), by_path[n as usize]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;

    fn toggler() -> (syndcim_netlist::Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        b.push_group("datapath");
        let x = b.xor2(a, a);
        let y = b.not(a);
        b.pop_group();
        b.push_group("regs/bank0");
        let q = b.dff(y);
        b.pop_group();
        b.output("y", y);
        b.output("x", x);
        b.output("q", q);
        (b.finish(), lib)
    }

    fn measured_toggles(m: &syndcim_netlist::Module, lib: &CellLibrary) -> (Vec<u64>, u64) {
        let mut sim = Simulator::new(m, lib).unwrap();
        for i in 0..100 {
            sim.set("a", i % 2 == 0);
            sim.step();
        }
        (sim.toggle_table().to_vec(), sim.cycles())
    }

    #[test]
    fn compiled_report_is_bit_identical_to_from_activity() {
        let (m, lib) = toggler();
        let (toggles, cycles) = measured_toggles(&m, &lib);
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let cp = pa.compile();
        assert_eq!(cp.net_count(), m.net_count());
        assert!(cp.group_count() >= 2, "datapath and regs heads");
        for v in [0.6, 0.9, 1.2] {
            let op = OperatingPoint::at_voltage(v);
            let slow = pa.from_activity(&toggles, cycles, 800.0, op);
            let fast = cp.report(&toggles, cycles, 800.0, op);
            assert_eq!(fast.dynamic_uw, slow.dynamic_uw);
            assert_eq!(fast.clock_uw, slow.clock_uw);
            assert_eq!(fast.leakage_uw, slow.leakage_uw);
            assert_eq!(fast.energy_per_cycle_pj, slow.energy_per_cycle_pj);
            assert_eq!(fast.by_group_pj, slow.by_group_pj);
        }
    }

    #[test]
    fn compiled_static_report_matches_reference() {
        let (m, lib) = toggler();
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let cp = pa.compile();
        let op = OperatingPoint::at_voltage(0.9);
        for alpha in [0.05, 0.2, 0.5] {
            let slow = pa.from_static_activity(alpha, 1000.0, op);
            let fast = cp.report_static(alpha, 1000.0, op);
            assert_eq!(fast.dynamic_uw, slow.dynamic_uw);
            assert_eq!(fast.by_group_pj, slow.by_group_pj);
            assert_eq!(fast.total_uw(), slow.total_uw());
        }
    }

    #[test]
    fn report_many_equals_per_point_reports() {
        let (m, lib) = toggler();
        let (toggles, cycles) = measured_toggles(&m, &lib);
        let cp = PowerAnalyzer::new(&m, &lib).unwrap().compile();
        let points: Vec<(f64, OperatingPoint)> = [(200.0, 0.7), (800.0, 0.9), (1500.0, 1.2)]
            .map(|(f, v)| (f, OperatingPoint::at_voltage(v)))
            .into();
        let batch = cp.report_many(&toggles, cycles, &points);
        for (&(f, op), got) in points.iter().zip(&batch) {
            let want = cp.report(&toggles, cycles, f, op);
            assert_eq!(got.total_uw(), want.total_uw());
            assert_eq!(got.by_group_pj, want.by_group_pj);
        }
    }

    #[test]
    fn by_path_pj_drills_down_and_roots_match_group_totals() {
        let (m, lib) = toggler();
        let (toggles, cycles) = measured_toggles(&m, &lib);
        let cp = PowerAnalyzer::new(&m, &lib).unwrap().compile();
        let op = OperatingPoint::at_voltage(0.9);
        let by_group = cp.report(&toggles, cycles, 800.0, op).by_group_pj;
        let by_path = cp.by_path_pj(&toggles, cycles, op);

        assert!(cp.path_count() >= cp.group_count(), "paths include every head plus descendants");
        for key in ["top", "datapath", "regs", "regs/bank0"] {
            assert!(by_path.contains_key(key), "missing path `{key}`: {by_path:?}");
        }
        // Root entries equal the seed-pinned head totals plus the
        // head's clock-pin share (modulo accumulation order).
        let clock = cp.clock_by_group_pj(op);
        for (head, &pj) in &by_group {
            let root = by_path[head];
            let want = pj + clock[head];
            assert!((root - want).abs() <= 1e-12 * want.abs().max(1.0), "{head}: {root} vs {want}");
        }
        // The dff lives under `regs/bank0`; the register-free
        // `datapath` carries no clock energy.
        assert!(clock["regs"] > 0.0);
        assert_eq!(clock["datapath"], 0.0);
        // `regs` has no direct instances, so its rollup equals its only
        // child exactly — clock-pin energy included.
        assert_eq!(by_path["regs"], by_path["regs/bank0"]);
        assert!(by_path["regs/bank0"] > by_group["regs"], "the drill-down includes the dff's clock pin");
    }

    #[test]
    fn clock_and_leakage_breakdowns_match_reference_and_totals() {
        let (m, lib) = toggler();
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let cp = pa.compile();
        for v in [0.6, 0.9, 1.2] {
            let op = OperatingPoint::at_voltage(v);
            // Head-level clock shares: bit-identical to the reference
            // walk, summing to the clock term of the report.
            let clock = cp.clock_by_group_pj(op);
            assert_eq!(clock, pa.clock_by_group_pj(op), "clock breakdown at {v} V");
            let report = cp.report(&vec![0u64; m.net_count()], 10, 800.0, op);
            let clock_pj: f64 = clock.values().sum();
            assert!(
                (clock_pj - report.energy_per_cycle_pj).abs() <= 1e-12 * report.energy_per_cycle_pj,
                "idle energy/cycle is all clock: {clock_pj} vs {}",
                report.energy_per_cycle_pj
            );
            // Leakage drill-down: roots sum to the corner's leakage.
            let by_path = cp.leakage_by_path_uw(op);
            let roots: f64 = by_path.iter().filter(|(p, _)| !p.contains('/')).map(|(_, &uw)| uw).sum();
            let want = cp.leakage_uw(op);
            assert!((roots - want).abs() <= 1e-12 * want, "leakage roots {roots} vs total {want} at {v} V");
            assert_eq!(by_path["regs"], by_path["regs/bank0"], "leakage rolls up through the path tree");
        }
    }

    #[test]
    fn glitch_and_wire_configuration_is_baked_at_compile_time() {
        let (m, lib) = toggler();
        let (toggles, cycles) = measured_toggles(&m, &lib);
        let caps = vec![12.5; m.net_count()];
        let mut pa = PowerAnalyzer::with_wire_caps(&m, &lib, &caps).unwrap();
        pa.set_glitch_factor(1.6);
        let cp = pa.compile();
        let op = OperatingPoint::at_voltage(0.9);
        let slow = pa.from_activity(&toggles, cycles, 800.0, op);
        let fast = cp.report(&toggles, cycles, 800.0, op);
        assert_eq!(fast.dynamic_uw, slow.dynamic_uw, "wire caps and glitch factor must be baked in");
        assert_eq!(fast.by_group_pj, slow.by_group_pj);
    }
}
