//! Throughput / efficiency metrics in the units DCIM papers report.
//!
//! A multiply-accumulate counts as 2 operations. "Scaling to 1b-1b"
//! multiplies the op count by the product of the operand widths, the
//! normalization used in the paper's Table II (e.g. the 64×64 macro at
//! 1.1 GHz delivers 2·64·64·1.1 GHz ≈ 9 TOPS at 1b×1b).

use syndcim_sim::Precision;

/// Operation accounting for one DCIM macro configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacThroughput {
    /// Array height (rows reduced per adder tree).
    pub h: usize,
    /// Array width (1-bit weight columns).
    pub w: usize,
    /// Activation precision (drives bit-serial cycle count).
    pub act: Precision,
    /// Weight precision (drives column grouping).
    pub weight: Precision,
}

impl MacThroughput {
    /// MACs completed per *full bit-serial pass*: `h` rows × `w/w_bits`
    /// output channels.
    pub fn macs_per_pass(&self) -> f64 {
        self.h as f64 * (self.w as f64 / self.weight.datapath_bits() as f64)
    }

    /// Cycles per pass (one per activation bit).
    pub fn cycles_per_pass(&self) -> f64 {
        self.act.datapath_bits() as f64
    }

    /// Operations (2·MAC) per cycle at the operand precision.
    pub fn ops_per_cycle(&self) -> f64 {
        2.0 * self.macs_per_pass() / self.cycles_per_pass()
    }

    /// Throughput in TOPS at `freq_mhz`, at the operand precision.
    pub fn tops(&self, freq_mhz: f64) -> f64 {
        self.ops_per_cycle() * freq_mhz * 1e6 / 1e12
    }

    /// Throughput in TOPS at `freq_mhz`, normalized to 1b×1b operations
    /// (the "(scaling to 1b-1b)" convention).
    pub fn tops_1b(&self, freq_mhz: f64) -> f64 {
        let scale = self.act.datapath_bits() as f64 * self.weight.datapath_bits() as f64;
        self.tops(freq_mhz) * scale
    }
}

/// Energy efficiency in TOPS/W.
pub fn tops_per_w(tops: f64, total_uw: f64) -> f64 {
    tops / (total_uw * 1e-6)
}

/// Area efficiency in TOPS/mm² for an area given in µm².
pub fn tops_per_mm2(tops: f64, area_um2: f64) -> f64 {
    tops / (area_um2 * 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_throughput_reproduces() {
        // 64×64 @ 1.1 GHz, 1b×1b → 2·64·64·1.1e9 = 9.01 TOPS (Table II).
        let t = MacThroughput { h: 64, w: 64, act: Precision::Int(1), weight: Precision::Int(1) };
        let tops = t.tops(1100.0);
        assert!((tops - 9.01).abs() < 0.02, "got {tops}");
        assert_eq!(t.tops_1b(1100.0), tops);
    }

    #[test]
    fn int8_costs_64x_vs_1b() {
        let t1 = MacThroughput { h: 64, w: 64, act: Precision::Int(1), weight: Precision::Int(1) };
        let t8 = MacThroughput { h: 64, w: 64, act: Precision::INT8, weight: Precision::INT8 };
        let f = 800.0;
        assert!((t1.tops(f) / t8.tops(f) - 64.0).abs() < 1e-9);
        // 1b-normalized throughput is identical.
        assert!((t8.tops_1b(f) - t1.tops_1b(f)).abs() < 1e-9);
    }

    #[test]
    fn efficiency_units() {
        // 1 TOPS at 1 W = 1 TOPS/W; at 0.112 mm² ≈ 8.93 TOPS/mm².
        assert!((tops_per_w(1.0, 1e6) - 1.0).abs() < 1e-12);
        assert!((tops_per_mm2(1.0, 112_000.0) - 8.928).abs() < 0.01);
    }

    #[test]
    fn area_efficiency_anchor_from_paper() {
        // Table II: 9 TOPS (1b) / 0.112 mm² ≈ 80.5 TOPS/mm².
        let t = MacThroughput { h: 64, w: 64, act: Precision::Int(1), weight: Precision::Int(1) };
        let eff = tops_per_mm2(t.tops(1100.0), 112_000.0);
        assert!((75.0..85.0).contains(&eff), "got {eff}");
    }
}
