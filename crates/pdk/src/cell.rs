//! Cell models: logic function, timing arcs, energy, leakage and area.
//!
//! Every cell — standard gates *and* the custom DCIM cells (SRAM bitcells,
//! multiplier–multiplexer variants) — is described by the same [`Cell`]
//! record. This mirrors the paper's flow, where custom cells are
//! characterized into LIB/LEF views "compatible with standard cells,
//! allowing integration into the standard digital flow".

/// Identifies the logic template of a cell.
///
/// The set covers every gate used by the seven DCIM subcircuit generators,
/// including the paper-specific custom cells:
///
/// * bitcells — [`CellKind::Sram6T2T`], [`CellKind::Latch8T`],
///   [`CellKind::Oai12T`];
/// * multiplier/multiplexer variants — [`CellKind::MultNor`] (NOR-style
///   bitwise multiplier), [`CellKind::MuxPg2`] (1T pass-gate column mux),
///   [`CellKind::MuxTg2`] (2T transmission-gate mux), and
///   [`CellKind::Oai22Fused`] (fused multiplier+mux, MCR ≤ 2);
/// * arithmetic — [`CellKind::Ha`], [`CellKind::Fa`], and the 4-2
///   compressor [`CellKind::C42`] used by the bit-wise CSA trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Logic-0 tie cell (no inputs, output constant 0).
    TieLo,
    /// Logic-1 tie cell (no inputs, output constant 1).
    TieHi,
    /// Inverter, unit drive.
    Inv,
    /// Buffer, unit drive.
    Buf,
    /// Buffer, 4× drive (driver chains in WL/BL drivers and clock spines).
    BufX4,
    /// Buffer, 16× drive.
    BufX16,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: inputs `d0,d1,s`; output `s ? d1 : d0`.
    Mux2,
    /// OR-AND-invert 21: `!((a|b)&c)`.
    Oai21,
    /// OR-AND-invert 22: `!((a|b)&(c|d))`.
    Oai22,
    /// And-Or-Invert 21: `!((a&b)|c)`.
    Aoi21,
    /// Half adder: inputs `a,b`; outputs `s, c`.
    Ha,
    /// Full adder: inputs `a,b,cin`; outputs `s, co`. The carry arc is
    /// faster than the sum arc — the property the paper's carry-reorder
    /// optimization exploits.
    Fa,
    /// 4-2 compressor: inputs `a,b,c,d,cin`; outputs `s, carry, cout`.
    /// Smaller and more energy-efficient per reduced bit than two full
    /// adders, but with a slower sum path ("the 4-2 compressor is slow").
    C42,
    /// Positive-edge D flip-flop: input `d`; output `q` (clock implicit).
    Dff,
    /// D flip-flop with write enable: inputs `d, en`; output `q`.
    DffEn,
    /// 6T SRAM bitcell with 2T read port: inputs `wwl, wbl`; output `rbl`.
    Sram6T2T,
    /// 8T D-latch bitcell for robust read/write (ISSCC'23 style):
    /// inputs `wwl, wbl`; output `rbl`.
    Latch8T,
    /// 12T OAI-gate bitcell (design-feasibility variant): inputs
    /// `wwl, wbl`; output `rbl`.
    Oai12T,
    /// NOR-style bitwise multiplier: inputs `act, w`; output `act & w`.
    MultNor,
    /// 1T pass-gate 2:1 column multiplexer (AutoDCIM style): inputs
    /// `d0, d1, s`; output selected data. Area-efficient but suffers a
    /// threshold-voltage drop, modelled as extra delay and energy.
    MuxPg2,
    /// 2T transmission-gate 2:1 column multiplexer: inputs `d0, d1, s`.
    MuxTg2,
    /// Fused OAI22 multiplier+multiplexer (ISSCC'23 style): inputs
    /// `act, w0, w1, s`; output `act & (s ? w1 : w0)`. Saves wiring but
    /// does not scale beyond MCR = 2.
    Oai22Fused,
}

impl CellKind {
    /// All cell kinds, in a stable order (used to build libraries).
    pub const ALL: &'static [CellKind] = &[
        CellKind::TieLo,
        CellKind::TieHi,
        CellKind::Inv,
        CellKind::Buf,
        CellKind::BufX4,
        CellKind::BufX16,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Oai21,
        CellKind::Oai22,
        CellKind::Aoi21,
        CellKind::Ha,
        CellKind::Fa,
        CellKind::C42,
        CellKind::Dff,
        CellKind::DffEn,
        CellKind::Sram6T2T,
        CellKind::Latch8T,
        CellKind::Oai12T,
        CellKind::MultNor,
        CellKind::MuxPg2,
        CellKind::MuxTg2,
        CellKind::Oai22Fused,
    ];
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// How a sequential cell updates its internal state once per clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqUpdate {
    /// `q <= d` on every rising edge (input 0 is `d`).
    Edge,
    /// `q <= d` on rising edge only when `en` is high (inputs `d, en`).
    EdgeEnable,
    /// Level-sensitive storage used by bitcells: when `wwl` is high the
    /// stored bit becomes `wbl` (inputs `wwl, wbl`); the output continuously
    /// reads the stored bit.
    BitcellWrite,
}

/// Setup/hold/clock-to-q numbers for a sequential cell, in picoseconds at
/// the nominal corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqTiming {
    /// Data setup time before the capturing clock edge.
    pub setup_ps: f64,
    /// Data hold time after the capturing clock edge.
    pub hold_ps: f64,
    /// Clock-to-output propagation delay.
    pub clk_to_q_ps: f64,
    /// Energy drawn from the clock pin each cycle, in femtojoules (clock
    /// tree loading), regardless of data toggling.
    pub clk_energy_fj: f64,
    /// State-update rule.
    pub update: SeqUpdate,
}

/// One combinational timing arc from an input pin to an output pin,
/// expressed in logical-effort form: `delay = τ·(p + g·C_load/C_unit)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingArc {
    /// Index of the launching input pin.
    pub from_input: usize,
    /// Index of the receiving output pin.
    pub to_output: usize,
    /// Parasitic delay `p` in units of τ.
    pub parasitic: f64,
    /// Logical effort `g` (dimensionless).
    pub logical_effort: f64,
}

/// Pure combinational logic function of a cell (sequential cells expose the
/// function of their *output* stage; state is handled by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFunction {
    /// Constant output.
    Const(bool),
    /// `out = !a`.
    Not,
    /// `out = a`.
    Identity,
    /// `out = a & b`.
    And,
    /// `out = !(a & b)`.
    Nand,
    /// `out = a | b`.
    Or,
    /// `out = !(a | b)`.
    Nor,
    /// `out = a ^ b`.
    Xor,
    /// `out = !(a ^ b)`.
    Xnor,
    /// `out = s ? d1 : d0` with inputs ordered `d0, d1, s`.
    Mux2,
    /// `out = !((a | b) & c)`.
    Oai21,
    /// `out = !((a | b) & (c | d))`.
    Oai22,
    /// `out = !((a & b) | c)`.
    Aoi21,
    /// Half adder: outputs `s = a ^ b`, `c = a & b`.
    HalfAdder,
    /// Full adder: outputs `s = a ^ b ^ cin`, `co = maj(a, b, cin)`.
    FullAdder,
    /// 4-2 compressor with inputs `a,b,c,d,cin` and outputs
    /// `s = a^b^c^d^cin`, `carry = (a^b^c^d) ? cin : d`,
    /// `cout = maj(a, b, c)` (cout is independent of `cin`, which is what
    /// makes rows of compressors carry-save).
    Compressor42,
    /// Sequential output stage: `q = state` (state maintained externally).
    SeqQ,
    /// Fused multiplier–mux: inputs `act, w0, w1, s`;
    /// `out = act & (s ? w1 : w0)`.
    MultMuxFused,
}

impl CellFunction {
    /// Number of combinational data inputs the function consumes.
    pub fn input_count(&self) -> usize {
        match self {
            CellFunction::Const(_) => 0,
            CellFunction::Not | CellFunction::Identity => 1,
            CellFunction::And
            | CellFunction::Nand
            | CellFunction::Or
            | CellFunction::Nor
            | CellFunction::Xor
            | CellFunction::Xnor
            | CellFunction::HalfAdder => 2,
            CellFunction::Mux2 | CellFunction::Oai21 | CellFunction::Aoi21 | CellFunction::FullAdder => 3,
            CellFunction::Oai22 | CellFunction::MultMuxFused => 4,
            CellFunction::Compressor42 => 5,
            CellFunction::SeqQ => 0,
        }
    }

    /// Number of outputs the function produces.
    pub fn output_count(&self) -> usize {
        match self {
            CellFunction::HalfAdder => 2,
            CellFunction::FullAdder => 2,
            CellFunction::Compressor42 => 3,
            _ => 1,
        }
    }

    /// Evaluate the function on boolean inputs, writing results to `out`.
    ///
    /// `out` is cleared and refilled; its final length equals
    /// [`CellFunction::output_count`]. For [`CellFunction::SeqQ`] the
    /// caller must supply the stored state via `state`.
    ///
    /// # Panics
    ///
    /// Panics if `ins` is shorter than [`CellFunction::input_count`].
    pub fn eval(&self, ins: &[bool], state: bool, out: &mut Vec<bool>) {
        out.clear();
        match self {
            CellFunction::Const(v) => out.push(*v),
            CellFunction::Not => out.push(!ins[0]),
            CellFunction::Identity => out.push(ins[0]),
            CellFunction::And => out.push(ins[0] & ins[1]),
            CellFunction::Nand => out.push(!(ins[0] & ins[1])),
            CellFunction::Or => out.push(ins[0] | ins[1]),
            CellFunction::Nor => out.push(!(ins[0] | ins[1])),
            CellFunction::Xor => out.push(ins[0] ^ ins[1]),
            CellFunction::Xnor => out.push(!(ins[0] ^ ins[1])),
            CellFunction::Mux2 => out.push(if ins[2] { ins[1] } else { ins[0] }),
            CellFunction::Oai21 => out.push(!((ins[0] | ins[1]) & ins[2])),
            CellFunction::Oai22 => out.push(!((ins[0] | ins[1]) & (ins[2] | ins[3]))),
            CellFunction::Aoi21 => out.push(!((ins[0] & ins[1]) | ins[2])),
            CellFunction::HalfAdder => {
                out.push(ins[0] ^ ins[1]);
                out.push(ins[0] & ins[1]);
            }
            CellFunction::FullAdder => {
                let (a, b, c) = (ins[0], ins[1], ins[2]);
                out.push(a ^ b ^ c);
                out.push((a & b) | (a & c) | (b & c));
            }
            CellFunction::Compressor42 => {
                let (a, b, c, d, cin) = (ins[0], ins[1], ins[2], ins[3], ins[4]);
                let x = a ^ b ^ c ^ d;
                out.push(x ^ cin);
                out.push(if x { cin } else { d });
                out.push((a & b) | (a & c) | (b & c));
            }
            CellFunction::SeqQ => out.push(state),
            CellFunction::MultMuxFused => {
                let w = if ins[3] { ins[2] } else { ins[1] };
                out.push(ins[0] & w);
            }
        }
    }
}

/// A fully characterized library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Logic template.
    pub kind: CellKind,
    /// Library name, e.g. `"NAND2X1"`.
    pub name: String,
    /// Ordered input pin names.
    pub inputs: Vec<&'static str>,
    /// Ordered output pin names.
    pub outputs: Vec<&'static str>,
    /// Combinational function (or sequential output stage).
    pub function: CellFunction,
    /// Sequential timing; `None` for combinational cells.
    pub seq: Option<SeqTiming>,
    /// Layout area in µm².
    pub area_um2: f64,
    /// Cell footprint width in µm at the process row height.
    pub width_um: f64,
    /// Input pin capacitance per input pin, in fF.
    pub input_cap_ff: Vec<f64>,
    /// Combinational timing arcs.
    pub arcs: Vec<TimingArc>,
    /// Internal (short-circuit + local interconnect) energy per output
    /// toggle at the nominal corner, in femtojoules.
    pub internal_energy_fj: f64,
    /// Leakage power at the nominal corner, in nanowatts.
    pub leakage_nw: f64,
    /// Transistor count (drives area and leakage characterization).
    pub transistor_count: u32,
}

impl Cell {
    /// `true` if the cell holds state across clock cycles.
    pub fn is_sequential(&self) -> bool {
        self.seq.is_some()
    }

    /// Worst-case (slowest-arc) delay in ps driving `load_ff`, at the
    /// nominal corner. Each arc's electrical effort uses its own input
    /// pin capacitance, so larger-drive cells (bigger pins) are faster
    /// into the same load.
    pub fn worst_delay_ps(&self, tau_ps: f64, load_ff: f64) -> f64 {
        self.arcs
            .iter()
            .map(|a| a.delay_ps(tau_ps, self.input_cap_ff[a.from_input], load_ff))
            .fold(0.0, f64::max)
    }

    /// Delay of one arc in ps at the nominal corner, using this cell's
    /// pin capacitances.
    pub fn arc_delay_ps(&self, arc: &TimingArc, tau_ps: f64, load_ff: f64) -> f64 {
        arc.delay_ps(tau_ps, self.input_cap_ff[arc.from_input], load_ff)
    }
}

impl TimingArc {
    /// Arc delay in picoseconds at the nominal corner for `load_ff` of
    /// output load, launched through a pin of `cin_pin_ff` capacitance:
    /// `d = τ·(p + g·C_load/C_pin)` — the logical-effort electrical
    /// effort is measured against the *driving pin's* capacitance, which
    /// is how drive strength enters the model.
    pub fn delay_ps(&self, tau_ps: f64, cin_pin_ff: f64, load_ff: f64) -> f64 {
        tau_ps * (self.parasitic + self.logical_effort * load_ff / cin_pin_ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(f: CellFunction, ins: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        f.eval(ins, false, &mut out);
        out
    }

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = ev(CellFunction::FullAdder, &[a, b, c]);
                    let sum = a as u8 + b as u8 + c as u8;
                    assert_eq!(out[0], sum & 1 == 1, "sum a={a} b={b} c={c}");
                    assert_eq!(out[1], sum >= 2, "carry a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn compressor42_preserves_weighted_sum() {
        // Invariant: a+b+c+d+cin == s + 2*(carry + cout).
        for v in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
            let out = ev(CellFunction::Compressor42, &bits);
            let lhs: u32 = bits.iter().map(|&b| b as u32).sum();
            let rhs = out[0] as u32 + 2 * (out[1] as u32 + out[2] as u32);
            assert_eq!(lhs, rhs, "v={v:05b}");
        }
    }

    #[test]
    fn compressor42_cout_independent_of_cin() {
        for v in 0u32..16 {
            let mut bits: Vec<bool> = (0..4).map(|i| v >> i & 1 == 1).collect();
            bits.push(false);
            let c0 = ev(CellFunction::Compressor42, &bits)[2];
            bits[4] = true;
            let c1 = ev(CellFunction::Compressor42, &bits)[2];
            assert_eq!(c0, c1, "cout must not depend on cin (v={v:04b})");
        }
    }

    #[test]
    fn oai_functions() {
        assert!(ev(CellFunction::Oai21, &[false, false, true])[0]);
        assert!(!ev(CellFunction::Oai21, &[true, false, true])[0]);
        assert!(!ev(CellFunction::Oai22, &[true, false, true, false])[0]);
        assert!(ev(CellFunction::Oai22, &[false, false, true, true])[0]);
        assert!(!ev(CellFunction::Aoi21, &[true, true, false])[0]);
    }

    #[test]
    fn fused_mult_mux_selects_and_multiplies() {
        // out = act & (s ? w1 : w0)
        for act in [false, true] {
            for w0 in [false, true] {
                for w1 in [false, true] {
                    for s in [false, true] {
                        let out = ev(CellFunction::MultMuxFused, &[act, w0, w1, s])[0];
                        assert_eq!(out, act & if s { w1 } else { w0 });
                    }
                }
            }
        }
    }

    #[test]
    fn half_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let out = ev(CellFunction::HalfAdder, &[a, b]);
                assert_eq!(out[0], a ^ b);
                assert_eq!(out[1], a & b);
            }
        }
    }

    #[test]
    fn mux2_order_is_d0_d1_s() {
        assert!(ev(CellFunction::Mux2, &[true, false, false])[0]);
        assert!(!ev(CellFunction::Mux2, &[true, false, true])[0]);
    }

    #[test]
    fn seq_q_reads_state() {
        let mut out = Vec::new();
        CellFunction::SeqQ.eval(&[], true, &mut out);
        assert_eq!(out, vec![true]);
        CellFunction::SeqQ.eval(&[], false, &mut out);
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn arc_delay_increases_with_load() {
        let arc = TimingArc { from_input: 0, to_output: 0, parasitic: 1.0, logical_effort: 4.0 / 3.0 };
        let d1 = arc.delay_ps(6.0, 1.2, 1.2);
        let d4 = arc.delay_ps(6.0, 1.2, 4.8);
        assert!(d4 > d1);
        assert!((d1 - 6.0 * (1.0 + 4.0 / 3.0)).abs() < 1e-9);
    }
}
