//! The characterized cell library for the synthetic 40 nm process.
//!
//! Contains every standard cell and custom DCIM cell used by the
//! subcircuit generators. Relative cell properties encode the qualitative
//! trade-offs the paper describes in §II-B:
//!
//! * the 4-2 compressor ([`CellKind::C42`]) reduces four partial sums per
//!   stage and is smaller and more energy-efficient than the two full
//!   adders it replaces, but its sum path is slower — so a pure-compressor
//!   tree loses to a full-adder (3:2) tree under strict timing;
//! * full-adder carry outputs are faster than sum outputs, which the
//!   carry-reorder optimization exploits;
//! * the 1T pass-gate mux is the smallest column mux but pays a
//!   threshold-drop penalty in delay and energy; the fused OAI22
//!   multiplier-mux is the most energy-efficient but only supports
//!   MCR ≤ 2; the transmission-gate + NOR combination is the scalable
//!   middle ground.

use crate::cell::{Cell, CellFunction, CellKind, SeqTiming, SeqUpdate};
use crate::characterize::{characterize, CellSpec, DensityClass};
use crate::process::Process;

/// Opaque index of a cell within a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A characterized cell library bound to a process.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    process: Process,
    cells: Vec<Cell>,
}

impl CellLibrary {
    /// Build the full syn40 library (standard cells + custom DCIM cells),
    /// running every [`CellSpec`] through the characterization flow.
    pub fn syn40() -> Self {
        let process = Process::syn40();
        let cells = cell_specs().iter().map(|s| characterize(s, &process)).collect();
        CellLibrary { process, cells }
    }

    /// The process this library was characterized against.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// All cells, indexable by [`CellId::index`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Look up a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Find the id of the (unique) cell with the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the library has no cell of that kind — the syn40 library
    /// covers every [`CellKind`], so this only fires on a malformed custom
    /// library.
    pub fn id_of(&self, kind: CellKind) -> CellId {
        self.cells
            .iter()
            .position(|c| c.kind == kind)
            .map(|i| CellId(i as u32))
            .unwrap_or_else(|| panic!("cell library has no cell of kind {kind}"))
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library is empty (never the case for syn40).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

fn dff_timing(setup_ps: f64, clk_to_q_ps: f64, clk_energy_fj: f64, update: SeqUpdate) -> SeqTiming {
    SeqTiming { setup_ps, hold_ps: 3.0, clk_to_q_ps, clk_energy_fj, update }
}

/// The declarative spec table for every cell in the syn40 library.
///
/// Arc tuples are `(from_input, to_output, parasitic_p, logical_effort_g)`.
#[allow(clippy::vec_init_then_push)] // declarative spec table, one push per cell
pub fn cell_specs() -> Vec<CellSpec> {
    use CellFunction as F;
    use CellKind as K;
    use DensityClass::{Logic, SramArray};

    let mut v = Vec::new();

    v.push(CellSpec {
        kind: K::TieLo,
        name: "TIELO",
        inputs: vec![],
        outputs: vec!["y"],
        function: F::Const(false),
        tcount: 2,
        density: Logic,
        cin_rel: vec![],
        arcs: vec![],
        internal_energy_fj: 0.0,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::TieHi,
        name: "TIEHI",
        inputs: vec![],
        outputs: vec!["y"],
        function: F::Const(true),
        tcount: 2,
        density: Logic,
        cin_rel: vec![],
        arcs: vec![],
        internal_energy_fj: 0.0,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Inv,
        name: "INVX1",
        inputs: vec!["a"],
        outputs: vec!["y"],
        function: F::Not,
        tcount: 2,
        density: Logic,
        cin_rel: vec![1.0],
        arcs: vec![(0, 0, 1.0, 1.0)],
        internal_energy_fj: 0.35,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Buf,
        name: "BUFX1",
        inputs: vec!["a"],
        outputs: vec!["y"],
        function: F::Identity,
        tcount: 4,
        density: Logic,
        cin_rel: vec![1.4],
        arcs: vec![(0, 0, 2.0, 1.0)],
        internal_energy_fj: 0.6,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::BufX4,
        name: "BUFX4",
        inputs: vec!["a"],
        outputs: vec!["y"],
        function: F::Identity,
        tcount: 10,
        density: Logic,
        cin_rel: vec![4.0],
        arcs: vec![(0, 0, 2.5, 1.0)],
        internal_energy_fj: 1.8,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::BufX16,
        name: "BUFX16",
        inputs: vec!["a"],
        outputs: vec!["y"],
        function: F::Identity,
        tcount: 22,
        density: Logic,
        cin_rel: vec![16.0],
        arcs: vec![(0, 0, 3.0, 1.0)],
        internal_energy_fj: 6.0,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Nand2,
        name: "NAND2X1",
        inputs: vec!["a", "b"],
        outputs: vec!["y"],
        function: F::Nand,
        tcount: 4,
        density: Logic,
        cin_rel: vec![4.0 / 3.0, 4.0 / 3.0],
        arcs: vec![(0, 0, 1.5, 4.0 / 3.0), (1, 0, 1.5, 4.0 / 3.0)],
        internal_energy_fj: 0.5,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Nor2,
        name: "NOR2X1",
        inputs: vec!["a", "b"],
        outputs: vec!["y"],
        function: F::Nor,
        tcount: 4,
        density: Logic,
        cin_rel: vec![5.0 / 3.0, 5.0 / 3.0],
        arcs: vec![(0, 0, 1.8, 5.0 / 3.0), (1, 0, 1.8, 5.0 / 3.0)],
        internal_energy_fj: 0.5,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::And2,
        name: "AND2X1",
        inputs: vec!["a", "b"],
        outputs: vec!["y"],
        function: F::And,
        tcount: 6,
        density: Logic,
        cin_rel: vec![4.0 / 3.0, 4.0 / 3.0],
        arcs: vec![(0, 0, 2.3, 1.4), (1, 0, 2.3, 1.4)],
        internal_energy_fj: 0.8,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Or2,
        name: "OR2X1",
        inputs: vec!["a", "b"],
        outputs: vec!["y"],
        function: F::Or,
        tcount: 6,
        density: Logic,
        cin_rel: vec![5.0 / 3.0, 5.0 / 3.0],
        arcs: vec![(0, 0, 2.6, 1.7), (1, 0, 2.6, 1.7)],
        internal_energy_fj: 0.8,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Xor2,
        name: "XOR2X1",
        inputs: vec!["a", "b"],
        outputs: vec!["y"],
        function: F::Xor,
        tcount: 10,
        density: Logic,
        cin_rel: vec![2.0, 2.0],
        arcs: vec![(0, 0, 3.0, 2.2), (1, 0, 3.0, 2.2)],
        internal_energy_fj: 1.6,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Xnor2,
        name: "XNOR2X1",
        inputs: vec!["a", "b"],
        outputs: vec!["y"],
        function: F::Xnor,
        tcount: 10,
        density: Logic,
        cin_rel: vec![2.0, 2.0],
        arcs: vec![(0, 0, 3.1, 2.2), (1, 0, 3.1, 2.2)],
        internal_energy_fj: 1.6,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Mux2,
        name: "MUX2X1",
        inputs: vec!["d0", "d1", "s"],
        outputs: vec!["y"],
        function: F::Mux2,
        tcount: 8,
        density: Logic,
        cin_rel: vec![1.2, 1.2, 2.2],
        arcs: vec![(0, 0, 2.0, 1.8), (1, 0, 2.0, 1.8), (2, 0, 2.6, 2.2)],
        internal_energy_fj: 1.2,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Oai21,
        name: "OAI21X1",
        inputs: vec!["a", "b", "c"],
        outputs: vec!["y"],
        function: F::Oai21,
        tcount: 6,
        density: Logic,
        cin_rel: vec![1.7, 1.7, 1.3],
        arcs: vec![(0, 0, 1.9, 1.7), (1, 0, 1.9, 1.7), (2, 0, 1.9, 1.3)],
        internal_energy_fj: 0.7,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Oai22,
        name: "OAI22X1",
        inputs: vec!["a", "b", "c", "d"],
        outputs: vec!["y"],
        function: F::Oai22,
        tcount: 8,
        density: Logic,
        cin_rel: vec![1.8, 1.8, 1.8, 1.8],
        arcs: vec![(0, 0, 2.2, 1.8), (1, 0, 2.2, 1.8), (2, 0, 2.2, 1.8), (3, 0, 2.2, 1.8)],
        internal_energy_fj: 0.9,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Aoi21,
        name: "AOI21X1",
        inputs: vec!["a", "b", "c"],
        outputs: vec!["y"],
        function: F::Aoi21,
        tcount: 6,
        density: Logic,
        cin_rel: vec![1.6, 1.6, 1.4],
        arcs: vec![(0, 0, 1.9, 1.6), (1, 0, 1.9, 1.6), (2, 0, 1.9, 1.4)],
        internal_energy_fj: 0.7,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Ha,
        name: "HAX1",
        inputs: vec!["a", "b"],
        outputs: vec!["s", "c"],
        function: F::HalfAdder,
        tcount: 12,
        density: Logic,
        cin_rel: vec![1.9, 1.9],
        arcs: vec![(0, 0, 3.0, 2.2), (1, 0, 3.0, 2.2), (0, 1, 1.8, 1.3), (1, 1, 1.8, 1.3)],
        internal_energy_fj: 2.0,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Fa,
        name: "FAX1",
        inputs: vec!["a", "b", "cin"],
        outputs: vec!["s", "co"],
        function: F::FullAdder,
        tcount: 28,
        density: Logic,
        cin_rel: vec![2.0, 2.0, 1.8],
        arcs: vec![
            (0, 0, 4.5, 2.4),
            (1, 0, 4.5, 2.4),
            (2, 0, 3.6, 2.2),
            (0, 1, 2.6, 1.7),
            (1, 1, 2.6, 1.7),
            (2, 1, 1.9, 1.5),
        ],
        internal_energy_fj: 3.2,
        seq: None,
    });
    // 4-2 compressor: internally two fused FA stages — the sum path costs
    // about two FA sum delays, but the cell is smaller and cheaper in
    // energy than the two discrete FAs it replaces.
    v.push(CellSpec {
        kind: K::C42,
        name: "CMPR42X1",
        inputs: vec!["a", "b", "c", "d", "cin"],
        outputs: vec!["s", "carry", "cout"],
        function: F::Compressor42,
        tcount: 44,
        density: Logic,
        cin_rel: vec![1.7, 1.7, 1.7, 1.7, 1.6],
        arcs: vec![
            (0, 0, 10.5, 3.0),
            (1, 0, 10.5, 3.0),
            (2, 0, 10.5, 3.0),
            (3, 0, 8.5, 2.8),
            (4, 0, 3.8, 2.2),
            (0, 1, 5.5, 1.9),
            (1, 1, 5.5, 1.9),
            (2, 1, 5.5, 1.9),
            (3, 1, 4.2, 1.8),
            (4, 1, 2.4, 1.6),
            (0, 2, 3.0, 1.7),
            (1, 2, 3.0, 1.7),
            (2, 2, 3.0, 1.7),
        ],
        internal_energy_fj: 4.8,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::Dff,
        name: "DFFX1",
        inputs: vec!["d"],
        outputs: vec!["q"],
        function: F::SeqQ,
        tcount: 24,
        density: Logic,
        cin_rel: vec![1.0],
        arcs: vec![],
        internal_energy_fj: 4.0,
        seq: Some(dff_timing(25.0, 60.0, 1.2, SeqUpdate::Edge)),
    });
    v.push(CellSpec {
        kind: K::DffEn,
        name: "DFFEX1",
        inputs: vec!["d", "en"],
        outputs: vec!["q"],
        function: F::SeqQ,
        tcount: 30,
        density: Logic,
        cin_rel: vec![1.0, 1.1],
        arcs: vec![],
        internal_energy_fj: 4.4,
        seq: Some(dff_timing(28.0, 65.0, 1.3, SeqUpdate::EdgeEnable)),
    });
    // Bitcells. `setup_ps` models the write time (gates the weight-update
    // frequency); `clk_to_q_ps` models the read access time.
    v.push(CellSpec {
        kind: K::Sram6T2T,
        name: "SRAM6T2T",
        inputs: vec!["wwl", "wbl"],
        outputs: vec!["rbl"],
        function: F::SeqQ,
        tcount: 8,
        density: SramArray,
        cin_rel: vec![0.8, 0.6],
        arcs: vec![],
        internal_energy_fj: 0.20,
        seq: Some(dff_timing(90.0, 85.0, 0.05, SeqUpdate::BitcellWrite)),
    });
    v.push(CellSpec {
        kind: K::Latch8T,
        name: "LATCH8T",
        inputs: vec!["wwl", "wbl"],
        outputs: vec!["rbl"],
        function: F::SeqQ,
        tcount: 10,
        density: SramArray,
        cin_rel: vec![0.9, 0.7],
        arcs: vec![],
        internal_energy_fj: 0.25,
        seq: Some(dff_timing(70.0, 70.0, 0.06, SeqUpdate::BitcellWrite)),
    });
    // The 12T OAI-gate cell is standard-cell compatible ("design
    // feasibility") and therefore pays logic density, not pushed SRAM rules.
    v.push(CellSpec {
        kind: K::Oai12T,
        name: "OAI12T",
        inputs: vec!["wwl", "wbl"],
        outputs: vec!["rbl"],
        function: F::SeqQ,
        tcount: 12,
        density: Logic,
        cin_rel: vec![1.0, 0.8],
        arcs: vec![],
        internal_energy_fj: 0.30,
        seq: Some(dff_timing(110.0, 100.0, 0.07, SeqUpdate::BitcellWrite)),
    });
    v.push(CellSpec {
        kind: K::MultNor,
        name: "MULTNOR",
        inputs: vec!["act", "w"],
        outputs: vec!["y"],
        function: F::And,
        tcount: 4,
        density: Logic,
        cin_rel: vec![5.0 / 3.0, 5.0 / 3.0],
        arcs: vec![(0, 0, 1.8, 5.0 / 3.0), (1, 0, 1.8, 5.0 / 3.0)],
        internal_energy_fj: 0.55,
        seq: None,
    });
    // 1T pass-gate mux: smallest, but threshold-voltage drop makes it slow
    // and burns short-circuit energy in the receiver.
    v.push(CellSpec {
        kind: K::MuxPg2,
        name: "MUXPG2",
        inputs: vec!["d0", "d1", "s"],
        outputs: vec!["y"],
        function: F::Mux2,
        tcount: 2,
        density: Logic,
        cin_rel: vec![0.5, 0.5, 1.0],
        arcs: vec![(0, 0, 2.8, 2.4), (1, 0, 2.8, 2.4), (2, 0, 3.2, 2.6)],
        internal_energy_fj: 1.1,
        seq: None,
    });
    v.push(CellSpec {
        kind: K::MuxTg2,
        name: "MUXTG2",
        inputs: vec!["d0", "d1", "s"],
        outputs: vec!["y"],
        function: F::Mux2,
        tcount: 6,
        density: Logic,
        cin_rel: vec![0.7, 0.7, 1.4],
        arcs: vec![(0, 0, 1.6, 2.0), (1, 0, 1.6, 2.0), (2, 0, 2.0, 2.2)],
        internal_energy_fj: 0.9,
        seq: None,
    });
    // Fused OAI22 multiplier+mux: single-stage, energy-efficient, but the
    // topology only provides two weight legs (MCR ≤ 2).
    v.push(CellSpec {
        kind: K::Oai22Fused,
        name: "OAI22MM",
        inputs: vec!["act", "w0", "w1", "s"],
        outputs: vec!["y"],
        function: F::MultMuxFused,
        tcount: 8,
        density: Logic,
        cin_rel: vec![1.8, 1.5, 1.5, 1.6],
        arcs: vec![(0, 0, 2.0, 1.8), (1, 0, 2.2, 1.8), (2, 0, 2.2, 1.8), (3, 0, 2.4, 2.0)],
        internal_energy_fj: 0.85,
        seq: None,
    });

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_every_cell_kind() {
        let lib = CellLibrary::syn40();
        for &kind in CellKind::ALL {
            let id = lib.id_of(kind);
            assert_eq!(lib.cell(id).kind, kind);
        }
        assert_eq!(lib.len(), CellKind::ALL.len());
    }

    #[test]
    fn pin_counts_match_functions() {
        let lib = CellLibrary::syn40();
        for cell in lib.cells() {
            if cell.function == CellFunction::SeqQ {
                // Sequential cells: inputs are consumed by the state-update
                // rule, not the output function.
                assert!(cell.seq.is_some(), "{}", cell.name);
                continue;
            }
            assert_eq!(cell.inputs.len(), cell.function.input_count(), "{}", cell.name);
            assert_eq!(cell.outputs.len(), cell.function.output_count(), "{}", cell.name);
            assert_eq!(cell.input_cap_ff.len(), cell.inputs.len(), "{}", cell.name);
        }
    }

    #[test]
    fn every_combinational_output_has_an_arc_and_every_arc_is_in_range() {
        let lib = CellLibrary::syn40();
        for cell in lib.cells() {
            for arc in &cell.arcs {
                assert!(arc.from_input < cell.inputs.len(), "{}", cell.name);
                assert!(arc.to_output < cell.outputs.len(), "{}", cell.name);
                assert!(arc.parasitic > 0.0 && arc.logical_effort > 0.0, "{}", cell.name);
            }
            if cell.seq.is_none() && !matches!(cell.kind, CellKind::TieLo | CellKind::TieHi) {
                for o in 0..cell.outputs.len() {
                    assert!(
                        cell.arcs.iter().any(|a| a.to_output == o),
                        "{} output {o} has no timing arc",
                        cell.name
                    );
                }
            }
        }
    }

    #[test]
    fn fa_carry_is_faster_than_sum() {
        let lib = CellLibrary::syn40();
        let fa = lib.cell(lib.id_of(CellKind::Fa));
        let p = lib.process();
        let load = 2.0 * p.cin_unit_ff;
        let sum = fa
            .arcs
            .iter()
            .filter(|a| a.to_output == 0)
            .map(|a| fa.arc_delay_ps(a, p.tau_ps, load))
            .fold(0.0, f64::max);
        let carry = fa
            .arcs
            .iter()
            .filter(|a| a.to_output == 1)
            .map(|a| fa.arc_delay_ps(a, p.tau_ps, load))
            .fold(0.0, f64::max);
        assert!(carry < sum, "carry ({carry} ps) must beat sum ({sum} ps)");
    }

    #[test]
    fn compressor_is_cheaper_but_slower_than_two_fas() {
        // The paper's central adder trade-off: per 4→2 reduction, one C42
        // beats two FAs on area and energy but loses on the sum path by
        // more than the Wallace-depth ratio log2/log1.5 ≈ 1.71.
        let lib = CellLibrary::syn40();
        let p = lib.process();
        let fa = lib.cell(lib.id_of(CellKind::Fa));
        let c42 = lib.cell(lib.id_of(CellKind::C42));
        assert!(c42.area_um2 < 2.0 * fa.area_um2);
        assert!(c42.internal_energy_fj < 2.0 * fa.internal_energy_fj);
        let load = 2.0 * p.cin_unit_ff;
        let fa_sum = fa
            .arcs
            .iter()
            .filter(|a| a.to_output == 0)
            .map(|a| fa.arc_delay_ps(a, p.tau_ps, load))
            .fold(0.0, f64::max);
        let c42_sum = c42
            .arcs
            .iter()
            .filter(|a| a.to_output == 0)
            .map(|a| c42.arc_delay_ps(a, p.tau_ps, load))
            .fold(0.0, f64::max);
        assert!(
            c42_sum > 1.71 * fa_sum,
            "C42 sum ({c42_sum:.1} ps) must exceed 1.71× FA sum ({fa_sum:.1} ps) for the FA substitution to pay off"
        );
    }

    #[test]
    fn bitcell_density_ordering() {
        // 6T+2T (pushed rules) < 8T latch (pushed rules) < 12T OAI
        // (standard-cell compatible → logic density).
        let lib = CellLibrary::syn40();
        let a6 = lib.cell(lib.id_of(CellKind::Sram6T2T)).area_um2;
        let a8 = lib.cell(lib.id_of(CellKind::Latch8T)).area_um2;
        let a12 = lib.cell(lib.id_of(CellKind::Oai12T)).area_um2;
        assert!(a6 < a8 && a8 < a12);
    }

    #[test]
    fn mux_variant_tradeoffs_hold() {
        let lib = CellLibrary::syn40();
        let p = lib.process();
        let load = 2.0 * p.cin_unit_ff;
        let pg = lib.cell(lib.id_of(CellKind::MuxPg2));
        let tg = lib.cell(lib.id_of(CellKind::MuxTg2));
        // Pass-gate is smaller but slower and hungrier than transmission gate.
        assert!(pg.area_um2 < tg.area_um2);
        assert!(pg.worst_delay_ps(p.tau_ps, load) > tg.worst_delay_ps(p.tau_ps, load));
        assert!(pg.internal_energy_fj > tg.internal_energy_fj);
        // Fused OAI22 beats discrete TG mux + NOR mult on energy.
        let fused = lib.cell(lib.id_of(CellKind::Oai22Fused));
        let nor = lib.cell(lib.id_of(CellKind::MultNor));
        assert!(fused.internal_energy_fj < tg.internal_energy_fj + nor.internal_energy_fj);
    }

    #[test]
    fn weight_update_speed_ordering() {
        // Latch8T is the robust/fast-write cell; OAI12T the slowest.
        let lib = CellLibrary::syn40();
        let s6 = lib.cell(lib.id_of(CellKind::Sram6T2T)).seq.unwrap().setup_ps;
        let s8 = lib.cell(lib.id_of(CellKind::Latch8T)).seq.unwrap().setup_ps;
        let s12 = lib.cell(lib.id_of(CellKind::Oai12T)).seq.unwrap().setup_ps;
        assert!(s8 < s6 && s6 < s12);
    }
}
