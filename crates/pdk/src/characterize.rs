//! Custom-cell characterization flow.
//!
//! The paper (§III-B, Fig. 3): *"for customized circuits like SRAM cells,
//! multipliers, and multiplexers, we design the layout and obtain PPA data
//! through custom cell characterization flow, making them standard cells
//! for integration into the digital flow."*
//!
//! This module is that flow for the synthetic process: a declarative
//! [`CellSpec`] (transistor counts, logical-effort parameters, pin caps,
//! energy coefficients) is turned into a fully characterized [`Cell`]
//! with LIB-like timing/power/area views derived from [`Process`] constants.

use crate::cell::{Cell, CellFunction, CellKind, SeqTiming, TimingArc};
use crate::process::Process;

/// Layout density class used to derive area from transistor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityClass {
    /// Standard-cell logic density.
    Logic,
    /// Pushed-rule SRAM array density (bitcells only).
    SramArray,
}

/// Declarative description of a cell prior to characterization.
///
/// `arcs` entries are `(input_pin, output_pin, parasitic_p, logical_effort_g)`.
/// `cin_rel` holds each input pin's capacitance as a multiple of the
/// process unit inverter input capacitance.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Logic template of the cell.
    pub kind: CellKind,
    /// Library cell name.
    pub name: &'static str,
    /// Ordered input pin names.
    pub inputs: Vec<&'static str>,
    /// Ordered output pin names.
    pub outputs: Vec<&'static str>,
    /// Combinational (or sequential output-stage) function.
    pub function: CellFunction,
    /// Transistor count.
    pub tcount: u32,
    /// Layout density class.
    pub density: DensityClass,
    /// Input pin caps, as multiples of the unit inverter input cap.
    pub cin_rel: Vec<f64>,
    /// Timing arcs as `(from_input, to_output, p, g)`.
    pub arcs: Vec<(usize, usize, f64, f64)>,
    /// Internal energy per output toggle at nominal, in fJ.
    pub internal_energy_fj: f64,
    /// Sequential timing, if the cell stores state.
    pub seq: Option<SeqTiming>,
}

/// Characterize a [`CellSpec`] against `process`, producing the LIB-like
/// [`Cell`] view consumed by synthesis, STA, power analysis and layout.
///
/// Area is `transistor_count × area_per_transistor` for the spec's density
/// class; leakage is `transistor_count × leak_per_t`; pin caps and arc
/// delays are scaled by the process unit capacitance and τ at evaluation
/// time.
pub fn characterize(spec: &CellSpec, process: &Process) -> Cell {
    let per_t = match spec.density {
        DensityClass::Logic => process.area_per_t_logic_um2,
        DensityClass::SramArray => process.area_per_t_sram_um2,
    };
    let area = spec.tcount as f64 * per_t;
    let width = match spec.density {
        DensityClass::Logic => area / process.row_height_um,
        // Bitcells tile their own array grid; treat them as square-ish.
        DensityClass::SramArray => area.sqrt(),
    };
    Cell {
        kind: spec.kind,
        name: spec.name.to_string(),
        inputs: spec.inputs.clone(),
        outputs: spec.outputs.clone(),
        function: spec.function,
        seq: spec.seq,
        area_um2: area,
        width_um: width,
        input_cap_ff: spec.cin_rel.iter().map(|r| r * process.cin_unit_ff).collect(),
        arcs: spec
            .arcs
            .iter()
            .map(|&(fi, to, p, g)| TimingArc {
                from_input: fi,
                to_output: to,
                parasitic: p,
                logical_effort: g,
            })
            .collect(),
        internal_energy_fj: spec.internal_energy_fj,
        leakage_nw: spec.tcount as f64 * process.leak_per_t_nw,
        transistor_count: spec.tcount,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_spec() -> CellSpec {
        CellSpec {
            kind: CellKind::Inv,
            name: "INVX1",
            inputs: vec!["a"],
            outputs: vec!["y"],
            function: CellFunction::Not,
            tcount: 2,
            density: DensityClass::Logic,
            cin_rel: vec![1.0],
            arcs: vec![(0, 0, 1.0, 1.0)],
            internal_energy_fj: 0.35,
            seq: None,
        }
    }

    #[test]
    fn characterized_inverter_matches_process_constants() {
        let p = Process::syn40();
        let cell = characterize(&inv_spec(), &p);
        assert!((cell.area_um2 - 2.0 * p.area_per_t_logic_um2).abs() < 1e-12);
        assert!((cell.input_cap_ff[0] - p.cin_unit_ff).abs() < 1e-12);
        assert!((cell.leakage_nw - 2.0 * p.leak_per_t_nw).abs() < 1e-12);
        // FO1 delay = tau * (p + g) = tau * 2.
        let d = cell.arcs[0].delay_ps(p.tau_ps, p.cin_unit_ff, p.cin_unit_ff);
        assert!((d - 2.0 * p.tau_ps).abs() < 1e-9);
    }

    #[test]
    fn sram_density_is_denser_than_logic() {
        let p = Process::syn40();
        let mut spec = inv_spec();
        spec.density = DensityClass::SramArray;
        let dense = characterize(&spec, &p);
        let logic = characterize(&inv_spec(), &p);
        assert!(dense.area_um2 < logic.area_um2);
    }
}
