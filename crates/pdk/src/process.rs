//! Synthetic process definition and operating-point scaling models.
//!
//! The paper characterizes its subcircuits against a commercial 40 nm CMOS
//! PDK. That PDK is proprietary, so this module defines `syn40`, a synthetic
//! 40 nm-class process whose models are physically grounded:
//!
//! * gate delay follows the *logical effort* model, `d = τ·(p + g·h)`;
//! * switching energy is `½·C·V²` plus a characterized internal energy;
//! * supply-voltage scaling of delay follows the alpha-power law,
//!   `t_d ∝ V / (V − V_th)^α`, calibrated so a SynDCIM-generated 64×64 macro
//!   reproduces the silicon shmoo of the paper (≈1.1 GHz @ 1.2 V,
//!   ≈300 MHz @ 0.7 V);
//! * leakage scales super-linearly with supply and exponentially with
//!   temperature.

/// Static parameters of a (synthetic) CMOS process node.
///
/// All downstream tools (characterization, STA, power analysis, layout)
/// consume the process only through this struct, exactly as a real flow
/// consumes a PDK only through its LIB/LEF views.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Human-readable node name, e.g. `"syn40"`.
    pub name: &'static str,
    /// Logical-effort time unit τ in picoseconds at the nominal corner.
    pub tau_ps: f64,
    /// Nominal supply voltage in volts.
    pub vdd_nom_v: f64,
    /// Effective threshold voltage in volts (alpha-power law parameter).
    pub vth_v: f64,
    /// Velocity-saturation exponent α of the alpha-power law.
    pub alpha: f64,
    /// Nominal characterization temperature in °C.
    pub temp_nom_c: f64,
    /// Input capacitance of a unit-drive inverter in femtofarads.
    pub cin_unit_ff: f64,
    /// Wire capacitance per micrometre of routed length, in fF/µm.
    pub wire_cap_ff_per_um: f64,
    /// Wire resistance per micrometre, in Ω/µm (used for RC wire delay).
    pub wire_res_ohm_per_um: f64,
    /// Layout area per logic transistor in µm² (standard-cell density).
    pub area_per_t_logic_um2: f64,
    /// Layout area per SRAM-array transistor in µm² (pushed-rule density).
    pub area_per_t_sram_um2: f64,
    /// Standard-cell row height in µm (for placement).
    pub row_height_um: f64,
    /// Placement site width in µm.
    pub site_width_um: f64,
    /// Leakage per transistor at the nominal corner, in nanowatts.
    pub leak_per_t_nw: f64,
}

impl Process {
    /// The synthetic 40 nm-class process used throughout the reproduction.
    ///
    /// Constants are calibrated so that the full flow lands near the paper's
    /// silicon anchor points (see `EXPERIMENTS.md` for measured values):
    /// macro area ≈ 0.112 mm² for the 64×64/MCR=2 test macro, f_max ≈
    /// 1.1 GHz at 1.2 V and ≈300 MHz at 0.7 V.
    pub fn syn40() -> Self {
        Process {
            name: "syn40",
            tau_ps: 6.0,
            vdd_nom_v: 0.9,
            vth_v: 0.47,
            alpha: 1.6,
            temp_nom_c: 25.0,
            cin_unit_ff: 1.2,
            wire_cap_ff_per_um: 0.20,
            // Average over the routing stack: global nets ride mid/upper
            // metals, far below M1 sheet resistance.
            wire_res_ohm_per_um: 0.6,
            area_per_t_logic_um2: 0.28,
            area_per_t_sram_um2: 0.080,
            row_height_um: 1.4,
            site_width_um: 0.20,
            leak_per_t_nw: 0.10,
        }
    }

    /// Multiplicative delay scale factor at supply `vdd_v` relative to the
    /// nominal supply, per the alpha-power law.
    ///
    /// Values above 1.0 mean *slower* than nominal. Returns `f64::INFINITY`
    /// when `vdd_v` does not exceed the threshold voltage (the circuit does
    /// not switch).
    pub fn delay_scale(&self, vdd_v: f64) -> f64 {
        if vdd_v <= self.vth_v {
            return f64::INFINITY;
        }
        let num = vdd_v / (vdd_v - self.vth_v).powf(self.alpha);
        let den = self.vdd_nom_v / (self.vdd_nom_v - self.vth_v).powf(self.alpha);
        num / den
    }

    /// Multiplicative dynamic-energy scale factor at supply `vdd_v`
    /// relative to nominal (`E ∝ V²`).
    pub fn energy_scale(&self, vdd_v: f64) -> f64 {
        (vdd_v / self.vdd_nom_v).powi(2)
    }

    /// Multiplicative leakage-power scale factor at supply `vdd_v` and
    /// junction temperature `temp_c`, relative to the nominal corner.
    ///
    /// Leakage grows roughly with `V³` (DIBL) and exponentially with
    /// temperature (~2× per 25 °C for a 40 nm-class node).
    pub fn leakage_scale(&self, vdd_v: f64, temp_c: f64) -> f64 {
        let v = (vdd_v / self.vdd_nom_v).powi(3);
        let t = 2.0_f64.powf((temp_c - self.temp_nom_c) / 25.0);
        v * t
    }

    /// Delay derate for temperature (temperature inversion ignored;
    /// ~+8 % per 100 °C above nominal).
    pub fn temp_delay_scale(&self, temp_c: f64) -> f64 {
        1.0 + 0.0008 * (temp_c - self.temp_nom_c)
    }

    /// Elmore delay in picoseconds of a routed wire of length `len_um`
    /// driving `load_ff` of pin capacitance.
    pub fn wire_delay_ps(&self, len_um: f64, load_ff: f64) -> f64 {
        let r = self.wire_res_ohm_per_um * len_um;
        let c_wire = self.wire_cap_ff_per_um * len_um;
        // Elmore: R_wire * (C_wire/2 + C_load); fF·Ω = 1e-3 ps.
        r * (c_wire / 2.0 + load_ff) * 1e-3
    }
}

impl Default for Process {
    fn default() -> Self {
        Process::syn40()
    }
}

/// A (voltage, temperature) corner at which timing and power are evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Junction temperature in °C.
    pub temp_c: f64,
}

impl OperatingPoint {
    /// Operating point at the given supply and 25 °C.
    pub fn at_voltage(vdd_v: f64) -> Self {
        OperatingPoint { vdd_v, temp_c: 25.0 }
    }

    /// The nominal corner of `process` (nominal V, nominal T).
    pub fn nominal(process: &Process) -> Self {
        OperatingPoint { vdd_v: process.vdd_nom_v, temp_c: process.temp_nom_c }
    }

    /// Combined delay scale factor (voltage × temperature) for this corner.
    pub fn delay_scale(&self, process: &Process) -> f64 {
        process.delay_scale(self.vdd_v) * process.temp_delay_scale(self.temp_c)
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint { vdd_v: 0.9, temp_c: 25.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scales_are_unity() {
        let p = Process::syn40();
        assert!((p.delay_scale(p.vdd_nom_v) - 1.0).abs() < 1e-12);
        assert!((p.energy_scale(p.vdd_nom_v) - 1.0).abs() < 1e-12);
        assert!((p.leakage_scale(p.vdd_nom_v, p.temp_nom_c) - 1.0).abs() < 1e-12);
        assert!((p.temp_delay_scale(p.temp_nom_c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_scale_monotone_in_voltage() {
        let p = Process::syn40();
        let mut prev = f64::INFINITY;
        let mut v = 0.5;
        while v <= 1.3 {
            let s = p.delay_scale(v);
            assert!(s < prev, "delay scale must fall as V rises (v={v})");
            prev = s;
            v += 0.05;
        }
    }

    #[test]
    fn shmoo_anchor_ratio_roughly_matches_silicon() {
        // Silicon: ~1.1 GHz @ 1.2 V vs ~300 MHz @ 0.7 V → ratio ≈ 3.67.
        let p = Process::syn40();
        let ratio = p.delay_scale(0.7) / p.delay_scale(1.2);
        assert!((3.0..4.6).contains(&ratio), "fmax(1.2V)/fmax(0.7V) = {ratio:.2} should be near 3.7");
    }

    #[test]
    fn below_threshold_is_infinitely_slow() {
        let p = Process::syn40();
        assert!(p.delay_scale(0.3).is_infinite());
        assert!(p.delay_scale(p.vth_v).is_infinite());
    }

    #[test]
    fn energy_scale_is_quadratic() {
        let p = Process::syn40();
        let e = p.energy_scale(1.8);
        assert!((e - 4.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_doubles_per_25c() {
        let p = Process::syn40();
        let l = p.leakage_scale(p.vdd_nom_v, p.temp_nom_c + 25.0);
        assert!((l - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wire_delay_is_positive_and_grows_with_length() {
        let p = Process::syn40();
        let d1 = p.wire_delay_ps(10.0, 2.0);
        let d2 = p.wire_delay_ps(100.0, 2.0);
        assert!(d1 > 0.0 && d2 > d1 * 5.0);
    }
}
