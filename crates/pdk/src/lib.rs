//! # syndcim-pdk — synthetic process & characterized cell library
//!
//! The foundation substrate of the SynDCIM reproduction. The paper's flow
//! characterizes custom DCIM cells (SRAM bitcells, multiplier–multiplexer
//! circuits) against a commercial 40 nm PDK and merges them with standard
//! cells so the whole macro can run through a digital implementation flow.
//! That PDK is proprietary, so this crate provides `syn40`: a synthetic but
//! physically grounded 40 nm-class process (logical-effort timing, `½CV²`
//! energy, alpha-power voltage scaling) plus the characterization flow that
//! turns declarative cell specs into LIB-like [`Cell`] views.
//!
//! ```
//! use syndcim_pdk::{CellKind, CellLibrary};
//!
//! let lib = CellLibrary::syn40();
//! let fa = lib.cell(lib.id_of(CellKind::Fa));
//! assert_eq!(fa.inputs.len(), 3);
//! assert!(fa.area_um2 > 0.0);
//! ```

pub mod cell;
pub mod characterize;
pub mod library;
pub mod process;

pub use cell::{Cell, CellFunction, CellKind, SeqTiming, SeqUpdate, TimingArc};
pub use characterize::{characterize, CellSpec, DensityClass};
pub use library::{cell_specs, CellId, CellLibrary};
pub use process::{OperatingPoint, Process};
