//! # syndcim-core — the SynDCIM compiler
//!
//! The paper's primary contribution: a performance-aware DCIM compiler
//! with multi-spec-oriented subcircuit synthesis. Given a
//! [`MacroSpec`] (dimensions, MCR, INT/FP precisions, MAC and
//! weight-update frequencies, PPA preferences), the compiler
//!
//! 1. characterizes candidate subcircuits into the SCL
//!    (`syndcim_scl`),
//! 2. runs the heuristic hierarchical [`search()`] (Algorithm 1) —
//!    adder-ladder climbing, retiming, column splitting, OFU
//!    pipelining, register pruning, power/area fine-tuning — to produce
//!    a Pareto frontier of [`DesignPoint`]s,
//! 3. [`implement`]s a selected point through assembly, netlist
//!    cleanup, SDP placement, DRC and parasitic extraction, and
//! 4. signs off with post-layout STA, golden-model-checked simulation
//!    ([`eval`]), [`shmoo()`] analysis and comparison against
//!    [`published`] references.
//!
//! ```no_run
//! use syndcim_core::{search, implement, MacroSpec};
//! use syndcim_scl::Scl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = MacroSpec::paper_test_chip();
//! let mut scl = Scl::new();
//! let result = search(&spec, &mut scl);
//! let best = result.best(&spec).expect("spec is feasible");
//! let lib = scl.cell_library().clone();
//! let macro_impl = implement(&lib, &spec, &best.choice)?;
//! println!("area = {:.3} mm²", macro_impl.area_mm2());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arithmetic_support;
pub mod artifact;
pub mod assemble;
pub mod baseline;
pub mod compiled;
pub mod design;
pub mod error;
pub mod eval;
pub mod faults;
pub mod flow;
pub mod pareto;
pub mod published;
pub mod search;
pub mod shmoo;
pub mod spec;

pub use artifact::ARTIFACT_FORMAT;
pub use assemble::{assemble, MacroNetlist};
pub use baseline::BaselineKind;
pub use compiled::CompiledMacro;
pub use design::{DesignChoice, DesignPoint, PpaEstimate};
pub use error::{CoreError, FlowError};
pub use eval::{
    measure_fp, measure_fp_with, measure_int, measure_int_with, measure_weight_update,
    measure_weight_update_patterns, measure_weight_update_with, EvalBackend, MacMeasurement,
    WeightUpdateMeasurement, DEFAULT_WU_PATTERNS,
};
pub use faults::{measure_weight_update_coverage, port_net, FaultCoverageReport};
pub use flow::{implement, implement_with, FlowReport, ImplementedMacro, PowerBackend, StaBackend};
pub use pareto::pareto_frontier;
pub use search::{search, SearchResult};
pub use shmoo::{
    shmoo, shmoo_with, shmoo_with_power, shmoo_with_power_on, shmoo_yield, PowerShmoo, Shmoo, YieldReport,
    YieldShmoo,
};
pub use spec::{MacroSpec, PpaWeights, SpecError};

// Fault-plan and variation building blocks, re-exported so campaign
// and yield code needs only `syndcim_core`.
pub use syndcim_engine::{EngineError, Fault, FaultKind, FaultPlan};
pub use syndcim_ir::artifact::{ArtifactError, ArtifactMeta, ArtifactReader, SectionId};
pub use syndcim_sta::VariationModel;
