//! Published reference data for the paper's comparison tables.
//!
//! Table I compares emerging CIM compilers by feature; Table II compares
//! the SynDCIM test chip against state-of-the-art manually designed DCIM
//! macros. Competitor numbers are quoted from their publications (as
//! the paper itself does); only the SynDCIM macro is "measured" by this
//! reproduction's flow.

/// One row of Table I (CIM compiler feature comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerFeatures {
    /// Compiler name.
    pub name: &'static str,
    /// Publication venue/year.
    pub venue: &'static str,
    /// Digital (vs analog) CIM target.
    pub digital: bool,
    /// Generates full macro layout automatically.
    pub layout_generation: bool,
    /// Parameterized INT/FP precision support.
    pub fp_support: bool,
    /// Memory-compute-ratio-aware array generation.
    pub mcr_aware: bool,
    /// Optimizes subcircuit selection against user performance specs.
    pub performance_aware: bool,
    /// Multi-spec-oriented subcircuit synthesis (Pareto search).
    pub multi_spec_synthesis: bool,
    /// Silicon-validated.
    pub silicon_validated: bool,
}

/// The Table I feature matrix.
pub fn table1_compilers() -> Vec<CompilerFeatures> {
    vec![
        CompilerFeatures {
            name: "AutoDCIM",
            venue: "DAC'23",
            digital: true,
            layout_generation: true,
            fp_support: false,
            mcr_aware: false,
            performance_aware: false,
            multi_spec_synthesis: false,
            silicon_validated: false,
        },
        CompilerFeatures {
            name: "Lanius et al.",
            venue: "ISLPED'23",
            digital: true,
            layout_generation: true,
            fp_support: false,
            mcr_aware: false,
            performance_aware: false,
            multi_spec_synthesis: false,
            silicon_validated: false,
        },
        CompilerFeatures {
            name: "EasyACIM",
            venue: "arXiv'24",
            digital: false,
            layout_generation: true,
            fp_support: false,
            mcr_aware: false,
            performance_aware: true,
            multi_spec_synthesis: false,
            silicon_validated: false,
        },
        CompilerFeatures {
            name: "ARCTIC",
            venue: "DATE'24",
            digital: true,
            layout_generation: true,
            fp_support: true,
            mcr_aware: false,
            performance_aware: false,
            multi_spec_synthesis: false,
            silicon_validated: false,
        },
        CompilerFeatures {
            name: "SynDCIM (this work)",
            venue: "DATE'25",
            digital: true,
            layout_generation: true,
            fp_support: true,
            mcr_aware: true,
            performance_aware: true,
            multi_spec_synthesis: true,
            silicon_validated: true,
        },
    ]
}

/// One row of Table II (state-of-the-art DCIM macro comparison).
/// Efficiency numbers are 1b×1b-normalized, as in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DcimReference {
    /// Design label.
    pub name: &'static str,
    /// Venue/year.
    pub venue: &'static str,
    /// Process node in nm.
    pub node_nm: u32,
    /// Macro supply range (min, max) in volts.
    pub vdd_v: (f64, f64),
    /// Peak clock in MHz.
    pub fmax_mhz: f64,
    /// Energy efficiency, TOPS/W (1b-scaled, best reported conditions).
    pub tops_per_w_1b: f64,
    /// Area efficiency, TOPS/mm² (1b-scaled).
    pub tops_per_mm2_1b: f64,
    /// Designed manually (vs compiler-generated).
    pub manual: bool,
}

/// The Table II reference rows (published silicon).
pub fn table2_references() -> Vec<DcimReference> {
    vec![
        DcimReference {
            name: "TSMC 22nm DCIM [1]",
            venue: "ISSCC'21",
            node_nm: 22,
            vdd_v: (0.72, 0.72),
            fmax_mhz: 1000.0,
            tops_per_w_1b: 89.0 * 64.0 / 64.0, // reported 89 TOPS/W INT8-normalized… quoted as-is
            tops_per_mm2_1b: 16.3 * 64.0 / 64.0,
            manual: true,
        },
        DcimReference {
            name: "TSMC 5nm DCIM [2]",
            venue: "ISSCC'22",
            node_nm: 5,
            vdd_v: (0.5, 0.9),
            fmax_mhz: 1100.0,
            tops_per_w_1b: 254.0,
            tops_per_mm2_1b: 221.0,
            manual: true,
        },
        DcimReference {
            name: "TSMC 4nm DCIM [3]",
            venue: "ISSCC'23",
            node_nm: 4,
            vdd_v: (0.32, 1.0),
            fmax_mhz: 1400.0,
            tops_per_w_1b: 6163.0,
            tops_per_mm2_1b: 4790.0,
            manual: true,
        },
        DcimReference {
            name: "TSMC 3nm DCIM [4]",
            venue: "ISSCC'24",
            node_nm: 3,
            vdd_v: (0.45, 0.9),
            fmax_mhz: 1300.0,
            tops_per_w_1b: 32.5 * 144.0, // INT12×INT12 → 1b scaling
            tops_per_mm2_1b: 55.0 * 144.0,
            manual: true,
        },
        DcimReference {
            name: "SynDCIM test chip (paper)",
            venue: "DATE'25",
            node_nm: 40,
            vdd_v: (0.7, 1.2),
            fmax_mhz: 1100.0,
            tops_per_w_1b: 1921.0,
            tops_per_mm2_1b: 80.5,
            manual: false,
        },
    ]
}

/// Paper-reported anchor numbers for the SynDCIM test chip, used by the
/// benches to print paper-vs-measured rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperAnchors {
    /// Peak frequency at 1.2 V, MHz.
    pub fmax_1v2_mhz: f64,
    /// Peak frequency at 0.7 V, MHz.
    pub fmax_0v7_mhz: f64,
    /// Throughput at 1.2 V (1b×1b), TOPS.
    pub tops_1b: f64,
    /// Macro area, mm².
    pub area_mm2: f64,
    /// Energy efficiency at the Table II condition (INT4, 12.5 % input
    /// sparsity, 50 % weight sparsity, 25 °C), 1b-scaled, TOPS/W.
    pub tops_per_w_1b: f64,
    /// Area efficiency (1b-scaled), TOPS/mm².
    pub tops_per_mm2_1b: f64,
}

/// The paper's measured test-chip numbers.
pub fn paper_anchors() -> PaperAnchors {
    PaperAnchors {
        fmax_1v2_mhz: 1100.0,
        fmax_0v7_mhz: 300.0,
        tops_1b: 9.0,
        area_mm2: 0.112,
        tops_per_w_1b: 1921.0,
        tops_per_mm2_1b: 80.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_syndcim_is_performance_aware_and_multi_spec() {
        let rows = table1_compilers();
        let syn: Vec<_> = rows.iter().filter(|r| r.multi_spec_synthesis).collect();
        assert_eq!(syn.len(), 1);
        assert!(syn[0].name.contains("SynDCIM"));
        assert!(syn[0].performance_aware && syn[0].silicon_validated);
    }

    #[test]
    fn table2_contains_the_paper_chip_with_consistent_anchors() {
        let rows = table2_references();
        let chip = rows.iter().find(|r| r.name.contains("SynDCIM")).unwrap();
        let anchors = paper_anchors();
        assert_eq!(chip.tops_per_w_1b, anchors.tops_per_w_1b);
        assert_eq!(chip.fmax_mhz, anchors.fmax_1v2_mhz);
        // Paper consistency: 2·64·64·1.1 GHz ≈ 9 TOPS; 9/0.112 ≈ 80.5.
        assert!((anchors.tops_1b / anchors.area_mm2 - anchors.tops_per_mm2_1b).abs() < 0.5);
    }
}
