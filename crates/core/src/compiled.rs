//! The compiled-macro bundle: one shared [`Lowering`] feeding all three
//! compiled analysis backends.
//!
//! Before this bundle existed each fast path walked the netlist on its
//! own — `Program::compile` for simulation, `Sta::new().compile()` for
//! timing, `PowerAnalyzer::with_wire_caps` for power — three identical
//! connectivity/levelization traversals per implemented macro.
//! [`CompiledMacro::compile`] performs the traversal **once** (pinned
//! by `tests/one_lowering_per_implement.rs` via
//! [`Lowering::builds`]) and hands the same IR to the simulation,
//! timing and power compilers, so every later sign-off query — engine
//! evaluation, shmoo timing, power annotation — runs on programs that
//! agree on slot assignment by construction.

use syndcim_ir::Lowering;
use syndcim_netlist::{Module, NetlistError};
use syndcim_pdk::CellLibrary;
use syndcim_power::{CompiledPower, PowerAnalyzer};
use syndcim_sta::{CompiledSta, Sta, WireLoads};

use syndcim_engine::Program;

/// Every compiled analysis program of one implemented macro, built from
/// a single netlist lowering.
///
/// Stored on [`crate::ImplementedMacro`]; the evaluation
/// (`crate::eval`), timing (`crate::flow`) and shmoo/power
/// (`crate::shmoo`) entry points all consume it instead of re-lowering
/// the module per query.
#[derive(Debug, Clone)]
pub struct CompiledMacro {
    /// The shared netlist IR (connectivity + levelized order + dense
    /// net slots) every program below was compiled from.
    pub lowering: Lowering,
    /// The bit-parallel simulation program (engine backend).
    pub program: Program,
    /// The wire-annotated compiled timing program.
    pub sta: CompiledSta,
    /// The wire-annotated compiled power program.
    pub power: CompiledPower,
}

impl CompiledMacro {
    /// Lower `module` once and compile the simulation, timing and power
    /// programs from the shared traversal. `wires` carries the
    /// extracted parasitics (capacitance annotates both the timing
    /// loads and the power switched-capacitance columns; wire delay is
    /// timing-only).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation (floating nets,
    /// multiple drivers) or contains a combinational loop — the same
    /// conditions under which the simulation backends refuse the
    /// module.
    pub fn compile(module: &Module, lib: &CellLibrary, wires: &WireLoads) -> Result<Self, NetlistError> {
        let lowering = Lowering::validated(module, lib)?;
        Ok(Self::compile_with_lowering(module, lib, wires, lowering))
    }

    /// [`CompiledMacro::compile`] from a lowering the caller already
    /// owns. The `implement` flow builds its lowering *before* placement
    /// (the placer resolves zones from the interned symbol table) and
    /// hands it here afterwards, so the one-lowering-per-implement
    /// contract holds even though layout runs in between. Infallible:
    /// validation happened when `lowering` was built.
    pub fn compile_with_lowering(
        module: &Module,
        lib: &CellLibrary,
        wires: &WireLoads,
        lowering: Lowering,
    ) -> Self {
        let program = Program::from_lowering(&lowering, module, lib);
        let power = PowerAnalyzer::from_lowering(module, lib, &lowering, &wires.cap_ff).compile();
        // `with_lowering` takes the IR by value; the clone is a memcpy of
        // already-built tables, not a netlist walk (Lowering::builds()
        // stays put — that is the whole point of the bundle).
        let sta = Sta::with_lowering(module, lib, lowering.clone()).with_wire_loads(wires.clone()).compile();
        CompiledMacro { lowering, program, sta, power }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::OperatingPoint;

    #[test]
    fn bundle_compiles_all_three_programs_from_one_walk() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let x = b.not(a);
        let q = b.dff(x);
        b.output("q", q);
        let m = b.finish();

        let before = Lowering::builds();
        let cm = CompiledMacro::compile(&m, &lib, &WireLoads::zero(m.net_count())).unwrap();
        // Other tests run concurrently in this process, so pin a lower
        // bound here; the exact "one build per implement" contract is
        // pinned by the dedicated single-test integration binary.
        assert!(Lowering::builds() > before);

        assert_eq!(cm.lowering.net_count(), m.net_count());
        assert_eq!(cm.program.net_count(), m.net_count());
        assert_eq!(cm.sta.net_count(), m.net_count());
        assert_eq!(cm.power.net_count(), m.net_count());

        // The programs are usable: timing and power agree with their
        // reference analyzers built independently.
        let op = OperatingPoint::at_voltage(0.9);
        let sta = Sta::new(&m, &lib).unwrap();
        assert_eq!(cm.sta.fmax_mhz(op), sta.fmax_mhz(op));
        let toggles = vec![3u64; m.net_count()];
        let pa = PowerAnalyzer::new(&m, &lib).unwrap();
        let fast = cm.power.report(&toggles, 10, 500.0, op);
        let slow = pa.from_activity(&toggles, 10, 500.0, op);
        assert_eq!(fast.total_uw(), slow.total_uw());
    }
}
