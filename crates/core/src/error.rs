//! Unified error type for the compiler flow.

use std::fmt;

use crate::spec::SpecError;
use syndcim_layout::LayoutError;
use syndcim_netlist::NetlistError;

/// Any error the compiler flow can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Specification validation failed.
    Spec(SpecError),
    /// The generated netlist is malformed (internal error).
    Netlist(NetlistError),
    /// Placement or design-rule checking failed.
    Layout(LayoutError),
    /// No design in the search space met the constraints.
    NoFeasibleDesign,
    /// A simulated macro output disagreed with the golden model.
    FunctionalMismatch {
        /// Output channel index (`usize::MAX` for the alignment unit).
        channel: usize,
        /// Hardware value.
        got: i64,
        /// Golden-model value.
        want: i64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Spec(e) => write!(f, "invalid specification: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Layout(e) => write!(f, "layout error: {e}"),
            CoreError::NoFeasibleDesign => write!(f, "no design in the search space meets the constraints"),
            CoreError::FunctionalMismatch { channel, got, want } => {
                write!(f, "macro output mismatch on channel {channel}: got {got}, expected {want}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Spec(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            CoreError::Layout(e) => Some(e),
            CoreError::NoFeasibleDesign | CoreError::FunctionalMismatch { .. } => None,
        }
    }
}

impl From<SpecError> for CoreError {
    fn from(e: SpecError) -> Self {
        CoreError::Spec(e)
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<LayoutError> for CoreError {
    fn from(e: LayoutError) -> Self {
        CoreError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e: CoreError = SpecError::BadMcr.into();
        assert!(e.to_string().contains("invalid specification"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::NoFeasibleDesign.to_string().contains("no design"));
    }
}
