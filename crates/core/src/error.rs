//! Unified error type for the compiler flow.
//!
//! [`FlowError`] is the typed error every public `implement` / `eval` /
//! `shmoo` entry point returns: spec, netlist and layout failures from
//! the implementation flow, golden-model mismatches from evaluation,
//! and — since the fault-injection subsystem landed — malformed fault
//! plans, out-of-range lanes, unsupported precisions and dimension
//! mismatches that previously panicked mid-measurement. [`CoreError`]
//! remains as an alias so existing call sites keep compiling unchanged.

use std::fmt;

use crate::spec::SpecError;
use syndcim_engine::EngineError;
use syndcim_layout::LayoutError;
use syndcim_netlist::NetlistError;

/// Backwards-compatible name for [`FlowError`] (the original seed
/// error type grew into the flow-wide one).
pub type CoreError = FlowError;

/// Any error the compiler flow can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Specification validation failed.
    Spec(SpecError),
    /// The generated netlist is malformed (internal error).
    Netlist(NetlistError),
    /// Placement or design-rule checking failed.
    Layout(LayoutError),
    /// No design in the search space met the constraints.
    NoFeasibleDesign,
    /// A simulated macro output disagreed with the golden model.
    FunctionalMismatch {
        /// Output channel index (`usize::MAX` for the alignment unit).
        channel: usize,
        /// Hardware value.
        got: i64,
        /// Golden-model value.
        want: i64,
    },
    /// The batch engine rejected a fault plan or lane request
    /// (out-of-range net/lane, contradictory stuck-ats, lane-set
    /// misuse).
    Engine(EngineError),
    /// A measurement asked for a precision the macro does not support.
    Precision {
        /// Requested activation/weight precision in bits.
        pa: u32,
        /// Largest precision the macro was built for.
        max: u32,
    },
    /// A measurement input had the wrong shape.
    Dimension {
        /// What was mis-shaped (e.g. `"weight vectors"`).
        what: &'static str,
        /// Length found.
        got: usize,
        /// Length required.
        want: usize,
    },
    /// A lane-parallel measurement asked for more concurrent patterns
    /// or samples than the engine carries (or zero).
    PatternCount {
        /// Requested pattern/sample count.
        patterns: usize,
        /// Engine lane capacity.
        max: usize,
    },
    /// An FP measurement was requested on a macro built without an FP
    /// alignment unit.
    MissingFpUnit,
    /// A sweep axis (voltages, frequencies, samples) was empty.
    EmptyAxis {
        /// Which axis was empty.
        axis: &'static str,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Spec(e) => write!(f, "invalid specification: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Layout(e) => write!(f, "layout error: {e}"),
            FlowError::NoFeasibleDesign => write!(f, "no design in the search space meets the constraints"),
            FlowError::FunctionalMismatch { channel, got, want } => {
                write!(f, "macro output mismatch on channel {channel}: got {got}, expected {want}")
            }
            FlowError::Engine(e) => write!(f, "engine rejected the request: {e}"),
            FlowError::Precision { pa, max } => {
                write!(f, "unsupported precision INT{pa} (macro supports up to {max} bits, powers of two)")
            }
            FlowError::Dimension { what, got, want } => {
                write!(f, "dimension mismatch: {what} has length {got}, expected {want}")
            }
            FlowError::PatternCount { patterns, max } => {
                write!(f, "pattern count {patterns} outside 1..={max}")
            }
            FlowError::MissingFpUnit => write!(f, "macro has no FP alignment unit"),
            FlowError::EmptyAxis { axis } => write!(f, "sweep axis `{axis}` is empty"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Spec(e) => Some(e),
            FlowError::Netlist(e) => Some(e),
            FlowError::Layout(e) => Some(e),
            FlowError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for FlowError {
    fn from(e: SpecError) -> Self {
        FlowError::Spec(e)
    }
}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

impl From<LayoutError> for FlowError {
    fn from(e: LayoutError) -> Self {
        FlowError::Layout(e)
    }
}

impl From<EngineError> for FlowError {
    fn from(e: EngineError) -> Self {
        FlowError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e: CoreError = SpecError::BadMcr.into();
        assert!(e.to_string().contains("invalid specification"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::NoFeasibleDesign.to_string().contains("no design"));
    }

    #[test]
    fn robustness_variants_render() {
        let e: FlowError = EngineError::LaneOutOfRange { lane: 9, lanes: 4 }.into();
        assert!(e.to_string().contains("lane 9"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(FlowError::Precision { pa: 16, max: 8 }.to_string().contains("INT16"));
        assert!(FlowError::PatternCount { patterns: 0, max: 256 }.to_string().contains("0"));
        assert!(FlowError::MissingFpUnit.to_string().contains("FP"));
        assert!(FlowError::EmptyAxis { axis: "voltages" }.to_string().contains("voltages"));
        assert!(FlowError::Dimension { what: "weight vectors", got: 3, want: 2 }
            .to_string()
            .contains("weight vectors"));
    }
}
