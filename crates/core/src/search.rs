//! The Multi-Spec-Oriented (MSO) searcher — Algorithm 1 of the paper.
//!
//! "Once the search space is ready, the searcher evaluates whether the
//! critical paths of the MAC … meet the timing constraints. For the MAC
//! path, the searcher checks if faster adders are available in the SCL
//! or performs retiming by moving the registers at the output of the
//! adder to the front of the last RCA stage. If these fine-tuning
//! techniques do not work, the searcher divides the column with height H
//! into two columns with height H/2. Similarly, if the OFU does not meet
//! the timing constraints, the searcher performs retiming by moving some
//! combinational circuits to the S&A. If retiming is insufficient, the
//! searcher adds an extra pipeline stage to the OFU. After satisfying
//! the basic timing requirements, the searcher optimizes the pipeline
//! registers … if the combined path delay of neighbouring combinational
//! circuits still meets the timing constraints, the searcher removes the
//! registers between them. Finally, fine-tuning optimization techniques
//! for power or area are applied by substituting power/area-efficient
//! subcircuits."

use syndcim_engine::parallel_map;
use syndcim_pdk::OperatingPoint;
use syndcim_scl::Scl;
use syndcim_sim::Precision;
use syndcim_subckt::{AdderTreeConfig, AdderTreeKind, BitcellKind, MultMuxKind, OfuConfig, ShiftAddConfig};
use syndcim_telemetry as telemetry;

use crate::arithmetic_support::count_bits;
use crate::design::{DesignChoice, DesignPoint, PpaEstimate};
use crate::pareto::pareto_frontier;
use crate::spec::MacroSpec;

/// Register setup/clk-to-q margins folded into stage estimates, in ps
/// (nominal corner; scaled with voltage like everything else).
const REG_MARGIN_PS: f64 = 90.0;

/// Pre-layout→post-layout derate applied to SCL delays during the
/// search: the LUTs are wire-free, the implemented macro is not.
const WIRE_DERATE: f64 = 1.30;

/// Maximum number of full-adder rounds the tree ladder climbs.
const MAX_FA_ROUNDS: usize = 6;

/// Result of one search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Every timing-feasible design point evaluated.
    pub feasible: Vec<DesignPoint>,
    /// The Pareto frontier over (power, area, latency).
    pub frontier: Vec<DesignPoint>,
    /// Candidates rejected on timing, for diagnostics.
    pub rejected: usize,
}

impl SearchResult {
    /// The frontier point that best matches the spec's PPA weights.
    pub fn best(&self, spec: &MacroSpec) -> Option<&DesignPoint> {
        self.frontier
            .iter()
            .min_by(|a, b| a.score(&spec.ppa).partial_cmp(&b.score(&spec.ppa)).expect("finite scores"))
    }
}

/// Stage-delay estimates for one choice, assembled from SCL records.
#[derive(Debug, Clone, Copy)]
pub struct StageDelays {
    /// Activation entry → psum register (or straight through to acc).
    pub mac_ps: f64,
    /// Psum register → S&A accumulator (retimed CPA + accumulate add).
    pub sa_ps: f64,
    /// Accumulator → fused channel outputs.
    pub ofu_ps: f64,
    /// Write-bitline entry → bitcell capture.
    pub write_ps: f64,
    /// FP alignment stage (0 when no FP precision is requested).
    pub align_ps: f64,
}

impl StageDelays {
    /// Worst per-stage delay of the MAC pipeline.
    pub fn worst_mac_stage(&self) -> f64 {
        self.mac_ps.max(self.sa_ps).max(self.ofu_ps).max(self.align_ps)
    }
}

/// Run the multi-spec-oriented search for `spec` against `scl`.
///
/// Returns every feasible point plus the Pareto frontier. The estimates
/// come from the SCL lookup tables; the implementation flow
/// (`crate::flow`) later signs off the selected points with full STA.
///
/// Evaluation fans out across cores: every `(bitcell, multmux)` site is
/// one job on the engine's [`parallel_map`] runner. Each worker climbs
/// its site's adder ladder against a clone of the caller's (pre-warmed)
/// SCL cache; the per-worker caches merge back via [`Scl::absorb`]
/// afterwards. Characterization is deterministic per key, so the result
/// — feasible list, frontier, rejection count and the final cache — is
/// identical to the sequential evaluation order.
pub fn search(spec: &MacroSpec, scl: &mut Scl) -> SearchResult {
    telemetry::span!("search");
    // Constraints are specified at spec.vdd_v: scale nominal-corner SCL
    // delays to that supply.
    let scale = scl.cell_library().process().delay_scale(spec.vdd_v);
    let period = spec.mac_period_ps();
    let wu_period = spec.wu_period_ps();

    // Pre-warm the site-independent records so every worker inherits
    // them instead of re-characterizing per thread: drivers, the S&A,
    // every ladder kind's entry-point tree, the OFU variants the
    // fine-tuning always touches, and the alignment unit.
    let psum_bits = count_bits(spec.h);
    let act_bits = spec.act_bits() as usize;
    let sa_bits = psum_bits + act_bits;
    let w_bits = spec.weight_bits() as usize;
    scl.driver(spec.w);
    scl.driver(spec.h * spec.mcr);
    scl.shift_add(ShiftAddConfig { psum_bits, act_bits });
    let carry_reorder = DesignChoice::default().carry_reorder;
    let mut warm_ladder = AdderTreeKind::speed_ladder(MAX_FA_ROUNDS);
    warm_ladder.push(AdderTreeKind::RcaTree);
    for kind in warm_ladder {
        scl.adder_tree(spec.h, AdderTreeConfig { kind, carry_reorder, final_cpa: true });
    }
    for negate_stage in [true, false] {
        scl.ofu(OfuConfig { w_bits, sa_bits, negate_stage, extra_pipeline: false });
    }
    if let Some(fmt) = spec.widest_fp() {
        scl.align(spec.h.min(16), fmt, false);
    }

    let sites: Vec<(BitcellKind, MultMuxKind)> = BitcellKind::ALL
        .iter()
        .flat_map(|&bitcell| {
            MultMuxKind::ALL
                .iter()
                .filter(|multmux| multmux.supports_mcr(spec.mcr))
                .map(move |&multmux| (bitcell, multmux))
        })
        .collect();

    telemetry::counter("search.sites").add(sites.len() as u64);
    let base: &Scl = scl;
    let site_results = parallel_map(sites, |_, (bitcell, multmux)| {
        telemetry::span!("search.site");
        let mut local = base.clone();
        let r = search_site(spec, &mut local, bitcell, multmux, scale, period, wu_period);
        (r, local)
    });

    let mut feasible: Vec<DesignPoint> = Vec::new();
    let mut rejected = 0usize;
    for (site, cache) in site_results {
        feasible.extend(site.feasible);
        rejected += site.rejected;
        scl.absorb(cache);
    }

    let frontier = pareto_frontier(&feasible);
    SearchResult { feasible, frontier, rejected }
}

/// Feasible points and rejections of one `(bitcell, multmux)` site.
struct SiteResult {
    feasible: Vec<DesignPoint>,
    rejected: usize,
}

/// Climb the adder ladder for one memory/multiplier site, applying the
/// paper's timing moves (retime → split → align pipeline → OFU retime →
/// OFU pipeline), register pruning and fine-tuning.
fn search_site(
    spec: &MacroSpec,
    scl: &mut Scl,
    bitcell: BitcellKind,
    multmux: MultMuxKind,
    scale: f64,
    period: f64,
    wu_period: f64,
) -> SiteResult {
    let mut feasible: Vec<DesignPoint> = Vec::new();
    let mut rejected = 0usize;

    // Climb the adder ladder from the cheapest topology; the RCA
    // baseline rides along so it stays searchable.
    let mut ladder = AdderTreeKind::speed_ladder(MAX_FA_ROUNDS);
    ladder.push(AdderTreeKind::RcaTree);
    let ladder_steps = telemetry::counter("search.ladder_steps");
    let mut found_for_site = false;
    for kind in ladder {
        ladder_steps.incr();
        let mut choice = DesignChoice { bitcell, multmux, tree_kind: kind, ..DesignChoice::default() };

        // --- MAC-path loop: retime, then split ---------------
        let mut stages = estimate(spec, scl, &choice);
        if stages.mac_ps * scale > period && !choice.tree_retimed {
            choice.tree_retimed = true;
            stages = estimate(spec, scl, &choice);
        }
        while stages.mac_ps * scale > period && choice.column_split < 4 {
            choice.column_split *= 2;
            stages = estimate(spec, scl, &choice);
        }

        // --- alignment-unit pipelining --------------------------
        if stages.align_ps * scale > period {
            choice.align_pipelined = true;
            stages = estimate(spec, scl, &choice);
        }

        // --- OFU loop: retime negate, then extra pipeline ----
        if stages.ofu_ps * scale > period {
            choice.ofu_negate_retimed = true;
            stages = estimate(spec, scl, &choice);
        }
        if stages.ofu_ps * scale > period {
            choice.ofu_extra_pipe = true;
            stages = estimate(spec, scl, &choice);
        }

        // --- weight-update constraint -------------------------
        if stages.write_ps * scale > wu_period {
            // Write path can't keep up even after every timing move:
            // the sibling counter records *why* the rung was pruned.
            telemetry::counter("search.pruned_wu_timing").incr();
            rejected += 1;
            continue;
        }

        if stages.worst_mac_stage() * scale > period {
            telemetry::counter("search.pruned_mac_timing").incr();
            rejected += 1;
            continue;
        }
        found_for_site = true;

        // --- register pruning ---------------------------------
        // Merge tree and S&A stages when their combined delay
        // still fits the period.
        if !choice.tree_retimed && choice.pipe_tree_sa {
            let merged = DesignChoice { pipe_tree_sa: false, ..choice };
            let ms = estimate(spec, scl, &merged);
            if ms.worst_mac_stage() * scale <= period && ms.write_ps * scale <= wu_period {
                feasible.push(point(spec, scl, &merged, &ms));
            }
        }

        // --- power/area fine-tuning ---------------------------
        // The retimed-negate OFU trades the per-column negate
        // chains for control-path XORs: strictly cheaper, adopted
        // when timing holds.
        if !choice.ofu_negate_retimed {
            let tuned = DesignChoice { ofu_negate_retimed: true, ..choice };
            let ts = estimate(spec, scl, &tuned);
            if ts.worst_mac_stage() * scale <= period {
                feasible.push(point(spec, scl, &tuned, &ts));
            }
        }

        feasible.push(point(spec, scl, &choice, &stages));
    }
    if !found_for_site {
        telemetry::counter("search.pruned_infeasible_site").incr();
        rejected += 1;
    }

    telemetry::counter("search.pruned").add(rejected as u64);
    SiteResult { feasible, rejected }
}

/// Assemble stage-delay estimates for one choice from SCL records
/// (derated for routing; exposed for diagnostics and ablations).
pub fn estimate(spec: &MacroSpec, scl: &mut Scl, choice: &DesignChoice) -> StageDelays {
    let h = spec.h;
    let chunk = h / choice.column_split.max(1);
    let psum_bits = count_bits(h);
    let act_bits = spec.act_bits() as usize;
    let sa_bits = psum_bits + act_bits;
    let w_bits = spec.weight_bits() as usize;

    let tree_cfg = AdderTreeConfig {
        kind: choice.tree_kind,
        carry_reorder: choice.carry_reorder,
        final_cpa: !choice.tree_retimed,
    };
    let driver = scl.driver(spec.w);
    let column = scl.column(h.min(16), spec.mcr, choice.bitcell, choice.multmux);
    let tree = scl.adder_tree(chunk, tree_cfg);
    let sa = scl.shift_add(ShiftAddConfig { psum_bits, act_bits });
    let ofu = scl.ofu(OfuConfig {
        w_bits,
        sa_bits,
        negate_stage: !choice.ofu_negate_retimed,
        extra_pipeline: choice.ofu_extra_pipe,
    });

    // Split recombination: log2(split) ripple levels of ~psum_bits FAs.
    let combine_ps = if choice.column_split > 1 {
        let levels = choice.column_split.trailing_zeros() as f64;
        levels * psum_bits as f64 * 18.0
    } else {
        0.0
    };
    // Retimed CPA runs in the S&A stage: approximate by the ripple of
    // psum_bits full adders.
    let retimed_cpa_ps = if choice.tree_retimed { psum_bits as f64 * 18.0 } else { 0.0 };

    let front = (driver.delay_ps + column.delay_ps + tree.delay_ps + combine_ps) * WIRE_DERATE;
    let (mac_ps, sa_ps) = if choice.pipe_tree_sa {
        (front + REG_MARGIN_PS, (retimed_cpa_ps + sa.delay_ps) * WIRE_DERATE + REG_MARGIN_PS)
    } else {
        // Merged stage: one long path from activation to accumulator.
        (front + sa.delay_ps * WIRE_DERATE + REG_MARGIN_PS, 0.0)
    };
    let ofu_ps = ofu.delay_ps * WIRE_DERATE + REG_MARGIN_PS;
    let write_ps = scl.driver(h * spec.mcr).delay_ps + bitcell_setup_ps(scl, choice.bitcell) + 60.0; // decoder margin
    let align_ps = match spec.widest_fp() {
        Some(fmt) => scl.align(h.min(16), fmt, choice.align_pipelined).delay_ps * WIRE_DERATE + REG_MARGIN_PS,
        None => 0.0,
    };

    StageDelays { mac_ps, sa_ps, ofu_ps, write_ps, align_ps }
}

fn bitcell_setup_ps(scl: &Scl, bitcell: BitcellKind) -> f64 {
    let lib = scl.cell_library();
    lib.cell(lib.id_of(bitcell.cell_kind())).seq.expect("bitcells are sequential").setup_ps
}

/// Build the full design point (PPA estimate) for a timing-feasible
/// choice.
fn point(spec: &MacroSpec, scl: &mut Scl, choice: &DesignChoice, stages: &StageDelays) -> DesignPoint {
    let h = spec.h;
    let w = spec.w;
    let psum_bits = count_bits(h);
    let act_bits = spec.act_bits() as usize;
    let sa_bits = psum_bits + act_bits;
    let w_bits = spec.weight_bits() as usize;
    let chunk = h / choice.column_split.max(1);
    let tree_cfg = AdderTreeConfig {
        kind: choice.tree_kind,
        carry_reorder: choice.carry_reorder,
        final_cpa: !choice.tree_retimed,
    };

    let column = scl.column(h.min(16), spec.mcr, choice.bitcell, choice.multmux);
    let col_scale = h as f64 / h.min(16) as f64;
    let tree = scl.adder_tree(chunk, tree_cfg);
    let sa = scl.shift_add(ShiftAddConfig { psum_bits, act_bits });
    let ofu_cfg = OfuConfig {
        w_bits,
        sa_bits,
        negate_stage: !choice.ofu_negate_retimed,
        extra_pipeline: choice.ofu_extra_pipe,
    };
    let ofu = scl.ofu(ofu_cfg);
    let driver = scl.driver(w);
    let groups = (w / w_bits) as f64;

    let mut area = w as f64
        * (column.area_um2 * col_scale + tree.area_um2 * choice.column_split as f64 + sa.area_um2)
        + groups * ofu.area_um2
        + (h + w) as f64 * driver.area_um2 / 8.0;
    let mut energy_fj = w as f64
        * (column.energy_fj_per_cycle * col_scale
            + tree.energy_fj_per_cycle * choice.column_split as f64
            + sa.energy_fj_per_cycle)
        + groups * ofu.energy_fj_per_cycle;
    let mut leak_nw = w as f64 * (column.leakage_nw * col_scale + tree.leakage_nw + sa.leakage_nw);
    if let Some(fmt) = spec.widest_fp() {
        let al = scl.align(h.min(16), fmt, choice.align_pipelined);
        let al_scale = h as f64 / h.min(16) as f64;
        area += al.area_um2 * al_scale;
        energy_fj += al.energy_fj_per_cycle * al_scale / act_bits as f64; // once per pass
        leak_nw += al.leakage_nw * al_scale;
    }

    let process = scl.cell_library().process();
    let escale = process.energy_scale(spec.vdd_v);
    let lscale = process.leakage_scale(spec.vdd_v, 25.0);
    let power_uw = energy_fj * escale * spec.f_mac_mhz * 1e-3 + leak_nw * lscale / 1000.0;
    let area_um2 = area / 0.70; // placement utilization

    let tput = syndcim_power::MacThroughput { h, w, act: Precision::Int(1), weight: Precision::Int(1) };
    let scale = process.delay_scale(spec.vdd_v);
    let _ = OperatingPoint::at_voltage(spec.vdd_v);
    DesignPoint {
        choice: *choice,
        est: PpaEstimate {
            critical_delay_ps: stages.worst_mac_stage() * scale,
            timing_met: stages.worst_mac_stage() * scale <= spec.mac_period_ps(),
            power_uw,
            area_um2,
            latency_cycles: choice.pipeline_stages() + act_bits,
            tops_1b: tput.tops(spec.f_mac_mhz),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(f_mac_mhz: f64) -> MacroSpec {
        MacroSpec {
            h: 16,
            w: 16,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        }
    }

    /// The RCA baseline tree rides the ladder and is actually searched
    /// (the seed built the ladder with RcaTree pushed but iterated a
    /// fresh speed ladder, silently skipping it — fixed in PR 2).
    #[test]
    fn rca_baseline_stays_searchable() {
        let mut scl = Scl::new();
        let res = search(&small_spec(200.0), &mut scl);
        assert!(
            res.feasible.iter().any(|p| p.choice.tree_kind == AdderTreeKind::RcaTree),
            "a relaxed clock must keep the RCA baseline feasible"
        );
    }

    #[test]
    fn relaxed_spec_keeps_cheap_trees() {
        let mut scl = Scl::new();
        let res = search(&small_spec(200.0), &mut scl);
        assert!(!res.feasible.is_empty());
        assert!(!res.frontier.is_empty());
        // At 200 MHz the pure-compressor tree must be feasible somewhere.
        assert!(
            res.feasible.iter().any(|p| p.choice.tree_kind == AdderTreeKind::CompressorCsa
                && !p.choice.tree_retimed
                && p.choice.column_split == 1),
            "cheap point should survive a relaxed clock"
        );
    }

    #[test]
    fn tight_spec_triggers_timing_moves() {
        let mut scl = Scl::new();
        let relaxed = search(&small_spec(200.0), &mut scl);
        let tight = search(&small_spec(1150.0), &mut scl);
        let moves = |r: &SearchResult| {
            r.feasible.iter().filter(|p| p.choice.tree_retimed || p.choice.column_split > 1).count()
        };
        assert!(
            moves(&tight) > moves(&relaxed),
            "tight clocks must force retiming/splitting: tight={} relaxed={}",
            moves(&tight),
            moves(&relaxed)
        );
    }

    #[test]
    fn frontier_points_meet_timing() {
        let mut scl = Scl::new();
        let res = search(&small_spec(700.0), &mut scl);
        for p in &res.frontier {
            assert!(p.est.timing_met, "{:?}", p.choice);
            assert!(p.est.power_uw > 0.0 && p.est.area_um2 > 0.0);
        }
    }

    #[test]
    fn best_respects_ppa_preference() {
        let mut scl = Scl::new();
        let mut spec = small_spec(500.0);
        let res = search(&spec, &mut scl);
        spec.ppa = crate::spec::PpaWeights::energy_leaning();
        let p_energy = res.best(&spec).unwrap().est.power_uw;
        spec.ppa = crate::spec::PpaWeights::area_leaning();
        let p_area = res.best(&spec).unwrap().est.area_um2;
        // The energy pick can't burn more power than the area pick's
        // power, and vice versa for area.
        let e_point = {
            spec.ppa = crate::spec::PpaWeights::energy_leaning();
            res.best(&spec).unwrap().clone()
        };
        let a_point = {
            spec.ppa = crate::spec::PpaWeights::area_leaning();
            res.best(&spec).unwrap().clone()
        };
        assert!(e_point.est.power_uw <= a_point.est.power_uw + 1e-9);
        assert!(a_point.est.area_um2 <= e_point.est.area_um2 + 1e-9);
        let _ = (p_energy, p_area);
    }

    /// The parallel site fan-out must be invisible: records are
    /// deterministic per key, so a cold cache, a warm cache and repeated
    /// runs all produce identical results, and the per-worker caches
    /// merge back into the caller's `Scl`.
    #[test]
    fn parallel_search_is_deterministic_and_merges_caches() {
        let mut scl = Scl::new();
        let cold = search(&small_spec(700.0), &mut scl);
        let cached = scl.len();
        assert!(cached > 0, "worker caches must merge back");
        let warm = search(&small_spec(700.0), &mut scl);
        assert_eq!(scl.len(), cached, "warm rerun characterizes nothing new");
        assert_eq!(cold.rejected, warm.rejected);
        assert_eq!(cold.feasible, warm.feasible);
        assert_eq!(cold.frontier, warm.frontier);
    }

    #[test]
    fn infeasible_weight_update_rejects_slow_bitcells() {
        let mut scl = Scl::new();
        let mut spec = small_spec(300.0);
        spec.f_wu_mhz = 4000.0; // 250 ps period: slower bitcells can't write
        let res = search(&spec, &mut scl);
        assert!(
            res.feasible.iter().all(|p| p.choice.bitcell != BitcellKind::Oai12T),
            "the 12T OAI cell (slowest write) must be rejected at 4 GHz updates"
        );
        assert!(res.rejected > 0);
    }
}
