//! Small arithmetic helpers shared by assembly (carry-propagate and
//! count-combining adders for split columns and retimed trees).

use syndcim_netlist::{NetId, NetlistBuilder};

/// Number of bits needed to represent the unsigned count `0..=n`.
pub fn count_bits(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

/// Carry-propagate adder assimilating a redundant carry-save pair
/// (equal widths); the result keeps the pair's width (the tree
/// guarantees no overflow past it).
pub fn cpa(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), x.len());
    let (sum, _carry) = syndcim_subckt::arith::rca(b, a, x, None);
    sum
}

/// Combine several unsigned partial counts into their total by pairwise
/// ripple-carry addition (used when a column is split into H/2 or H/4
/// trees).
pub fn combine_counts(b: &mut NetlistBuilder<'_>, mut parts: Vec<Vec<NetId>>) -> Vec<NetId> {
    assert!(!parts.is_empty());
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(p) = it.next() {
            match it.next() {
                Some(q) => {
                    let wid = p.len().max(q.len());
                    let zero = b.const0();
                    let pe = syndcim_subckt::arith::zero_extend(&p, wid, zero);
                    let qe = syndcim_subckt::arith::zero_extend(&q, wid, zero);
                    let (mut s, c) = syndcim_subckt::arith::rca(b, &pe, &qe, None);
                    s.push(c);
                    next.push(s);
                }
                None => next.push(p),
            }
        }
        parts = next;
    }
    parts.pop().expect("one total remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;

    #[test]
    fn combine_counts_totals_correctly() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let p0 = b.input_bus("p0", 3);
        let p1 = b.input_bus("p1", 3);
        let p2 = b.input_bus("p2", 3);
        let total = combine_counts(&mut b, vec![p0, p1, p2]);
        b.output_bus("t", &total);
        let width = total.len() as u32;
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for (a, c, d) in [(7u64, 7u64, 7u64), (1, 2, 3), (0, 0, 0), (5, 0, 6)] {
            sim.set_bus("p0", 3, a as i64);
            sim.set_bus("p1", 3, c as i64);
            sim.set_bus("p2", 3, d as i64);
            sim.settle();
            assert_eq!(sim.get_bus_unsigned("t", width), a + c + d);
        }
    }

    #[test]
    fn cpa_assimilates_pairs() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input_bus("a", 4);
        let x = b.input_bus("x", 4);
        let s = cpa(&mut b, &a, &x);
        b.output_bus("s", &s);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set_bus("a", 4, 9);
        sim.set_bus("x", 4, 5);
        sim.settle();
        assert_eq!(sim.get_bus_unsigned("s", 4), 14);
    }
}
