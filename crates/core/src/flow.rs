//! Implementation and sign-off flow (§III-D, Fig. 6): netlist cleanup →
//! SDP placement → DRC/LVS checks → parasitic extraction → post-layout
//! STA — the Design-Compiler + Innovus + PrimeTime loop of the paper.

use syndcim_layout::{check_drc, extract_wires, place, FloorplanConfig, Placement, WireEstimates};
use syndcim_netlist::{optimize, OptReport};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::{Sta, TimingReport, WireLoads};

use crate::assemble::{assemble, MacroNetlist};
use crate::design::DesignChoice;
use crate::error::CoreError;
use crate::spec::MacroSpec;

/// A fully implemented macro: netlist + layout + post-layout timing.
#[derive(Debug)]
pub struct ImplementedMacro {
    /// The (cleaned) macro netlist and metadata.
    pub mac: MacroNetlist,
    /// SDP placement result.
    pub placement: Placement,
    /// Extracted wire parasitics.
    pub wires: WireEstimates,
    /// Netlist-cleanup statistics.
    pub synth_report: OptReport,
    /// Post-layout timing at the spec supply.
    pub timing: TimingReport,
    /// The spec this macro implements.
    pub spec: MacroSpec,
}

impl ImplementedMacro {
    /// Die area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.placement.die_area_mm2()
    }

    /// Post-layout maximum frequency in MHz at an operating point.
    pub fn fmax_mhz(&self, lib: &CellLibrary, op: OperatingPoint) -> f64 {
        let sta =
            Sta::new(&self.mac.module, lib).expect("implemented macros are well-formed").with_wire_loads(
                WireLoads { cap_ff: self.wires.cap_ff.clone(), delay_ps: self.wires.delay_ps.clone() },
            );
        sta.fmax_mhz(op)
    }

    /// Post-layout timing report at an arbitrary period/corner.
    pub fn timing_at(&self, lib: &CellLibrary, period_ps: f64, op: OperatingPoint) -> TimingReport {
        let sta =
            Sta::new(&self.mac.module, lib).expect("implemented macros are well-formed").with_wire_loads(
                WireLoads { cap_ff: self.wires.cap_ff.clone(), delay_ps: self.wires.delay_ps.clone() },
            );
        sta.analyze_at(period_ps, op)
    }
}

/// Run the full implementation flow for one design choice.
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid, the netlist fails
/// validation, or the layout violates design rules.
pub fn implement(
    lib: &CellLibrary,
    spec: &MacroSpec,
    choice: &DesignChoice,
) -> Result<ImplementedMacro, CoreError> {
    spec.validate()?;
    let mut mac = assemble(lib, spec, choice);

    // "Synthesis": constant folding + dead-gate sweep over the generated
    // structure.
    let synth_report = optimize(&mut mac.module, lib);

    // SDP place-and-route + checks.
    let placement = place(&mac.module, lib, FloorplanConfig::default())?;
    check_drc(&mac.module, &placement)?;
    let wires = extract_wires(&mac.module, lib, &placement)?;

    // Post-layout sign-off at the spec corner.
    let sta = Sta::new(&mac.module, lib)?
        .with_wire_loads(WireLoads { cap_ff: wires.cap_ff.clone(), delay_ps: wires.delay_ps.clone() });
    let timing = sta.analyze_at(spec.mac_period_ps(), OperatingPoint::at_voltage(spec.vdd_v));

    Ok(ImplementedMacro { mac, placement, wires, synth_report, timing, spec: spec.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MacroSpec {
        MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        }
    }

    #[test]
    fn flow_produces_clean_layout_and_timing() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
        assert!(im.area_mm2() > 0.0);
        assert!(im.timing.max_delay_ps > 0.0);
        assert!(im.wires.total_wirelength_um > 0.0);
        // Post-layout fmax falls with voltage.
        let f09 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.9));
        let f07 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.7));
        assert!(f09 > f07);
    }

    #[test]
    fn post_layout_is_slower_than_pre_layout() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
        let pre = Sta::new(&im.mac.module, &lib).unwrap().analyze(1e6).max_delay_ps;
        let post = im.timing_at(&lib, 1e6, OperatingPoint::at_voltage(0.9)).max_delay_ps;
        assert!(post > pre, "wires must add delay: pre={pre} post={post}");
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let lib = CellLibrary::syn40();
        let mut spec = tiny_spec();
        spec.mcr = 3;
        assert!(implement(&lib, &spec, &DesignChoice::default()).is_err());
    }
}
