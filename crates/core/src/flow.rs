//! Implementation and sign-off flow (§III-D, Fig. 6): netlist cleanup →
//! SDP placement → DRC/LVS checks → parasitic extraction → post-layout
//! STA — the Design-Compiler + Innovus + PrimeTime loop of the paper.

use syndcim_ir::Lowering;
use syndcim_layout::{
    check_drc, extract_wires, place_with_symbols, FloorplanConfig, Placement, WireEstimates,
};
use syndcim_netlist::{optimize, OptReport};
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_sta::{Sta, TimingReport, WireLoads};
use syndcim_telemetry as telemetry;

/// The run report attached to every [`ImplementedMacro`]: the merged
/// telemetry span tree plus every counter/gauge/histogram value at the
/// end of the flow, snapshotted from `syndcim_telemetry`. Empty when
/// telemetry is off (`SYNDCIM_TRACE` unset); serialize with
/// [`syndcim_telemetry::Report::to_json`] (deterministic schema — no
/// wall-clock in structural fields) or render with
/// [`syndcim_telemetry::Report::render`].
pub type FlowReport = telemetry::Report;

use crate::assemble::{assemble, MacroNetlist};
use crate::compiled::CompiledMacro;
use crate::design::DesignChoice;
use crate::error::CoreError;
use crate::spec::MacroSpec;

/// Which static timing analyzer a sign-off query runs on (the timing
/// analogue of [`crate::eval::EvalBackend`]).
///
/// Both backends produce **bit-identical** reports — the compiled
/// program replays the reference analyzer's arithmetic over
/// struct-of-arrays buffers — so the choice is purely a speed/assurance
/// trade: `Compiled` amortizes one lowering across the hundreds of
/// `(V, f)` points a shmoo or search evaluates, `Reference` rebuilds
/// and walks the timing graph per query exactly as the seed flow did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaBackend {
    /// Engine-lowered [`syndcim_sta::CompiledSta`]: compile once per
    /// implemented macro, one SoA pass per operating point (default).
    #[default]
    Compiled,
    /// The reference graph-walking [`Sta`], rebuilt per query.
    Reference,
}

/// Which power analyzer a sign-off query runs on (the power analogue of
/// [`StaBackend`] and [`crate::eval::EvalBackend`], completing the
/// compiled trinity).
///
/// Both backends produce **bit-identical** reports — the compiled
/// program replays the reference analyzer's arithmetic over
/// struct-of-arrays columns (pinned by
/// `tests/power_compiled_differential.rs`) — so the choice is purely a
/// speed/assurance trade: `Compiled` amortizes one lowering across the
/// hundreds of `(V, f)` points a power shmoo evaluates, `Reference`
/// rebuilds and walks the module per query exactly as the seed flow
/// did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PowerBackend {
    /// IR-lowered [`syndcim_power::CompiledPower`]: compile once per
    /// implemented macro, one linear `toggles·column` pass per corner,
    /// corners batched over shared rate columns (default).
    #[default]
    Compiled,
    /// The reference module-walking [`syndcim_power::PowerAnalyzer`],
    /// rebuilt per query.
    Reference,
}

/// A fully implemented macro: netlist + layout + post-layout timing.
#[derive(Debug)]
pub struct ImplementedMacro {
    /// The (cleaned) macro netlist and metadata.
    pub mac: MacroNetlist,
    /// SDP placement result.
    pub placement: Placement,
    /// Extracted wire parasitics.
    pub wires: WireEstimates,
    /// Netlist-cleanup statistics.
    pub synth_report: OptReport,
    /// Post-layout timing at the spec supply.
    pub timing: TimingReport,
    /// The spec this macro implements.
    pub spec: MacroSpec,
    /// The compiled analysis bundle built at sign-off from **one**
    /// netlist lowering: the simulation program, the wire-annotated
    /// timing program and the wire-annotated power program, reused by
    /// every later query (evaluation, shmoo grids, `fmax` sweeps,
    /// power annotation).
    pub compiled: CompiledMacro,
    /// Telemetry snapshot taken when the flow finished: phase span tree
    /// (`implement.assemble` … `implement.signoff`), compile-time
    /// counters and retained-bytes gauges. Empty when telemetry is off.
    pub report: FlowReport,
}

impl ImplementedMacro {
    /// Die area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.placement.die_area_mm2()
    }

    /// Build the reference analyzer over this macro's netlist and
    /// extracted wires (the seed's per-query path).
    fn reference_sta<'a>(&'a self, lib: &'a CellLibrary) -> Sta<'a> {
        Sta::new(&self.mac.module, lib).expect("implemented macros are well-formed").with_wire_loads(
            WireLoads { cap_ff: self.wires.cap_ff.clone(), delay_ps: self.wires.delay_ps.clone() },
        )
    }

    /// Post-layout maximum frequency in MHz at an operating point
    /// (compiled fast path; see [`ImplementedMacro::fmax_mhz_with`]).
    pub fn fmax_mhz(&self, lib: &CellLibrary, op: OperatingPoint) -> f64 {
        self.fmax_mhz_with(lib, op, StaBackend::default())
    }

    /// [`ImplementedMacro::fmax_mhz`] on an explicit STA backend. Both
    /// backends return bit-identical values.
    pub fn fmax_mhz_with(&self, lib: &CellLibrary, op: OperatingPoint, backend: StaBackend) -> f64 {
        match backend {
            StaBackend::Compiled => self.compiled.sta.fmax_mhz(op),
            StaBackend::Reference => self.reference_sta(lib).fmax_mhz(op),
        }
    }

    /// Post-layout timing report at an arbitrary period/corner
    /// (compiled fast path).
    pub fn timing_at(&self, lib: &CellLibrary, period_ps: f64, op: OperatingPoint) -> TimingReport {
        self.timing_at_with(lib, period_ps, op, StaBackend::default())
    }

    /// [`ImplementedMacro::timing_at`] on an explicit STA backend.
    pub fn timing_at_with(
        &self,
        lib: &CellLibrary,
        period_ps: f64,
        op: OperatingPoint,
        backend: StaBackend,
    ) -> TimingReport {
        match backend {
            StaBackend::Compiled => self.compiled.sta.analyze_at(period_ps, op),
            StaBackend::Reference => self.reference_sta(lib).analyze_at(period_ps, op),
        }
    }
}

/// Run the full implementation flow for one design choice, signing off
/// timing on the compiled STA (see [`implement_with`] for backend
/// selection).
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid, the netlist fails
/// validation, or the layout violates design rules.
pub fn implement(
    lib: &CellLibrary,
    spec: &MacroSpec,
    choice: &DesignChoice,
) -> Result<ImplementedMacro, CoreError> {
    implement_with(lib, spec, choice, StaBackend::default())
}

/// [`implement`] with an explicit sign-off STA backend.
///
/// The compiled analysis bundle is built either way (it is part of the
/// returned macro); `backend` selects which analyzer produces the
/// recorded sign-off [`TimingReport`]. The two are bit-identical — the
/// knob exists so differential tests and paranoid sign-off runs can pin
/// the fast path against the reference.
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid, the netlist fails
/// validation, or the layout violates design rules.
pub fn implement_with(
    lib: &CellLibrary,
    spec: &MacroSpec,
    choice: &DesignChoice,
    backend: StaBackend,
) -> Result<ImplementedMacro, CoreError> {
    telemetry::span!("implement");
    spec.validate()?;
    let mut mac = {
        telemetry::span!("implement.assemble");
        assemble(lib, spec, choice)
    };

    // "Synthesis": constant folding + dead-gate sweep over the generated
    // structure.
    let synth_report = {
        telemetry::span!("implement.optimize");
        optimize(&mut mac.module, lib)
    };

    // Lower the cleaned netlist exactly once, *before* layout: the
    // placer resolves floorplan zones from the lowering's interned
    // symbol table, and sign-off compiles its analysis programs from
    // the same IR afterwards.
    let lowering = {
        telemetry::span!("implement.lower");
        Lowering::validated(&mac.module, lib)?
    };

    // SDP place-and-route + checks.
    let placement = {
        telemetry::span!("implement.place");
        place_with_symbols(&mac.module, lib, FloorplanConfig::default(), lowering.symbols())?
    };
    {
        telemetry::span!("implement.drc");
        check_drc(&mac.module, &placement)?;
    }
    let wires = {
        telemetry::span!("implement.wires");
        extract_wires(&mac.module, lib, &placement)?
    };

    // Post-layout sign-off at the spec corner: lower the wire-annotated
    // netlist exactly once and compile all three analysis programs
    // (simulation, timing, power) from that shared IR; the bundle stays
    // with the macro so evaluation, shmoo grids, fmax sweeps and power
    // annotation never re-walk the netlist.
    let wire_loads = WireLoads { cap_ff: wires.cap_ff.clone(), delay_ps: wires.delay_ps.clone() };
    let compiled = {
        telemetry::span!("implement.compile");
        CompiledMacro::compile_with_lowering(&mac.module, lib, &wire_loads, lowering)
    };
    let (period, op) = (spec.mac_period_ps(), OperatingPoint::at_voltage(spec.vdd_v));
    let timing = {
        telemetry::span!("implement.signoff");
        match backend {
            StaBackend::Compiled => compiled.sta.analyze_at(period, op),
            // The reference arm reuses the bundle's lowering (a clone is
            // a memcpy, not a walk) so the one-lowering contract holds
            // on both backends.
            StaBackend::Reference => Sta::with_lowering(&mac.module, lib, compiled.lowering.clone())
                .with_wire_loads(wire_loads)
                .analyze_at(period, op),
        }
    };

    let report = telemetry::snapshot();
    Ok(ImplementedMacro { mac, placement, wires, synth_report, timing, spec: spec.clone(), compiled, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MacroSpec {
        MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        }
    }

    #[test]
    fn flow_produces_clean_layout_and_timing() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
        assert!(im.area_mm2() > 0.0);
        assert!(im.timing.max_delay_ps > 0.0);
        assert!(im.wires.total_wirelength_um > 0.0);
        // Post-layout fmax falls with voltage.
        let f09 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.9));
        let f07 = im.fmax_mhz(&lib, OperatingPoint::at_voltage(0.7));
        assert!(f09 > f07);
    }

    #[test]
    fn post_layout_is_slower_than_pre_layout() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
        let pre = Sta::new(&im.mac.module, &lib).unwrap().analyze(1e6).max_delay_ps;
        let post = im.timing_at(&lib, 1e6, OperatingPoint::at_voltage(0.9)).max_delay_ps;
        assert!(post > pre, "wires must add delay: pre={pre} post={post}");
    }

    /// Compiled and reference sign-off must record bit-identical
    /// timing, and the per-query helpers must agree across backends.
    #[test]
    fn sta_backends_sign_off_identically() {
        let lib = CellLibrary::syn40();
        let compiled = implement(&lib, &tiny_spec(), &DesignChoice::default()).unwrap();
        let reference =
            implement_with(&lib, &tiny_spec(), &DesignChoice::default(), StaBackend::Reference).unwrap();
        assert_eq!(compiled.timing.max_delay_ps, reference.timing.max_delay_ps);
        assert_eq!(compiled.timing.wns_ps, reference.timing.wns_ps);
        assert_eq!(compiled.timing.arrival_ps, reference.timing.arrival_ps);
        assert_eq!(compiled.timing.critical_path, reference.timing.critical_path);
        for v in [0.7, 0.9, 1.2] {
            let op = OperatingPoint::at_voltage(v);
            assert_eq!(
                compiled.fmax_mhz(&lib, op),
                compiled.fmax_mhz_with(&lib, op, StaBackend::Reference),
                "fmax backends must be bit-identical at {v} V"
            );
            let fast = compiled.timing_at(&lib, 1_000.0, op);
            let slow = compiled.timing_at_with(&lib, 1_000.0, op, StaBackend::Reference);
            assert_eq!(fast.max_delay_ps, slow.max_delay_ps);
            assert_eq!(fast.critical_path, slow.critical_path);
        }
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let lib = CellLibrary::syn40();
        let mut spec = tiny_spec();
        spec.mcr = 3;
        assert!(implement(&lib, &spec, &DesignChoice::default()).is_err());
    }
}
