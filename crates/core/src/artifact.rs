//! Persistent compiled-macro artifacts: `CompiledMacro::save` / `load`.
//!
//! This module assembles the per-crate `.scim` section codecs into a
//! whole-bundle container: one [`ArtifactMeta`] section, the shared
//! [`Symbols`] arena, the [`syndcim_ir::Lowering`] tables, and the three compiled
//! programs, in canonical section order. The division of labour is the
//! same as at compile time — each crate owns its own program's bytes,
//! `core` owns the bundle.
//!
//! The central invariant is that **load is wiring-only**: reading an
//! artifact re-validates and re-attaches tables but never re-lowers,
//! re-levelizes or re-interns anything — `Lowering::builds()` stays
//! flat across a [`CompiledMacro::load`], and every query answered from
//! a loaded bundle (`fmax_mhz`, power reports, engine toggle tables) is
//! bit-identical to the in-memory compile that produced the file.
//! Pinned by `tests/artifact_roundtrip.rs`; the adversarial decode
//! paths by `tests/artifact_corruption.rs`.

use std::io::Write as _;
use std::path::Path;

use crate::compiled::CompiledMacro;
use syndcim_ir::artifact::{ArtifactError, ArtifactMeta, ArtifactReader, ArtifactWriter, SectionId};
use syndcim_ir::{artifact as ir_artifact, Symbols};

/// The `format` string stored in every artifact's meta section.
pub const ARTIFACT_FORMAT: &str = "syndcim-artifact";

impl CompiledMacro {
    /// Serialize the whole bundle into `.scim` container bytes.
    ///
    /// Serialization is deterministic — no timestamps, no host state —
    /// so the same compile always produces byte-identical output
    /// (`syndcim verify` diffs a file against a fresh compile
    /// byte-for-byte, and save→load→save is a fixpoint).
    pub fn save_to_vec(&self) -> Result<Vec<u8>, ArtifactError> {
        let symbols = self.lowering.symbols();
        let meta = ArtifactMeta {
            format: ARTIFACT_FORMAT.to_string(),
            producer: concat!("syndcim ", env!("CARGO_PKG_VERSION")).to_string(),
            net_count: symbols.net_count() as u64,
            inst_count: symbols.inst_count() as u64,
        };
        let mut w = ArtifactWriter::new(Vec::new(), SectionId::ALL.len() as u32)?;
        w.write_section(SectionId::Meta, meta.encode())?;
        w.write_section(SectionId::Symbols, ir_artifact::encode_symbols(symbols))?;
        w.write_section(SectionId::Lowering, ir_artifact::encode_lowering(&self.lowering))?;
        w.write_section(SectionId::Program, syndcim_engine::artifact::encode_program(&self.program))?;
        w.write_section(SectionId::Sta, syndcim_sta::artifact::encode_sta(&self.sta))?;
        w.write_section(SectionId::Power, syndcim_power::artifact::encode_power(&self.power))?;
        w.finish()
    }

    /// Serialize the bundle to a `.scim` file at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let bytes = self.save_to_vec()?;
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        f.flush()?;
        Ok(())
    }

    /// Deserialize a bundle from `.scim` container bytes.
    ///
    /// Decoding validates everything — framing, checksums, and every
    /// cross-table index — and is *wiring-only*: no lowering, no
    /// levelization, no interning runs; the three programs come back
    /// sharing one freshly decoded [`Symbols`] arena exactly as the
    /// in-memory compile shares the lowering's.
    pub fn load_from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let reader = ArtifactReader::parse(bytes)?;
        let meta = read_meta(&reader)?;

        let mut r = reader.reader(SectionId::Symbols)?;
        let symbols = ir_artifact::decode_symbols(&mut r)?;
        r.finish()?;
        if symbols.net_count() as u64 != meta.net_count || symbols.inst_count() as u64 != meta.inst_count {
            return Err(ArtifactError::Malformed {
                section: SectionId::Symbols,
                what: format!(
                    "symbol tables ({} nets, {} instances) disagree with meta ({}, {})",
                    symbols.net_count(),
                    symbols.inst_count(),
                    meta.net_count,
                    meta.inst_count
                ),
            });
        }

        let mut r = reader.reader(SectionId::Lowering)?;
        let lowering = ir_artifact::decode_lowering(&mut r, &symbols)?;
        r.finish()?;

        let mut r = reader.reader(SectionId::Program)?;
        let program = syndcim_engine::artifact::decode_program(&mut r, &symbols)?;
        r.finish()?;

        let mut r = reader.reader(SectionId::Sta)?;
        let sta = syndcim_sta::artifact::decode_sta(&mut r, &symbols)?;
        r.finish()?;

        let mut r = reader.reader(SectionId::Power)?;
        let power = syndcim_power::artifact::decode_power(&mut r, &symbols)?;
        r.finish()?;

        Ok(CompiledMacro { lowering, program, sta, power })
    }

    /// Load a bundle from a `.scim` file at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        Self::load_from_bytes(&bytes)
    }
}

/// Read and sanity-check the meta section of a parsed container.
pub fn read_meta(reader: &ArtifactReader<'_>) -> Result<ArtifactMeta, ArtifactError> {
    let mut r = reader.reader(SectionId::Meta)?;
    let meta = ArtifactMeta::decode(&mut r)?;
    r.finish()?;
    if meta.format != ARTIFACT_FORMAT {
        return Err(ArtifactError::Malformed {
            section: SectionId::Meta,
            what: format!("unknown format `{}` (expected `{ARTIFACT_FORMAT}`)", meta.format),
        });
    }
    Ok(meta)
}

/// The decoded [`Symbols`] of an already-parsed container — shared by
/// the CLI's `info` command, which wants name-layer statistics without
/// decoding the full bundle.
pub fn read_symbols(reader: &ArtifactReader<'_>) -> Result<Symbols, ArtifactError> {
    let mut r = reader.reader(SectionId::Symbols)?;
    let symbols = ir_artifact::decode_symbols(&mut r)?;
    r.finish()?;
    Ok(symbols)
}

/// Retained in-memory footprint of a loaded bundle in bytes (symbol
/// arena counted once): what the CLI's `info` command reports alongside
/// the on-disk section sizes.
pub fn retained_bytes(cm: &CompiledMacro) -> usize {
    // Each program's own retained_bytes() counts its `Symbols` share;
    // the arena is one shared allocation, so count it exactly once.
    let syms_once = cm.lowering.symbols().heap_bytes();
    cm.program.retained_bytes() + cm.sta.retained_bytes() + cm.power.retained_bytes() - 2 * syms_once
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;
    use crate::spec::MacroSpec;
    use crate::DesignChoice;
    use syndcim_pdk::{CellLibrary, OperatingPoint};
    use syndcim_sta::WireLoads;

    #[test]
    fn save_load_save_is_a_byte_fixpoint() {
        let lib = CellLibrary::syn40();
        let spec = MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        };
        let mac = assemble(&lib, &spec, &DesignChoice::default());
        let cm = CompiledMacro::compile(&mac.module, &lib, &WireLoads::zero(mac.module.net_count())).unwrap();
        let bytes = cm.save_to_vec().unwrap();
        let loaded = CompiledMacro::load_from_bytes(&bytes).unwrap();
        assert_eq!(loaded.save_to_vec().unwrap(), bytes, "save→load→save must be byte-identical");

        let op = OperatingPoint::at_voltage(0.9);
        assert_eq!(loaded.sta.fmax_mhz(op), cm.sta.fmax_mhz(op));
    }
}
