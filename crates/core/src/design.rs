//! Design points: subcircuit choices + PPA estimates.

use syndcim_subckt::{AdderTreeKind, BitcellKind, MultMuxKind};

/// The complete set of subcircuit/architecture choices defining one
/// candidate macro — the decision variables of the multi-spec-oriented
/// search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignChoice {
    /// Bitcell style.
    pub bitcell: BitcellKind,
    /// Multiplier/multiplexer style.
    pub multmux: MultMuxKind,
    /// Adder-tree topology.
    pub tree_kind: AdderTreeKind,
    /// Apply the carry-reorder connection optimization.
    pub carry_reorder: bool,
    /// Retimed tree: the pipeline register moves in front of the final
    /// RCA stage (tree emits its carry-save pair; the RCA runs in the
    /// S&A stage). Requires `pipe_tree_sa`.
    pub tree_retimed: bool,
    /// Column split factor (1 = no split; 2/4 = trees over H/2 / H/4
    /// with recombination adders).
    pub column_split: usize,
    /// Pipeline register between adder tree and S&A.
    pub pipe_tree_sa: bool,
    /// OFU negate stage retimed into the S&A pipeline stage.
    pub ofu_negate_retimed: bool,
    /// Extra pipeline register bank inside the OFU.
    pub ofu_extra_pipe: bool,
    /// Pipeline register inside the FP alignment comparator tree.
    pub align_pipelined: bool,
}

impl Default for DesignChoice {
    /// The cheapest starting point of the search: compressor CSA,
    /// standard TG+NOR sites, one pipeline stage, no timing fixes.
    fn default() -> Self {
        DesignChoice {
            bitcell: BitcellKind::Sram6T2T,
            multmux: MultMuxKind::TgNor,
            tree_kind: AdderTreeKind::CompressorCsa,
            carry_reorder: true,
            tree_retimed: false,
            column_split: 1,
            pipe_tree_sa: true,
            ofu_negate_retimed: false,
            ofu_extra_pipe: false,
            align_pipelined: false,
        }
    }
}

impl DesignChoice {
    /// Pipeline stages between activation entry and channel output:
    /// tree/psum register (optional) + S&A + OFU extra stage (optional).
    pub fn pipeline_stages(&self) -> usize {
        1 + usize::from(self.pipe_tree_sa) + usize::from(self.ofu_extra_pipe)
    }

    /// Short human-readable label for plots and tables.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}/{}", self.bitcell, self.multmux, self.tree_kind);
        if self.tree_retimed {
            s.push_str("+retime");
        }
        if self.column_split > 1 {
            s.push_str(&format!("+split{}", self.column_split));
        }
        if !self.pipe_tree_sa {
            s.push_str("+merged");
        }
        if self.ofu_extra_pipe {
            s.push_str("+ofupipe");
        }
        s
    }
}

/// Architecture-level PPA estimate of a design point (from the SCL
/// lookup tables; the implementation flow later verifies it with full
/// STA/power on the assembled netlist).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpaEstimate {
    /// Worst stage delay in ps at the nominal corner.
    pub critical_delay_ps: f64,
    /// Whether every stage meets the spec period.
    pub timing_met: bool,
    /// Estimated total power at the spec frequency/voltage, in µW.
    pub power_uw: f64,
    /// Estimated macro area in µm² (cell area / placement utilization).
    pub area_um2: f64,
    /// Pass latency in cycles (pipeline depth + serial bits).
    pub latency_cycles: usize,
    /// Peak throughput at 1b×1b in TOPS at the spec frequency.
    pub tops_1b: f64,
}

/// One candidate design: choices + estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The subcircuit/architecture choices.
    pub choice: DesignChoice,
    /// The SCL-based estimate.
    pub est: PpaEstimate,
}

impl DesignPoint {
    /// Scalar preference score (lower is better) under PPA weights.
    pub fn score(&self, ppa: &crate::spec::PpaWeights) -> f64 {
        // Normalize by plausible scales so the weights act as intended.
        ppa.power * self.est.power_uw / 1e4
            + ppa.area * self.est.area_um2 / 1e5
            + ppa.latency * self.est.latency_cycles as f64 / 16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PpaWeights;

    #[test]
    fn pipeline_stage_counting() {
        let mut c = DesignChoice::default();
        assert_eq!(c.pipeline_stages(), 2);
        c.pipe_tree_sa = false;
        assert_eq!(c.pipeline_stages(), 1);
        c.ofu_extra_pipe = true;
        assert_eq!(c.pipeline_stages(), 2);
    }

    #[test]
    fn labels_are_descriptive() {
        let c = DesignChoice { tree_retimed: true, column_split: 2, ..DesignChoice::default() };
        let l = c.label();
        assert!(l.contains("retime") && l.contains("split2"), "{l}");
    }

    #[test]
    fn score_follows_weights() {
        let cheap_power = DesignPoint {
            choice: DesignChoice::default(),
            est: PpaEstimate {
                power_uw: 100.0,
                area_um2: 100_000.0,
                latency_cycles: 10,
                ..Default::default()
            },
        };
        let cheap_area = DesignPoint {
            choice: DesignChoice::default(),
            est: PpaEstimate {
                power_uw: 10_000.0,
                area_um2: 1_000.0,
                latency_cycles: 10,
                ..Default::default()
            },
        };
        let e = PpaWeights::energy_leaning();
        let a = PpaWeights::area_leaning();
        assert!(cheap_power.score(&e) < cheap_area.score(&e));
        assert!(cheap_area.score(&a) < cheap_power.score(&a));
    }
}
