//! Post-implementation evaluation: run real MAC workloads on the
//! implemented macro, verify every output against the golden model, and
//! measure power/efficiency from the observed switching activity —
//! the "post-layout simulation" sign-off of the paper, plus the
//! measurement conditions of its evaluation section.

use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::{tops_per_mm2, tops_per_w, MacThroughput, PowerAnalyzer, PowerReport};
use syndcim_sim::golden::{bit_serial_schedule, fp_align, int_dot, twos_complement_bit, DcimChannelTrace};
use syndcim_sim::{FpValue, Precision, Simulator};

use crate::error::CoreError;
use crate::flow::ImplementedMacro;

/// Result of one measured workload.
#[derive(Debug, Clone)]
pub struct MacMeasurement {
    /// Channel outputs checked against the golden model.
    pub checked_outputs: usize,
    /// Power at the measurement frequency and corner.
    pub power: PowerReport,
    /// Throughput in TOPS at the measured precision.
    pub tops: f64,
    /// Energy efficiency in TOPS/W at the measured precision.
    pub tops_per_w: f64,
    /// Energy efficiency normalized to 1b×1b (the paper's Table II
    /// convention).
    pub tops_per_w_1b: f64,
    /// Area efficiency normalized to 1b×1b, in TOPS/mm².
    pub tops_per_mm2_1b: f64,
    /// Energy per MAC in femtojoules at the measured precision.
    pub energy_per_mac_fj: f64,
}

/// Measure an integer MAC workload at `pa`-bit precision (activations
/// and weights both `pa` bits, `pa` a power of two ≤ the macro's
/// configured precision).
///
/// `passes` holds one activation vector (length `h`) per pass;
/// `weights[ch]` holds the `h` signed weights of output channel `ch`
/// (`ch < w / pa`). Weights are preloaded into bank 0.
///
/// Every channel output of every pass is compared against
/// [`DcimChannelTrace`]; power comes from the observed toggles.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any output disagrees
/// with the golden model.
///
/// # Panics
///
/// Panics on dimension mismatches (wrong vector lengths, `pa` larger
/// than the macro supports).
pub fn measure_int(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
    op: OperatingPoint,
    f_mhz: f64,
) -> Result<MacMeasurement, CoreError> {
    let mac = &im.mac;
    assert!(pa.is_power_of_two() && pa <= mac.w_bits, "unsupported precision INT{pa}");
    let channels = mac.w / pa as usize;
    assert_eq!(weights.len(), channels, "need one weight vector per channel");
    assert!(weights.iter().all(|w| w.len() == mac.h));
    assert!(passes.iter().all(|a| a.len() == mac.h));

    let mut sim = Simulator::new(&mac.module, lib)?;
    preload_weights(&mut sim, mac, pa, weights);
    configure_precision(&mut sim, mac, pa);
    quiesce(&mut sim, mac);
    sim.reset_activity();

    let mut checked = 0usize;
    for acts in passes {
        run_pass(&mut sim, mac, pa, acts);
        for (ch, wvec) in weights.iter().enumerate() {
            let got = read_channel(&sim, mac, pa, ch);
            let want = DcimChannelTrace::run(acts, wvec, pa, pa).output;
            if got != want {
                return Err(CoreError::FunctionalMismatch { channel: ch, got, want });
            }
            checked += 1;
        }
    }

    let measurement = finish_measurement(im, lib, &sim, pa, pa, passes.len(), op, f_mhz);
    Ok(MacMeasurement { checked_outputs: checked, ..measurement })
}

/// Measure an FP MAC workload in the macro's configured FP format. FP
/// activations go through the on-macro alignment unit; FP weights are
/// pre-aligned (as the paper's flow stores them) and written as signed
/// mantissas across `next_power_of_two(man+2)` columns.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if the hardware disagrees
/// with [`syndcim_sim::golden::fp_dot`] semantics.
///
/// # Panics
///
/// Panics if the macro was built without an FP precision.
pub fn measure_fp(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    passes: &[Vec<FpValue>],
    weights: &[Vec<FpValue>],
    op: OperatingPoint,
    f_mhz: f64,
) -> Result<MacMeasurement, CoreError> {
    let mac = &im.mac;
    let fmt = mac.fp.expect("macro has no FP alignment unit");
    let pa = fmt.aligned_bits();
    let pw = pa.next_power_of_two().max(2);
    let channels = mac.w / pw as usize;
    assert_eq!(weights.len(), channels);

    // Pre-align weights per channel (offline, like the paper's flow).
    let aligned_w: Vec<Vec<i64>> = weights.iter().map(|wv| fp_align(wv, fmt).0).collect();

    let mut sim = Simulator::new(&mac.module, lib)?;
    preload_weights(&mut sim, mac, pw, &aligned_w);
    configure_precision(&mut sim, mac, pw);
    quiesce(&mut sim, mac);
    sim.reset_activity();

    let mut checked = 0usize;
    for acts in passes {
        // Feed the FP operands through the alignment unit (one cycle to
        // its output register).
        for (r, v) in acts.iter().enumerate() {
            sim.set(&format!("fp_s{r}"), v.sign);
            sim.set_bus(&format!("fp_e{r}"), fmt.exp_bits, v.exp_field as i64);
            sim.set_bus(&format!("fp_m{r}"), fmt.man_bits, v.man_field as i64);
        }
        sim.step();
        if mac.choice.align_pipelined {
            // Mid-tree and e_max register banks add two cycles.
            sim.step();
            sim.step();
        }
        let aligned_a: Vec<i64> = (0..mac.h).map(|r| sim.get_bus_signed(&format!("al{r}"), pa)).collect();
        // The on-macro alignment must match the golden model bit-exactly.
        let (golden_a, _emax) = fp_align(acts, fmt);
        if aligned_a != golden_a {
            return Err(CoreError::FunctionalMismatch {
                channel: usize::MAX,
                got: aligned_a[0],
                want: golden_a[0],
            });
        }
        // Bit-serial MAC over the aligned mantissas.
        run_pass(&mut sim, mac, pa, &aligned_a);
        for (ch, wv) in aligned_w.iter().enumerate() {
            let got = read_channel_at(&sim, mac, pa, pw, ch);
            let want = int_dot(&aligned_a, wv);
            if got != want {
                return Err(CoreError::FunctionalMismatch { channel: ch, got, want });
            }
            checked += 1;
        }
    }

    let measurement = finish_measurement(im, lib, &sim, pa, pw, passes.len(), op, f_mhz);
    Ok(MacMeasurement { checked_outputs: checked, ..measurement })
}

/// Result of a weight-update measurement.
#[derive(Debug, Clone)]
pub struct WeightUpdateMeasurement {
    /// Energy per written weight bit, in fJ.
    pub energy_per_bit_fj: f64,
    /// Write bandwidth at the measurement frequency, in Gb/s.
    pub bandwidth_gbps: f64,
    /// Bits written during the measurement.
    pub bits_written: usize,
}

/// Measure the weight-update path: stream random weights into every
/// (bank, row) through the real write port (BL drivers + address
/// decoder + bitcell capture) and account the switching energy — the
/// dimension-dependent driver cost the paper attributes to WL/BL
/// drivers, and the per-bitcell write cost that differentiates the cell
/// variants.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any bitcell fails to
/// capture its written value.
pub fn measure_weight_update(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    op: OperatingPoint,
    f_mhz: f64,
    seed: u64,
) -> Result<WeightUpdateMeasurement, CoreError> {
    use rand_like::next_bit;
    let mac = &im.mac;
    let mut sim = Simulator::new(&mac.module, lib)?;
    configure_precision(&mut sim, mac, mac.w_bits);
    quiesce(&mut sim, mac);
    sim.reset_activity();

    let mut state = seed | 1;
    let mut expect: Vec<Vec<Vec<bool>>> = vec![vec![vec![false; mac.w]; mac.h]; mac.mcr];
    for bank in 0..mac.mcr {
        for row in 0..mac.h {
            sim.set("wr_en", true);
            sim.set_bus("wr_row", mac.h.trailing_zeros(), row as i64);
            if mac.mcr > 1 {
                sim.set_bus("wr_bank", mac.mcr.trailing_zeros(), bank as i64);
            }
            for c in 0..mac.w {
                let bit = next_bit(&mut state);
                expect[bank][row][c] = bit;
                sim.set(&format!("wbl[{c}]"), bit);
            }
            sim.step();
        }
    }
    sim.set("wr_en", false);
    let cycles = sim.cycles();

    // Verify every bitcell captured its bit.
    for bc in &mac.bitcells {
        let want = expect[bc.bank][bc.row][bc.col];
        if sim.state_of(bc.inst) != want {
            return Err(CoreError::FunctionalMismatch {
                channel: bc.col,
                got: sim.state_of(bc.inst) as i64,
                want: want as i64,
            });
        }
    }

    let analyzer = PowerAnalyzer::with_wire_caps(&mac.module, lib, &im.wires.cap_ff)?;
    let power = analyzer.from_activity(sim.toggle_table(), cycles, f_mhz, op);
    let bits = mac.w * mac.h * mac.mcr;
    let total_energy_fj = power.energy_per_cycle_pj * 1000.0 * cycles as f64;
    Ok(WeightUpdateMeasurement {
        energy_per_bit_fj: total_energy_fj / bits as f64,
        bandwidth_gbps: mac.w as f64 * f_mhz * 1e6 / 1e9,
        bits_written: bits,
    })
}

/// Tiny xorshift bit source (keeps `rand` out of the library API).
mod rand_like {
    pub fn next_bit(state: &mut u64) -> bool {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state & 1 == 1
    }
}

fn preload_weights(sim: &mut Simulator<'_>, mac: &crate::assemble::MacroNetlist, pw: u32, weights: &[Vec<i64>]) {
    for bc in &mac.bitcells {
        if bc.bank != 0 {
            continue;
        }
        let ch = bc.col / pw as usize;
        let j = (bc.col % pw as usize) as u32;
        if ch < weights.len() {
            let bit = twos_complement_bit(weights[ch][bc.row], pw, j);
            sim.force_state(bc.inst, bit);
        }
    }
}

fn configure_precision(sim: &mut Simulator<'_>, mac: &crate::assemble::MacroNetlist, pw: u32) {
    let level = pw.trailing_zeros() as usize;
    for k in 0..=(mac.w_bits.trailing_zeros() as usize) {
        sim.set(&format!("prec[{k}]"), k == level);
    }
    // Bank 0 selected; write interface idle.
    for k in 0..mac.mcr.trailing_zeros() as usize {
        sim.set(&format!("bank_sel[{k}]"), false);
    }
    sim.set("wr_en", false);
}

fn quiesce(sim: &mut Simulator<'_>, mac: &crate::assemble::MacroNetlist) {
    for r in 0..mac.h {
        sim.set(&format!("act[{r}]"), false);
    }
    sim.set("neg", false);
    sim.set("clear", false);
    sim.step();
    sim.step();
}

/// Drive one bit-serial pass of `pa`-bit activations and leave the
/// accumulators holding the completed pass.
fn run_pass(sim: &mut Simulator<'_>, mac: &crate::assemble::MacroNetlist, pa: u32, acts: &[i64]) {
    let depth = mac.mac_pipeline_depth as u32;
    let schedule = bit_serial_schedule(acts, pa);
    let total = pa + depth + u32::from(mac.choice.ofu_extra_pipe);
    for cycle in 0..total {
        // Activation bits enter on cycles 0..pa.
        for (r, _) in acts.iter().enumerate() {
            let bit = if cycle < pa { schedule[cycle as usize][r] } else { false };
            sim.set(&format!("act[{r}]"), bit);
        }
        // S&A controls are aligned to the psum arrival (delayed by the
        // pipeline registers between tree and accumulator).
        sim.set("clear", cycle == depth);
        sim.set("neg", cycle == pa - 1 + depth);
        sim.step();
    }
    sim.set("neg", false);
}

fn read_channel(sim: &Simulator<'_>, mac: &crate::assemble::MacroNetlist, pa: u32, ch: usize) -> i64 {
    read_channel_at(sim, mac, pa, pa, ch)
}

/// Read channel `ch` fused over `pw` columns after a `pa`-bit pass. The
/// S&A places results at a fixed offset for the macro's full serial
/// width, so shorter passes come out scaled by `2^(n−pa)`.
fn read_channel_at(sim: &Simulator<'_>, mac: &crate::assemble::MacroNetlist, pa: u32, pw: u32, ch: usize) -> i64 {
    let level = pw.trailing_zeros() as usize;
    let per_group = (mac.w_bits / pw) as usize;
    let g = ch / per_group;
    let i = ch % per_group;
    let width = mac.output_width(level) as u32;
    let raw = sim.get_bus_signed(&mac.output_port(g, level, i), width);
    let scale_shift = mac.act_bits - pa;
    debug_assert_eq!(
        raw & ((1 << scale_shift) - 1),
        0,
        "low bits below the serial offset must be zero"
    );
    raw >> scale_shift
}

#[allow(clippy::too_many_arguments)]
fn finish_measurement(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    sim: &Simulator<'_>,
    pa: u32,
    pw: u32,
    passes: usize,
    op: OperatingPoint,
    f_mhz: f64,
) -> MacMeasurement {
    let mac = &im.mac;
    let pa_prec = Precision::Int(pa);
    let pw_prec = Precision::Int(pw);
    let analyzer = PowerAnalyzer::with_wire_caps(&mac.module, lib, &im.wires.cap_ff)
        .expect("implemented macros are well-formed");
    let power = analyzer.from_activity(sim.toggle_table(), sim.cycles().max(1), f_mhz, op);

    let tput = MacThroughput { h: mac.h, w: mac.w, act: pa_prec, weight: pw_prec };
    let tops = tput.tops(f_mhz);
    let tops_1b = tput.tops_1b(f_mhz);
    let total_uw = power.total_uw();
    let macs_per_sec = tput.macs_per_pass() / tput.cycles_per_pass() * f_mhz * 1e6;
    let energy_per_mac_fj = total_uw * 1e-6 / macs_per_sec * 1e15;
    let _ = passes;
    MacMeasurement {
        checked_outputs: 0,
        power,
        tops,
        tops_per_w: tops_per_w(tops, total_uw),
        tops_per_w_1b: tops_per_w(tops_1b, total_uw),
        tops_per_mm2_1b: tops_per_mm2(tops_1b, im.placement.die_area_um2()),
        energy_per_mac_fj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignChoice;
    use crate::flow::implement;
    use crate::spec::MacroSpec;
    use syndcim_sim::vectors::{random_ints, seeded_rng, sparse_ints};
    use syndcim_sim::FpFormat;

    fn spec_int() -> MacroSpec {
        MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        }
    }

    #[test]
    fn int4_and_int2_and_int1_all_verify() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(5);
        for pa in [4u32, 2, 1] {
            let channels = 8 / pa as usize;
            let weights: Vec<Vec<i64>> = (0..channels).map(|_| random_ints(&mut rng, 8, pa)).collect();
            let passes: Vec<Vec<i64>> = (0..4).map(|_| random_ints(&mut rng, 8, pa)).collect();
            let m = measure_int(&im, &lib, pa, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0)
                .unwrap_or_else(|e| panic!("INT{pa}: {e}"));
            assert_eq!(m.checked_outputs, channels * 4);
            assert!(m.power.total_uw() > 0.0);
            assert!(m.tops > 0.0 && m.tops_per_w_1b > 0.0);
        }
    }

    #[test]
    fn retimed_and_split_macros_also_verify() {
        let lib = CellLibrary::syn40();
        let mut rng = seeded_rng(7);
        for choice in [
            DesignChoice { tree_retimed: true, ..DesignChoice::default() },
            DesignChoice { column_split: 2, ..DesignChoice::default() },
            DesignChoice { pipe_tree_sa: false, ..DesignChoice::default() },
            DesignChoice { ofu_negate_retimed: true, ..DesignChoice::default() },
            DesignChoice { ofu_extra_pipe: true, ..DesignChoice::default() },
        ] {
            let im = implement(&lib, &spec_int(), &choice).unwrap();
            let weights: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
            let passes: Vec<Vec<i64>> = (0..3).map(|_| random_ints(&mut rng, 8, 4)).collect();
            measure_int(&im, &lib, 4, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0)
                .unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn sparsity_reduces_power() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(11);
        let dense_w: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let dense_a: Vec<Vec<i64>> = (0..6).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let sparse_w: Vec<Vec<i64>> = (0..2).map(|_| sparse_ints(&mut rng, 8, 4, 0.5)).collect();
        let sparse_a: Vec<Vec<i64>> =
            (0..6).map(|_| syndcim_sim::vectors::ints_with_bit_density(&mut rng, 8, 4, 0.125)).collect();
        let op = OperatingPoint::at_voltage(0.9);
        let dense = measure_int(&im, &lib, 4, &dense_a, &dense_w, op, 400.0).unwrap();
        let sparse = measure_int(&im, &lib, 4, &sparse_a, &sparse_w, op, 400.0).unwrap();
        assert!(
            sparse.power.dynamic_uw < dense.power.dynamic_uw * 0.8,
            "sparse {} vs dense {}",
            sparse.power.dynamic_uw,
            dense.power.dynamic_uw
        );
        assert!(sparse.tops_per_w_1b > dense.tops_per_w_1b);
    }

    #[test]
    fn fp4_macs_verify_through_alignment() {
        let lib = CellLibrary::syn40();
        let mut spec = spec_int();
        spec.fp_precisions = vec![FpFormat::FP4];
        let im = implement(&lib, &spec, &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(13);
        let channels = 8 / 4; // FP4 aligned = 3 bits → 4 columns
        let weights: Vec<Vec<FpValue>> =
            (0..channels).map(|_| syndcim_sim::vectors::random_fp(&mut rng, 8, FpFormat::FP4)).collect();
        let passes: Vec<Vec<FpValue>> =
            (0..3).map(|_| syndcim_sim::vectors::random_fp(&mut rng, 8, FpFormat::FP4)).collect();
        let m = measure_fp(&im, &lib, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0).unwrap();
        assert_eq!(m.checked_outputs, channels * 3);
    }

    #[test]
    fn weight_update_measurement_verifies_and_differentiates_cells() {
        use syndcim_subckt::BitcellKind;
        let lib = CellLibrary::syn40();
        let op = OperatingPoint::at_voltage(0.9);
        let mut per_cell = Vec::new();
        for bitcell in [BitcellKind::Sram6T2T, BitcellKind::Latch8T] {
            let im = implement(&lib, &spec_int(), &DesignChoice { bitcell, ..DesignChoice::default() }).unwrap();
            let m = measure_weight_update(&im, &lib, op, 400.0, 99).unwrap();
            assert_eq!(m.bits_written, 8 * 8 * 2);
            assert!(m.energy_per_bit_fj > 0.0);
            per_cell.push(m.energy_per_bit_fj);
        }
        // The 8T latch writes cost more energy than the 6T+2T cell.
        assert!(per_cell[1] > per_cell[0] * 0.9, "{per_cell:?}");
    }
}
