//! Post-implementation evaluation: run real MAC workloads on the
//! implemented macro, verify every output against the golden model, and
//! measure power/efficiency from the observed switching activity —
//! the "post-layout simulation" sign-off of the paper, plus the
//! measurement conditions of its evaluation section.
//!
//! Every measurement drives a [`SimBackend`]. Two backends exist:
//!
//! * [`EvalBackend::Engine`] (default) — the compiled bit-parallel
//!   `syndcim_engine` backend: up to 512 measurement passes evaluate
//!   simultaneously (`u64` lane words up to 64 lanes, wider portable or
//!   ISA-native SIMD words beyond — `EngineSim` picks the word per
//!   chunk, honoring the `SYNDCIM_SIMD` pin), and pass chunks fan out
//!   across worker threads sharing one compiled program.
//!   Measurement drivers use the incremental (`drive_word_at`) stimulus
//!   path, skipping input ports whose lane word is unchanged between
//!   cycles;
//! * [`EvalBackend::Interpreter`] — the levelized reference
//!   `syndcim_sim::Simulator`, running passes sequentially exactly as
//!   the original sign-off flow did.
//!
//! The backend choice carries through to power conversion: the engine
//! arm reports through the macro's compiled power program (built at
//! `implement` from the shared lowering), the interpreter arm through
//! the reference `PowerAnalyzer` rebuilt per call — two genuinely
//! independent measurement pipelines, end to end.
//!
//! Outputs are golden-model-checked in both backends and the derived
//! measurements are bit-identical (pinned by the backend-agreement
//! tests), so a divergence between the pipelines can never go
//! unnoticed.

use syndcim_engine::{default_threads, parallel_map, EngineSim, SimdPolicy};
use syndcim_netlist::NetId;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::{tops_per_mm2, tops_per_w, MacThroughput, PowerAnalyzer, PowerReport};
use syndcim_sim::golden::{bit_serial_schedule, fp_align, int_dot, twos_complement_bit, DcimChannelTrace};
use syndcim_sim::{FpValue, Precision, SimBackend, Simulator};
use syndcim_telemetry as telemetry;

use crate::assemble::MacroNetlist;
use crate::error::CoreError;
use crate::flow::ImplementedMacro;

/// Maximum lanes one engine executor carries (the 512-lane word).
const MAX_LANES: usize = EngineSim::MAX_LANES;

/// Lane count for measurement chunks: 64-lane `u64` chunks while they
/// keep every worker thread busy, the widest word the `SYNDCIM_SIMD`
/// policy allows once per-thread batches saturate (one wide pass beats
/// several narrow passes on one core, but not narrow passes spread over
/// idle cores). Capped by [`SimdPolicy::max_lanes`] so a pinned backend
/// (e.g. `SYNDCIM_SIMD=avx2`, a 256-lane word) never receives a chunk
/// its word cannot carry — worker-thread construction must not fail.
pub(crate) fn chunk_lanes(passes: usize) -> usize {
    let threads = default_threads(passes.div_ceil(64));
    if passes <= 64 * threads {
        64
    } else {
        let cap = SimdPolicy::from_env().map(SimdPolicy::max_lanes).unwrap_or(MAX_LANES);
        MAX_LANES.min(cap)
    }
}

/// Which simulation backend a measurement drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalBackend {
    /// Compiled bit-parallel engine (lanes + worker threads).
    #[default]
    Engine,
    /// Interpreted levelized reference simulator.
    Interpreter,
}

/// Result of one measured workload.
#[derive(Debug, Clone)]
pub struct MacMeasurement {
    /// Channel outputs checked against the golden model.
    pub checked_outputs: usize,
    /// Power at the measurement frequency and corner.
    pub power: PowerReport,
    /// Throughput in TOPS at the measured precision.
    pub tops: f64,
    /// Energy efficiency in TOPS/W at the measured precision.
    pub tops_per_w: f64,
    /// Energy efficiency normalized to 1b×1b (the paper's Table II
    /// convention).
    pub tops_per_w_1b: f64,
    /// Area efficiency normalized to 1b×1b, in TOPS/mm².
    pub tops_per_mm2_1b: f64,
    /// Energy per MAC in femtojoules at the measured precision.
    pub energy_per_mac_fj: f64,
}

/// Switching activity accumulated by one or more backend instances:
/// per-net toggle totals plus the matching lane-cycle denominator.
#[derive(Debug, Clone)]
pub(crate) struct Activity {
    pub toggles: Vec<u64>,
    pub lane_cycles: u64,
    pub checked: usize,
}

impl Activity {
    fn merge(mut acc: Activity, other: &Activity) -> Activity {
        for (t, o) in acc.toggles.iter_mut().zip(&other.toggles) {
            *t += o;
        }
        acc.lane_cycles += other.lane_cycles;
        acc.checked += other.checked;
        acc
    }
}

/// Measure an integer MAC workload at `pa`-bit precision (activations
/// and weights both `pa` bits, `pa` a power of two ≤ the macro's
/// configured precision) on the default (engine) backend.
///
/// `passes` holds one activation vector (length `h`) per pass;
/// `weights[ch]` holds the `h` signed weights of output channel `ch`
/// (`ch < w / pa`). Weights are preloaded into bank 0.
///
/// Every channel output of every pass is compared against
/// [`DcimChannelTrace`]; power comes from the observed toggles.
///
/// ```
/// use syndcim_core::{implement, measure_int, DesignChoice, MacroSpec};
/// use syndcim_pdk::{CellLibrary, OperatingPoint};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = CellLibrary::syn40();
/// let spec = MacroSpec {
///     h: 8, w: 8, mcr: 2,
///     int_precisions: vec![1, 2, 4], fp_precisions: vec![],
///     f_mac_mhz: 400.0, f_wu_mhz: 400.0, vdd_v: 0.9,
///     ppa: Default::default(),
/// };
/// let im = implement(&lib, &spec, &DesignChoice::default())?;
/// // Two INT4 channels (8 / pa), three passes of 8 activations each.
/// let weights = vec![vec![3, -2, 1, 0, -4, 5, 2, -1], vec![1; 8]];
/// let passes = vec![vec![1; 8], vec![-3; 8], vec![7, -8, 0, 2, 1, -1, 4, 3]];
/// let m = measure_int(&im, &lib, 4, &passes, &weights,
///                     OperatingPoint::at_voltage(0.9), 400.0)?;
/// assert_eq!(m.checked_outputs, 2 * 3); // every channel of every pass
/// assert!(m.power.total_uw() > 0.0 && m.tops_per_w > 0.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any output disagrees
/// with the golden model, [`CoreError::Precision`] for an unsupported
/// `pa`, and [`CoreError::Dimension`] for mis-shaped vectors.
pub fn measure_int(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
    op: OperatingPoint,
    f_mhz: f64,
) -> Result<MacMeasurement, CoreError> {
    measure_int_with(im, lib, pa, passes, weights, op, f_mhz, EvalBackend::default())
}

/// [`measure_int`] with an explicit backend choice.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any output disagrees
/// with the golden model.
#[allow(clippy::too_many_arguments)]
pub fn measure_int_with(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
    op: OperatingPoint,
    f_mhz: f64,
    backend: EvalBackend,
) -> Result<MacMeasurement, CoreError> {
    let activity = int_activity(im, lib, pa, passes, weights, backend)?;
    let measurement = finish_measurement(im, lib, &activity, pa, pa, op, f_mhz, backend);
    Ok(MacMeasurement { checked_outputs: activity.checked, ..measurement })
}

/// Run the INT workload on the chosen backend and return its activity.
/// The engine backend executes the simulation program the macro has
/// carried since `implement` (compiled from the shared lowering) — no
/// per-call netlist walk.
///
/// # Errors
///
/// [`CoreError::Precision`] for an unsupported `pa`,
/// [`CoreError::Dimension`] for mis-shaped vectors,
/// [`CoreError::FunctionalMismatch`] for golden-model disagreement —
/// the same contract as [`measure_int`] (the seed flow panicked on the
/// first two).
pub(crate) fn int_activity(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
    backend: EvalBackend,
) -> Result<Activity, CoreError> {
    let mac = &im.mac;
    if !pa.is_power_of_two() || pa > mac.w_bits {
        return Err(CoreError::Precision { pa, max: mac.w_bits });
    }
    let channels = mac.w / pa as usize;
    if weights.len() != channels {
        return Err(CoreError::Dimension { what: "weight vectors", got: weights.len(), want: channels });
    }
    if let Some(w) = weights.iter().find(|w| w.len() != mac.h) {
        return Err(CoreError::Dimension { what: "weight vector entries", got: w.len(), want: mac.h });
    }
    if let Some(a) = passes.iter().find(|a| a.len() != mac.h) {
        return Err(CoreError::Dimension { what: "activation vector entries", got: a.len(), want: mac.h });
    }
    let golden =
        |lane_acts: &Vec<i64>, ch: usize| DcimChannelTrace::run(lane_acts, &weights[ch], pa, pa).output;
    match backend {
        EvalBackend::Interpreter => {
            telemetry::span!("eval.int.interpreter");
            // Each measurement pass is an independent vector sample from
            // the quiesced state — the same condition an engine lane
            // sees, so both backends produce bit-identical activity.
            // Every instance rides the macro's shared lowering (same
            // levelize order, shared symbol-keyed port table — no owned
            // name map per pass).
            let results: Vec<Result<Activity, CoreError>> = passes
                .iter()
                .map(|acts| {
                    let mut sim = Simulator::with_lowering(&mac.module, lib, &im.compiled.lowering)?;
                    setup_int(&mut sim, mac, pa, weights);
                    run_pass_lanes(&mut sim, mac, pa, std::slice::from_ref(acts));
                    let checked = check_channels(&sim, mac, pa, pa, std::slice::from_ref(acts), &golden)?;
                    Ok(Activity {
                        toggles: sim.toggle_table().to_vec(),
                        lane_cycles: sim.lane_cycles(),
                        checked,
                    })
                })
                .collect();
            merge_activities(mac, results)
        }
        EvalBackend::Engine => {
            telemetry::span!("eval.int.engine");
            // Surface a bad SYNDCIM_SIMD as a typed error before any
            // worker thread constructs an executor.
            SimdPolicy::from_env()?;
            let prog = &im.compiled.program;
            let chunks: Vec<&[Vec<i64>]> = passes.chunks(chunk_lanes(passes.len())).collect();
            let results = parallel_map(chunks, |_, chunk| -> Result<Activity, CoreError> {
                let mut sim = EngineSim::try_new(prog, &mac.module, chunk.len())?;
                setup_int(&mut sim, mac, pa, weights);
                run_pass_lanes(&mut sim, mac, pa, chunk);
                let checked = check_channels(&sim, mac, pa, pa, chunk, &golden)?;
                Ok(Activity { toggles: sim.toggle_table().to_vec(), lane_cycles: sim.lane_cycles(), checked })
            });
            merge_activities(mac, results)
        }
    }
}

fn merge_activities(
    mac: &MacroNetlist,
    results: Vec<Result<Activity, CoreError>>,
) -> Result<Activity, CoreError> {
    let mut acc = Activity { toggles: vec![0; mac.module.net_count()], lane_cycles: 0, checked: 0 };
    for r in results {
        acc = Activity::merge(acc, &r?);
    }
    Ok(acc)
}

/// Measure an FP MAC workload in the macro's configured FP format, on
/// the default (engine) backend. FP activations go through the on-macro
/// alignment unit; FP weights are pre-aligned (as the paper's flow
/// stores them) and written as signed mantissas across
/// `next_power_of_two(man+2)` columns.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if the hardware disagrees
/// with [`syndcim_sim::golden::fp_dot`] semantics,
/// [`CoreError::MissingFpUnit`] if the macro was built without an FP
/// precision, and [`CoreError::Dimension`] for mis-shaped vectors.
pub fn measure_fp(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    passes: &[Vec<FpValue>],
    weights: &[Vec<FpValue>],
    op: OperatingPoint,
    f_mhz: f64,
) -> Result<MacMeasurement, CoreError> {
    measure_fp_with(im, lib, passes, weights, op, f_mhz, EvalBackend::default())
}

/// [`measure_fp`] with an explicit backend choice.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if the hardware disagrees
/// with the golden model, [`CoreError::MissingFpUnit`] if the macro was
/// built without an FP precision, and [`CoreError::Dimension`] for
/// mis-shaped vectors.
#[allow(clippy::too_many_arguments)]
pub fn measure_fp_with(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    passes: &[Vec<FpValue>],
    weights: &[Vec<FpValue>],
    op: OperatingPoint,
    f_mhz: f64,
    backend: EvalBackend,
) -> Result<MacMeasurement, CoreError> {
    let mac = &im.mac;
    let Some(fmt) = mac.fp else {
        return Err(CoreError::MissingFpUnit);
    };
    let pa = fmt.aligned_bits();
    let pw = pa.next_power_of_two().max(2);
    let channels = mac.w / pw as usize;
    if weights.len() != channels {
        return Err(CoreError::Dimension { what: "FP weight vectors", got: weights.len(), want: channels });
    }
    if let Some(w) = weights.iter().find(|w| w.len() != mac.h) {
        return Err(CoreError::Dimension { what: "FP weight vector entries", got: w.len(), want: mac.h });
    }
    if let Some(a) = passes.iter().find(|a| a.len() != mac.h) {
        return Err(CoreError::Dimension { what: "FP activation vector entries", got: a.len(), want: mac.h });
    }

    // Pre-align weights per channel (offline, like the paper's flow).
    let aligned_w: Vec<Vec<i64>> = weights.iter().map(|wv| fp_align(wv, fmt).0).collect();

    let run_chunk = |sim: &mut dyn SimBackend, chunk: &[Vec<FpValue>]| -> Result<Activity, CoreError> {
        let golden = |lane_acts: &Vec<i64>, ch: usize| int_dot(lane_acts, &aligned_w[ch]);
        let mut checked = 0usize;
        // Feed the FP operands through the alignment unit (one cycle to
        // its output register).
        for (lane, acts) in chunk.iter().enumerate() {
            for (r, v) in acts.iter().enumerate() {
                sim.set_lane(&format!("fp_s{r}"), lane, v.sign);
                sim.set_bus_lane(&format!("fp_e{r}"), fmt.exp_bits, lane, v.exp_field as i64);
                sim.set_bus_lane(&format!("fp_m{r}"), fmt.man_bits, lane, v.man_field as i64);
            }
        }
        sim.step();
        if mac.choice.align_pipelined {
            // Mid-tree and e_max register banks add two cycles.
            sim.step();
            sim.step();
        }
        let mut aligned_chunk: Vec<Vec<i64>> = Vec::with_capacity(chunk.len());
        for (lane, acts) in chunk.iter().enumerate() {
            let aligned_a: Vec<i64> =
                (0..mac.h).map(|r| sim.get_bus_signed_lane(&format!("al{r}"), pa, lane)).collect();
            // The on-macro alignment must match the golden model bit-exactly.
            let (golden_a, _emax) = fp_align(acts, fmt);
            if aligned_a != golden_a {
                return Err(CoreError::FunctionalMismatch {
                    channel: usize::MAX,
                    got: aligned_a[0],
                    want: golden_a[0],
                });
            }
            aligned_chunk.push(aligned_a);
        }
        // Bit-serial MAC over the aligned mantissas.
        run_pass_lanes(sim, mac, pa, &aligned_chunk);
        checked += check_channels(sim, mac, pa, pw, &aligned_chunk, &golden)?;
        Ok(Activity { toggles: sim.toggle_table().to_vec(), lane_cycles: sim.lane_cycles(), checked })
    };

    let activity = match backend {
        EvalBackend::Interpreter => {
            // Independent reference pass per vector (see int_activity).
            let results: Vec<Result<Activity, CoreError>> = passes
                .iter()
                .map(|acts| {
                    let mut sim = Simulator::with_lowering(&mac.module, lib, &im.compiled.lowering)?;
                    setup_fp(&mut sim, mac, pw, &aligned_w);
                    run_chunk(&mut sim, std::slice::from_ref(acts))
                })
                .collect();
            merge_activities(mac, results)?
        }
        EvalBackend::Engine => {
            SimdPolicy::from_env()?;
            let prog = &im.compiled.program;
            let chunks: Vec<&[Vec<FpValue>]> = passes.chunks(chunk_lanes(passes.len())).collect();
            let results = parallel_map(chunks, |_, chunk| -> Result<Activity, CoreError> {
                let mut sim = EngineSim::try_new(prog, &mac.module, chunk.len())?;
                setup_fp(&mut sim, mac, pw, &aligned_w);
                run_chunk(&mut sim, chunk)
            });
            merge_activities(mac, results)?
        }
    };

    let measurement = finish_measurement(im, lib, &activity, pa, pw, op, f_mhz, backend);
    Ok(MacMeasurement { checked_outputs: activity.checked, ..measurement })
}

/// Result of a weight-update measurement over one or more independent
/// random write patterns.
#[derive(Debug, Clone)]
pub struct WeightUpdateMeasurement {
    /// Mean energy per written weight bit across patterns, in fJ.
    pub energy_per_bit_fj: f64,
    /// Population standard deviation of the per-pattern write energy
    /// per bit, in fJ (0 when a single pattern is measured).
    pub energy_per_bit_std_fj: f64,
    /// Independent random write patterns measured.
    pub patterns: usize,
    /// Write bandwidth at the measurement frequency, in Gb/s.
    pub bandwidth_gbps: f64,
    /// Bits written per pattern.
    pub bits_written: usize,
}

/// Independent write patterns [`measure_weight_update`] drives by
/// default — each occupies one engine lane.
pub const DEFAULT_WU_PATTERNS: usize = 8;

/// Measure the weight-update path on the default (engine) backend:
/// stream random weights into every (bank, row) through the real write
/// port (BL drivers + address decoder + bitcell capture) and account the
/// switching energy — the dimension-dependent driver cost the paper
/// attributes to WL/BL drivers, and the per-bitcell write cost that
/// differentiates the cell variants. [`DEFAULT_WU_PATTERNS`] independent
/// random data patterns run simultaneously as engine lanes; the result
/// reports the mean and spread of the per-bit write energy across them.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any bitcell fails to
/// capture its written value.
pub fn measure_weight_update(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    op: OperatingPoint,
    f_mhz: f64,
    seed: u64,
) -> Result<WeightUpdateMeasurement, CoreError> {
    measure_weight_update_with(im, lib, op, f_mhz, seed, EvalBackend::default())
}

/// [`measure_weight_update`] with an explicit backend choice.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any bitcell fails to
/// capture its written value.
pub fn measure_weight_update_with(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    op: OperatingPoint,
    f_mhz: f64,
    seed: u64,
    backend: EvalBackend,
) -> Result<WeightUpdateMeasurement, CoreError> {
    measure_weight_update_patterns(im, lib, op, f_mhz, seed, DEFAULT_WU_PATTERNS, backend)
}

/// [`measure_weight_update`] over an explicit number of independent
/// write patterns. On the engine backend every pattern occupies one
/// lane of a single executor (per-lane toggle accounting attributes the
/// energy); the interpreter runs the same per-pattern stimulus streams
/// sequentially, so both backends report identical per-pattern energies.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if any bitcell fails to
/// capture its written value in any pattern, and
/// [`CoreError::PatternCount`] if `patterns` is zero or exceeds the
/// engine's lane capacity (the seed flow panicked here).
pub fn measure_weight_update_patterns(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    op: OperatingPoint,
    f_mhz: f64,
    seed: u64,
    patterns: usize,
    backend: EvalBackend,
) -> Result<WeightUpdateMeasurement, CoreError> {
    if !(1..=MAX_LANES).contains(&patterns) {
        return Err(CoreError::PatternCount { patterns, max: MAX_LANES });
    }
    let mac = &im.mac;
    let per_pattern: Vec<Activity> = match backend {
        EvalBackend::Interpreter => {
            let mut acts = Vec::with_capacity(patterns);
            for l in 0..patterns {
                let mut sim = Simulator::with_lowering(&mac.module, lib, &im.compiled.lowering)?;
                acts.push(run_weight_update(&mut sim, mac, pattern_seed(seed, l as u64))?);
            }
            acts
        }
        EvalBackend::Engine => {
            let mut sim = EngineSim::try_new(&im.compiled.program, &mac.module, patterns)?;
            sim.enable_lane_toggles();
            run_weight_update_lanes(&mut sim, mac, seed, patterns)?
        }
    };

    let bits = mac.w * mac.h * mac.mcr;
    // The engine arm rides the macro's compiled power program (wire
    // caps baked at implement time); the interpreter arm keeps the
    // seed's reference analyzer so the backend knob exercises two
    // genuinely independent power paths — bit-identical by the
    // differential pinning, cross-checked by the backend-agreement
    // tests below.
    let reference_pa = match backend {
        EvalBackend::Engine => None,
        EvalBackend::Interpreter => Some(PowerAnalyzer::with_wire_caps(&mac.module, lib, &im.wires.cap_ff)?),
    };
    let energies: Vec<f64> = per_pattern
        .iter()
        .map(|a| {
            let power = match &reference_pa {
                None => im.compiled.power.report(&a.toggles, a.lane_cycles, f_mhz, op),
                Some(pa) => pa.from_activity(&a.toggles, a.lane_cycles, f_mhz, op),
            };
            power.energy_per_cycle_pj * 1000.0 * a.lane_cycles as f64 / bits as f64
        })
        .collect();
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    let var = energies.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / energies.len() as f64;
    Ok(WeightUpdateMeasurement {
        energy_per_bit_fj: mean,
        energy_per_bit_std_fj: var.sqrt(),
        patterns,
        bandwidth_gbps: mac.w as f64 * f_mhz * 1e6 / 1e9,
        bits_written: bits,
    })
}

/// Derive the xorshift stream of one write pattern. Pattern 0 keeps the
/// seed's original `seed | 1` stream so single-pattern measurements
/// reproduce historical numbers.
pub(crate) fn pattern_seed(seed: u64, pattern: u64) -> u64 {
    seed.wrapping_add(pattern.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn run_weight_update<B: SimBackend>(
    sim: &mut B,
    mac: &MacroNetlist,
    seed: u64,
) -> Result<Activity, CoreError> {
    use rand_like::next_bit;
    configure_precision(sim, mac, mac.w_bits);
    quiesce(sim, mac);
    sim.reset_activity();

    let wbl_nets: Vec<NetId> = (0..mac.w).map(|c| sim.net_of(&format!("wbl[{c}]"))).collect();
    let mut state = seed | 1;
    let mut expect: Vec<Vec<Vec<bool>>> = vec![vec![vec![false; mac.w]; mac.h]; mac.mcr];
    for (bank, expect_bank) in expect.iter_mut().enumerate() {
        for (row, expect_row) in expect_bank.iter_mut().enumerate() {
            sim.set_all("wr_en", true);
            sim.set_bus_all("wr_row", mac.h.trailing_zeros(), row as i64);
            if mac.mcr > 1 {
                sim.set_bus_all("wr_bank", mac.mcr.trailing_zeros(), bank as i64);
            }
            for (&net, e) in wbl_nets.iter().zip(expect_row.iter_mut()) {
                let bit = next_bit(&mut state);
                *e = bit;
                sim.drive_word_at(net, 0, if bit { !0 } else { 0 });
            }
            sim.step();
        }
    }
    sim.set_all("wr_en", false);

    // Verify every bitcell captured its bit.
    for bc in &mac.bitcells {
        let want = expect[bc.bank][bc.row][bc.col];
        if sim.state_of_lane(bc.inst, 0) != want {
            return Err(CoreError::FunctionalMismatch {
                channel: bc.col,
                got: sim.state_of_lane(bc.inst, 0) as i64,
                want: want as i64,
            });
        }
    }
    Ok(Activity { toggles: sim.toggle_table().to_vec(), lane_cycles: sim.lane_cycles(), checked: 0 })
}

/// Drive `patterns` independent random write streams simultaneously —
/// pattern `l` in lane `l` — and split the activity per pattern via the
/// engine's per-lane toggle accounting. The address sequence is shared
/// (it is data-independent); the written data differs per lane.
#[allow(clippy::needless_range_loop)] // bank/row index `expect` AND drive the address buses
fn run_weight_update_lanes(
    sim: &mut EngineSim<'_>,
    mac: &MacroNetlist,
    seed: u64,
    patterns: usize,
) -> Result<Vec<Activity>, CoreError> {
    use rand_like::next_bit;
    configure_precision(sim, mac, mac.w_bits);
    quiesce(sim, mac);
    sim.reset_activity();

    let wbl_nets: Vec<NetId> = (0..mac.w).map(|c| sim.net_of(&format!("wbl[{c}]"))).collect();
    let mut streams: Vec<u64> = (0..patterns).map(|l| pattern_seed(seed, l as u64) | 1).collect();
    // expect[lane][bank][row][col]
    let mut expect = vec![vec![vec![vec![false; mac.w]; mac.h]; mac.mcr]; patterns];
    for bank in 0..mac.mcr {
        for row in 0..mac.h {
            sim.set_all("wr_en", true);
            sim.set_bus_all("wr_row", mac.h.trailing_zeros(), row as i64);
            if mac.mcr > 1 {
                sim.set_bus_all("wr_bank", mac.mcr.trailing_zeros(), bank as i64);
            }
            for (col, &net) in wbl_nets.iter().enumerate() {
                for wi in 0..sim.words() {
                    let mut word = 0u64;
                    for l in wi * 64..patterns.min(wi * 64 + 64) {
                        let bit = next_bit(&mut streams[l]);
                        expect[l][bank][row][col] = bit;
                        word |= (bit as u64) << (l - wi * 64);
                    }
                    sim.drive_word_at(net, wi, word);
                }
            }
            sim.step();
        }
    }
    sim.set_all("wr_en", false);

    // Verify every bitcell captured its bit in every lane.
    for bc in &mac.bitcells {
        for (l, expect_lane) in expect.iter().enumerate() {
            let want = expect_lane[bc.bank][bc.row][bc.col];
            if sim.state_of_lane(bc.inst, l) != want {
                return Err(CoreError::FunctionalMismatch {
                    channel: bc.col,
                    got: sim.state_of_lane(bc.inst, l) as i64,
                    want: want as i64,
                });
            }
        }
    }
    let cycles = sim.lane_cycles() / patterns as u64;
    Ok((0..patterns)
        .map(|l| {
            let toggles =
                sim.lane_toggle_table(l).expect("per-lane toggles were enabled before driving stimulus");
            Activity { toggles, lane_cycles: cycles, checked: 0 }
        })
        .collect())
}

/// Tiny xorshift bit source (keeps `rand` out of the library API).
pub(crate) mod rand_like {
    pub fn next_bit(state: &mut u64) -> bool {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state & 1 == 1
    }
}

// ----------------------------------------------------------------------
// Backend-generic workload drivers.
// ----------------------------------------------------------------------

fn setup_int<B: SimBackend>(sim: &mut B, mac: &MacroNetlist, pa: u32, weights: &[Vec<i64>]) {
    preload_weights(sim, mac, pa, weights);
    configure_precision(sim, mac, pa);
    quiesce(sim, mac);
    sim.reset_activity();
}

fn setup_fp<B: SimBackend>(sim: &mut B, mac: &MacroNetlist, pw: u32, aligned_w: &[Vec<i64>]) {
    preload_weights(sim, mac, pw, aligned_w);
    configure_precision(sim, mac, pw);
    quiesce(sim, mac);
    sim.reset_activity();
}

fn preload_weights<B: SimBackend>(sim: &mut B, mac: &MacroNetlist, pw: u32, weights: &[Vec<i64>]) {
    for bc in &mac.bitcells {
        if bc.bank != 0 {
            continue;
        }
        let ch = bc.col / pw as usize;
        let j = (bc.col % pw as usize) as u32;
        if ch < weights.len() {
            let bit = twos_complement_bit(weights[ch][bc.row], pw, j);
            sim.force_state_all(bc.inst, bit);
        }
    }
}

pub(crate) fn configure_precision<B: SimBackend + ?Sized>(sim: &mut B, mac: &MacroNetlist, pw: u32) {
    let level = pw.trailing_zeros() as usize;
    for k in 0..=(mac.w_bits.trailing_zeros() as usize) {
        sim.set_all(&format!("prec[{k}]"), k == level);
    }
    // Bank 0 selected; write interface idle.
    for k in 0..mac.mcr.trailing_zeros() as usize {
        sim.set_all(&format!("bank_sel[{k}]"), false);
    }
    sim.set_all("wr_en", false);
}

pub(crate) fn quiesce<B: SimBackend + ?Sized>(sim: &mut B, mac: &MacroNetlist) {
    for r in 0..mac.h {
        sim.set_all(&format!("act[{r}]"), false);
    }
    sim.set_all("neg", false);
    sim.set_all("clear", false);
    sim.step();
    sim.step();
}

/// Drive one bit-serial pass of `pa`-bit activations in every lane
/// simultaneously (lane `l` computes `lanes_acts[l]`), leaving the
/// accumulators holding the completed pass. Stimulus goes through the
/// incremental [`SimBackend::drive_word_at`] path, so input ports whose
/// lane word repeats between cycles are not re-driven — bit-identical
/// toggles, less driver overhead.
fn run_pass_lanes(
    sim: &mut (impl SimBackend + ?Sized),
    mac: &MacroNetlist,
    pa: u32,
    lanes_acts: &[Vec<i64>],
) {
    assert!(lanes_acts.len() <= sim.lanes(), "more passes than active lanes");
    let depth = mac.mac_pipeline_depth as u32;
    // schedules[lane][cycle][row]
    let schedules: Vec<Vec<Vec<bool>>> =
        lanes_acts.iter().map(|acts| bit_serial_schedule(acts, pa)).collect();
    let act_nets: Vec<NetId> = (0..mac.h).map(|r| sim.net_of(&format!("act[{r}]"))).collect();
    let clear_net = sim.net_of("clear");
    let neg_net = sim.net_of("neg");
    let words = sim.words();
    let total = pa + depth + u32::from(mac.choice.ofu_extra_pipe);
    for cycle in 0..total {
        // Activation bits enter on cycles 0..pa.
        for (r, &net) in act_nets.iter().enumerate() {
            for wi in 0..words {
                let mut word = 0u64;
                if cycle < pa {
                    for (l, sched) in schedules.iter().enumerate().skip(wi * 64).take(64) {
                        word |= (sched[cycle as usize][r] as u64) << (l - wi * 64);
                    }
                }
                sim.drive_word_at(net, wi, word);
            }
        }
        // S&A controls are aligned to the psum arrival (delayed by the
        // pipeline registers between tree and accumulator).
        for wi in 0..words {
            sim.drive_word_at(clear_net, wi, if cycle == depth { !0 } else { 0 });
            sim.drive_word_at(neg_net, wi, if cycle == pa - 1 + depth { !0 } else { 0 });
        }
        sim.step();
    }
    for wi in 0..words {
        sim.drive_word_at(neg_net, wi, 0);
    }
}

/// Golden-check every channel of every lane after a completed pass.
/// `golden(lane_acts, ch)` supplies the expected channel value.
fn check_channels(
    sim: &(impl SimBackend + ?Sized),
    mac: &MacroNetlist,
    pa: u32,
    pw: u32,
    lanes_acts: &[Vec<i64>],
    golden: &impl Fn(&Vec<i64>, usize) -> i64,
) -> Result<usize, CoreError> {
    let channels = mac.w / pw as usize;
    let mut checked = 0usize;
    for (lane, acts) in lanes_acts.iter().enumerate() {
        for ch in 0..channels {
            let got = read_channel_lane(sim, mac, pa, pw, ch, lane);
            let want = golden(acts, ch);
            if got != want {
                return Err(CoreError::FunctionalMismatch { channel: ch, got, want });
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// Read channel `ch` fused over `pw` columns after a `pa`-bit pass, in
/// one lane. The S&A places results at a fixed offset for the macro's
/// full serial width, so shorter passes come out scaled by `2^(n−pa)`.
fn read_channel_lane(
    sim: &(impl SimBackend + ?Sized),
    mac: &MacroNetlist,
    pa: u32,
    pw: u32,
    ch: usize,
    lane: usize,
) -> i64 {
    let level = pw.trailing_zeros() as usize;
    let per_group = (mac.w_bits / pw) as usize;
    let g = ch / per_group;
    let i = ch % per_group;
    let width = mac.output_width(level) as u32;
    let raw = sim.get_bus_signed_lane(&mac.output_port(g, level, i), width, lane);
    let scale_shift = mac.act_bits - pa;
    debug_assert_eq!(raw & ((1 << scale_shift) - 1), 0, "low bits below the serial offset must be zero");
    raw >> scale_shift
}

#[allow(clippy::too_many_arguments)]
fn finish_measurement(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    activity: &Activity,
    pa: u32,
    pw: u32,
    op: OperatingPoint,
    f_mhz: f64,
    backend: EvalBackend,
) -> MacMeasurement {
    let mac = &im.mac;
    let pa_prec = Precision::Int(pa);
    let pw_prec = Precision::Int(pw);
    // Engine backend: one linear pass on the macro's compiled power
    // program (wire caps baked at implement time). Interpreter backend:
    // the seed's reference analyzer, rebuilt per call — keeping the
    // two measurement arms independent end to end (sim *and* power),
    // bit-identical by the differential pinning.
    let cycles = activity.lane_cycles.max(1);
    let power = match backend {
        EvalBackend::Engine => im.compiled.power.report(&activity.toggles, cycles, f_mhz, op),
        EvalBackend::Interpreter => PowerAnalyzer::with_wire_caps(&mac.module, lib, &im.wires.cap_ff)
            .expect("implemented macros are well-formed")
            .from_activity(&activity.toggles, cycles, f_mhz, op),
    };

    let tput = MacThroughput { h: mac.h, w: mac.w, act: pa_prec, weight: pw_prec };
    let tops = tput.tops(f_mhz);
    let tops_1b = tput.tops_1b(f_mhz);
    let total_uw = power.total_uw();
    let macs_per_sec = tput.macs_per_pass() / tput.cycles_per_pass() * f_mhz * 1e6;
    let energy_per_mac_fj = total_uw * 1e-6 / macs_per_sec * 1e15;
    MacMeasurement {
        checked_outputs: 0,
        power,
        tops,
        tops_per_w: tops_per_w(tops, total_uw),
        tops_per_w_1b: tops_per_w(tops_1b, total_uw),
        tops_per_mm2_1b: tops_per_mm2(tops_1b, im.placement.die_area_um2()),
        energy_per_mac_fj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignChoice;
    use crate::flow::implement;
    use crate::spec::MacroSpec;
    use syndcim_sim::vectors::{random_ints, seeded_rng, sparse_ints};
    use syndcim_sim::FpFormat;

    fn spec_int() -> MacroSpec {
        MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        }
    }

    #[test]
    fn int4_and_int2_and_int1_all_verify() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(5);
        for pa in [4u32, 2, 1] {
            let channels = 8 / pa as usize;
            let weights: Vec<Vec<i64>> = (0..channels).map(|_| random_ints(&mut rng, 8, pa)).collect();
            let passes: Vec<Vec<i64>> = (0..4).map(|_| random_ints(&mut rng, 8, pa)).collect();
            let m = measure_int(&im, &lib, pa, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0)
                .unwrap_or_else(|e| panic!("INT{pa}: {e}"));
            assert_eq!(m.checked_outputs, channels * 4);
            assert!(m.power.total_uw() > 0.0);
            assert!(m.tops > 0.0 && m.tops_per_w_1b > 0.0);
        }
    }

    #[test]
    fn retimed_and_split_macros_also_verify() {
        let lib = CellLibrary::syn40();
        let mut rng = seeded_rng(7);
        for choice in [
            DesignChoice { tree_retimed: true, ..DesignChoice::default() },
            DesignChoice { column_split: 2, ..DesignChoice::default() },
            DesignChoice { pipe_tree_sa: false, ..DesignChoice::default() },
            DesignChoice { ofu_negate_retimed: true, ..DesignChoice::default() },
            DesignChoice { ofu_extra_pipe: true, ..DesignChoice::default() },
        ] {
            let im = implement(&lib, &spec_int(), &choice).unwrap();
            let weights: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
            let passes: Vec<Vec<i64>> = (0..3).map(|_| random_ints(&mut rng, 8, 4)).collect();
            measure_int(&im, &lib, 4, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0)
                .unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn engine_and_interpreter_backends_agree() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(23);
        let weights: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let passes: Vec<Vec<i64>> = (0..5).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let op = OperatingPoint::at_voltage(0.9);

        // Both backends run each pass as an independent vector sample
        // from the quiesced state → bit-identical activity.
        let eng = int_activity(&im, &lib, 4, &passes, &weights, EvalBackend::Engine).unwrap();
        let itp = int_activity(&im, &lib, 4, &passes, &weights, EvalBackend::Interpreter).unwrap();
        assert_eq!(eng.checked, itp.checked);
        assert_eq!(eng.lane_cycles, itp.lane_cycles);
        assert_eq!(eng.toggles, itp.toggles, "per-net toggle counts must be bit-identical");

        // And the derived measurements therefore agree exactly.
        let m_eng =
            measure_int_with(&im, &lib, 4, &passes, &weights, op, 400.0, EvalBackend::Engine).unwrap();
        let m_itp =
            measure_int_with(&im, &lib, 4, &passes, &weights, op, 400.0, EvalBackend::Interpreter).unwrap();
        assert_eq!(m_eng.checked_outputs, m_itp.checked_outputs);
        assert_eq!(m_eng.power.dynamic_uw, m_itp.power.dynamic_uw);
        assert_eq!(m_eng.energy_per_mac_fj, m_itp.energy_per_mac_fj);
    }

    #[test]
    fn sparsity_reduces_power() {
        let lib = CellLibrary::syn40();
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(11);
        let dense_w: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let dense_a: Vec<Vec<i64>> = (0..6).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let sparse_w: Vec<Vec<i64>> = (0..2).map(|_| sparse_ints(&mut rng, 8, 4, 0.5)).collect();
        let sparse_a: Vec<Vec<i64>> =
            (0..6).map(|_| syndcim_sim::vectors::ints_with_bit_density(&mut rng, 8, 4, 0.125)).collect();
        let op = OperatingPoint::at_voltage(0.9);
        let dense = measure_int(&im, &lib, 4, &dense_a, &dense_w, op, 400.0).unwrap();
        let sparse = measure_int(&im, &lib, 4, &sparse_a, &sparse_w, op, 400.0).unwrap();
        assert!(
            sparse.power.dynamic_uw < dense.power.dynamic_uw * 0.8,
            "sparse {} vs dense {}",
            sparse.power.dynamic_uw,
            dense.power.dynamic_uw
        );
        assert!(sparse.tops_per_w_1b > dense.tops_per_w_1b);
    }

    #[test]
    fn fp4_macs_verify_through_alignment() {
        let lib = CellLibrary::syn40();
        let mut spec = spec_int();
        spec.fp_precisions = vec![FpFormat::FP4];
        let im = implement(&lib, &spec, &DesignChoice::default()).unwrap();
        let mut rng = seeded_rng(13);
        let channels = 8 / 4; // FP4 aligned = 3 bits → 4 columns
        let weights: Vec<Vec<FpValue>> =
            (0..channels).map(|_| syndcim_sim::vectors::random_fp(&mut rng, 8, FpFormat::FP4)).collect();
        let passes: Vec<Vec<FpValue>> =
            (0..3).map(|_| syndcim_sim::vectors::random_fp(&mut rng, 8, FpFormat::FP4)).collect();
        let m = measure_fp(&im, &lib, &passes, &weights, OperatingPoint::at_voltage(0.9), 400.0).unwrap();
        assert_eq!(m.checked_outputs, channels * 3);
        // Both backends pass the same golden checks.
        let m2 = measure_fp_with(
            &im,
            &lib,
            &passes,
            &weights,
            OperatingPoint::at_voltage(0.9),
            400.0,
            EvalBackend::Interpreter,
        )
        .unwrap();
        assert_eq!(m2.checked_outputs, m.checked_outputs);
    }

    #[test]
    fn weight_update_measurement_verifies_and_differentiates_cells() {
        use syndcim_subckt::BitcellKind;
        let lib = CellLibrary::syn40();
        let op = OperatingPoint::at_voltage(0.9);
        let mut per_cell = Vec::new();
        for bitcell in [BitcellKind::Sram6T2T, BitcellKind::Latch8T] {
            let im =
                implement(&lib, &spec_int(), &DesignChoice { bitcell, ..DesignChoice::default() }).unwrap();
            let m = measure_weight_update(&im, &lib, op, 400.0, 99).unwrap();
            assert_eq!(m.bits_written, 8 * 8 * 2);
            assert_eq!(m.patterns, DEFAULT_WU_PATTERNS);
            assert!(m.energy_per_bit_fj > 0.0);
            // Independent random data per lane ⇒ the per-pattern write
            // energies spread, and the spread stays small relative to
            // the mean.
            assert!(m.energy_per_bit_std_fj > 0.0, "{m:?}");
            assert!(m.energy_per_bit_std_fj < m.energy_per_bit_fj, "{m:?}");
            per_cell.push(m.energy_per_bit_fj);
        }
        // The 8T latch writes cost more energy than the 6T+2T cell.
        assert!(per_cell[1] > per_cell[0] * 0.9, "{per_cell:?}");
    }

    #[test]
    fn weight_update_backends_are_bit_identical() {
        let lib = CellLibrary::syn40();
        let op = OperatingPoint::at_voltage(0.9);
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let eng = measure_weight_update_with(&im, &lib, op, 400.0, 1234, EvalBackend::Engine).unwrap();
        let itp = measure_weight_update_with(&im, &lib, op, 400.0, 1234, EvalBackend::Interpreter).unwrap();
        // Pattern l runs the same stimulus stream on both backends: the
        // engine's per-lane toggle tables match the interpreter's
        // per-pattern runs, so mean AND spread agree exactly.
        assert_eq!(eng.bits_written, itp.bits_written);
        assert_eq!(eng.patterns, itp.patterns);
        assert!((eng.energy_per_bit_fj - itp.energy_per_bit_fj).abs() < 1e-12, "{eng:?} vs {itp:?}");
        assert!((eng.energy_per_bit_std_fj - itp.energy_per_bit_std_fj).abs() < 1e-12, "{eng:?} vs {itp:?}");
        assert_eq!(eng.bandwidth_gbps, itp.bandwidth_gbps);
    }

    /// A wide-word pattern set (>64 lanes) still verifies every bitcell
    /// in every lane and keeps the mean near the narrow-word run.
    #[test]
    fn weight_update_spans_wide_words() {
        let lib = CellLibrary::syn40();
        let op = OperatingPoint::at_voltage(0.9);
        let im = implement(&lib, &spec_int(), &DesignChoice::default()).unwrap();
        let narrow = measure_weight_update_patterns(&im, &lib, op, 400.0, 7, 8, EvalBackend::Engine).unwrap();
        let wide = measure_weight_update_patterns(&im, &lib, op, 400.0, 7, 72, EvalBackend::Engine).unwrap();
        assert_eq!(wide.patterns, 72);
        // Pattern 0..8 share streams with the narrow run; the means are
        // estimates of the same distribution.
        let rel = (wide.energy_per_bit_fj - narrow.energy_per_bit_fj).abs() / narrow.energy_per_bit_fj;
        assert!(rel < 0.2, "narrow {} vs wide {}", narrow.energy_per_bit_fj, wide.energy_per_bit_fj);
    }
}
