//! Full-macro netlist assembly: every subcircuit instantiated and wired
//! according to one [`DesignChoice`].
//!
//! The assembled macro implements the complete bit-serial DCIM pipeline:
//!
//! ```text
//! act ──WL drivers──► array (bitcells×MCR, mux, mult) ──► adder trees
//!        (per column, optionally split / retimed / carry-save)
//!     ──[psum regs]──► shift-&-add accumulators ──► OFU fusion levels
//! wbl ──BL drivers──► write decoder ──► bitcell write ports
//! fp  ──alignment unit──► registered aligned mantissas (FP mode)
//! ```
//!
//! Every level of the OFU is exposed as output ports, so one macro
//! serves INT1 … INT`w_bits` (and the FP formats riding on them) at
//! runtime, exactly like the reconfigurable test chip.

use syndcim_netlist::{Module, NetId, NetlistBuilder};
use syndcim_pdk::CellLibrary;
use syndcim_sim::FpFormat;
use syndcim_subckt::{
    build_adder_tree, build_array, build_drivers, build_ofu, build_shift_add, negate_levels, AdderTreeConfig,
    ArrayConfig, BitcellRef, DriverRole, FpRowPorts, OfuConfig, ShiftAddConfig, TreeOutput,
};

use crate::arithmetic_support::{combine_counts, cpa};
use crate::design::DesignChoice;
use crate::spec::MacroSpec;

/// The assembled macro netlist plus the metadata the evaluation and
/// implementation stages need.
#[derive(Debug, Clone)]
pub struct MacroNetlist {
    /// The flat gate-level netlist.
    pub module: Module,
    /// Every bitcell with (col, row, bank) coordinates, for weight
    /// preloading and write-sequence reproduction.
    pub bitcells: Vec<BitcellRef>,
    /// Array height.
    pub h: usize,
    /// Array width (1-bit weight columns).
    pub w: usize,
    /// Memory-compute ratio.
    pub mcr: usize,
    /// Serial activation bits the datapath is built for.
    pub act_bits: u32,
    /// Columns fused per channel group.
    pub w_bits: u32,
    /// S&A accumulator width.
    pub sa_bits: usize,
    /// Number of channel groups (`w / w_bits`).
    pub groups: usize,
    /// The OFU configuration used (level widths derive from it).
    pub ofu_cfg: OfuConfig,
    /// Cycles of pipeline between the activation bits entering and the
    /// corresponding partial sum reaching the S&A accumulator input.
    pub mac_pipeline_depth: usize,
    /// The FP format served by the alignment unit, if any.
    pub fp: Option<FpFormat>,
    /// The design choice this macro implements.
    pub choice: DesignChoice,
}

impl MacroNetlist {
    /// Output port base name for channel `i` of level `k` in group `g`
    /// (bit-blasted as `name[bit]`).
    pub fn output_port(&self, g: usize, k: usize, i: usize) -> String {
        format!("out_g{g}_l{k}_{i}")
    }

    /// Width of a level-`k` output bus.
    pub fn output_width(&self, k: usize) -> usize {
        self.ofu_cfg.level_width(k)
    }
}

/// Two-level buffer distribution of a global control: one root buffer
/// feeding `copies` leaf buffers; consumers attach to leaves.
fn fanout_tree(b: &mut NetlistBuilder<'_>, src: NetId, copies: usize) -> Vec<NetId> {
    let root = b.add(syndcim_pdk::CellKind::BufX16, &[src])[0];
    (0..copies.max(1)).map(|_| b.add(syndcim_pdk::CellKind::BufX16, &[root])[0]).collect()
}

/// Assemble the complete macro for `spec` under `choice`.
///
/// # Panics
///
/// Panics if `choice.tree_retimed` is set without `choice.pipe_tree_sa`
/// (retiming moves an existing register; there must be one), or if the
/// spec is internally inconsistent (call [`MacroSpec::validate`] first).
pub fn assemble(lib: &CellLibrary, spec: &MacroSpec, choice: &DesignChoice) -> MacroNetlist {
    assert!(
        choice.pipe_tree_sa || !choice.tree_retimed,
        "tree retiming requires the tree/S&A pipeline register"
    );
    let h = spec.h;
    let w = spec.w;
    let mcr = spec.mcr;
    let act_bits = spec.act_bits();
    let w_bits = spec.weight_bits() as usize;
    let groups = w / w_bits;
    let psum_bits = crate::arithmetic_support::count_bits(h);
    let sa_bits = psum_bits + act_bits as usize;
    let levels = w_bits.trailing_zeros() as usize;

    let mut b = NetlistBuilder::new(format!("syndcim_{h}x{w}_mcr{mcr}"), lib);

    // ---- boundary + drivers ------------------------------------------
    let act_in = b.input_bus("act", h);
    let act = build_drivers(&mut b, DriverRole::WordLine, &act_in, w);

    let wr_en = b.input("wr_en");
    let row_addr_bits = h.trailing_zeros() as usize;
    let bank_addr_bits = mcr.trailing_zeros() as usize;
    let wr_row = b.input_bus("wr_row", row_addr_bits);
    let wr_bank = b.input_bus("wr_bank", bank_addr_bits);
    let wbl_in = b.input_bus("wbl", w);
    let wbl = build_drivers(&mut b, DriverRole::BitLine, &wbl_in, h * mcr);

    // Write address decoder (lives with the WL drivers).
    b.push_group("wl_drivers");
    let wr_row_n: Vec<NetId> = wr_row.iter().map(|&n| b.not(n)).collect();
    let wr_bank_n: Vec<NetId> = wr_bank.iter().map(|&n| b.not(n)).collect();
    let mut wwl_raw: Vec<Vec<NetId>> = Vec::with_capacity(mcr);
    for bank in 0..mcr {
        let mut bank_match = wr_en;
        for (k, (&bit, &nbit)) in wr_bank.iter().zip(&wr_bank_n).enumerate() {
            let sel = if (bank >> k) & 1 == 1 { bit } else { nbit };
            bank_match = b.and2(bank_match, sel);
        }
        let mut rows = Vec::with_capacity(h);
        for r in 0..h {
            let mut m = bank_match;
            for (k, (&bit, &nbit)) in wr_row.iter().zip(&wr_row_n).enumerate() {
                let sel = if (r >> k) & 1 == 1 { bit } else { nbit };
                m = b.and2(m, sel);
            }
            rows.push(m);
        }
        wwl_raw.push(rows);
    }
    b.pop_group();
    let wwl: Vec<Vec<NetId>> =
        wwl_raw.iter().map(|rows| build_drivers(&mut b, DriverRole::WriteWordLine, rows, w)).collect();

    let bank_sel_in = b.input_bus("bank_sel", bank_addr_bits);
    let neg_in = b.input("neg");
    let clear_in = b.input("clear");
    let prec_in = b.input_bus("prec", levels + 1);

    // Global controls fan out to every column: distribute them through
    // buffer spines (one copy per 16-column bucket) so post-layout RC
    // stays bounded — the control-distribution network of a real macro.
    let ctrl_buckets = w.div_ceil(16);
    b.push_group("ctrl_spine");
    let neg_c = fanout_tree(&mut b, neg_in, ctrl_buckets);
    let clear_c = fanout_tree(&mut b, clear_in, ctrl_buckets);
    let prec_c: Vec<Vec<NetId>> = prec_in.iter().map(|&p| fanout_tree(&mut b, p, groups.max(1))).collect();
    // Bank selects drive every mux site of a column (H pins): give each
    // column its own strong leaf fed from a per-8-column spine of X16
    // buffers.
    let bank_sel: Vec<Vec<NetId>> = {
        let per_bit: Vec<Vec<NetId>> = bank_sel_in
            .iter()
            .map(|&s| {
                let root = b.add(syndcim_pdk::CellKind::BufX16, &[s])[0];
                let mids: Vec<NetId> =
                    (0..w.div_ceil(8)).map(|_| b.add(syndcim_pdk::CellKind::BufX16, &[root])[0]).collect();
                (0..w).map(|c| b.add(syndcim_pdk::CellKind::BufX16, &[mids[c / 8]])[0]).collect()
            })
            .collect();
        (0..w).map(|c| per_bit.iter().map(|v| v[c]).collect()).collect()
    };
    b.pop_group();

    // ---- array --------------------------------------------------------
    let arr_cfg = ArrayConfig { h, w, mcr, bitcell: choice.bitcell, multmux: choice.multmux };
    let arr = build_array(&mut b, arr_cfg, &act, &wwl, &wbl, &bank_sel);

    // Per-(group, position) negate controls for retimed OFU sign
    // handling: the column at position jj within its group is negated
    // when any active precision makes it the weight MSB of its channel.
    let retimed_neg: Option<Vec<Vec<NetId>>> = if choice.ofu_negate_retimed {
        Some(
            (0..groups)
                .map(|g| {
                    (0..w_bits)
                        .map(|jj| {
                            let ks = negate_levels(jj, w_bits);
                            let mut ctrl = prec_c[ks[0]][g];
                            for &k in &ks[1..] {
                                ctrl = b.or2(ctrl, prec_c[k][g]);
                            }
                            // Effective per-cycle sign = serial MSB flag
                            // XOR the precision-MSB control.
                            let neg_local = neg_c[(g * w_bits) / 16];
                            b.xor2(neg_local, ctrl)
                        })
                        .collect()
                })
                .collect(),
        )
    } else {
        None
    };

    // ---- per-column datapath -------------------------------------------
    let tree_cfg = AdderTreeConfig {
        kind: choice.tree_kind,
        carry_reorder: choice.carry_reorder,
        final_cpa: !choice.tree_retimed,
    };
    let split = choice.column_split.max(1);
    assert!(split.is_power_of_two() && h.is_multiple_of(split), "column split must divide H");

    let mut sa_buses: Vec<Vec<NetId>> = Vec::with_capacity(w);
    for c in 0..w {
        b.push_group(&format!("col{c}"));

        // Adder tree(s) over this column's products.
        b.push_group("tree");
        let chunk = h / split;
        let mut parts: Vec<Vec<NetId>> = Vec::with_capacity(split);
        for s in 0..split {
            let slice = &arr.products[c][s * chunk..(s + 1) * chunk];
            match build_adder_tree(&mut b, slice, tree_cfg) {
                TreeOutput::Binary(sum) => parts.push(sum),
                TreeOutput::CarrySave { a, b: bb } => {
                    // Retimed: register the redundant pair here.
                    let ra = b.dff_bus(&a);
                    let rb = b.dff_bus(&bb);
                    // CPA after the register (runs in the S&A stage).
                    parts.push(cpa(&mut b, &ra, &rb));
                }
            }
        }
        // Recombine split chunks to the full count (unsigned adds).
        let mut psum = combine_counts(&mut b, parts);
        psum.truncate(psum_bits);
        while psum.len() < psum_bits {
            let zero = b.const0();
            psum.push(zero);
        }
        // Pipeline register between tree and S&A (unless pruned/retimed —
        // when retimed the register already sits inside the tree stage).
        if choice.pipe_tree_sa && !choice.tree_retimed {
            psum = b.dff_bus(&psum);
        }
        b.pop_group();

        // Shift-and-add accumulator.
        b.push_group("sa");
        let col_neg = match &retimed_neg {
            Some(ctrl) => ctrl[c / w_bits][c % w_bits],
            None => neg_c[c / 16],
        };
        let sa = build_shift_add(
            &mut b,
            ShiftAddConfig { psum_bits, act_bits: act_bits as usize },
            &psum,
            col_neg,
            clear_c[c / 16],
        );
        b.pop_group();
        b.pop_group();
        sa_buses.push(sa.acc);
    }

    // ---- output fusion --------------------------------------------------
    let ofu_cfg = OfuConfig {
        w_bits,
        sa_bits,
        negate_stage: !choice.ofu_negate_retimed,
        extra_pipeline: choice.ofu_extra_pipe,
    };
    b.push_group("ofu");
    for g in 0..groups {
        // Per-group subgroup so SDP placement stacks each group's fusion
        // levels vertically in its own sub-strip.
        b.push_group(&format!("g{g}"));
        let slice = &sa_buses[g * w_bits..(g + 1) * w_bits];
        let prec_g: Vec<NetId> = prec_c.iter().map(|v| v[g]).collect();
        let out = build_ofu(&mut b, ofu_cfg, slice, &prec_g);
        for (k, level) in out.levels.iter().enumerate() {
            for (i, bus) in level.iter().enumerate() {
                b.output_bus(&format!("out_g{g}_l{k}_{i}"), bus);
            }
        }
        b.pop_group();
    }
    b.pop_group();

    // ---- FP & INT alignment ---------------------------------------------
    let fp = spec.widest_fp();
    if let Some(fmt) = fp {
        let rows: Vec<FpRowPorts> = (0..h)
            .map(|r| FpRowPorts {
                sign: b.input(format!("fp_s{r}")),
                exp: b.input_bus(&format!("fp_e{r}"), fmt.exp_bits as usize),
                man: b.input_bus(&format!("fp_m{r}"), fmt.man_bits as usize),
            })
            .collect();
        let al = syndcim_subckt::build_align_pipelined(&mut b, fmt, &rows, choice.align_pipelined);
        b.push_group("align");
        for (r, bus) in al.aligned.iter().enumerate() {
            let reg = b.dff_bus(bus);
            b.output_bus(&format!("al{r}"), &reg);
        }
        let emax_reg = b.dff_bus(&al.e_max);
        b.output_bus("emax", &emax_reg);
        b.pop_group();
    }

    MacroNetlist {
        module: b.finish(),
        bitcells: arr.bitcells,
        h,
        w,
        mcr,
        act_bits,
        w_bits: w_bits as u32,
        sa_bits,
        groups,
        ofu_cfg,
        mac_pipeline_depth: usize::from(choice.pipe_tree_sa),
        fp,
        choice: *choice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::{validate, Connectivity};

    fn tiny_spec() -> MacroSpec {
        MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 500.0,
            f_wu_mhz: 500.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        }
    }

    #[test]
    fn assembled_macro_is_well_formed() {
        let lib = CellLibrary::syn40();
        let spec = tiny_spec();
        let m = assemble(&lib, &spec, &DesignChoice::default());
        let conn = Connectivity::build(&m.module).unwrap();
        validate(&m.module, &conn).unwrap();
        assert_eq!(m.bitcells.len(), 8 * 8 * 2);
        assert_eq!(m.groups, 2); // 8 columns / 4-bit weights
        assert_eq!(m.act_bits, 4);
        assert_eq!(m.sa_bits, 4 + 4); // count_bits(8) + act_bits
                                      // Output ports exist for every level.
        assert!(m.module.port(&format!("{}[0]", m.output_port(0, 0, 0))).is_some());
        assert!(m.module.port(&format!("{}[0]", m.output_port(1, 2, 0))).is_some());
    }

    #[test]
    fn all_choice_shapes_assemble() {
        let lib = CellLibrary::syn40();
        let spec = tiny_spec();
        for retimed in [false, true] {
            for split in [1usize, 2] {
                for merged in [false, true] {
                    if merged && retimed {
                        continue;
                    }
                    for neg_retime in [false, true] {
                        let choice = DesignChoice {
                            tree_retimed: retimed,
                            column_split: split,
                            pipe_tree_sa: !merged,
                            ofu_negate_retimed: neg_retime,
                            ofu_extra_pipe: split == 2,
                            ..DesignChoice::default()
                        };
                        let m = assemble(&lib, &spec, &choice);
                        let conn = Connectivity::build(&m.module).unwrap();
                        validate(&m.module, &conn).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "retiming requires")]
    fn retiming_without_register_is_rejected() {
        let lib = CellLibrary::syn40();
        let spec = tiny_spec();
        let choice = DesignChoice { tree_retimed: true, pipe_tree_sa: false, ..DesignChoice::default() };
        assemble(&lib, &spec, &choice);
    }

    #[test]
    fn fp_spec_adds_alignment_ports() {
        let lib = CellLibrary::syn40();
        let mut spec = tiny_spec();
        spec.fp_precisions = vec![FpFormat::FP4];
        let m = assemble(&lib, &spec, &DesignChoice::default());
        assert!(m.fp.is_some());
        assert!(m.module.port("fp_s0").is_some());
        assert!(m.module.port("al0[0]").is_some());
    }
}
