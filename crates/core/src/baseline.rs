//! Baseline compilers for the Fig. 8 comparison.
//!
//! Template-based generators (AutoDCIM and successors) fix their
//! subcircuits up front and never search: they produce exactly one
//! design per spec, regardless of performance goals. These baselines
//! run through the *same* assembly/implementation flow as SynDCIM, so
//! the comparison isolates the value of the multi-spec-oriented search.

use crate::design::DesignChoice;
use syndcim_subckt::{AdderTreeKind, BitcellKind, MultMuxKind};

/// Which fixed-template baseline to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// AutoDCIM-style template: 1T pass-gate mux sites, conventional
    /// signed-RCA adder trees, single fixed pipeline, no optimization.
    AutoDcimTemplate,
    /// A compressor-only CSA template (\[14\]-style): efficient adders but
    /// still no performance-aware selection.
    CompressorTemplate,
    /// Full-adder Wallace template: fast but pays area/power everywhere.
    FullAdderTemplate,
}

impl BaselineKind {
    /// All baselines.
    pub const ALL: &'static [BaselineKind] =
        &[BaselineKind::AutoDcimTemplate, BaselineKind::CompressorTemplate, BaselineKind::FullAdderTemplate];

    /// The fixed design choice this template always emits.
    pub fn choice(&self) -> DesignChoice {
        match self {
            BaselineKind::AutoDcimTemplate => DesignChoice {
                bitcell: BitcellKind::Sram6T2T,
                multmux: MultMuxKind::PassGate1T,
                tree_kind: AdderTreeKind::RcaTree,
                carry_reorder: false,
                tree_retimed: false,
                column_split: 1,
                pipe_tree_sa: true,
                ofu_negate_retimed: false,
                ofu_extra_pipe: false,
                align_pipelined: false,
            },
            BaselineKind::CompressorTemplate => DesignChoice {
                bitcell: BitcellKind::Sram6T2T,
                multmux: MultMuxKind::TgNor,
                tree_kind: AdderTreeKind::CompressorCsa,
                carry_reorder: false,
                tree_retimed: false,
                column_split: 1,
                pipe_tree_sa: true,
                ofu_negate_retimed: false,
                ofu_extra_pipe: false,
                align_pipelined: false,
            },
            BaselineKind::FullAdderTemplate => DesignChoice {
                bitcell: BitcellKind::Sram6T2T,
                multmux: MultMuxKind::TgNor,
                tree_kind: AdderTreeKind::MixedCsa { fa_rounds: 99 },
                carry_reorder: false,
                tree_retimed: false,
                column_split: 1,
                pipe_tree_sa: true,
                ofu_negate_retimed: false,
                ofu_extra_pipe: false,
                align_pipelined: false,
            },
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::AutoDcimTemplate => "AutoDCIM-style template",
            BaselineKind::CompressorTemplate => "pure-compressor template",
            BaselineKind::FullAdderTemplate => "full-adder template",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_are_fixed_and_distinct() {
        let a = BaselineKind::AutoDcimTemplate.choice();
        let c = BaselineKind::CompressorTemplate.choice();
        let f = BaselineKind::FullAdderTemplate.choice();
        assert_eq!(a.multmux, MultMuxKind::PassGate1T);
        assert_eq!(a.tree_kind, AdderTreeKind::RcaTree);
        assert_ne!(a, c);
        assert_ne!(c, f);
        // Templates never use the paper's optimizations.
        for ch in [a, c, f] {
            assert!(!ch.tree_retimed && ch.column_split == 1 && !ch.carry_reorder);
        }
    }
}
