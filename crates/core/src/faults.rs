//! Fault-injection campaigns on implemented macros.
//!
//! [`measure_weight_update_coverage`] runs the weight-update workload
//! once, with every injected fault living in its own engine lane
//! alongside a fault-free *golden* lane (lane 0): one simulation,
//! `faults.len() + 1` virtual dies. Every lane sees the **identical**
//! write-pattern stimulus, so any state divergence from the golden
//! lane is caused by the injected fault alone:
//!
//! * a fault is **detected** when any bitcell ends the campaign with a
//!   different value than the golden lane — exactly what a production
//!   write-readback test observes at the macro outputs;
//! * an undetected fault **survives**: the macro silently stores wrong
//!   (or coincidentally right) data. The report carries the mean and
//!   spread of the per-lane write energy over the surviving lanes via
//!   the engine's per-lane toggle accounting, so a campaign also says
//!   what the escapes cost.
//!
//! Determinism: the stimulus stream is the same xorshift stream
//! [`measure_weight_update`](crate::measure_weight_update) drives for
//! pattern 0, and fault application is a pure lane-mask AND/OR/XOR at
//! the engine's write boundary — identical `(seed, faults)` inputs
//! produce byte-identical [`FaultCoverageReport::to_json`] artifacts.

use syndcim_engine::{EngineSim, Fault, FaultKind, FaultPlan};
use syndcim_netlist::NetId;
use syndcim_pdk::OperatingPoint;
use syndcim_sim::SimBackend;
use syndcim_telemetry as telemetry;

use crate::error::CoreError;
use crate::eval::rand_like::next_bit;
use crate::eval::{configure_precision, pattern_seed, quiesce};
use crate::flow::ImplementedMacro;
use crate::shmoo::push_json_floats;

/// Outcome of one fault-injection campaign on the weight-update path.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverageReport {
    /// Faults injected (one engine lane each).
    pub injected: usize,
    /// Faults whose effect reached an observable bitcell.
    pub detected: usize,
    /// Indices (into the injected fault list) of undetected faults.
    pub survivors: Vec<usize>,
    /// Mean write energy per bit over the *surviving* lanes, in fJ
    /// (0 when every fault was detected).
    pub survivor_energy_per_bit_fj: f64,
    /// Population standard deviation of the survivor write energy, fJ.
    pub survivor_energy_per_bit_std_fj: f64,
    /// Write energy per bit of the fault-free golden lane, in fJ.
    pub golden_energy_per_bit_fj: f64,
    /// Bits written per lane during the campaign.
    pub bits_written: usize,
    /// Stimulus seed the campaign drove.
    pub seed: u64,
}

impl FaultCoverageReport {
    /// Fraction of injected faults detected (1.0 for an empty
    /// campaign: nothing escaped).
    pub fn coverage(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.detected as f64 / self.injected as f64
        }
    }

    /// Serialize with a deterministic schema (fixed key order), the
    /// same contract as [`crate::YieldReport::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"syndcim-fault-coverage-v1\"");
        out.push_str(&format!(
            ",\"injected\":{},\"detected\":{},\"coverage\":{}",
            self.injected,
            self.detected,
            self.coverage()
        ));
        out.push_str(",\"survivors\":[");
        for (i, s) in self.survivors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{s}"));
        }
        out.push(']');
        push_json_floats(
            &mut out,
            ",\"survivor_energy_per_bit_fj\":",
            &[self.survivor_energy_per_bit_fj, self.survivor_energy_per_bit_std_fj],
        );
        out.push_str(&format!(
            ",\"golden_energy_per_bit_fj\":{},\"bits_written\":{},\"seed\":{}}}",
            self.golden_energy_per_bit_fj, self.bits_written, self.seed
        ));
        out
    }
}

/// Resolve a port name on the implemented macro to the net a
/// [`Fault`] can target, if the port exists. Convenience for building
/// campaigns over named write/control ports (`"wbl[3]"`, `"wr_en"`,
/// `"act[0]"`, …).
pub fn port_net(im: &ImplementedMacro, port: &str) -> Option<NetId> {
    im.mac.module.port(port).map(|p| p.net)
}

/// Run the weight-update workload with `faults[i]` injected into lane
/// `i + 1` (lane 0 stays golden) and report fault coverage plus the
/// write-energy profile of the surviving lanes.
///
/// # Errors
///
/// Returns [`CoreError::PatternCount`] when the campaign (faults plus
/// the golden lane) exceeds the engine lane capacity, and
/// [`CoreError::Engine`] when the fault plan is malformed
/// (out-of-range net, contradictory stuck-ats on one lane).
pub fn measure_weight_update_coverage(
    im: &ImplementedMacro,
    op: OperatingPoint,
    f_mhz: f64,
    seed: u64,
    faults: &[(NetId, FaultKind)],
) -> Result<FaultCoverageReport, CoreError> {
    telemetry::span!("eval.fault_coverage");
    let mac = &im.mac;
    let lanes = faults.len() + 1;
    if lanes > EngineSim::MAX_LANES {
        return Err(CoreError::PatternCount { patterns: lanes, max: EngineSim::MAX_LANES });
    }
    telemetry::counter("eval.faults_injected").add(faults.len() as u64);

    let mut plan = FaultPlan::new();
    for (i, &(net, kind)) in faults.iter().enumerate() {
        plan.push(Fault { net, lane: i + 1, kind });
    }

    let mut sim = EngineSim::try_new(&im.compiled.program, &mac.module, lanes)?;
    sim.enable_lane_toggles();
    configure_precision(&mut sim, mac, mac.w_bits);
    quiesce(&mut sim, mac);
    // Install after the quiesce so transient flip cycles count from
    // the first stimulus step, and stuck nets are forced from a
    // settled state.
    sim.install_faults(&plan)?;
    sim.reset_activity();

    // Identical write stream in every lane (the golden lane's pattern-0
    // stream), broadcast across all lane words.
    let wbl_nets: Vec<NetId> = (0..mac.w).map(|c| sim.net_of(&format!("wbl[{c}]"))).collect();
    let mut state = pattern_seed(seed, 0) | 1;
    for bank in 0..mac.mcr {
        for row in 0..mac.h {
            sim.set_all("wr_en", true);
            sim.set_bus_all("wr_row", mac.h.trailing_zeros(), row as i64);
            if mac.mcr > 1 {
                sim.set_bus_all("wr_bank", mac.mcr.trailing_zeros(), bank as i64);
            }
            for &net in &wbl_nets {
                let word = if next_bit(&mut state) { !0u64 } else { 0 };
                for wi in 0..sim.words() {
                    sim.drive_word_at(net, wi, word);
                }
            }
            sim.step();
        }
    }
    sim.set_all("wr_en", false);

    // A fault is detected when any bitcell diverged from the golden
    // lane — the write-readback observation a tester has.
    let mut survivors = Vec::new();
    let mut detected = 0usize;
    for l in 1..lanes {
        let diverged =
            mac.bitcells.iter().any(|bc| sim.state_of_lane(bc.inst, l) != sim.state_of_lane(bc.inst, 0));
        if diverged {
            detected += 1;
        } else {
            survivors.push(l - 1);
        }
    }

    let bits = mac.w * mac.h * mac.mcr;
    let cycles = sim.lane_cycles() / lanes as u64;
    let energy_of_lane = |l: usize| -> f64 {
        let toggles = sim.lane_toggle_table(l).expect("per-lane toggles enabled before stimulus");
        let power = im.compiled.power.report(&toggles, cycles, f_mhz, op);
        power.energy_per_cycle_pj * 1000.0 * cycles as f64 / bits as f64
    };
    let golden_energy = energy_of_lane(0);
    let survivor_energies: Vec<f64> = survivors.iter().map(|&i| energy_of_lane(i + 1)).collect();
    let (mean, std) = if survivor_energies.is_empty() {
        (0.0, 0.0)
    } else {
        let mean = survivor_energies.iter().sum::<f64>() / survivor_energies.len() as f64;
        let var = survivor_energies.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>()
            / survivor_energies.len() as f64;
        (mean, var.sqrt())
    };

    Ok(FaultCoverageReport {
        injected: faults.len(),
        detected,
        survivors,
        survivor_energy_per_bit_fj: mean,
        survivor_energy_per_bit_std_fj: std,
        golden_energy_per_bit_fj: golden_energy,
        bits_written: bits,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignChoice;
    use crate::flow::implement;
    use crate::spec::MacroSpec;
    use syndcim_pdk::CellLibrary;

    fn implemented() -> (ImplementedMacro, CellLibrary) {
        let lib = CellLibrary::syn40();
        let spec = MacroSpec {
            h: 8,
            w: 8,
            mcr: 2,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        };
        let im = implement(&lib, &spec, &DesignChoice::default()).unwrap();
        (im, lib)
    }

    #[test]
    fn stuck_write_bitlines_are_detected_and_idle_net_faults_survive() {
        let (im, _lib) = implemented();
        let op = OperatingPoint::at_voltage(0.9);
        // Stuck write bitlines corrupt stored weights → detected. A
        // stuck-at-0 on `neg` (held low throughout the write workload)
        // never diverges → survives.
        let faults = vec![
            (port_net(&im, "wbl[0]").unwrap(), FaultKind::StuckAt0),
            (port_net(&im, "wbl[3]").unwrap(), FaultKind::StuckAt1),
            (port_net(&im, "neg").unwrap(), FaultKind::StuckAt0),
        ];
        let r = measure_weight_update_coverage(&im, op, 400.0, 99, &faults).unwrap();
        assert_eq!(r.injected, 3);
        assert_eq!(r.detected, 2, "{r:?}");
        assert_eq!(r.survivors, vec![2]);
        assert!((r.coverage() - 2.0 / 3.0).abs() < 1e-12);
        // The surviving lane ran the exact golden stimulus on a net
        // already at its stuck value — its energy matches golden.
        assert!(r.survivor_energy_per_bit_fj > 0.0);
        assert!((r.survivor_energy_per_bit_fj - r.golden_energy_per_bit_fj).abs() < 1e-9, "{r:?}");
        assert_eq!(r.survivor_energy_per_bit_std_fj, 0.0);
    }

    #[test]
    fn transient_flip_is_detected_only_when_it_hits_a_write_cycle() {
        let (im, _lib) = implemented();
        let op = OperatingPoint::at_voltage(0.9);
        let wbl0 = port_net(&im, "wbl[0]").unwrap();
        let writes = (im.mac.h * im.mac.mcr) as u64;
        // A flip during the write burst corrupts one captured bit; a
        // flip after the last write cycle can never be stored.
        let faults = vec![
            (wbl0, FaultKind::FlipAtCycle(0)),
            (wbl0, FaultKind::FlipAtCycle(writes / 2)),
            (wbl0, FaultKind::FlipAtCycle(writes + 10)),
        ];
        let r = measure_weight_update_coverage(&im, op, 400.0, 7, &faults).unwrap();
        assert_eq!(r.detected, 2, "{r:?}");
        assert_eq!(r.survivors, vec![2]);
    }

    #[test]
    fn empty_campaign_reports_full_coverage_and_golden_energy() {
        let (im, _lib) = implemented();
        let r = measure_weight_update_coverage(&im, OperatingPoint::at_voltage(0.9), 400.0, 99, &[]).unwrap();
        assert_eq!(r.injected, 0);
        assert_eq!(r.coverage(), 1.0);
        assert!(r.golden_energy_per_bit_fj > 0.0);
        // And the golden lane's energy matches the plain single-pattern
        // weight-update measurement (same stream, same accounting).
        let wu = crate::eval::measure_weight_update_patterns(
            &im,
            &CellLibrary::syn40(),
            OperatingPoint::at_voltage(0.9),
            400.0,
            99,
            1,
            crate::eval::EvalBackend::Engine,
        )
        .unwrap();
        assert!((r.golden_energy_per_bit_fj - wu.energy_per_bit_fj).abs() < 1e-9, "{r:?} vs {wu:?}");
    }

    #[test]
    fn malformed_campaigns_return_typed_errors() {
        let (im, _lib) = implemented();
        let op = OperatingPoint::at_voltage(0.9);
        let wbl0 = port_net(&im, "wbl[0]").unwrap();
        // Too many lanes.
        let many = vec![(wbl0, FaultKind::StuckAt0); EngineSim::MAX_LANES];
        assert!(matches!(
            measure_weight_update_coverage(&im, op, 400.0, 0, &many).unwrap_err(),
            CoreError::PatternCount { .. }
        ));
        // Unknown port name resolves to None instead of panicking.
        assert!(port_net(&im, "no_such_port").is_none());
        let json = measure_weight_update_coverage(&im, op, 400.0, 3, &[(wbl0, FaultKind::StuckAt1)])
            .unwrap()
            .to_json();
        assert!(json.starts_with("{\"schema\":\"syndcim-fault-coverage-v1\""), "{json}");
        let again = measure_weight_update_coverage(&im, op, 400.0, 3, &[(wbl0, FaultKind::StuckAt1)])
            .unwrap()
            .to_json();
        assert_eq!(json, again, "byte-identical artifact for identical campaigns");
    }
}
