//! Pareto-frontier extraction over design points.
//!
//! "A series of DCIM designs at Pareto frontiers are generated for
//! subsequent synthesis and APR" (§III-A). Points are compared on
//! (power, area, latency), all minimized; only timing-met points are
//! eligible.

use crate::design::DesignPoint;

fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    let ae = &a.est;
    let be = &b.est;
    let le =
        ae.power_uw <= be.power_uw && ae.area_um2 <= be.area_um2 && ae.latency_cycles <= be.latency_cycles;
    let lt = ae.power_uw < be.power_uw || ae.area_um2 < be.area_um2 || ae.latency_cycles < be.latency_cycles;
    le && lt
}

/// Extract the non-dominated subset of `points` (timing-met points
/// only). Duplicate-PPA points keep one representative.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let met: Vec<&DesignPoint> = points.iter().filter(|p| p.est.timing_met).collect();
    let mut out: Vec<DesignPoint> = Vec::new();
    'outer: for (i, p) in met.iter().enumerate() {
        for (j, q) in met.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        // Deduplicate identical PPA.
        if out.iter().any(|r| {
            (r.est.power_uw - p.est.power_uw).abs() < 1e-9
                && (r.est.area_um2 - p.est.area_um2).abs() < 1e-9
                && r.est.latency_cycles == p.est.latency_cycles
        }) {
            continue;
        }
        out.push((*p).clone());
    }
    // Stable presentation order: by power ascending.
    out.sort_by(|a, b| a.est.power_uw.partial_cmp(&b.est.power_uw).expect("finite power"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignChoice, PpaEstimate};

    fn pt(power: f64, area: f64, latency: usize, met: bool) -> DesignPoint {
        DesignPoint {
            choice: DesignChoice::default(),
            est: PpaEstimate {
                power_uw: power,
                area_um2: area,
                latency_cycles: latency,
                timing_met: met,
                ..Default::default()
            },
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![pt(10.0, 10.0, 5, true), pt(20.0, 20.0, 5, true), pt(5.0, 30.0, 5, true)];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|p| p.est.power_uw != 20.0));
    }

    #[test]
    fn timing_violators_are_excluded() {
        let pts = vec![pt(1.0, 1.0, 1, false), pt(10.0, 10.0, 5, true)];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 1);
        assert!(f[0].est.timing_met);
    }

    #[test]
    fn frontier_is_mutually_non_dominating() {
        let pts: Vec<DesignPoint> = (0..20)
            .map(|i| pt(10.0 + (i as f64 * 7.0) % 50.0, 100.0 - (i as f64 * 13.0) % 80.0, (i % 4) + 1, true))
            .collect();
        let f = pareto_frontier(&pts);
        for a in &f {
            for b in &f {
                if a.est != b.est {
                    assert!(!dominates(a, b), "{a:?} dominates {b:?}");
                }
            }
        }
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![pt(10.0, 10.0, 5, true), pt(10.0, 10.0, 5, true)];
        assert_eq!(pareto_frontier(&pts).len(), 1);
    }

    #[test]
    fn sorted_by_power() {
        let pts = vec![pt(30.0, 1.0, 5, true), pt(10.0, 3.0, 5, true), pt(20.0, 2.0, 5, true)];
        let f = pareto_frontier(&pts);
        let powers: Vec<f64> = f.iter().map(|p| p.est.power_uw).collect();
        assert_eq!(powers, vec![10.0, 20.0, 30.0]);
    }
}
