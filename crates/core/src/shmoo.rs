//! Shmoo analysis: voltage–frequency pass/fail map of an implemented
//! macro (Fig. 9 of the paper).
//!
//! A (V, f) point *passes* when the post-layout worst slack at that
//! supply is non-negative and the supply is above the SRAM retention
//! limit. This is exactly what a tester shmoo measures, with the
//! alpha-power-scaled STA standing in for silicon.

use syndcim_engine::EngineSim;
use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::PowerAnalyzer;
use syndcim_sta::VariationModel;
use syndcim_telemetry as telemetry;

use crate::error::CoreError;
use crate::eval::{int_activity, EvalBackend};
use crate::flow::{ImplementedMacro, PowerBackend, StaBackend};

/// Minimum supply for reliable bitcell operation (read/write margin),
/// in volts.
pub const V_MIN_FUNCTIONAL: f64 = 0.58;

/// One shmoo grid.
#[derive(Debug, Clone)]
pub struct Shmoo {
    /// Supply axis, volts (ascending).
    pub voltages: Vec<f64>,
    /// Frequency axis, MHz (ascending).
    pub freqs_mhz: Vec<f64>,
    /// `pass[vi][fi]` — true when the macro runs at `freqs_mhz[fi]` at
    /// `voltages[vi]`.
    pub pass: Vec<Vec<bool>>,
}

impl Shmoo {
    /// Maximum passing frequency at a voltage, if any.
    pub fn fmax_at(&self, vi: usize) -> Option<f64> {
        self.pass[vi].iter().enumerate().rev().find(|(_, &p)| p).map(|(fi, _)| self.freqs_mhz[fi])
    }

    /// Render the classic shmoo plot (rows = voltage descending,
    /// columns = frequency ascending; `■` pass, `·` fail).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("  V\\f(MHz) ");
        for f in &self.freqs_mhz {
            s.push_str(&format!("{f:>6.0}"));
        }
        s.push('\n');
        for (vi, v) in self.voltages.iter().enumerate().rev() {
            s.push_str(&format!("  {v:>7.2}V "));
            for p in &self.pass[vi] {
                s.push_str(if *p { "     ■" } else { "     ·" });
            }
            s.push('\n');
        }
        s
    }
}

/// Sweep the shmoo grid for `im` on the compiled STA (the macro's
/// timing program evaluates every functional voltage in one batch).
pub fn shmoo(im: &ImplementedMacro, lib: &CellLibrary, voltages: &[f64], freqs_mhz: &[f64]) -> Shmoo {
    shmoo_with(im, lib, voltages, freqs_mhz, StaBackend::default())
}

/// [`shmoo`] on an explicit STA backend.
///
/// `Compiled` resolves the whole voltage axis with
/// [`syndcim_sta::CompiledSta::fmax_many`] on the macro's cached timing
/// program; `Reference` rebuilds and walks the reference analyzer per
/// voltage (the seed behaviour). The two grids are identical — pinned
/// by the shmoo regression tests.
pub fn shmoo_with(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    voltages: &[f64],
    freqs_mhz: &[f64],
    backend: StaBackend,
) -> Shmoo {
    telemetry::span!("shmoo");
    telemetry::counter("shmoo.grids").incr();
    telemetry::counter("shmoo.points").add((voltages.len() * freqs_mhz.len()) as u64);
    // `fmax` per voltage; `None` below the bitcell retention limit.
    let fmaxes: Vec<Option<f64>> = match backend {
        StaBackend::Compiled => {
            let ops: Vec<OperatingPoint> = voltages
                .iter()
                .filter(|&&v| v >= V_MIN_FUNCTIONAL)
                .map(|&v| OperatingPoint::at_voltage(v))
                .collect();
            let mut batch = im.compiled.sta.fmax_many(&ops).into_iter();
            voltages
                .iter()
                .map(|&v| (v >= V_MIN_FUNCTIONAL).then(|| batch.next().expect("one fmax per op")))
                .collect()
        }
        StaBackend::Reference => voltages
            .iter()
            .map(|&v| {
                (v >= V_MIN_FUNCTIONAL)
                    .then(|| im.fmax_mhz_with(lib, OperatingPoint::at_voltage(v), StaBackend::Reference))
            })
            .collect(),
    };

    let pass = fmaxes
        .iter()
        .map(|fmax| match fmax {
            None => vec![false; freqs_mhz.len()],
            Some(fmax) => freqs_mhz.iter().map(|&f| f <= *fmax).collect(),
        })
        .collect();
    Shmoo { voltages: voltages.to_vec(), freqs_mhz: freqs_mhz.to_vec(), pass }
}

/// A shmoo grid annotated with measured power at every passing point.
#[derive(Debug, Clone)]
pub struct PowerShmoo {
    /// The pass/fail grid.
    pub shmoo: Shmoo,
    /// `power_uw[vi][fi]` — total power in µW at each *passing* point
    /// (`None` where the macro fails), from engine-measured switching
    /// activity rescaled across the (V, f) grid.
    pub power_uw: Vec<Vec<Option<f64>>>,
}

/// Sweep the shmoo grid and annotate every passing point with the total
/// power the given INT workload would draw there.
///
/// Switching activity is voltage- and frequency-independent, so the
/// workload is simulated **once** on the compiled bit-parallel engine
/// (all passes as parallel lanes) and the toggle counts are rescaled
/// analytically across the grid — one simulation instead of one per
/// grid point. The per-corner rescaling runs on the macro's compiled
/// power program ([`syndcim_power::CompiledPower::report_many`]
/// resolves every passing point in one batch over shared rate
/// columns); see [`shmoo_with_power_on`] for backend selection.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if the workload fails its
/// golden-model check.
pub fn shmoo_with_power(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    voltages: &[f64],
    freqs_mhz: &[f64],
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
) -> Result<PowerShmoo, CoreError> {
    shmoo_with_power_on(
        im,
        lib,
        voltages,
        freqs_mhz,
        pa,
        passes,
        weights,
        StaBackend::default(),
        PowerBackend::default(),
    )
}

/// [`shmoo_with_power`] with explicit STA and power backends (activity
/// measurement stays on the simulation engine either way). Exists so
/// regression tests can pin the compiled grid — pass map *and*
/// annotated power — against the reference analyzers.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if the workload fails its
/// golden-model check.
#[allow(clippy::too_many_arguments)]
pub fn shmoo_with_power_on(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    voltages: &[f64],
    freqs_mhz: &[f64],
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
    sta: StaBackend,
    power: PowerBackend,
) -> Result<PowerShmoo, CoreError> {
    telemetry::span!("shmoo.power");
    let grid = shmoo_with(im, lib, voltages, freqs_mhz, sta);
    let activity = int_activity(im, lib, pa, passes, weights, EvalBackend::Engine)?;
    let cycles = activity.lane_cycles.max(1);
    let power_uw = match power {
        PowerBackend::Compiled => {
            // One batch over the macro's compiled power program: the
            // toggle-rate columns are resolved once and every passing
            // point is a linear pass over shared read-only arrays.
            let points: Vec<(f64, OperatingPoint)> = grid
                .pass
                .iter()
                .enumerate()
                .flat_map(|(vi, row)| {
                    row.iter().enumerate().filter(|(_, &ok)| ok).map(move |(fi, _)| (vi, fi))
                })
                .map(|(vi, fi)| (grid.freqs_mhz[fi], OperatingPoint::at_voltage(grid.voltages[vi])))
                .collect();
            let mut reports = im.compiled.power.report_many(&activity.toggles, cycles, &points).into_iter();
            grid.pass
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&ok| {
                            ok.then(|| reports.next().expect("one report per passing point").total_uw())
                        })
                        .collect()
                })
                .collect()
        }
        PowerBackend::Reference => {
            // The seed behaviour: rebuild the analyzer, then one module
            // walk per passing grid point.
            let analyzer = PowerAnalyzer::with_wire_caps(&im.mac.module, lib, &im.wires.cap_ff)?;
            grid.pass
                .iter()
                .enumerate()
                .map(|(vi, row)| {
                    row.iter()
                        .enumerate()
                        .map(|(fi, &ok)| {
                            ok.then(|| {
                                analyzer
                                    .from_activity(
                                        &activity.toggles,
                                        cycles,
                                        grid.freqs_mhz[fi],
                                        OperatingPoint::at_voltage(grid.voltages[vi]),
                                    )
                                    .total_uw()
                            })
                        })
                        .collect()
                })
                .collect()
        }
    };
    Ok(PowerShmoo { shmoo: grid, power_uw })
}

/// A shmoo grid where every point carries a *pass fraction* — the
/// share of Monte-Carlo process samples (virtual dies) that meet
/// timing there — instead of a single pass/fail bit.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldShmoo {
    /// Supply axis, volts (ascending).
    pub voltages: Vec<f64>,
    /// Frequency axis, MHz (ascending).
    pub freqs_mhz: Vec<f64>,
    /// `pass_fraction[vi][fi]` — fraction of sampled dies that run at
    /// `freqs_mhz[fi]` at `voltages[vi]` (0.0 below the retention
    /// limit).
    pub pass_fraction: Vec<Vec<f64>>,
    /// Monte-Carlo samples behind every fraction.
    pub samples: usize,
}

impl YieldShmoo {
    /// Maximum frequency at a voltage where at least `min_yield` of the
    /// sampled dies still pass, if any.
    pub fn fmax_at_yield(&self, vi: usize, min_yield: f64) -> Option<f64> {
        self.pass_fraction[vi]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &y)| y >= min_yield)
            .map(|(fi, _)| self.freqs_mhz[fi])
    }

    /// Render the yield shmoo as banded marks (rows = voltage
    /// descending): `■` every die passes, `▓` ≥ 75 %, `▒` ≥ 25 %, `░`
    /// some dies, `·` none.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("  V\\f(MHz) ");
        for f in &self.freqs_mhz {
            s.push_str(&format!("{f:>6.0}"));
        }
        s.push('\n');
        for (vi, v) in self.voltages.iter().enumerate().rev() {
            s.push_str(&format!("  {v:>7.2}V "));
            for &y in &self.pass_fraction[vi] {
                let mark = if y >= 1.0 {
                    '■'
                } else if y >= 0.75 {
                    '▓'
                } else if y >= 0.25 {
                    '▒'
                } else if y > 0.0 {
                    '░'
                } else {
                    '·'
                };
                s.push_str("     ");
                s.push(mark);
            }
            s.push('\n');
        }
        s
    }
}

/// Variation-aware shmoo: sweep the (V, f) grid over `samples`
/// Monte-Carlo process samples and report the per-point pass fraction.
///
/// One multiplier per sample is drawn from `model` (deterministically,
/// from `seed`) and every `(voltage, sample)` corner rides a single
/// [`syndcim_sta::CompiledSta::fmax_many_scaled`] batch — the same
/// batching [`shmoo`] uses, `samples`× wider. With
/// [`VariationModel::nominal`] the grid collapses to the binary
/// [`shmoo`] map (`1.0`/`0.0`), bit-identically — pinned by the yield
/// regression tests.
///
/// # Errors
///
/// Returns [`CoreError::EmptyAxis`] for an empty voltage or frequency
/// axis and [`CoreError::PatternCount`] when `samples` is zero or
/// exceeds the engine lane capacity (the cap keeps yield grids
/// commensurate with fault-injection runs, which map samples to lanes).
pub fn shmoo_yield(
    im: &ImplementedMacro,
    voltages: &[f64],
    freqs_mhz: &[f64],
    model: VariationModel,
    samples: usize,
    seed: u64,
) -> Result<YieldShmoo, CoreError> {
    telemetry::span!("shmoo.yield");
    if voltages.is_empty() {
        return Err(CoreError::EmptyAxis { axis: "voltages" });
    }
    if freqs_mhz.is_empty() {
        return Err(CoreError::EmptyAxis { axis: "freqs_mhz" });
    }
    if !(1..=EngineSim::MAX_LANES).contains(&samples) {
        return Err(CoreError::PatternCount { patterns: samples, max: EngineSim::MAX_LANES });
    }
    telemetry::counter("shmoo.grids").incr();
    telemetry::counter("shmoo.points").add((voltages.len() * freqs_mhz.len()) as u64);
    telemetry::counter("shmoo.yield_samples").add(samples as u64);

    // One multiplier per virtual die, shared across the voltage axis
    // (the same die is measured at every supply, as on a tester).
    let scales = model.sample(seed, samples);
    let points: Vec<(OperatingPoint, f64)> = voltages
        .iter()
        .filter(|&&v| v >= V_MIN_FUNCTIONAL)
        .flat_map(|&v| scales.iter().map(move |&s| (OperatingPoint::at_voltage(v), s)))
        .collect();
    let fmaxes = im.compiled.sta.fmax_many_scaled(&points);
    let mut per_voltage = fmaxes.chunks(samples);

    let pass_fraction = voltages
        .iter()
        .map(|&v| {
            if v < V_MIN_FUNCTIONAL {
                return vec![0.0; freqs_mhz.len()];
            }
            let die_fmaxes = per_voltage.next().expect("one fmax chunk per functional voltage");
            freqs_mhz
                .iter()
                .map(|&f| die_fmaxes.iter().filter(|&&fm| f <= fm).count() as f64 / samples as f64)
                .collect()
        })
        .collect();
    Ok(YieldShmoo { voltages: voltages.to_vec(), freqs_mhz: freqs_mhz.to_vec(), pass_fraction, samples })
}

/// A [`YieldShmoo`] plus the variation parameters that produced it —
/// the deterministic, diffable artifact CI uploads next to the
/// telemetry flow report.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// The yield grid.
    pub shmoo: YieldShmoo,
    /// Gaussian sigma of the sampled delay multiplier.
    pub sigma: f64,
    /// Mean of the sampled delay multiplier.
    pub mean: f64,
    /// Monte-Carlo seed.
    pub seed: u64,
}

impl YieldReport {
    /// Run [`shmoo_yield`] and wrap the grid with its provenance.
    ///
    /// # Errors
    ///
    /// Same contract as [`shmoo_yield`].
    pub fn generate(
        im: &ImplementedMacro,
        voltages: &[f64],
        freqs_mhz: &[f64],
        model: VariationModel,
        samples: usize,
        seed: u64,
    ) -> Result<YieldReport, CoreError> {
        let shmoo = shmoo_yield(im, voltages, freqs_mhz, model, samples, seed)?;
        Ok(YieldReport { shmoo, sigma: model.sigma, mean: model.mean, seed })
    }

    /// Serialize with a deterministic schema (fixed key order, axis
    /// values and fractions exactly as computed) — same contract as the
    /// telemetry flow report, so CI can diff two runs byte for byte.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"syndcim-yield-report-v1\"");
        out.push_str(&format!(",\"sigma\":{},\"mean\":{},\"seed\":{}", self.sigma, self.mean, self.seed));
        out.push_str(&format!(",\"samples\":{}", self.shmoo.samples));
        push_json_floats(&mut out, ",\"voltages\":", &self.shmoo.voltages);
        push_json_floats(&mut out, ",\"freqs_mhz\":", &self.shmoo.freqs_mhz);
        out.push_str(",\"pass_fraction\":[");
        for (vi, row) in self.shmoo.pass_fraction.iter().enumerate() {
            if vi > 0 {
                out.push(',');
            }
            push_json_floats(&mut out, "", row);
        }
        out.push_str("]}");
        out
    }
}

/// Append `prefix` then `values` as a JSON array of floats.
pub(crate) fn push_json_floats(out: &mut String, prefix: &str, values: &[f64]) {
    out.push_str(prefix);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignChoice;
    use crate::flow::implement;
    use crate::spec::MacroSpec;

    fn implemented() -> (ImplementedMacro, CellLibrary) {
        let lib = CellLibrary::syn40();
        let spec = MacroSpec {
            h: 8,
            w: 8,
            mcr: 1,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        };
        let im = implement(&lib, &spec, &DesignChoice::default()).unwrap();
        (im, lib)
    }

    #[test]
    fn shmoo_is_monotone_in_voltage_and_frequency() {
        let (im, lib) = implemented();
        let vs = [0.5, 0.7, 0.9, 1.1, 1.2];
        let fs = [100.0, 300.0, 600.0, 1200.0, 2400.0];
        let s = shmoo(&im, &lib, &vs, &fs);
        // Below retention voltage: everything fails.
        assert!(s.pass[0].iter().all(|p| !p));
        // Along frequency: once failing, always failing.
        for row in &s.pass {
            let mut seen_fail = false;
            for &p in row {
                if seen_fail {
                    assert!(!p, "pass after fail breaks shmoo monotonicity");
                }
                seen_fail |= !p;
            }
        }
        // Along voltage: fmax must not decrease.
        let mut prev = 0.0;
        for vi in 1..vs.len() {
            let f = s.fmax_at(vi).unwrap_or(0.0);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn power_shmoo_annotates_passing_points() {
        use syndcim_sim::vectors::{random_ints, seeded_rng};
        let (im, lib) = implemented();
        let mut rng = seeded_rng(31);
        let weights: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let passes: Vec<Vec<i64>> = (0..3).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let vs = [0.5, 0.9, 1.2];
        let fs = [100.0, 400.0];
        let ps = shmoo_with_power(&im, &lib, &vs, &fs, 4, &passes, &weights).unwrap();
        for (vi, row) in ps.shmoo.pass.iter().enumerate() {
            for (fi, &ok) in row.iter().enumerate() {
                assert_eq!(ps.power_uw[vi][fi].is_some(), ok, "power iff passing (v={vi}, f={fi})");
                if let Some(p) = ps.power_uw[vi][fi] {
                    assert!(p > 0.0);
                }
            }
        }
        // Power grows with both frequency and voltage on the passing set.
        let p_low = ps.power_uw[1][0].unwrap();
        let p_high_f = ps.power_uw[1][1].unwrap();
        let p_high_v = ps.power_uw[2][0].unwrap();
        assert!(p_high_f > p_low && p_high_v > p_low);
    }

    /// Satellite regression: the compiled-STA shmoo must reproduce the
    /// reference analyzer's pass/fail map and annotated power exactly —
    /// same grid, same power at every passing point, over a grid dense
    /// enough to cross the retention limit and the timing wall, with
    /// every backend combination (compiled/reference × STA/power)
    /// agreeing bit for bit.
    #[test]
    fn compiled_and_reference_shmoo_agree_on_pass_map_and_power() {
        use syndcim_sim::vectors::{random_ints, seeded_rng};
        let (im, lib) = implemented();
        let vs = [0.5, 0.58, 0.65, 0.8, 0.9, 1.05, 1.2];
        let fs = [50.0, 150.0, 400.0, 900.0, 1500.0, 3000.0];

        let fast = shmoo(&im, &lib, &vs, &fs);
        let slow = shmoo_with(&im, &lib, &vs, &fs, StaBackend::Reference);
        assert_eq!(fast.pass, slow.pass, "pass/fail maps must be identical");
        assert_eq!(fast.voltages, slow.voltages);
        assert_eq!(fast.freqs_mhz, slow.freqs_mhz);

        let mut rng = seeded_rng(47);
        let weights: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let passes: Vec<Vec<i64>> = (0..3).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let fast_p = shmoo_with_power(&im, &lib, &vs, &fs, 4, &passes, &weights).unwrap();
        for (sta, power) in [
            (StaBackend::Reference, PowerBackend::Reference),
            (StaBackend::Reference, PowerBackend::Compiled),
            (StaBackend::Compiled, PowerBackend::Reference),
        ] {
            let other = shmoo_with_power_on(&im, &lib, &vs, &fs, 4, &passes, &weights, sta, power).unwrap();
            assert_eq!(fast_p.shmoo.pass, other.shmoo.pass, "{sta:?}/{power:?}");
            assert_eq!(
                fast_p.power_uw, other.power_uw,
                "annotated power must be identical per point ({sta:?}/{power:?})"
            );
        }
    }

    /// Dense voltage axes push `CompiledSta::fmax_many` over its
    /// parallel threshold; the fanned-out grid must stay
    /// order-identical to the reference per-voltage sweep.
    #[test]
    fn dense_shmoo_parallel_fmax_matches_reference_order() {
        let (im, lib) = implemented();
        // 44 functional voltages — well past the 32-corner parallel
        // threshold — plus two below the retention limit.
        let vs: Vec<f64> = (0..46).map(|i| 0.56 + 0.015 * i as f64).collect();
        let fs = [100.0, 350.0, 700.0, 1400.0, 2800.0];
        let fast = shmoo(&im, &lib, &vs, &fs);
        let slow = shmoo_with(&im, &lib, &vs, &fs, StaBackend::Reference);
        assert_eq!(fast.pass, slow.pass, "parallel fmax_many must keep corner order");
        for vi in 0..vs.len() {
            assert_eq!(fast.fmax_at(vi), slow.fmax_at(vi), "fmax at index {vi}");
        }
    }

    #[test]
    fn render_contains_axes_and_marks() {
        let (im, lib) = implemented();
        let s = shmoo(&im, &lib, &[0.9, 1.2], &[100.0, 100_000.0]);
        let art = s.render();
        assert!(art.contains("1.20V"));
        assert!(art.contains('■'), "{art}");
        assert!(art.contains('·'), "a 100 GHz point must fail:\n{art}");
    }

    /// Zero-variation pin: the Monte-Carlo grid with the nominal model
    /// must collapse to the binary shmoo map exactly — every fraction
    /// is 1.0 where the plain shmoo passes and 0.0 where it fails.
    #[test]
    fn nominal_yield_shmoo_matches_binary_shmoo_exactly() {
        let (im, lib) = implemented();
        let vs = [0.5, 0.58, 0.7, 0.9, 1.1];
        let fs = [100.0, 400.0, 900.0, 1800.0, 3600.0];
        let binary = shmoo(&im, &lib, &vs, &fs);
        let y = shmoo_yield(&im, &vs, &fs, VariationModel::nominal(), 16, 7).unwrap();
        for vi in 0..vs.len() {
            for fi in 0..fs.len() {
                let want = if binary.pass[vi][fi] { 1.0 } else { 0.0 };
                assert_eq!(y.pass_fraction[vi][fi], want, "(v={vi}, f={fi})");
            }
        }
    }

    #[test]
    fn variation_opens_a_band_and_yield_is_monotone_in_frequency() {
        let (im, lib) = implemented();
        let vs = [0.7, 0.9, 1.1];
        // A dense frequency axis straddling nominal fmax at each V.
        let fs: Vec<f64> = (1..40).map(|i| i as f64 * 100.0).collect();
        let y = shmoo_yield(&im, &vs, &fs, VariationModel::gaussian(0.08), 128, 0xD1E).unwrap();
        let _ = lib;
        for (vi, row) in y.pass_fraction.iter().enumerate() {
            // Yield can only drop as frequency rises.
            for fi in 1..row.len() {
                assert!(row[fi] <= row[fi - 1], "(v={vi}, f={fi})");
            }
            // Process spread opens a partial-yield band somewhere on
            // the axis (not every point is exactly 0 or 1).
            assert!(
                row.iter().any(|&p| p > 0.0 && p < 1.0),
                "sigma=0.08 must open a partial band at v index {vi}: {row:?}"
            );
        }
        // Deterministic: same seed, same grid.
        let again = shmoo_yield(&im, &vs, &fs, VariationModel::gaussian(0.08), 128, 0xD1E).unwrap();
        assert_eq!(y, again);
    }

    #[test]
    fn yield_shmoo_rejects_bad_axes_and_sample_counts() {
        let (im, _lib) = implemented();
        let m = VariationModel::nominal();
        assert_eq!(
            shmoo_yield(&im, &[], &[100.0], m, 8, 0).unwrap_err(),
            CoreError::EmptyAxis { axis: "voltages" }
        );
        assert_eq!(
            shmoo_yield(&im, &[0.9], &[], m, 8, 0).unwrap_err(),
            CoreError::EmptyAxis { axis: "freqs_mhz" }
        );
        assert!(matches!(
            shmoo_yield(&im, &[0.9], &[100.0], m, 0, 0).unwrap_err(),
            CoreError::PatternCount { patterns: 0, .. }
        ));
        assert!(matches!(
            shmoo_yield(&im, &[0.9], &[100.0], m, 100_000, 0).unwrap_err(),
            CoreError::PatternCount { patterns: 100_000, .. }
        ));
    }

    #[test]
    fn yield_report_renders_bands_and_serializes_deterministically() {
        let (im, _lib) = implemented();
        let vs = [0.5, 0.8, 1.0];
        let fs: Vec<f64> = (1..20).map(|i| i as f64 * 150.0).collect();
        let r = YieldReport::generate(&im, &vs, &fs, VariationModel::gaussian(0.1), 64, 42).unwrap();
        let art = r.shmoo.render();
        assert!(art.contains('■') && art.contains('·'), "{art}");
        assert!(
            art.contains('▓') || art.contains('▒') || art.contains('░'),
            "sigma=0.1 over 64 dies must produce a partial band:\n{art}"
        );
        assert!(r.shmoo.fmax_at_yield(1, 0.5).is_some());
        assert!(r.shmoo.fmax_at_yield(0, 1e-9).is_none(), "below retention nothing yields");
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"syndcim-yield-report-v1\""), "{json}");
        assert!(json.contains("\"sigma\":0.1") && json.contains("\"seed\":42"), "{json}");
        let again = YieldReport::generate(&im, &vs, &fs, VariationModel::gaussian(0.1), 64, 42).unwrap();
        assert_eq!(json, again.to_json(), "byte-identical artifact for identical runs");
    }
}
