//! Shmoo analysis: voltage–frequency pass/fail map of an implemented
//! macro (Fig. 9 of the paper).
//!
//! A (V, f) point *passes* when the post-layout worst slack at that
//! supply is non-negative and the supply is above the SRAM retention
//! limit. This is exactly what a tester shmoo measures, with the
//! alpha-power-scaled STA standing in for silicon.

use syndcim_pdk::{CellLibrary, OperatingPoint};
use syndcim_power::PowerAnalyzer;

use crate::error::CoreError;
use crate::eval::{int_activity, EvalBackend};
use crate::flow::ImplementedMacro;

/// Minimum supply for reliable bitcell operation (read/write margin),
/// in volts.
pub const V_MIN_FUNCTIONAL: f64 = 0.58;

/// One shmoo grid.
#[derive(Debug, Clone)]
pub struct Shmoo {
    /// Supply axis, volts (ascending).
    pub voltages: Vec<f64>,
    /// Frequency axis, MHz (ascending).
    pub freqs_mhz: Vec<f64>,
    /// `pass[vi][fi]` — true when the macro runs at `freqs_mhz[fi]` at
    /// `voltages[vi]`.
    pub pass: Vec<Vec<bool>>,
}

impl Shmoo {
    /// Maximum passing frequency at a voltage, if any.
    pub fn fmax_at(&self, vi: usize) -> Option<f64> {
        self.pass[vi].iter().enumerate().rev().find(|(_, &p)| p).map(|(fi, _)| self.freqs_mhz[fi])
    }

    /// Render the classic shmoo plot (rows = voltage descending,
    /// columns = frequency ascending; `■` pass, `·` fail).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("  V\\f(MHz) ");
        for f in &self.freqs_mhz {
            s.push_str(&format!("{f:>6.0}"));
        }
        s.push('\n');
        for (vi, v) in self.voltages.iter().enumerate().rev() {
            s.push_str(&format!("  {v:>7.2}V "));
            for p in &self.pass[vi] {
                s.push_str(if *p { "     ■" } else { "     ·" });
            }
            s.push('\n');
        }
        s
    }
}

/// Sweep the shmoo grid for `im`.
pub fn shmoo(im: &ImplementedMacro, lib: &CellLibrary, voltages: &[f64], freqs_mhz: &[f64]) -> Shmoo {
    let mut pass = Vec::with_capacity(voltages.len());
    for &v in voltages {
        let mut row = Vec::with_capacity(freqs_mhz.len());
        if v < V_MIN_FUNCTIONAL {
            row.resize(freqs_mhz.len(), false);
        } else {
            let fmax = im.fmax_mhz(lib, OperatingPoint::at_voltage(v));
            for &f in freqs_mhz {
                row.push(f <= fmax);
            }
        }
        pass.push(row);
    }
    Shmoo { voltages: voltages.to_vec(), freqs_mhz: freqs_mhz.to_vec(), pass }
}

/// A shmoo grid annotated with measured power at every passing point.
#[derive(Debug, Clone)]
pub struct PowerShmoo {
    /// The pass/fail grid.
    pub shmoo: Shmoo,
    /// `power_uw[vi][fi]` — total power in µW at each *passing* point
    /// (`None` where the macro fails), from engine-measured switching
    /// activity rescaled across the (V, f) grid.
    pub power_uw: Vec<Vec<Option<f64>>>,
}

/// Sweep the shmoo grid and annotate every passing point with the total
/// power the given INT workload would draw there.
///
/// Switching activity is voltage- and frequency-independent, so the
/// workload is simulated **once** on the compiled bit-parallel engine
/// (all passes as parallel lanes) and the toggle counts are rescaled
/// analytically across the grid — one simulation instead of one per
/// grid point.
///
/// # Errors
///
/// Returns [`CoreError::FunctionalMismatch`] if the workload fails its
/// golden-model check.
pub fn shmoo_with_power(
    im: &ImplementedMacro,
    lib: &CellLibrary,
    voltages: &[f64],
    freqs_mhz: &[f64],
    pa: u32,
    passes: &[Vec<i64>],
    weights: &[Vec<i64>],
) -> Result<PowerShmoo, CoreError> {
    let grid = shmoo(im, lib, voltages, freqs_mhz);
    let activity = int_activity(&im.mac, lib, pa, passes, weights, EvalBackend::Engine)?;
    let analyzer = PowerAnalyzer::with_wire_caps(&im.mac.module, lib, &im.wires.cap_ff)?;
    let power_uw = grid
        .pass
        .iter()
        .enumerate()
        .map(|(vi, row)| {
            row.iter()
                .enumerate()
                .map(|(fi, &ok)| {
                    ok.then(|| {
                        analyzer
                            .from_activity(
                                &activity.toggles,
                                activity.lane_cycles.max(1),
                                grid.freqs_mhz[fi],
                                OperatingPoint::at_voltage(grid.voltages[vi]),
                            )
                            .total_uw()
                    })
                })
                .collect()
        })
        .collect();
    Ok(PowerShmoo { shmoo: grid, power_uw })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignChoice;
    use crate::flow::implement;
    use crate::spec::MacroSpec;

    fn implemented() -> (ImplementedMacro, CellLibrary) {
        let lib = CellLibrary::syn40();
        let spec = MacroSpec {
            h: 8,
            w: 8,
            mcr: 1,
            int_precisions: vec![1, 2, 4],
            fp_precisions: vec![],
            f_mac_mhz: 400.0,
            f_wu_mhz: 400.0,
            vdd_v: 0.9,
            ppa: Default::default(),
        };
        let im = implement(&lib, &spec, &DesignChoice::default()).unwrap();
        (im, lib)
    }

    #[test]
    fn shmoo_is_monotone_in_voltage_and_frequency() {
        let (im, lib) = implemented();
        let vs = [0.5, 0.7, 0.9, 1.1, 1.2];
        let fs = [100.0, 300.0, 600.0, 1200.0, 2400.0];
        let s = shmoo(&im, &lib, &vs, &fs);
        // Below retention voltage: everything fails.
        assert!(s.pass[0].iter().all(|p| !p));
        // Along frequency: once failing, always failing.
        for row in &s.pass {
            let mut seen_fail = false;
            for &p in row {
                if seen_fail {
                    assert!(!p, "pass after fail breaks shmoo monotonicity");
                }
                seen_fail |= !p;
            }
        }
        // Along voltage: fmax must not decrease.
        let mut prev = 0.0;
        for vi in 1..vs.len() {
            let f = s.fmax_at(vi).unwrap_or(0.0);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn power_shmoo_annotates_passing_points() {
        use syndcim_sim::vectors::{random_ints, seeded_rng};
        let (im, lib) = implemented();
        let mut rng = seeded_rng(31);
        let weights: Vec<Vec<i64>> = (0..2).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let passes: Vec<Vec<i64>> = (0..3).map(|_| random_ints(&mut rng, 8, 4)).collect();
        let vs = [0.5, 0.9, 1.2];
        let fs = [100.0, 400.0];
        let ps = shmoo_with_power(&im, &lib, &vs, &fs, 4, &passes, &weights).unwrap();
        for (vi, row) in ps.shmoo.pass.iter().enumerate() {
            for (fi, &ok) in row.iter().enumerate() {
                assert_eq!(ps.power_uw[vi][fi].is_some(), ok, "power iff passing (v={vi}, f={fi})");
                if let Some(p) = ps.power_uw[vi][fi] {
                    assert!(p > 0.0);
                }
            }
        }
        // Power grows with both frequency and voltage on the passing set.
        let p_low = ps.power_uw[1][0].unwrap();
        let p_high_f = ps.power_uw[1][1].unwrap();
        let p_high_v = ps.power_uw[2][0].unwrap();
        assert!(p_high_f > p_low && p_high_v > p_low);
    }

    #[test]
    fn render_contains_axes_and_marks() {
        let (im, lib) = implemented();
        let s = shmoo(&im, &lib, &[0.9, 1.2], &[100.0, 100_000.0]);
        let art = s.render();
        assert!(art.contains("1.20V"));
        assert!(art.contains('■'), "{art}");
        assert!(art.contains('·'), "a 100 GHz point must fail:\n{art}");
    }
}
