//! Input specifications: the user-facing entry point of the compiler.
//!
//! §III-A: "SynDCIM takes architectural parameters such as dimensions,
//! FP&INT precisions, MCR, and performance constraints including MAC
//! frequency, weight updating frequency, and power-performance-area
//! (PPA) preferences as input specifications."

use std::fmt;
use syndcim_sim::{FpFormat, Precision};

/// Relative PPA preference weights used to rank Pareto-frontier points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaWeights {
    /// Weight on power (higher = prefer low power / energy efficiency).
    pub power: f64,
    /// Weight on area (higher = prefer small macros / area efficiency).
    pub area: f64,
    /// Weight on latency (pipeline depth + serial cycles).
    pub latency: f64,
}

impl Default for PpaWeights {
    fn default() -> Self {
        PpaWeights { power: 1.0, area: 1.0, latency: 0.2 }
    }
}

impl PpaWeights {
    /// Energy-efficiency-leaning preference.
    pub fn energy_leaning() -> Self {
        PpaWeights { power: 3.0, area: 0.5, latency: 0.2 }
    }

    /// Area-efficiency-leaning preference.
    pub fn area_leaning() -> Self {
        PpaWeights { power: 0.5, area: 3.0, latency: 0.2 }
    }
}

/// A complete macro specification.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroSpec {
    /// Array height: activations reduced per adder tree.
    pub h: usize,
    /// Array width: 1-bit weight columns.
    pub w: usize,
    /// Memory-compute ratio (banks per compute site): 1, 2 or 4.
    pub mcr: usize,
    /// Supported signed integer precisions (powers of two, ≤ 8).
    pub int_precisions: Vec<u32>,
    /// Supported floating-point formats.
    pub fp_precisions: Vec<FpFormat>,
    /// Target MAC clock frequency in MHz at `vdd_v`.
    pub f_mac_mhz: f64,
    /// Target weight-update frequency in MHz at `vdd_v`.
    pub f_wu_mhz: f64,
    /// Supply the constraints are specified at, in volts.
    pub vdd_v: f64,
    /// PPA preference weights.
    pub ppa: PpaWeights,
}

/// Specification validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Height/width must be powers of two ≥ 4 (arrays tile in powers of
    /// two).
    BadDimensions,
    /// MCR must be 1, 2 or 4.
    BadMcr,
    /// At least one precision must be requested.
    NoPrecision,
    /// Integer precisions must be powers of two in 1..=8.
    BadIntPrecision,
    /// The array width must hold at least one output channel at the
    /// widest weight precision.
    WidthTooNarrow,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadDimensions => write!(f, "array dimensions must be powers of two >= 4"),
            SpecError::BadMcr => write!(f, "memory-compute ratio must be 1, 2 or 4"),
            SpecError::NoPrecision => write!(f, "at least one INT or FP precision is required"),
            SpecError::BadIntPrecision => write!(f, "integer precisions must be powers of two in 1..=8"),
            SpecError::WidthTooNarrow => {
                write!(f, "array width cannot hold one channel at the widest weight precision")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl MacroSpec {
    /// The paper's test-chip specification: 64×64, MCR=2, INT1/2/4/8 +
    /// FP4/8, 800 MHz MAC and weight update at 0.9 V (§IV-A).
    pub fn paper_test_chip() -> Self {
        MacroSpec {
            h: 64,
            w: 64,
            mcr: 2,
            int_precisions: vec![1, 2, 4, 8],
            fp_precisions: vec![FpFormat::FP4, FpFormat::FP8],
            f_mac_mhz: 800.0,
            f_wu_mhz: 800.0,
            vdd_v: 0.9,
            ppa: PpaWeights::default(),
        }
    }

    /// Validate the specification.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !self.h.is_power_of_two() || !self.w.is_power_of_two() || self.h < 4 || self.w < 4 {
            return Err(SpecError::BadDimensions);
        }
        if !matches!(self.mcr, 1 | 2 | 4) {
            return Err(SpecError::BadMcr);
        }
        if self.int_precisions.is_empty() && self.fp_precisions.is_empty() {
            return Err(SpecError::NoPrecision);
        }
        for &p in &self.int_precisions {
            if !p.is_power_of_two() || p > 8 {
                return Err(SpecError::BadIntPrecision);
            }
        }
        if self.w < self.weight_bits() as usize {
            return Err(SpecError::WidthTooNarrow);
        }
        Ok(())
    }

    /// Every precision the macro must support, INT and FP.
    pub fn precisions(&self) -> Vec<Precision> {
        let mut v: Vec<Precision> = self.int_precisions.iter().map(|&b| Precision::Int(b)).collect();
        v.extend(self.fp_precisions.iter().map(|&f| Precision::Fp(f)));
        v
    }

    /// Serial activation bits the datapath must support: the maximum
    /// datapath width over all precisions.
    pub fn act_bits(&self) -> u32 {
        self.precisions().iter().map(|p| p.datapath_bits()).max().unwrap_or(1)
    }

    /// Weight precision (columns fused per channel): the maximum
    /// datapath width rounded up to a power of two.
    pub fn weight_bits(&self) -> u32 {
        self.act_bits().next_power_of_two()
    }

    /// The widest FP format, if the spec needs the alignment unit.
    pub fn widest_fp(&self) -> Option<FpFormat> {
        self.fp_precisions.iter().copied().max_by_key(|f| f.total_bits())
    }

    /// Clock period implied by the MAC frequency, in ps.
    pub fn mac_period_ps(&self) -> f64 {
        1e6 / self.f_mac_mhz
    }

    /// Clock period implied by the weight-update frequency, in ps.
    pub fn wu_period_ps(&self) -> f64 {
        1e6 / self.f_wu_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_is_valid_and_derives_widths() {
        let s = MacroSpec::paper_test_chip();
        s.validate().unwrap();
        assert_eq!(s.act_bits(), 8); // INT8 dominates FP8 (5 aligned bits)
        assert_eq!(s.weight_bits(), 8);
        assert_eq!(s.widest_fp(), Some(FpFormat::FP8));
        assert!((s.mac_period_ps() - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn bf16_widens_the_datapath() {
        let mut s = MacroSpec::paper_test_chip();
        s.fp_precisions = vec![FpFormat::BF16];
        s.int_precisions = vec![4];
        assert_eq!(s.act_bits(), 9); // BF16 aligned mantissa
        assert_eq!(s.weight_bits(), 16);
        s.w = 16;
        s.validate().unwrap();
        s.w = 8;
        assert_eq!(s.validate().unwrap_err(), SpecError::WidthTooNarrow);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = MacroSpec::paper_test_chip();
        s.h = 48;
        assert_eq!(s.validate().unwrap_err(), SpecError::BadDimensions);
        let mut s = MacroSpec::paper_test_chip();
        s.mcr = 3;
        assert_eq!(s.validate().unwrap_err(), SpecError::BadMcr);
        let mut s = MacroSpec::paper_test_chip();
        s.int_precisions = vec![];
        s.fp_precisions = vec![];
        assert_eq!(s.validate().unwrap_err(), SpecError::NoPrecision);
        let mut s = MacroSpec::paper_test_chip();
        s.int_precisions = vec![6];
        assert_eq!(s.validate().unwrap_err(), SpecError::BadIntPrecision);
    }

    #[test]
    fn ppa_preference_presets_differ() {
        let e = PpaWeights::energy_leaning();
        let a = PpaWeights::area_leaning();
        assert!(e.power > e.area);
        assert!(a.area > a.power);
    }
}
