//! Netlist statistics: gate counts, area, leakage, per-group breakdowns.

use crate::graph::{GroupId, Module};
use std::collections::BTreeMap;
use syndcim_pdk::{CellKind, CellLibrary};

/// Aggregated statistics for a module or a group within it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetlistStats {
    /// Number of cell instances.
    pub instances: usize,
    /// Number of sequential instances (flip-flops + bitcells).
    pub sequential: usize,
    /// Total standard-cell area in µm² (pre-placement, 100 % utilization).
    pub cell_area_um2: f64,
    /// Total leakage at the nominal corner, in nW.
    pub leakage_nw: f64,
    /// Total transistor count.
    pub transistors: u64,
    /// Instance count per cell kind.
    pub by_kind: BTreeMap<CellKind, usize>,
}

impl NetlistStats {
    /// Compute statistics over every instance of `module`.
    pub fn of(module: &Module, lib: &CellLibrary) -> Self {
        Self::filtered(module, lib, |_| true)
    }

    /// Compute statistics over the instances of one group (exact match on
    /// the group id — nested groups are separate).
    pub fn of_group(module: &Module, lib: &CellLibrary, group: GroupId) -> Self {
        Self::filtered(module, lib, |g| g == group)
    }

    /// Compute statistics over groups whose *name* starts with `prefix`
    /// (so `"adder_tree"` aggregates `adder_tree/col0`, `adder_tree/col1` …).
    pub fn of_group_prefix(module: &Module, lib: &CellLibrary, prefix: &str) -> Self {
        let matching: Vec<bool> = module.groups.iter().map(|g| g.starts_with(prefix)).collect();
        Self::filtered(module, lib, |g| matching[g.index()])
    }

    fn filtered(module: &Module, lib: &CellLibrary, keep: impl Fn(GroupId) -> bool) -> Self {
        let mut s = NetlistStats::default();
        for inst in &module.instances {
            if !keep(inst.group) {
                continue;
            }
            let cell = lib.cell(inst.cell);
            s.instances += 1;
            if cell.is_sequential() {
                s.sequential += 1;
            }
            s.cell_area_um2 += cell.area_um2;
            s.leakage_nw += cell.leakage_nw;
            s.transistors += cell.transistor_count as u64;
            *s.by_kind.entry(cell.kind).or_insert(0) += 1;
        }
        s
    }

    /// Per-group-prefix area breakdown, keyed by the first path component
    /// of each group name.
    pub fn area_breakdown(module: &Module, lib: &CellLibrary) -> BTreeMap<String, f64> {
        let mut map: BTreeMap<String, f64> = BTreeMap::new();
        for inst in &module.instances {
            let gname = module.group_name(inst.group);
            let head = gname.split('/').next().unwrap_or(gname).to_string();
            *map.entry(head).or_insert(0.0) += lib.cell(inst.cell).area_um2;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn stats_sum_area_and_kinds() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let c = b.input("b");
        b.push_group("arith");
        let (s, _) = b.fa(a, c, a);
        b.pop_group();
        let q = b.dff(s);
        b.output("q", q);
        let m = b.finish();

        let all = NetlistStats::of(&m, &lib);
        assert_eq!(all.instances, 2);
        assert_eq!(all.sequential, 1);
        assert_eq!(all.by_kind[&CellKind::Fa], 1);
        assert!(all.cell_area_um2 > 0.0 && all.leakage_nw > 0.0);

        let arith = NetlistStats::of_group_prefix(&m, &lib, "arith");
        assert_eq!(arith.instances, 1);
        assert_eq!(arith.by_kind[&CellKind::Fa], 1);

        let breakdown = NetlistStats::area_breakdown(&m, &lib);
        assert!(breakdown.contains_key("arith"));
        assert!(breakdown.contains_key("top"));
    }
}
