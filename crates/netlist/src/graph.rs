//! Flat gate-level netlist representation.
//!
//! A [`Module`] is a flat graph of cell [`Instance`]s connected by nets.
//! Hierarchy is represented lightly: every instance carries a [`GroupId`]
//! naming the subcircuit it belongs to (e.g. `"adder_tree/col17"`), which
//! the layout, power and reporting stages use for per-subcircuit
//! breakdowns — the same role module boundaries play in a conventional
//! flow after flattening.

use syndcim_pdk::CellId;

/// Index of a net within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an instance within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// The index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an instance group (logical subcircuit) within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The default group every instance starts in.
    pub const TOP: GroupId = GroupId(0);
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by the module, observed outside.
    Output,
}

/// A named boundary connection of a module.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name (bit-blasted buses use `name[i]`).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// The net attached to the port.
    pub net: NetId,
}

/// A single placed-cell occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique within the module.
    pub name: String,
    /// Library cell reference.
    pub cell: CellId,
    /// Nets bound to the cell's input pins, in pin order.
    pub inputs: Vec<NetId>,
    /// Nets bound to the cell's output pins, in pin order.
    pub outputs: Vec<NetId>,
    /// Logical subcircuit this instance belongs to.
    pub group: GroupId,
}

/// A net record (names are kept for debug/export; connectivity lives on
/// the instances).
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name, unique within the module.
    pub name: String,
}

/// A flat gate-level module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// All nets.
    pub nets: Vec<Net>,
    /// All instances.
    pub instances: Vec<Instance>,
    /// Boundary ports.
    pub ports: Vec<Port>,
    /// Group names, indexed by [`GroupId`]. Index 0 is `"top"`.
    pub groups: Vec<String>,
}

impl Module {
    /// Create an empty module with the given name and the implicit
    /// `"top"` group.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            nets: Vec::new(),
            instances: Vec::new(),
            ports: Vec::new(),
            groups: vec!["top".to_string()],
        }
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Iterate over input ports.
    pub fn input_ports(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Iterate over output ports.
    pub fn output_ports(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }

    /// Find a port by exact name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Collect the nets of a bit-blasted bus port `base[0] ... base[n-1]`,
    /// in ascending bit order. Returns `None` if any bit is missing.
    pub fn bus(&self, base: &str, width: usize) -> Option<Vec<NetId>> {
        (0..width).map(|i| self.port(&format!("{base}[{i}]")).map(|p| p.net)).collect()
    }

    /// Name of a group.
    pub fn group_name(&self, id: GroupId) -> &str {
        &self.groups[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_module_has_top_group() {
        let m = Module::new("m");
        assert_eq!(m.group_name(GroupId::TOP), "top");
        assert_eq!(m.instance_count(), 0);
        assert_eq!(m.net_count(), 0);
    }

    #[test]
    fn bus_lookup_requires_all_bits() {
        let mut m = Module::new("m");
        for i in 0..3 {
            m.nets.push(Net { name: format!("a[{i}]") });
            m.ports.push(Port { name: format!("a[{i}]"), dir: PortDir::Input, net: NetId(i as u32) });
        }
        assert_eq!(m.bus("a", 3).unwrap(), vec![NetId(0), NetId(1), NetId(2)]);
        assert!(m.bus("a", 4).is_none());
        assert!(m.bus("b", 1).is_none());
    }
}
