//! Ergonomic construction of gate-level netlists.
//!
//! [`NetlistBuilder`] is the API all subcircuit generators use. It owns a
//! [`Module`] under construction and borrows the [`CellLibrary`] so pin
//! counts can be validated at insertion time.

use crate::graph::{GroupId, Instance, Module, Net, NetId, Port, PortDir};
use syndcim_pdk::{CellKind, CellLibrary};

/// Builder for a flat [`Module`].
///
/// Gate helpers (`and2`, `xor2`, `fa`, …) allocate output nets
/// automatically and return their ids, so generator code reads like
/// structural RTL:
///
/// ```
/// use syndcim_netlist::NetlistBuilder;
/// use syndcim_pdk::CellLibrary;
///
/// let lib = CellLibrary::syn40();
/// let mut b = NetlistBuilder::new("half_adder", &lib);
/// let a = b.input("a");
/// let c = b.input("b");
/// let (s, carry) = b.ha(a, c);
/// b.output("s", s);
/// b.output("c", carry);
/// let module = b.finish();
/// assert_eq!(module.instance_count(), 1);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder<'lib> {
    module: Module,
    lib: &'lib CellLibrary,
    group_stack: Vec<GroupId>,
    const0: Option<(NetId, u32)>,
    const1: Option<(NetId, u32)>,
    anon_net: u64,
}

/// Maximum hand-outs of one tie cell's net before a fresh tie cell is
/// instantiated (keeps constant nets physically local, as real flows do
/// by replicating tie cells across the die).
const TIE_FANOUT_LIMIT: u32 = 48;

impl<'lib> NetlistBuilder<'lib> {
    /// Start building a module called `name` against `lib`.
    pub fn new(name: impl Into<String>, lib: &'lib CellLibrary) -> Self {
        NetlistBuilder {
            module: Module::new(name),
            lib,
            group_stack: vec![GroupId::TOP],
            const0: None,
            const1: None,
            anon_net: 0,
        }
    }

    /// The library this builder validates against.
    pub fn library(&self) -> &'lib CellLibrary {
        self.lib
    }

    /// Read-only view of the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finish and return the constructed module.
    pub fn finish(self) -> Module {
        self.module
    }

    // ---- groups --------------------------------------------------------

    /// Push a new instance group; all instances created until the matching
    /// [`NetlistBuilder::pop_group`] belong to it. Group names nest with
    /// `/` separators.
    pub fn push_group(&mut self, name: &str) -> GroupId {
        let parent = *self.group_stack.last().expect("group stack never empty");
        let full = if parent == GroupId::TOP {
            name.to_string()
        } else {
            format!("{}/{}", self.module.groups[parent.index()], name)
        };
        let id = GroupId(self.module.groups.len() as u32);
        self.module.groups.push(full);
        self.group_stack.push(id);
        id
    }

    /// Pop the current group.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`NetlistBuilder::push_group`].
    pub fn pop_group(&mut self) {
        assert!(self.group_stack.len() > 1, "cannot pop the top group");
        self.group_stack.pop();
    }

    /// The group new instances are currently assigned to.
    pub fn current_group(&self) -> GroupId {
        *self.group_stack.last().expect("group stack never empty")
    }

    // ---- nets and ports ------------------------------------------------

    /// Create a named net.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.module.nets.len() as u32);
        self.module.nets.push(Net { name: name.into() });
        id
    }

    /// Create an anonymous net (`_n<k>`).
    pub fn anon(&mut self) -> NetId {
        self.anon_net += 1;
        let n = self.anon_net;
        self.net(format!("_n{n}"))
    }

    /// Declare an input port and return its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let net = self.net(name.clone());
        self.module.ports.push(Port { name, dir: PortDir::Input, net });
        net
    }

    /// Declare a bit-blasted input bus `name[0..width]`, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width).map(|i| self.input(format!("{name}[{i}]"))).collect()
    }

    /// Expose an existing net as an output port.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.module.ports.push(Port { name: name.into(), dir: PortDir::Output, net });
    }

    /// Expose a slice of nets as a bit-blasted output bus, LSB first.
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(format!("{name}[{i}]"), n);
        }
    }

    /// The constant-0 net. Tie cells are replicated after
    /// `TIE_FANOUT_LIMIT` uses so constant nets stay physically local.
    pub fn const0(&mut self) -> NetId {
        if let Some((n, uses)) = self.const0 {
            if uses < TIE_FANOUT_LIMIT {
                self.const0 = Some((n, uses + 1));
                return n;
            }
        }
        let k = self.module.instances.len();
        let n = self.add_named(format!("tielo{k}"), CellKind::TieLo, &[])[0];
        self.const0 = Some((n, 1));
        n
    }

    /// The constant-1 net. Tie cells are replicated after
    /// `TIE_FANOUT_LIMIT` uses so constant nets stay physically local.
    pub fn const1(&mut self) -> NetId {
        if let Some((n, uses)) = self.const1 {
            if uses < TIE_FANOUT_LIMIT {
                self.const1 = Some((n, uses + 1));
                return n;
            }
        }
        let k = self.module.instances.len();
        let n = self.add_named(format!("tiehi{k}"), CellKind::TieHi, &[])[0];
        self.const1 = Some((n, 1));
        n
    }

    // ---- instances -----------------------------------------------------

    /// Instantiate a cell of `kind` with the given input nets; output nets
    /// are allocated automatically and returned in pin order.
    ///
    /// # Panics
    ///
    /// Panics if `ins` does not match the cell's input pin count.
    pub fn add(&mut self, kind: CellKind, ins: &[NetId]) -> Vec<NetId> {
        let n = self.module.instances.len();
        self.add_named(format!("u{n}"), kind, ins)
    }

    /// Like [`NetlistBuilder::add`] but with an explicit instance name.
    pub fn add_named(&mut self, name: impl Into<String>, kind: CellKind, ins: &[NetId]) -> Vec<NetId> {
        let cell_id = self.lib.id_of(kind);
        let cell = self.lib.cell(cell_id);
        assert_eq!(
            ins.len(),
            cell.inputs.len(),
            "cell {} expects {} inputs, got {}",
            cell.name,
            cell.inputs.len(),
            ins.len()
        );
        let outs: Vec<NetId> = (0..cell.outputs.len()).map(|_| self.anon()).collect();
        self.module.instances.push(Instance {
            name: name.into(),
            cell: cell_id,
            inputs: ins.to_vec(),
            outputs: outs.clone(),
            group: self.current_group(),
        });
        outs
    }

    /// Rewire input pin `pin` of the instance at `inst_index` to `net`.
    ///
    /// Sequential feedback (counters, accumulators) requires creating a
    /// register before its next-state logic exists; generators create the
    /// register with a placeholder input and patch it afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the instance or pin index is out of range.
    pub fn patch_instance_input(&mut self, inst_index: usize, pin: usize, net: NetId) {
        self.module.instances[inst_index].inputs[pin] = net;
    }

    // ---- gate helpers ---------------------------------------------------

    /// `!a`
    pub fn not(&mut self, a: NetId) -> NetId {
        self.add(CellKind::Inv, &[a])[0]
    }

    /// Buffer of unit drive.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.add(CellKind::Buf, &[a])[0]
    }

    /// `a & b`
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add(CellKind::And2, &[a, b])[0]
    }

    /// `a | b`
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add(CellKind::Or2, &[a, b])[0]
    }

    /// `!(a & b)`
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add(CellKind::Nand2, &[a, b])[0]
    }

    /// `!(a | b)`
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add(CellKind::Nor2, &[a, b])[0]
    }

    /// `a ^ b`
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add(CellKind::Xor2, &[a, b])[0]
    }

    /// `!(a ^ b)`
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add(CellKind::Xnor2, &[a, b])[0]
    }

    /// `s ? d1 : d0`
    pub fn mux2(&mut self, d0: NetId, d1: NetId, s: NetId) -> NetId {
        self.add(CellKind::Mux2, &[d0, d1, s])[0]
    }

    /// Half adder → `(sum, carry)`.
    pub fn ha(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let o = self.add(CellKind::Ha, &[a, b]);
        (o[0], o[1])
    }

    /// Full adder → `(sum, carry_out)`.
    pub fn fa(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let o = self.add(CellKind::Fa, &[a, b, cin]);
        (o[0], o[1])
    }

    /// 4-2 compressor → `(sum, carry, cout)`.
    pub fn c42(&mut self, a: NetId, b: NetId, c: NetId, d: NetId, cin: NetId) -> (NetId, NetId, NetId) {
        let o = self.add(CellKind::C42, &[a, b, c, d, cin]);
        (o[0], o[1], o[2])
    }

    /// Positive-edge D flip-flop → `q`.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.add(CellKind::Dff, &[d])[0]
    }

    /// Enabled D flip-flop → `q`.
    pub fn dffe(&mut self, d: NetId, en: NetId) -> NetId {
        self.add(CellKind::DffEn, &[d, en])[0]
    }

    /// Register a whole bus; returns the q nets in order.
    pub fn dff_bus(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&n| self.dff(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PortDir;

    #[test]
    fn builder_wires_a_full_adder() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("fa_top", &lib);
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("cin");
        let (s, co) = b.fa(a, x, c);
        b.output("s", s);
        b.output("co", co);
        let m = b.finish();
        assert_eq!(m.instance_count(), 1);
        assert_eq!(m.ports.iter().filter(|p| p.dir == PortDir::Input).count(), 3);
        assert_eq!(m.ports.iter().filter(|p| p.dir == PortDir::Output).count(), 2);
    }

    #[test]
    fn const_nets_are_shared() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let c0 = b.const0();
        let c0b = b.const0();
        let c1 = b.const1();
        assert_eq!(c0, c0b);
        assert_ne!(c0, c1);
        assert_eq!(b.module().instance_count(), 2);
    }

    #[test]
    fn groups_nest_with_slashes() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let g1 = b.push_group("col0");
        let g2 = b.push_group("tree");
        let a = b.input("a");
        b.not(a);
        b.pop_group();
        b.pop_group();
        let m = b.finish();
        assert_eq!(m.group_name(g1), "col0");
        assert_eq!(m.group_name(g2), "col0/tree");
        assert_eq!(m.instances[0].group, g2);
    }

    #[test]
    #[should_panic(expected = "expects 3 inputs")]
    fn wrong_pin_count_panics() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        b.add(CellKind::Fa, &[a]);
    }

    #[test]
    fn bus_helpers_roundtrip() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let xs = b.input_bus("x", 4);
        let inv: Vec<_> = xs.to_vec();
        b.output_bus("y", &inv);
        let m = b.finish();
        assert_eq!(m.bus("x", 4).unwrap().len(), 4);
        assert_eq!(m.bus("y", 4).unwrap(), m.bus("x", 4).unwrap());
    }
}
