//! Connectivity analysis: drivers, fanout, validation and levelization.
//!
//! Levelization orders the combinational instances topologically so the
//! simulator can evaluate a cycle in one linear pass and the STA engine
//! can propagate arrival times without iteration. Sequential cells
//! (flip-flops, bitcells) break the graph: their outputs are sources and
//! their inputs are sinks.

use crate::graph::{InstId, Module, NetId, PortDir};
use std::fmt;
use syndcim_pdk::CellLibrary;

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Driven by a module input port.
    Port,
    /// Driven by output pin `pin` of instance `inst`.
    Inst {
        /// Driving instance.
        inst: InstId,
        /// Output pin index on the driving cell.
        pin: usize,
    },
    /// No driver found (floating net).
    None,
}

/// Error raised by netlist validation or levelization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net has more than one driver.
    MultipleDrivers {
        /// The conflicting net's name.
        net: String,
    },
    /// A net is read but never driven.
    FloatingNet {
        /// The floating net's name.
        net: String,
    },
    /// The combinational graph contains a cycle.
    CombinationalLoop {
        /// Name of an instance on the cycle.
        inst: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => write!(f, "net `{net}` has multiple drivers"),
            NetlistError::FloatingNet { net } => write!(f, "net `{net}` is read but never driven"),
            NetlistError::CombinationalLoop { inst } => {
                write!(f, "combinational loop through instance `{inst}`")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Precomputed connectivity tables for a module.
#[derive(Debug, Clone)]
pub struct Connectivity {
    /// Driver of each net, indexed by [`NetId::index`].
    pub driver: Vec<Driver>,
    /// Instance input sinks of each net: `(instance, input_pin)` pairs.
    pub sinks: Vec<Vec<(InstId, usize)>>,
}

impl Connectivity {
    /// Build connectivity tables for `module`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] if any net is driven
    /// more than once.
    pub fn build(module: &Module) -> Result<Self, NetlistError> {
        let n = module.net_count();
        let mut driver = vec![Driver::None; n];
        let mut sinks: Vec<Vec<(InstId, usize)>> = vec![Vec::new(); n];

        for port in &module.ports {
            if port.dir == PortDir::Input {
                if driver[port.net.index()] != Driver::None {
                    return Err(NetlistError::MultipleDrivers {
                        net: module.nets[port.net.index()].name.clone(),
                    });
                }
                driver[port.net.index()] = Driver::Port;
            }
        }
        for (i, inst) in module.instances.iter().enumerate() {
            let id = InstId(i as u32);
            for (pin, &net) in inst.outputs.iter().enumerate() {
                if driver[net.index()] != Driver::None {
                    return Err(NetlistError::MultipleDrivers { net: module.nets[net.index()].name.clone() });
                }
                driver[net.index()] = Driver::Inst { inst: id, pin };
            }
            for (pin, &net) in inst.inputs.iter().enumerate() {
                sinks[net.index()].push((id, pin));
            }
        }
        Ok(Connectivity { driver, sinks })
    }

    /// The driver of `net`.
    pub fn driver_of(&self, net: NetId) -> Driver {
        self.driver[net.index()]
    }

    /// Total fanout (instance input pins) of `net`.
    pub fn fanout(&self, net: NetId) -> usize {
        self.sinks[net.index()].len()
    }
}

/// Validate that every net read by an instance or output port is driven.
///
/// # Errors
///
/// Returns the first [`NetlistError::FloatingNet`] found.
pub fn validate(module: &Module, conn: &Connectivity) -> Result<(), NetlistError> {
    for inst in &module.instances {
        for &net in &inst.inputs {
            if conn.driver_of(net) == Driver::None {
                return Err(NetlistError::FloatingNet { net: module.nets[net.index()].name.clone() });
            }
        }
    }
    for port in module.output_ports() {
        if conn.driver_of(port.net) == Driver::None {
            return Err(NetlistError::FloatingNet { net: module.nets[port.net.index()].name.clone() });
        }
    }
    Ok(())
}

/// Topological order of the *combinational* instances of `module`
/// (sequential instances are excluded; their outputs count as sources).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] if the combinational part
/// of the design is cyclic.
pub fn levelize(
    module: &Module,
    lib: &CellLibrary,
    conn: &Connectivity,
) -> Result<Vec<InstId>, NetlistError> {
    let n = module.instances.len();
    // Pending combinational fan-in count per instance.
    let mut pending = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let mut ready = Vec::new();
    let mut comb = vec![false; n];

    for (i, inst) in module.instances.iter().enumerate() {
        if lib.cell(inst.cell).is_sequential() {
            continue;
        }
        comb[i] = true;
        let mut deps = 0;
        for &net in &inst.inputs {
            if let Driver::Inst { inst: d, .. } = conn.driver_of(net) {
                if !lib.cell(module.instances[d.index()].cell).is_sequential() {
                    deps += 1;
                }
            }
        }
        pending[i] = deps;
        if deps == 0 {
            ready.push(InstId(i as u32));
        }
    }

    while let Some(id) = ready.pop() {
        order.push(id);
        for &net in &module.instances[id.index()].outputs {
            for &(sink, _) in &conn.sinks[net.index()] {
                let si = sink.index();
                if comb[si] {
                    pending[si] -= 1;
                    if pending[si] == 0 {
                        ready.push(sink);
                    }
                }
            }
        }
    }

    let comb_total = comb.iter().filter(|&&c| c).count();
    if order.len() != comb_total {
        let culprit = (0..n)
            .find(|&i| comb[i] && pending[i] > 0)
            .expect("some combinational instance must still be pending");
        return Err(NetlistError::CombinationalLoop { inst: module.instances[culprit].name.clone() });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use syndcim_pdk::CellKind;

    #[test]
    fn connectivity_and_levelize_simple_chain() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("chain", &lib);
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let m = b.finish();
        let conn = Connectivity::build(&m).unwrap();
        validate(&m, &conn).unwrap();
        let order = levelize(&m, &lib, &conn).unwrap();
        assert_eq!(order, vec![InstId(0), InstId(1)]);
        assert_eq!(conn.fanout(a), 1);
    }

    #[test]
    fn register_breaks_loops() {
        // q = dff(!q) is a perfectly fine divider; levelize must accept it.
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("divider", &lib);
        // Create the dff first with a placeholder input we patch below.
        let tmp = b.net("tmp");
        let q = b.add(CellKind::Dff, &[tmp])[0];
        let nq = b.not(q);
        // Patch the dff input to close the loop through the register.
        b.output("q", q);
        let mut m = b.finish();
        m.instances[0].inputs[0] = nq;
        // Remove the now-dangling tmp net reference by redirecting: tmp is
        // unused, which is fine (it is not read by anything).
        let conn = Connectivity::build(&m).unwrap();
        let order = levelize(&m, &lib, &conn).unwrap();
        assert_eq!(order.len(), 1, "only the inverter is combinational");
    }

    #[test]
    fn combinational_loop_detected() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("latchup", &lib);
        let a = b.input("a");
        let x = b.and2(a, a);
        let y = b.and2(x, x);
        b.output("y", y);
        let mut m = b.finish();
        // Short the first AND's second input to the second AND's output.
        let y_net = m.instances[1].outputs[0];
        m.instances[0].inputs[1] = y_net;
        let conn = Connectivity::build(&m).unwrap();
        let err = levelize(&m, &lib, &conn).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("short", &lib);
        let a = b.input("a");
        let x = b.not(a);
        let _y = b.not(x);
        let m0 = b.finish();
        let mut m = m0.clone();
        // Make the second inverter drive the same net as the first.
        let first_out = m.instances[0].outputs[0];
        m.instances[1].outputs[0] = first_out;
        let err = Connectivity::build(&m).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn floating_net_rejected() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("float", &lib);
        let dangling = b.net("dangling");
        let y = b.not(dangling);
        b.output("y", y);
        let m = b.finish();
        let conn = Connectivity::build(&m).unwrap();
        let err = validate(&m, &conn).unwrap_err();
        assert!(matches!(err, NetlistError::FloatingNet { .. }));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = NetlistError::FloatingNet { net: "x".into() };
        let s = e.to_string();
        assert!(s.contains("x") && s.starts_with("net"));
    }
}
