//! # syndcim-netlist — flat gate-level netlist substrate
//!
//! The netlist data model shared by every stage of the SynDCIM
//! reproduction: subcircuit generators build [`Module`]s through
//! [`NetlistBuilder`], the simulator and STA consume them via
//! [`Connectivity`] and [`levelize`], synthesis cleanup runs
//! [`optimize`], and reports use [`NetlistStats`].
//!
//! ```
//! use syndcim_netlist::{NetlistBuilder, Connectivity, levelize, validate};
//! use syndcim_pdk::CellLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::syn40();
//! let mut b = NetlistBuilder::new("maj3", &lib);
//! let (a, c, d) = (b.input("a"), b.input("b"), b.input("c"));
//! let (_, maj) = b.fa(a, c, d);
//! b.output("maj", maj);
//! let m = b.finish();
//! let conn = Connectivity::build(&m)?;
//! validate(&m, &conn)?;
//! assert_eq!(levelize(&m, &lib, &conn)?.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod analyze;
pub mod builder;
pub mod export;
pub mod graph;
pub mod opt;
pub mod stats;

pub use analyze::{levelize, validate, Connectivity, Driver, NetlistError};
pub use builder::NetlistBuilder;
pub use export::to_verilog;
pub use graph::{GroupId, InstId, Instance, Module, Net, NetId, Port, PortDir};
pub use opt::{optimize, OptReport};
pub use stats::NetlistStats;
