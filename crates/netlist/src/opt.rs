//! Netlist cleanup passes: constant propagation and dead-gate sweep.
//!
//! These play the gate-level-optimization role of the logic-synthesis
//! stage: subcircuit generators may tie unused legs to constants (e.g.
//! a half-populated compressor row, or a disabled MCR bank), and these
//! passes fold such constants through the logic and remove gates whose
//! outputs reach no port and no sequential element.

use crate::analyze::{Connectivity, Driver};
use crate::graph::{Module, NetId, PortDir};
use syndcim_pdk::{CellFunction, CellKind, CellLibrary};

/// Result of running [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Gates removed by constant folding.
    pub folded: usize,
    /// Gates removed as dead logic.
    pub swept: usize,
    /// Number of passes run until fixpoint.
    pub passes: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Known {
    Unknown,
    Const(bool),
}

/// Fold constants through combinational gates and sweep dead logic until
/// fixpoint. Ports and sequential elements are preserved; the module is
/// rebuilt with unused instances removed (net ids are preserved — nets
/// may become dangling, which is harmless for all downstream consumers).
///
/// Returns a report of the work done.
pub fn optimize(module: &mut Module, lib: &CellLibrary) -> OptReport {
    let mut report = OptReport::default();
    loop {
        report.passes += 1;
        let folded = fold_constants(module, lib);
        let swept = sweep_dead(module, lib);
        report.folded += folded;
        report.swept += swept;
        if folded == 0 && swept == 0 {
            return report;
        }
        // Safety valve: the passes strictly shrink the instance list, so
        // this terminates; the cap only guards an internal logic error.
        if report.passes > 64 {
            return report;
        }
    }
}

/// One pass of constant folding. A gate all of whose *controlling* inputs
/// are known constants is replaced by rewiring its output to a tie net.
/// Returns the number of gates removed.
fn fold_constants(module: &mut Module, lib: &CellLibrary) -> usize {
    let mut known = vec![Known::Unknown; module.net_count()];
    // Seed with tie cells.
    for inst in &module.instances {
        let cell = lib.cell(inst.cell);
        if let CellFunction::Const(v) = cell.function {
            known[inst.outputs[0].index()] = Known::Const(v);
        }
    }
    // Propagate in instance order repeatedly (cheap fixpoint; the graphs
    // we build are shallow in constants).
    let mut changed = true;
    let mut evals = 0usize;
    while changed && evals < 8 {
        changed = false;
        evals += 1;
        let mut out_buf = Vec::new();
        for inst in &module.instances {
            let cell = lib.cell(inst.cell);
            if cell.is_sequential() || matches!(cell.function, CellFunction::Const(_)) {
                continue;
            }
            let unknowns: Vec<usize> = inst
                .inputs
                .iter()
                .enumerate()
                .filter(|(_, n)| known[n.index()] == Known::Unknown)
                .map(|(i, _)| i)
                .collect();
            if unknowns.is_empty() && inst.inputs.is_empty() {
                continue;
            }
            // A cell output is constant iff it agrees across every
            // assignment of the unknown inputs (cells have ≤ 5 inputs, so
            // this exact check costs at most 32 evaluations).
            let mut ins: Vec<bool> = inst
                .inputs
                .iter()
                .map(|n| match known[n.index()] {
                    Known::Const(v) => v,
                    Known::Unknown => false,
                })
                .collect();
            let n_out = cell.function.output_count();
            let mut agreed: Vec<Option<bool>> = vec![None; n_out];
            let mut consistent = vec![true; n_out];
            for combo in 0u32..(1 << unknowns.len()) {
                for (k, &pin) in unknowns.iter().enumerate() {
                    ins[pin] = combo >> k & 1 == 1;
                }
                cell.function.eval(&ins, false, &mut out_buf);
                for (pin, &v) in out_buf.iter().enumerate() {
                    match agreed[pin] {
                        None => agreed[pin] = Some(v),
                        Some(prev) if prev != v => consistent[pin] = false,
                        Some(_) => {}
                    }
                }
            }
            for pin in 0..n_out {
                if consistent[pin] {
                    if let Some(v) = agreed[pin] {
                        let net = inst.outputs[pin];
                        if known[net.index()] != Known::Const(v) {
                            known[net.index()] = Known::Const(v);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // Rewire: every constant net driven by a non-tie combinational gate
    // gets its sinks redirected onto the tie cell; gates all of whose
    // outputs are constant are removed outright.
    let mut subst: Vec<Option<NetId>> = vec![None; module.net_count()];
    let mut to_fold = Vec::new();
    for (i, inst) in module.instances.iter().enumerate() {
        let cell = lib.cell(inst.cell);
        if cell.is_sequential() || matches!(cell.function, CellFunction::Const(_)) {
            continue;
        }
        if inst.outputs.iter().any(|n| matches!(known[n.index()], Known::Const(_))) {
            to_fold.push(i);
        }
    }
    if to_fold.is_empty() {
        return 0;
    }
    let need0 = to_fold
        .iter()
        .any(|&i| module.instances[i].outputs.iter().any(|n| known[n.index()] == Known::Const(false)));
    let need1 = to_fold
        .iter()
        .any(|&i| module.instances[i].outputs.iter().any(|n| known[n.index()] == Known::Const(true)));
    let tie0 = if need0 { Some(ensure_tie(module, lib, false)) } else { None };
    let tie1 = if need1 { Some(ensure_tie(module, lib, true)) } else { None };
    for &i in &to_fold {
        for &out in &module.instances[i].outputs {
            match known[out.index()] {
                Known::Const(false) => subst[out.index()] = Some(tie0.expect("tie0 exists")),
                Known::Const(true) => subst[out.index()] = Some(tie1.expect("tie1 exists")),
                Known::Unknown => {}
            }
        }
    }
    for inst in module.instances.iter_mut() {
        for n in inst.inputs.iter_mut() {
            if let Some(t) = subst[n.index()] {
                *n = t;
            }
        }
    }
    for p in module.ports.iter_mut() {
        if p.dir == PortDir::Output {
            if let Some(t) = subst[p.net.index()] {
                p.net = t;
            }
        }
    }
    // Remove gates whose every output folded (their nets now drive nothing).
    let fully: Vec<bool> = module
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| to_fold.contains(&i) && inst.outputs.iter().all(|n| subst[n.index()].is_some()))
        .collect();
    let before = module.instances.len();
    let mut idx = 0;
    module.instances.retain(|_| {
        let drop_it = fully[idx];
        idx += 1;
        !drop_it
    });
    before - module.instances.len()
}

fn ensure_tie(module: &mut Module, lib: &CellLibrary, value: bool) -> NetId {
    let kind = if value { CellKind::TieHi } else { CellKind::TieLo };
    for inst in &module.instances {
        if lib.cell(inst.cell).kind == kind {
            return inst.outputs[0];
        }
    }
    let id = NetId(module.nets.len() as u32);
    module.nets.push(crate::graph::Net { name: if value { "_tie1".into() } else { "_tie0".into() } });
    module.instances.push(crate::graph::Instance {
        name: if value { "_tiehi".into() } else { "_tielo".into() },
        cell: lib.id_of(kind),
        inputs: vec![],
        outputs: vec![id],
        group: crate::graph::GroupId::TOP,
    });
    id
}

/// One pass of dead-gate sweeping: remove combinational instances none of
/// whose outputs reach an output port or any other live instance.
/// Returns the number removed.
fn sweep_dead(module: &mut Module, lib: &CellLibrary) -> usize {
    let conn = match Connectivity::build(module) {
        Ok(c) => c,
        // A transiently inconsistent module is left untouched.
        Err(_) => return 0,
    };
    let n = module.instances.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();

    // Roots: drivers of output ports, and all sequential instances (their
    // state is observable behaviour), plus everything feeding a sequential
    // data pin.
    for p in module.output_ports() {
        if let Driver::Inst { inst, .. } = conn.driver_of(p.net) {
            if !live[inst.index()] {
                live[inst.index()] = true;
                stack.push(inst.index());
            }
        }
    }
    for (i, inst) in module.instances.iter().enumerate() {
        if lib.cell(inst.cell).is_sequential() && !live[i] {
            live[i] = true;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        for &net in &module.instances[i].inputs {
            if let Driver::Inst { inst, .. } = conn.driver_of(net) {
                if !live[inst.index()] {
                    live[inst.index()] = true;
                    stack.push(inst.index());
                }
            }
        }
    }

    let before = module.instances.len();
    let mut idx = 0;
    module.instances.retain(|_| {
        let keep = live[idx];
        idx += 1;
        keep
    });
    before - module.instances.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::validate;
    use crate::builder::NetlistBuilder;

    #[test]
    fn constant_and_folds_away() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let zero = b.const0();
        let dead = b.and2(a, zero); // always 0
        let y = b.or2(dead, a); // reduces to buffer-of-a behaviourally
        b.output("y", y);
        let mut m = b.finish();
        let before = m.instance_count();
        let rep = optimize(&mut m, &lib);
        assert!(rep.folded >= 1, "AND with constant 0 must fold: {rep:?}");
        assert!(m.instance_count() < before);
        let conn = Connectivity::build(&m).unwrap();
        validate(&m, &conn).unwrap();
    }

    #[test]
    fn fully_constant_cone_leaves_only_ties() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let one = b.const1();
        let zero = b.const0();
        let x = b.and2(one, zero);
        let y = b.xor2(x, one);
        b.output("y", y);
        let mut m = b.finish();
        optimize(&mut m, &lib);
        // Everything but tie cells should be gone.
        assert!(m
            .instances
            .iter()
            .all(|i| matches!(lib.cell(i.cell).kind, CellKind::TieHi | CellKind::TieLo)));
        // And the output must now be driven by the tie-1 (1&0=0, 0^1=1).
        let conn = Connectivity::build(&m).unwrap();
        let out = m.port("y").unwrap().net;
        match conn.driver_of(out) {
            Driver::Inst { inst, .. } => {
                assert_eq!(lib.cell(m.instances[inst.index()].cell).kind, CellKind::TieHi);
            }
            other => panic!("expected tie driver, got {other:?}"),
        }
    }

    #[test]
    fn dead_logic_swept_registers_kept() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let _unused = b.xor2(a, a); // drives nothing
        let q = b.dff(a); // sequential: kept even though q is unused
        let y = b.not(a);
        b.output("y", y);
        let _ = q;
        let mut m = b.finish();
        let rep = optimize(&mut m, &lib);
        assert!(rep.swept >= 1);
        assert_eq!(
            m.instances.iter().filter(|i| lib.cell(i.cell).is_sequential()).count(),
            1,
            "register must survive the sweep"
        );
    }

    #[test]
    fn optimize_is_idempotent() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.input("a");
        let zero = b.const0();
        let x = b.and2(a, zero);
        let y = b.or2(x, a);
        b.output("y", y);
        let mut m = b.finish();
        optimize(&mut m, &lib);
        let snapshot = m.clone();
        let rep2 = optimize(&mut m, &lib);
        assert_eq!(rep2.folded, 0);
        assert_eq!(rep2.swept, 0);
        assert_eq!(m, snapshot);
    }
}
