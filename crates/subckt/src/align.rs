//! FP & INT alignment unit.
//!
//! "This unit translates floating-point format data to integer format as
//! required by the DCIM macro through a comparator tree and shifters"
//! (§II-B, RedCIM style). For each group of `h` FP activations it:
//!
//! 1. finds the maximum exponent through a pairwise comparator tree;
//! 2. right-shifts each significand (implicit one + mantissa) by
//!    `e_max − e_i`, truncating shifted-out bits exactly as the golden
//!    model does;
//! 3. applies the sign, producing `man_bits + 2`-bit signed integers
//!    ready for bit-serial entry into the array.
//!
//! The generated netlist is verified bit-exactly against
//! [`syndcim_sim::golden::fp_align`].

use crate::arith::{barrel_shift_right, conditional_negate, ge_unsigned, mux_word, sub_unsigned};
use syndcim_netlist::{NetId, NetlistBuilder};
use syndcim_sim::FpFormat;

/// Per-row FP input ports.
#[derive(Debug, Clone)]
pub struct FpRowPorts {
    /// Sign bit.
    pub sign: NetId,
    /// Exponent field, LSB first.
    pub exp: Vec<NetId>,
    /// Mantissa field, LSB first.
    pub man: Vec<NetId>,
}

/// Result of [`build_align`].
#[derive(Debug, Clone)]
pub struct AlignOut {
    /// Aligned signed mantissas, one bus (`man_bits + 2` wide) per row.
    pub aligned: Vec<Vec<NetId>>,
    /// The shared maximum exponent.
    pub e_max: Vec<NetId>,
}

/// Build the alignment unit for `rows` FP inputs in format `fmt`.
/// Equivalent to [`build_align_pipelined`] with `pipelined = false`.
///
/// Instances are grouped under `align`.
///
/// # Panics
///
/// Panics if `rows.is_empty()` or any bus width disagrees with `fmt`.
pub fn build_align(b: &mut NetlistBuilder<'_>, fmt: FpFormat, rows: &[FpRowPorts]) -> AlignOut {
    build_align_pipelined(b, fmt, rows, false)
}

/// Build the alignment unit, optionally registering the maximum exponent
/// between the comparator tree and the per-row shifters. Pipelining is
/// the searcher's timing fix for tall arrays, where the `log₂ h`-deep
/// comparator tree dominates the alignment path.
///
/// # Panics
///
/// Panics if `rows.is_empty()` or any bus width disagrees with `fmt`.
pub fn build_align_pipelined(
    b: &mut NetlistBuilder<'_>,
    fmt: FpFormat,
    rows: &[FpRowPorts],
    pipelined: bool,
) -> AlignOut {
    assert!(!rows.is_empty(), "alignment unit needs at least one row");
    let e = fmt.exp_bits as usize;
    let m = fmt.man_bits as usize;
    for r in rows {
        assert_eq!(r.exp.len(), e, "exponent width mismatch");
        assert_eq!(r.man.len(), m, "mantissa width mismatch");
    }
    b.push_group("align");

    // 1) Comparator tree for e_max. Upper levels span the whole array
    // physically, so every level's result is re-buffered; in pipelined
    // mode a register bank splits the tree in half and a second bank
    // isolates the shifters (tall arrays cannot traverse the whole tree
    // in one cycle).
    let depth = (usize::BITS - (rows.len() - 1).leading_zeros()) as usize;
    let mid = depth.div_ceil(2);
    let mut level: Vec<Vec<NetId>> = rows.iter().map(|r| r.exp.clone()).collect();
    let mut lvl_idx = 0usize;
    while level.len() > 1 {
        lvl_idx += 1;
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(x) => {
                    let a_ge = ge_unsigned(b, &a, &x);
                    let m = mux_word(b, &x, &a, a_ge);
                    let m: Vec<NetId> =
                        m.iter().map(|&bit| b.add(syndcim_pdk::CellKind::BufX4, &[bit])[0]).collect();
                    next.push(m);
                }
                None => next.push(a),
            }
        }
        if pipelined && lvl_idx == mid {
            next = next.iter().map(|w| b.dff_bus(w)).collect();
        }
        level = next;
    }
    let mut e_max = level.pop().expect("one maximum remains");
    if pipelined {
        e_max = b.dff_bus(&e_max);
    }

    // 2) Per-row shift + sign.
    let shift_bits = usize::BITS as usize - (m + 1).leading_zeros() as usize; // enough to express m+1
    let aligned = rows
        .iter()
        .map(|r| {
            // significand = {1, man} (implicit one; true zero handled below).
            let one = b.const1();
            let mut sig: Vec<NetId> = r.man.clone();
            sig.push(one);

            // shift = e_max − e_i (never negative).
            let shift = sub_unsigned(b, &e_max, &r.exp);

            // Shift by the low bits; any high bit set ⇒ shift ≥ 2^shift_bits
            // > m+1 ⇒ result is zero.
            let zero = b.const0();
            let low = &shift[..shift_bits.min(shift.len())];
            let mut shifted = barrel_shift_right(b, &sig, low, zero);
            if shift.len() > shift_bits {
                let mut big = shift[shift_bits];
                for &s in &shift[shift_bits + 1..] {
                    big = b.or2(big, s);
                }
                let keep = b.not(big);
                shifted = shifted.iter().map(|&bit| b.and2(bit, keep)).collect();
            }

            // Zero flush: exp == 0 && man == 0 ⇒ force zero.
            let mut any = r.sign; // placeholder start; replaced below
            let mut first = true;
            for &bit in r.exp.iter().chain(r.man.iter()) {
                any = if first { bit } else { b.or2(any, bit) };
                first = false;
            }
            let masked: Vec<NetId> = shifted.iter().map(|&bit| b.and2(bit, any)).collect();

            // Sign: two's-complement negate when the sign bit is set.
            let mut mag = masked;
            mag.push(zero); // room for the sign
            conditional_negate(b, &mag, r.sign)
        })
        .collect();

    b.pop_group();
    AlignOut { aligned, e_max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::Module;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::golden::fp_align;
    use syndcim_sim::vectors::{random_fp, seeded_rng};
    use syndcim_sim::{FpValue, Simulator};

    fn build(fmt: FpFormat, h: usize) -> (Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("align", &lib);
        let rows: Vec<FpRowPorts> = (0..h)
            .map(|r| FpRowPorts {
                sign: b.input(format!("s{r}")),
                exp: b.input_bus(&format!("e{r}"), fmt.exp_bits as usize),
                man: b.input_bus(&format!("m{r}"), fmt.man_bits as usize),
            })
            .collect();
        let out = build_align(&mut b, fmt, &rows);
        for (r, bus) in out.aligned.iter().enumerate() {
            b.output_bus(&format!("a{r}"), bus);
        }
        b.output_bus("emax", &out.e_max);
        (b.finish(), lib)
    }

    fn drive_and_check(fmt: FpFormat, vals: &[FpValue], sim: &mut Simulator<'_>) {
        for (r, v) in vals.iter().enumerate() {
            sim.set(&format!("s{r}"), v.sign);
            sim.set_bus(&format!("e{r}"), fmt.exp_bits, v.exp_field as i64);
            sim.set_bus(&format!("m{r}"), fmt.man_bits, v.man_field as i64);
        }
        sim.settle();
        let (want, emax) = fp_align(vals, fmt);
        assert_eq!(sim.get_bus_unsigned("emax", fmt.exp_bits) as i32, emax, "emax");
        for (r, &w) in want.iter().enumerate() {
            let got = sim.get_bus_signed(&format!("a{r}"), fmt.aligned_bits());
            assert_eq!(got, w, "row {r}: vals={vals:?}");
        }
    }

    #[test]
    fn fp8_exhaustive_pairs() {
        let fmt = FpFormat::FP8;
        let (m, lib) = build(fmt, 2);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        // Sweep a representative grid of exponent/mantissa/sign combos.
        for b0 in (0..256u32).step_by(7) {
            let v0 = FpValue::from_bits(b0, fmt);
            let v0 = if v0.exp_field == 0 { FpValue::ZERO } else { v0 };
            for b1 in (0..256u32).step_by(11) {
                let v1 = FpValue::from_bits(b1, fmt);
                let v1 = if v1.exp_field == 0 { FpValue::ZERO } else { v1 };
                drive_and_check(fmt, &[v0, v1], &mut sim);
            }
        }
    }

    #[test]
    fn all_formats_random_groups() {
        for fmt in [FpFormat::FP4, FpFormat::FP8, FpFormat::BF16] {
            let h = 8;
            let (m, lib) = build(fmt, h);
            let mut sim = Simulator::new(&m, &lib).unwrap();
            let mut rng = seeded_rng(99);
            for _ in 0..20 {
                let vals = random_fp(&mut rng, h, fmt);
                drive_and_check(fmt, &vals, &mut sim);
            }
        }
    }

    #[test]
    fn pipelined_align_matches_after_one_extra_cycle() {
        let fmt = FpFormat::FP8;
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("alp", &lib);
        let rows: Vec<FpRowPorts> = (0..4)
            .map(|r| FpRowPorts {
                sign: b.input(format!("s{r}")),
                exp: b.input_bus(&format!("e{r}"), fmt.exp_bits as usize),
                man: b.input_bus(&format!("m{r}"), fmt.man_bits as usize),
            })
            .collect();
        let out = build_align_pipelined(&mut b, fmt, &rows, true);
        for (r, bus) in out.aligned.iter().enumerate() {
            b.output_bus(&format!("a{r}"), bus);
        }
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let mut rng = seeded_rng(4);
        let vals = random_fp(&mut rng, 4, fmt);
        for (r, v) in vals.iter().enumerate() {
            sim.set(&format!("s{r}"), v.sign);
            sim.set_bus(&format!("e{r}"), fmt.exp_bits, v.exp_field as i64);
            sim.set_bus(&format!("m{r}"), fmt.man_bits, v.man_field as i64);
        }
        sim.step(); // mid-tree register bank
        sim.step(); // e_max register
        sim.settle();
        let (want, _) = fp_align(&vals, fmt);
        for (r, &w) in want.iter().enumerate() {
            assert_eq!(sim.get_bus_signed(&format!("a{r}"), fmt.aligned_bits()), w);
        }
    }

    #[test]
    fn all_zero_group_aligns_to_zero() {
        let fmt = FpFormat::FP8;
        let (m, lib) = build(fmt, 4);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        drive_and_check(fmt, &[FpValue::ZERO; 4], &mut sim);
    }

    #[test]
    fn far_apart_exponents_flush_small_values() {
        let fmt = FpFormat::BF16;
        let (m, lib) = build(fmt, 2);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let big = FpValue { sign: false, exp_field: 200, man_field: 5 };
        let tiny = FpValue { sign: true, exp_field: 3, man_field: 127 };
        drive_and_check(fmt, &[big, tiny], &mut sim);
        // The tiny value must have flushed to exactly zero.
        assert_eq!(sim.get_bus_signed("a1", fmt.aligned_bits()), 0);
    }
}
