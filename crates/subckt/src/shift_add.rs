//! Shift-and-adder (S&A): the bit-serial accumulator.
//!
//! Accumulates the per-cycle adder-tree partial sums over the serial
//! activation bits. The datapath is the classic shift-right accumulator:
//! each cycle computes `A ← (A >>ₐ 1) + (±psum) · 2^(n−1)`, where the
//! partial sum is *subtracted* on the cycle carrying the activation MSB
//! (two's-complement sign handling). After `n` cycles the register holds
//! `Σₜ ±2^t·psumₜ` exactly.
//!
//! Width is `S + n` bits (`S` = tree output width, `n` = serial bits),
//! and the adder only spans the top `S + 1` positions — the lower bits
//! shift through untouched, which is what makes the S&A cheap.

use crate::arith::rca;
use syndcim_netlist::{NetId, NetlistBuilder};

/// Configuration for [`build_shift_add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShiftAddConfig {
    /// Width of the per-cycle partial sum from the adder tree.
    pub psum_bits: usize,
    /// Number of serial activation bits (cycles per pass).
    pub act_bits: usize,
}

impl ShiftAddConfig {
    /// Accumulator register width: `psum_bits + act_bits`.
    pub fn acc_bits(&self) -> usize {
        self.psum_bits + self.act_bits
    }
}

/// Result of [`build_shift_add`].
#[derive(Debug, Clone)]
pub struct ShiftAddOut {
    /// The accumulator register outputs (signed, LSB first).
    pub acc: Vec<NetId>,
}

/// Build one S&A column.
///
/// * `psum` — the adder-tree output for this column (unsigned count);
/// * `neg` — high on the cycle carrying the activation MSB (subtract);
/// * `clear` — high on the first cycle of a pass (accumulator restarts).
///
/// The returned [`ShiftAddOut::acc`] holds the completed dot-product
/// contribution after `act_bits` cycles.
///
/// # Panics
///
/// Panics if `psum.len() != cfg.psum_bits` or `cfg.act_bits == 0`.
pub fn build_shift_add(
    b: &mut NetlistBuilder<'_>,
    cfg: ShiftAddConfig,
    psum: &[NetId],
    neg: NetId,
    clear: NetId,
) -> ShiftAddOut {
    assert_eq!(psum.len(), cfg.psum_bits, "psum width mismatch");
    assert!(cfg.act_bits >= 1, "need at least one serial bit");
    let w = cfg.acc_bits();
    let k = cfg.act_bits - 1; // addend offset

    // Accumulator registers: create with placeholder inputs, patch after
    // the combinational next-state logic exists.
    let placeholders: Vec<NetId> = (0..w).map(|_| b.anon()).collect();
    let acc: Vec<NetId> = placeholders.iter().map(|&d| b.dff(d)).collect();
    let reg_first = b.module().instance_count() - w;

    // Arithmetic shift right by one (pure wiring) + clear gating.
    let nclear = b.not(clear);
    let shifted: Vec<NetId> = (0..w)
        .map(|i| {
            let src = if i + 1 < w { acc[i + 1] } else { acc[w - 1] };
            b.and2(src, nclear)
        })
        .collect();

    // Addend: ±psum at offset k. XOR with neg gives the one's complement;
    // the +1 completing two's complement enters as carry-in at bit k.
    let addend: Vec<NetId> = psum.iter().map(|&p| b.xor2(p, neg)).collect();

    // Bits below k pass straight through; the adder spans bits k..w with
    // the addend sign-extended by `neg`.
    let mut next = Vec::with_capacity(w);
    next.extend_from_slice(&shifted[..k]);
    let hi_a: Vec<NetId> = shifted[k..].to_vec();
    let mut hi_b: Vec<NetId> = addend.clone();
    while hi_b.len() < hi_a.len() {
        hi_b.push(neg); // sign extension of the (possibly negated) psum
    }
    hi_b.truncate(hi_a.len());
    let (sum, _carry) = rca(b, &hi_a, &hi_b, Some(neg));
    next.extend(sum);

    // Patch the register D-pins.
    for (i, &d) in next.iter().enumerate() {
        // The register instances were created contiguously.
        let inst = reg_first + i;
        b_patch(b, inst, d);
    }
    let _ = placeholders;

    ShiftAddOut { acc }
}

// Registers are created before their next-state logic, so their D inputs
// must be patched afterwards. NetlistBuilder exposes the module only
// read-only; this helper performs the controlled mutation.
fn b_patch(b: &mut NetlistBuilder<'_>, inst_index: usize, d: NetId) {
    b.patch_instance_input(inst_index, 0, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::Module;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::golden::{bit_serial_schedule, column_psum, twos_complement_bit};
    use syndcim_sim::Simulator;

    fn build(cfg: ShiftAddConfig) -> (Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("sa", &lib);
        let psum = b.input_bus("psum", cfg.psum_bits);
        let neg = b.input("neg");
        let clear = b.input("clear");
        let out = build_shift_add(&mut b, cfg, &psum, neg, clear);
        b.output_bus("acc", &out.acc);
        (b.finish(), lib)
    }

    /// Drive a sequence of psums through the S&A and return the result.
    fn run_pass(sim: &mut Simulator<'_>, cfg: ShiftAddConfig, psums: &[u64]) -> i64 {
        assert_eq!(psums.len(), cfg.act_bits);
        for (t, &p) in psums.iter().enumerate() {
            sim.set_bus("psum", cfg.psum_bits as u32, p as i64);
            sim.set("neg", t == cfg.act_bits - 1);
            sim.set("clear", t == 0);
            sim.step();
        }
        sim.get_bus_signed("acc", cfg.acc_bits() as u32)
    }

    #[test]
    fn accumulates_bit_serial_schedule() {
        let cfg = ShiftAddConfig { psum_bits: 3, act_bits: 4 };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        // psums 0..8 over 4 cycles, last negative.
        let got = run_pass(&mut sim, cfg, &[3, 0, 7, 1]);
        // 3·1 + 0·2 + 7·4 − 1·8 (last cycle negative).
        let want = 3 + 7 * 4 - 8;
        assert_eq!(got, want);
    }

    #[test]
    fn matches_golden_channel_model() {
        // Full integration with the golden DCIM schedule: H=7 rows of
        // INT4 activations against a fixed 1-bit weight column.
        let cfg = ShiftAddConfig { psum_bits: 3, act_bits: 4 };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let acts: Vec<i64> = vec![-8, 7, 3, -1, 0, 5, -4];
        let w_col = [true, false, true, true, true, false, true];
        let schedule = bit_serial_schedule(&acts, 4);
        let psums: Vec<u64> = schedule.iter().map(|bits| column_psum(bits, &w_col)).collect();
        let got = run_pass(&mut sim, cfg, &psums);
        let want: i64 = acts.iter().zip(&w_col).map(|(&a, &w)| a * w as i64).sum();
        assert_eq!(got, want);
    }

    #[test]
    fn back_to_back_passes_are_independent() {
        let cfg = ShiftAddConfig { psum_bits: 2, act_bits: 2 };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let first = run_pass(&mut sim, cfg, &[3, 1]);
        assert_eq!(first, 3 - 2);
        // Second pass must not inherit anything from the first.
        let second = run_pass(&mut sim, cfg, &[1, 0]);
        assert_eq!(second, 1);
    }

    #[test]
    fn single_bit_acts_are_pure_sign() {
        // INT1 activations: one cycle, always the negative MSB.
        let cfg = ShiftAddConfig { psum_bits: 3, act_bits: 1 };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let got = run_pass(&mut sim, cfg, &[5]);
        assert_eq!(got, -5);
    }

    #[test]
    fn exhaustive_int3_against_arithmetic() {
        let cfg = ShiftAddConfig { psum_bits: 2, act_bits: 3 };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for a in -4i64..4 {
            // A single row with weight 1: psum_t = bit t of a.
            let psums: Vec<u64> = (0..3).map(|t| twos_complement_bit(a, 3, t) as u64).collect();
            let got = run_pass(&mut sim, cfg, &psums);
            assert_eq!(got, a, "serial accumulation of {a}");
        }
    }
}
