//! # syndcim-subckt — the seven DCIM subcircuit generators
//!
//! Gate-level generators ("parameterized RTL templates" in the paper's
//! terms) for every subcircuit of a DCIM macro (§II-B):
//!
//! | Subcircuit | Module | Variants |
//! |---|---|---|
//! | Memory cell | [`mod@array`] | 6T+2T SRAM, 8T latch, 12T OAI |
//! | Multiplier & multiplexer | [`mod@array`] | 1T pass gate, TG+NOR, fused OAI22 |
//! | WL/BL driver | [`driver`] | fanout-sized buffer chains |
//! | Adder tree | [`adder_tree`] | RCA baseline, pure 4-2 compressor CSA, mixed CSA (+ carry reorder, retimable final RCA) |
//! | Shift & adder | [`shift_add`] | bit-serial shift-right accumulator |
//! | Output fusion unit | [`ofu`] | reconfigurable multi-precision fusion (+ retimable negate, extra pipeline) |
//! | FP & INT alignment | [`align`] | comparator tree + truncating shifters |
//!
//! Every generator is verified against the behavioural golden models in
//! `syndcim_sim::golden`, bit for bit.

pub mod adder_tree;
pub mod align;
pub mod arith;
pub mod array;
pub mod driver;
pub mod ofu;
pub mod shift_add;

pub use adder_tree::{build_adder_tree, AdderTreeConfig, AdderTreeKind, TreeOutput};
pub use align::{build_align, build_align_pipelined, AlignOut, FpRowPorts};
pub use array::{build_array, ArrayConfig, ArrayOut, BitcellKind, BitcellRef, MultMuxKind};
pub use driver::{build_drivers, chain_for_fanout, DriverRole};
pub use ofu::{build_column_negate, build_ofu, negate_levels, OfuConfig, OfuOut};
pub use shift_add::{build_shift_add, ShiftAddConfig, ShiftAddOut};
