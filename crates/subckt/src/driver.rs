//! WL/BL driver generators.
//!
//! "The WL driver feeds input data and SRAM write/read signals into the
//! DCIM array, while the BL driver writes weights into the SRAM array.
//! The power and size of the WL/BL driver depend on the array
//! dimensions" (§II-B). Drivers are fanout-sized buffer chains: larger
//! arrays get deeper/stronger chains, which is exactly the
//! dimension-dependent cost the paper describes.

use syndcim_netlist::{NetId, NetlistBuilder};
use syndcim_pdk::CellKind;

/// Which line a driver chain feeds (controls the group it is placed in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverRole {
    /// Activation word lines (one per row) — group `wl_drivers`.
    WordLine,
    /// Write word lines (one per bank×row) — group `wl_drivers`.
    WriteWordLine,
    /// Write bit lines (one per column) — group `bl_drivers`.
    BitLine,
}

impl DriverRole {
    fn group(&self) -> &'static str {
        match self {
            DriverRole::WordLine | DriverRole::WriteWordLine => "wl_drivers",
            DriverRole::BitLine => "bl_drivers",
        }
    }
}

/// Buffer-chain stages chosen for a given fanout (receiver pin count).
pub fn chain_for_fanout(fanout: usize) -> Vec<CellKind> {
    match fanout {
        0..=4 => vec![CellKind::Buf],
        5..=16 => vec![CellKind::Buf, CellKind::BufX4],
        17..=96 => vec![CellKind::Buf, CellKind::BufX4, CellKind::BufX16],
        _ => vec![CellKind::Buf, CellKind::BufX4, CellKind::BufX16, CellKind::BufX16],
    }
}

/// Drive each net of `lines` through a fanout-sized buffer chain;
/// returns the driven nets in order.
pub fn build_drivers(
    b: &mut NetlistBuilder<'_>,
    role: DriverRole,
    lines: &[NetId],
    fanout: usize,
) -> Vec<NetId> {
    b.push_group(role.group());
    let chain = chain_for_fanout(fanout);
    let out = lines
        .iter()
        .map(|&n| {
            let mut cur = n;
            for &stage in &chain {
                cur = b.add(stage, &[cur])[0];
            }
            cur
        })
        .collect();
    b.pop_group();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistStats;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;
    use syndcim_sta::Sta;

    #[test]
    fn chains_deepen_with_fanout() {
        assert_eq!(chain_for_fanout(2).len(), 1);
        assert_eq!(chain_for_fanout(10).len(), 2);
        assert_eq!(chain_for_fanout(64).len(), 3);
        assert_eq!(chain_for_fanout(300).len(), 4);
    }

    #[test]
    fn drivers_are_transparent_buffers() {
        let lib = CellLibrary::syn40();
        let mut b = syndcim_netlist::NetlistBuilder::new("d", &lib);
        let ins = b.input_bus("in", 3);
        let outs = build_drivers(&mut b, DriverRole::WordLine, &ins, 64);
        b.output_bus("out", &outs);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for v in [0b000i64, 0b101, 0b111] {
            sim.set_bus("in", 3, v);
            sim.settle();
            assert_eq!(sim.get_bus_unsigned("out", 3) as i64, v);
        }
        let stats = NetlistStats::of(&m, &lib);
        assert_eq!(stats.instances, 9); // 3 lines × 3 stages
    }

    #[test]
    fn sized_driver_beats_unit_buffer_under_load() {
        // Driving 64 NOR loads: the sized chain must be faster than a
        // single unit buffer.
        let lib = CellLibrary::syn40();
        let build = |sized: bool| {
            let mut b = syndcim_netlist::NetlistBuilder::new("d", &lib);
            let a = b.input("a");
            let driven =
                if sized { build_drivers(&mut b, DriverRole::WordLine, &[a], 64)[0] } else { b.buf(a) };
            let mut last = driven;
            for _ in 0..64 {
                last = b.add(CellKind::MultNor, &[driven, last])[0];
            }
            b.output("y", last);
            b.finish()
        };
        let slow = build(false);
        let fast = build(true);
        let d_slow = Sta::new(&slow, &lib).unwrap().analyze(1e6).max_delay_ps;
        let d_fast = Sta::new(&fast, &lib).unwrap().analyze(1e6).max_delay_ps;
        assert!(d_fast < d_slow, "sized {d_fast} vs unit {d_slow}");
    }

    #[test]
    fn groups_follow_roles() {
        let lib = CellLibrary::syn40();
        let mut b = syndcim_netlist::NetlistBuilder::new("d", &lib);
        let a = b.input("a");
        let w = b.input("w");
        build_drivers(&mut b, DriverRole::WordLine, &[a], 8);
        build_drivers(&mut b, DriverRole::BitLine, &[w], 8);
        let m = b.finish();
        let names: Vec<&str> = m.instances.iter().map(|i| m.group_name(i.group)).collect();
        assert!(names.contains(&"wl_drivers"));
        assert!(names.contains(&"bl_drivers"));
    }
}
