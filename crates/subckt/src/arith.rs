//! Shared structural arithmetic helpers ("RTL templates").
//!
//! These are the building blocks the seven subcircuit generators share:
//! ripple-carry addition, conditional negation, barrel shifting,
//! comparison — all emitted as gate-level structure through
//! [`NetlistBuilder`].

use syndcim_netlist::{NetId, NetlistBuilder};

/// Number of bits needed to represent the unsigned count `0..=n`.
pub fn count_bits(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

/// Sign-extend (or truncate) `bits` to exactly `width` nets, reusing the
/// top bit as the extension.
pub fn sign_extend(bits: &[NetId], width: usize) -> Vec<NetId> {
    assert!(!bits.is_empty());
    let mut out = bits.to_vec();
    let msb = *out.last().expect("non-empty");
    while out.len() < width {
        out.push(msb);
    }
    out.truncate(width);
    out
}

/// Zero-extend (or truncate) `bits` to `width` nets using `zero`.
pub fn zero_extend(bits: &[NetId], width: usize, zero: NetId) -> Vec<NetId> {
    let mut out = bits.to_vec();
    while out.len() < width {
        out.push(zero);
    }
    out.truncate(width);
    out
}

/// Ripple-carry adder over equal-width operands; returns `(sum, carry)`.
/// The first stage uses a half adder when `cin` is `None`.
pub fn rca(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId], cin: Option<NetId>) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), x.len(), "rca operands must match in width");
    assert!(!a.is_empty());
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &xi) in a.iter().zip(x) {
        match carry {
            None => {
                let (s, c) = b.ha(ai, xi);
                sum.push(s);
                carry = Some(c);
            }
            Some(c0) => {
                let (s, c) = b.fa(ai, xi, c0);
                sum.push(s);
                carry = Some(c);
            }
        }
    }
    (sum, carry.expect("width >= 1 produces a carry"))
}

/// Signed addition: operands sign-extended to `width`, result truncated
/// to `width` bits (wrap-around two's complement semantics).
pub fn add_signed(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId], width: usize) -> Vec<NetId> {
    let ae = sign_extend(a, width);
    let xe = sign_extend(x, width);
    let (sum, _) = rca(b, &ae, &xe, None);
    sum
}

/// Carry-select signed addition: operands sign-extended to `width`, the
/// sum computed in 8-bit blocks with precomputed carry-0/carry-1 copies
/// selected by the inter-block carry chain. Roughly `8·t_FA + n/8·t_mux`
/// instead of `n·t_FA` — what synthesis emits for wide adders under a
/// tight clock, at ~1.8× the ripple adder's area.
pub fn csel_add_signed(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId], width: usize) -> Vec<NetId> {
    const BLOCK: usize = 8;
    let ae = sign_extend(a, width);
    let xe = sign_extend(x, width);
    if width <= BLOCK {
        let (sum, _) = rca(b, &ae, &xe, None);
        return sum;
    }
    let mut out = Vec::with_capacity(width);
    let mut carry_sel: Option<NetId> = None;
    let mut base = 0usize;
    while base < width {
        let end = (base + BLOCK).min(width);
        let ab = &ae[base..end];
        let xb = &xe[base..end];
        match carry_sel {
            None => {
                let (sum, c) = rca(b, ab, xb, None);
                out.extend(sum);
                carry_sel = Some(c);
            }
            Some(sel) => {
                let zero = b.const0();
                let one = b.const1();
                let (s0, c0) = rca(b, ab, xb, Some(zero));
                let (s1, c1) = rca(b, ab, xb, Some(one));
                for (lo, hi) in s0.iter().zip(&s1) {
                    out.push(b.mux2(*lo, *hi, sel));
                }
                carry_sel = Some(b.mux2(c0, c1, sel));
            }
        }
        base = end;
    }
    out
}

/// Conditionally negate a two's-complement value: when `neg` is high the
/// output is `−value` (implemented as XOR with `neg` plus carry-in).
pub fn conditional_negate(b: &mut NetlistBuilder<'_>, bits: &[NetId], neg: NetId) -> Vec<NetId> {
    let inverted: Vec<NetId> = bits.iter().map(|&bit| b.xor2(bit, neg)).collect();
    // +neg via an incrementer chain (HA ripple).
    let mut out = Vec::with_capacity(bits.len());
    let mut carry = neg;
    for &bit in &inverted {
        let (s, c) = b.ha(bit, carry);
        out.push(s);
        carry = c;
    }
    out
}

/// Logical right-shift by a variable amount through a mux barrel
/// (`shift` is little-endian; stage `k` shifts by `2^k`). Vacated
/// positions fill with `fill`.
pub fn barrel_shift_right(
    b: &mut NetlistBuilder<'_>,
    bits: &[NetId],
    shift: &[NetId],
    fill: NetId,
) -> Vec<NetId> {
    let mut cur = bits.to_vec();
    for (k, &s) in shift.iter().enumerate() {
        let amt = 1usize << k;
        let mut next = Vec::with_capacity(cur.len());
        for i in 0..cur.len() {
            let shifted = if i + amt < cur.len() { cur[i + amt] } else { fill };
            next.push(b.mux2(cur[i], shifted, s));
        }
        cur = next;
    }
    cur
}

/// Unsigned comparison: returns a net that is high when `a >= x`
/// (computed as the carry-out of `a + ~x + 1`).
pub fn ge_unsigned(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId]) -> NetId {
    assert_eq!(a.len(), x.len());
    let nx: Vec<NetId> = x.iter().map(|&bit| b.not(bit)).collect();
    let one = b.const1();
    let (_, carry) = rca(b, a, &nx, Some(one));
    carry
}

/// Word-wide 2:1 mux.
pub fn mux_word(b: &mut NetlistBuilder<'_>, d0: &[NetId], d1: &[NetId], s: NetId) -> Vec<NetId> {
    assert_eq!(d0.len(), d1.len());
    d0.iter().zip(d1).map(|(&a, &c)| b.mux2(a, c, s)).collect()
}

/// Unsigned subtraction `a − x` assuming `a >= x`; returns `a.len()` bits.
pub fn sub_unsigned(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), x.len());
    let nx: Vec<NetId> = x.iter().map(|&bit| b.not(bit)).collect();
    let one = b.const1();
    let (diff, _) = rca(b, a, &nx, Some(one));
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::Module;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;

    fn harness(build: impl FnOnce(&mut NetlistBuilder<'_>)) -> (Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("t", &lib);
        build(&mut b);
        (b.finish(), lib)
    }

    #[test]
    fn count_bits_matches_log2() {
        assert_eq!(count_bits(1), 1);
        assert_eq!(count_bits(2), 2);
        assert_eq!(count_bits(63), 6);
        assert_eq!(count_bits(64), 7);
        assert_eq!(count_bits(256), 9);
    }

    #[test]
    fn rca_adds_exhaustively() {
        let (m, lib) = harness(|b| {
            let a = b.input_bus("a", 4);
            let x = b.input_bus("x", 4);
            let (s, c) = rca(b, &a, &x, None);
            b.output_bus("s", &s);
            b.output("c", c);
        });
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for a in 0..16u64 {
            for x in 0..16u64 {
                sim.set_bus("a", 4, a as i64);
                sim.set_bus("x", 4, x as i64);
                sim.settle();
                let got = sim.get_bus_unsigned("s", 4) | (sim.get("c") as u64) << 4;
                assert_eq!(got, a + x, "a={a} x={x}");
            }
        }
    }

    #[test]
    fn signed_add_wraps_correctly() {
        let (m, lib) = harness(|b| {
            let a = b.input_bus("a", 4);
            let x = b.input_bus("x", 4);
            let s = add_signed(b, &a, &x, 5);
            b.output_bus("s", &s);
        });
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for a in -8i64..8 {
            for x in -8i64..8 {
                sim.set_bus("a", 4, a);
                sim.set_bus("x", 4, x);
                sim.settle();
                assert_eq!(sim.get_bus_signed("s", 5), a + x, "a={a} x={x}");
            }
        }
    }

    #[test]
    fn conditional_negate_both_ways() {
        let (m, lib) = harness(|b| {
            let a = b.input_bus("a", 5);
            let neg = b.input("neg");
            let y = conditional_negate(b, &a, neg);
            b.output_bus("y", &y);
        });
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for a in -16i64..16 {
            for neg in [false, true] {
                sim.set_bus("a", 5, a);
                sim.set("neg", neg);
                sim.settle();
                let want = if neg { (-a) & 0x1F } else { a & 0x1F };
                assert_eq!(sim.get_bus_unsigned("y", 5) as i64, want, "a={a} neg={neg}");
            }
        }
    }

    #[test]
    fn barrel_shifter_matches_shr() {
        let (m, lib) = harness(|b| {
            let a = b.input_bus("a", 8);
            let sh = b.input_bus("sh", 3);
            let zero = b.const0();
            let y = barrel_shift_right(b, &a, &sh, zero);
            b.output_bus("y", &y);
        });
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for a in [0u64, 1, 0x80, 0xAB, 0xFF] {
            for sh in 0..8u64 {
                sim.set_bus("a", 8, a as i64);
                sim.set_bus("sh", 3, sh as i64);
                sim.settle();
                assert_eq!(sim.get_bus_unsigned("y", 8), a >> sh, "a={a:#x} sh={sh}");
            }
        }
    }

    #[test]
    fn ge_and_sub_unsigned() {
        let (m, lib) = harness(|b| {
            let a = b.input_bus("a", 4);
            let x = b.input_bus("x", 4);
            let ge = ge_unsigned(b, &a, &x);
            let d = sub_unsigned(b, &a, &x);
            b.output("ge", ge);
            b.output_bus("d", &d);
        });
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for a in 0..16u64 {
            for x in 0..16u64 {
                sim.set_bus("a", 4, a as i64);
                sim.set_bus("x", 4, x as i64);
                sim.settle();
                assert_eq!(sim.get("ge"), a >= x, "a={a} x={x}");
                if a >= x {
                    assert_eq!(sim.get_bus_unsigned("d", 4), a - x);
                }
            }
        }
    }

    #[test]
    fn mux_word_selects() {
        let (m, lib) = harness(|b| {
            let a = b.input_bus("a", 3);
            let x = b.input_bus("x", 3);
            let s = b.input("s");
            let y = mux_word(b, &a, &x, s);
            b.output_bus("y", &y);
        });
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set_bus("a", 3, 0b101);
        sim.set_bus("x", 3, 0b010);
        sim.set("s", false);
        sim.settle();
        assert_eq!(sim.get_bus_unsigned("y", 3), 0b101);
        sim.set("s", true);
        sim.settle();
        assert_eq!(sim.get_bus_unsigned("y", 3), 0b010);
    }
}
