//! Adder-tree generators — the subcircuit family at the heart of the
//! paper's contribution (§III-B, Fig. 4–5).
//!
//! Three topologies are provided:
//!
//! * [`AdderTreeKind::RcaTree`] — the conventional signed ripple-carry
//!   binary tree (the baseline the paper calls "logically complex" and
//!   throughput-limiting);
//! * [`AdderTreeKind::CompressorCsa`] — the pure bit-wise 4-2-compressor
//!   carry-save tree (power- and area-efficient but slow sum paths);
//! * [`AdderTreeKind::MixedCsa`] — the paper's proposal: the first
//!   `fa_rounds` reduction rounds use full-adder (3:2) stages to shorten
//!   the critical path under strict timing, the rest use 4-2 compressors
//!   to save power and area under loose timing.
//!
//! Two further options reproduce the paper's optimizations:
//!
//! * **carry reorder** — because carry outputs are faster than sum
//!   outputs, reconnecting late-arriving bits onto the fast `cin` ports
//!   re-balances the paths ("reordering the connections between cells");
//! * **carry-save output** ([`AdderTreeConfig::final_cpa`] = false) — the
//!   tree stops before the final ripple-carry stage so the searcher can
//!   *retime*: "moving the registers at the output of the adder to the
//!   front of the last RCA stage".

use crate::arith::{count_bits, rca, zero_extend};
use syndcim_netlist::{NetId, NetlistBuilder};

/// Topology selector for [`build_adder_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdderTreeKind {
    /// Binary tree of ripple-carry adders (conventional baseline).
    RcaTree,
    /// Pure 4-2 compressor carry-save tree.
    CompressorCsa,
    /// Mixed tree: the first `fa_rounds` carry-save rounds use full
    /// adders (3:2), the remainder 4-2 compressors.
    MixedCsa {
        /// Number of leading full-adder rounds.
        fa_rounds: usize,
    },
}

impl AdderTreeKind {
    /// The speed-ordered ladder the multi-spec searcher climbs when the
    /// timing check fails: pure compressor → progressively more FA
    /// rounds. (`RcaTree` is a baseline, not on the ladder.)
    pub fn speed_ladder(max_fa_rounds: usize) -> Vec<AdderTreeKind> {
        let mut v = vec![AdderTreeKind::CompressorCsa];
        v.extend((1..=max_fa_rounds).map(|r| AdderTreeKind::MixedCsa { fa_rounds: r }));
        v
    }
}

impl std::fmt::Display for AdderTreeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdderTreeKind::RcaTree => write!(f, "rca"),
            AdderTreeKind::CompressorCsa => write!(f, "csa-c42"),
            AdderTreeKind::MixedCsa { fa_rounds } => write!(f, "csa-mixed{fa_rounds}"),
        }
    }
}

/// Full configuration of one adder tree instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdderTreeConfig {
    /// Topology.
    pub kind: AdderTreeKind,
    /// Apply the carry-reorder connection optimization.
    pub carry_reorder: bool,
    /// Emit the final carry-propagate (ripple) stage. When `false` the
    /// tree returns its redundant carry-save pair so the register can be
    /// retimed in front of the last RCA stage.
    pub final_cpa: bool,
}

impl Default for AdderTreeConfig {
    fn default() -> Self {
        AdderTreeConfig { kind: AdderTreeKind::CompressorCsa, carry_reorder: true, final_cpa: true }
    }
}

/// Output of [`build_adder_tree`].
#[derive(Debug, Clone)]
pub enum TreeOutput {
    /// Fully assimilated binary sum, LSB first.
    Binary(Vec<NetId>),
    /// Redundant carry-save pair: the sum equals `a + b` (equal widths).
    CarrySave {
        /// First operand (LSB first).
        a: Vec<NetId>,
        /// Second operand (LSB first).
        b: Vec<NetId>,
    },
}

impl TreeOutput {
    /// Width in bits of the (binary or redundant) result.
    pub fn width(&self) -> usize {
        match self {
            TreeOutput::Binary(s) => s.len(),
            TreeOutput::CarrySave { a, .. } => a.len(),
        }
    }
}

/// A bit inside the reduction network, with an arrival estimate in
/// normalized delay units for the carry-reorder optimization.
#[derive(Debug, Clone, Copy)]
struct Bit {
    net: NetId,
    arr: f64,
}

// Arrival-estimate increments mirroring the library's parasitic delays
// (see `syndcim_pdk::library`): used only to *order* connections.
const FA_SUM: f64 = 4.5;
const FA_CIN_SUM: f64 = 3.6;
const FA_CARRY: f64 = 2.6;
const FA_CIN_CARRY: f64 = 1.9;
const C42_SUM: f64 = 10.5;
const C42_CIN_SUM: f64 = 3.8;
const C42_CARRY: f64 = 5.5;
const C42_CIN_CARRY: f64 = 2.4;
const C42_COUT: f64 = 3.0;

/// Build an adder tree reducing `inputs` (equal-weight 1-bit partial
/// products) to their sum. Returns [`TreeOutput::Binary`] of width
/// `count_bits(H)` when `cfg.final_cpa`, else the carry-save pair.
///
/// # Panics
///
/// Panics if `inputs.len() < 2`.
pub fn build_adder_tree(b: &mut NetlistBuilder<'_>, inputs: &[NetId], cfg: AdderTreeConfig) -> TreeOutput {
    assert!(inputs.len() >= 2, "adder tree needs at least two inputs");
    match cfg.kind {
        AdderTreeKind::RcaTree => build_rca_tree(b, inputs, cfg.final_cpa),
        AdderTreeKind::CompressorCsa => build_csa(b, inputs, 0, cfg),
        AdderTreeKind::MixedCsa { fa_rounds } => build_csa(b, inputs, fa_rounds, cfg),
    }
}

fn build_rca_tree(b: &mut NetlistBuilder<'_>, inputs: &[NetId], final_cpa: bool) -> TreeOutput {
    // Operands start as 1-bit numbers; pairwise RCA until one remains.
    let mut ops: Vec<Vec<NetId>> = inputs.iter().map(|&n| vec![n]).collect();
    while ops.len() > 1 {
        let mut next = Vec::with_capacity(ops.len().div_ceil(2));
        let mut it = ops.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(x) => {
                    let w = a.len().max(x.len());
                    let zero = b.const0();
                    let ae = zero_extend(&a, w, zero);
                    let xe = zero_extend(&x, w, zero);
                    let (mut s, c) = rca(b, &ae, &xe, None);
                    s.push(c);
                    next.push(s);
                }
                None => next.push(a),
            }
        }
        ops = next;
    }
    let sum = ops.pop().expect("one operand remains");
    let width = count_bits(inputs.len());
    let mut sum = sum;
    sum.truncate(width);
    if final_cpa {
        TreeOutput::Binary(sum)
    } else {
        // An RCA tree has no redundant form; hand back sum + zero so the
        // retimed pipeline shape stays uniform.
        let zero = b.const0();
        let z = vec![zero; sum.len()];
        TreeOutput::CarrySave { a: sum, b: z }
    }
}

fn pick<const N: usize>(col: &mut Vec<Bit>, reorder: bool) -> [Bit; N] {
    // With reorder: feed the *earliest* bits to the slow inputs and keep
    // the latest for the fast cin port (the caller passes cin last).
    if reorder {
        col.sort_by(|a, b| a.arr.partial_cmp(&b.arr).expect("finite arrivals"));
    }
    let mut out = [Bit { net: NetId(0), arr: 0.0 }; N];
    for slot in out.iter_mut() {
        *slot = col.remove(0);
    }
    out
}

fn build_csa(
    b: &mut NetlistBuilder<'_>,
    inputs: &[NetId],
    fa_rounds: usize,
    cfg: AdderTreeConfig,
) -> TreeOutput {
    let width = count_bits(inputs.len());
    let mut cols: Vec<Vec<Bit>> = vec![Vec::new(); width + 2];
    for &n in inputs {
        cols[0].push(Bit { net: n, arr: 0.0 });
    }

    let mut round = 0usize;
    while cols.iter().any(|c| c.len() > 2) {
        let use_fa = round < fa_rounds;
        round += 1;
        let mut next: Vec<Vec<Bit>> = vec![Vec::new(); cols.len()];
        if use_fa {
            // 3:2 full-adder round.
            for w in 0..cols.len() {
                let col = &mut cols[w];
                while col.len() >= 3 {
                    let [x, y, z] = pick::<3>(col, cfg.carry_reorder);
                    let (s, c) = b.fa(x.net, y.net, z.net);
                    let s_arr = (x.arr + FA_SUM).max(y.arr + FA_SUM).max(z.arr + FA_CIN_SUM);
                    let c_arr = (x.arr + FA_CARRY).max(y.arr + FA_CARRY).max(z.arr + FA_CIN_CARRY);
                    next[w].push(Bit { net: s, arr: s_arr });
                    next[w + 1].push(Bit { net: c, arr: c_arr });
                }
                next[w].append(col);
            }
        } else {
            // 4-2 compressor round. Each cell is used as a 5-3 carry-save
            // counter (paper [14]): the cin port takes the chained cout of
            // the lower-weight compressor when one exists, otherwise a
            // fifth data bit.
            let mut chain: Vec<Option<Bit>> = vec![None; cols.len() + 1];
            for w in 0..cols.len() {
                let col = &mut cols[w];
                // An unconsumed chained cout becomes an ordinary bit.
                let mut pending = chain[w].take();
                while col.len() >= 5 || (col.len() >= 4 && pending.is_some()) {
                    let [p, q, r, s4] = pick::<4>(col, cfg.carry_reorder);
                    let cin = match pending.take() {
                        Some(bit) => bit,
                        None => pick::<1>(col, cfg.carry_reorder)[0],
                    };
                    let (s, carry, cout) = b.c42(p.net, q.net, r.net, s4.net, cin.net);
                    let slow = p.arr.max(q.arr).max(r.arr).max(s4.arr);
                    next[w].push(Bit { net: s, arr: (slow + C42_SUM).max(cin.arr + C42_CIN_SUM) });
                    next[w + 1]
                        .push(Bit { net: carry, arr: (slow + C42_CARRY).max(cin.arr + C42_CIN_CARRY) });
                    let cout_arr = p.arr.max(q.arr).max(r.arr) + C42_COUT;
                    if chain[w + 1].is_none() {
                        chain[w + 1] = Some(Bit { net: cout, arr: cout_arr });
                    } else {
                        next[w + 1].push(Bit { net: cout, arr: cout_arr });
                    }
                }
                if let Some(bit) = pending {
                    next[w].push(bit);
                }
                // Tail cases: 4 leftover bits use a compressor with a
                // grounded cin (4:3), 3 use an FA; 1–2 pass through.
                if col.len() == 4 {
                    let [p, q, r, s4] = pick::<4>(col, cfg.carry_reorder);
                    let zero = b.const0();
                    let (s, carry, cout) = b.c42(p.net, q.net, r.net, s4.net, zero);
                    let slow = p.arr.max(q.arr).max(r.arr).max(s4.arr);
                    next[w].push(Bit { net: s, arr: slow + C42_SUM });
                    next[w + 1].push(Bit { net: carry, arr: slow + C42_CARRY });
                    next[w + 1].push(Bit { net: cout, arr: p.arr.max(q.arr).max(r.arr) + C42_COUT });
                }
                if col.len() == 3 {
                    let [x, y, z] = pick::<3>(col, cfg.carry_reorder);
                    let (s, c) = b.fa(x.net, y.net, z.net);
                    next[w].push(Bit { net: s, arr: x.arr.max(y.arr).max(z.arr) + FA_SUM });
                    next[w + 1].push(Bit { net: c, arr: x.arr.max(y.arr).max(z.arr) + FA_CARRY });
                }
                next[w].append(col);
            }
            for (w, slot) in chain.into_iter().enumerate() {
                if let Some(bit) = slot {
                    if w < next.len() {
                        next[w].push(bit);
                    }
                }
            }
        }
        cols = next;
        // Safety valve against a logic error: reduction must terminate.
        assert!(round < 64, "carry-save reduction failed to converge");
    }

    // Assemble the ≤2 bits per column into the redundant pair.
    let zero = b.const0();
    let mut op_a = Vec::with_capacity(width);
    let mut op_b = Vec::with_capacity(width);
    for col in cols.iter().take(width) {
        op_a.push(col.first().map(|x| x.net).unwrap_or(zero));
        op_b.push(col.get(1).map(|x| x.net).unwrap_or(zero));
    }
    // Columns beyond `width` cannot carry real weight for a sum ≤ H; any
    // bits there are structurally zero and dropped.

    if cfg.final_cpa {
        let (sum, _carry) = rca(b, &op_a, &op_b, None);
        TreeOutput::Binary(sum)
    } else {
        TreeOutput::CarrySave { a: op_a, b: op_b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::{Module, NetlistStats};
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;
    use syndcim_sta::Sta;

    fn build(h: usize, cfg: AdderTreeConfig) -> (Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("tree", &lib);
        let ins = b.input_bus("in", h);
        match build_adder_tree(&mut b, &ins, cfg) {
            TreeOutput::Binary(s) => b.output_bus("sum", &s),
            TreeOutput::CarrySave { a, b: bb } => {
                b.output_bus("csa_a", &a);
                b.output_bus("csa_b", &bb);
            }
        }
        (b.finish(), lib)
    }

    fn check_counts(h: usize, cfg: AdderTreeConfig) {
        let (m, lib) = build(h, cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let w = count_bits(h) as u32;
        let mut x: u64 = 0xDEADBEEF ^ (h as u64) << 1;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mut expect = 0u64;
            for i in 0..h {
                let bit = (x >> (i % 64)).wrapping_mul(0x9E37).wrapping_add(x >> (i / 3)) & 1 == 1;
                sim.set(&format!("in[{i}]"), bit);
                expect += bit as u64;
            }
            sim.settle();
            let got = if cfg.final_cpa {
                sim.get_bus_unsigned("sum", w)
            } else {
                let wa = m.bus("csa_a", w as usize).map(|v| v.len()).unwrap_or(0) as u32;
                (sim.get_bus_unsigned("csa_a", wa) + sim.get_bus_unsigned("csa_b", wa)) & ((1 << w) - 1)
            };
            assert_eq!(got, expect, "h={h} cfg={cfg:?}");
        }
    }

    #[test]
    fn all_variants_count_correctly() {
        for h in [4usize, 8, 16, 21, 64] {
            for kind in [
                AdderTreeKind::RcaTree,
                AdderTreeKind::CompressorCsa,
                AdderTreeKind::MixedCsa { fa_rounds: 1 },
                AdderTreeKind::MixedCsa { fa_rounds: 3 },
                AdderTreeKind::MixedCsa { fa_rounds: 99 },
            ] {
                for reorder in [false, true] {
                    check_counts(h, AdderTreeConfig { kind, carry_reorder: reorder, final_cpa: true });
                }
            }
        }
    }

    #[test]
    fn carry_save_output_sums_correctly() {
        for kind in
            [AdderTreeKind::CompressorCsa, AdderTreeKind::MixedCsa { fa_rounds: 2 }, AdderTreeKind::RcaTree]
        {
            check_counts(32, AdderTreeConfig { kind, carry_reorder: true, final_cpa: false });
        }
    }

    #[test]
    fn exhaustive_small_tree() {
        let cfg = AdderTreeConfig::default();
        let (m, lib) = build(4, cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for v in 0..16u64 {
            for i in 0..4 {
                sim.set(&format!("in[{i}]"), v >> i & 1 == 1);
            }
            sim.settle();
            assert_eq!(sim.get_bus_unsigned("sum", 3), v.count_ones() as u64);
        }
    }

    #[test]
    fn paper_tradeoff_compressor_cheapest_fa_fastest() {
        // §III-B: compressors minimize power/area; FAs shorten the path;
        // the conventional RCA tree is the most expensive in cells/area
        // (its delay parity pre-layout erodes post-layout through its
        // much larger cell and wire count — see the macro-level benches).
        let h = 64;
        let mk = |kind| build(h, AdderTreeConfig { kind, carry_reorder: true, final_cpa: true });
        let (mc, lib_c) = mk(AdderTreeKind::CompressorCsa);
        let (mf, lib_f) = mk(AdderTreeKind::MixedCsa { fa_rounds: 99 });
        let (mr, lib_r) = mk(AdderTreeKind::RcaTree);
        let area_c = NetlistStats::of(&mc, &lib_c).cell_area_um2;
        let area_f = NetlistStats::of(&mf, &lib_f).cell_area_um2;
        let area_r = NetlistStats::of(&mr, &lib_r).cell_area_um2;
        assert!(area_c < area_f, "compressor tree must be smaller: {area_c} vs {area_f}");
        assert!(area_r > area_c, "RCA baseline must cost the most area: rca={area_r} c42={area_c}");
        let d_c = Sta::new(&mc, &lib_c).unwrap().analyze(1e6).max_delay_ps;
        let d_f = Sta::new(&mf, &lib_f).unwrap().analyze(1e6).max_delay_ps;
        assert!(d_f < d_c, "full-adder tree must be faster: {d_f} vs {d_c}");
    }

    #[test]
    fn ladder_spans_the_delay_space() {
        // The ladder is a *candidate set*; the SCL orders it by measured
        // delay. The extremes must bracket it: pure FA (large fa_rounds)
        // strictly beats pure compressor, and no mixed point is slower
        // than the pure-compressor start.
        let h = 64;
        let base = {
            let (m, lib) = build(h, AdderTreeConfig::default());
            Sta::new(&m, &lib).unwrap().analyze(1e6).max_delay_ps
        };
        let mut best = f64::INFINITY;
        for kind in AdderTreeKind::speed_ladder(8) {
            let (m, lib) = build(h, AdderTreeConfig { kind, carry_reorder: true, final_cpa: true });
            let d = Sta::new(&m, &lib).unwrap().analyze(1e6).max_delay_ps;
            best = best.min(d);
        }
        assert!(
            best < base * 0.95,
            "the fastest mixed tree ({best}) must clearly beat pure compressor ({base})"
        );
    }

    #[test]
    fn carry_reorder_does_not_hurt() {
        let h = 64;
        for kind in [AdderTreeKind::CompressorCsa, AdderTreeKind::MixedCsa { fa_rounds: 2 }] {
            let (m0, lib0) = build(h, AdderTreeConfig { kind, carry_reorder: false, final_cpa: true });
            let (m1, lib1) = build(h, AdderTreeConfig { kind, carry_reorder: true, final_cpa: true });
            let d0 = Sta::new(&m0, &lib0).unwrap().analyze(1e6).max_delay_ps;
            let d1 = Sta::new(&m1, &lib1).unwrap().analyze(1e6).max_delay_ps;
            assert!(d1 <= d0 * 1.02, "reorder should not slow the tree: {d1} vs {d0} ({kind})");
        }
    }

    #[test]
    fn speed_ladder_shape() {
        let l = AdderTreeKind::speed_ladder(3);
        assert_eq!(l.len(), 4);
        assert_eq!(l[0], AdderTreeKind::CompressorCsa);
        assert_eq!(l[3], AdderTreeKind::MixedCsa { fa_rounds: 3 });
    }
}
