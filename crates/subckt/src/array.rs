//! Memory array generator: bitcells, column multiplexers (MCR banks) and
//! bitwise multipliers.
//!
//! Reproduces the three multiplier/multiplexer styles of §II-B:
//!
//! * [`MultMuxKind::PassGate1T`] — AutoDCIM's 1T pass gate: smallest, but
//!   the threshold-voltage drop costs delay and power;
//! * [`MultMuxKind::Oai22Fused`] — fused OAI22 multiplier+mux: saves
//!   wiring but "becomes less scalable when the MCR exceeds 2";
//! * [`MultMuxKind::TgNor`] — 2T transmission gate + NOR multiplier, the
//!   commonly adopted scalable approach;
//!
//! and the three bitcell styles (6T+2T SRAM, 8T D-latch, 12T OAI).

use syndcim_netlist::{InstId, NetId, NetlistBuilder};
use syndcim_pdk::CellKind;

/// Bitcell topology selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitcellKind {
    /// 6T SRAM cell + 2T read port (pushed-rule layout).
    Sram6T2T,
    /// 8T D-latch cell — robust read/write, fastest weight updates.
    Latch8T,
    /// 12T OAI-gate cell — standard-cell compatible ("design
    /// feasibility"), largest and slowest to write.
    Oai12T,
}

impl BitcellKind {
    /// The library cell implementing this bitcell.
    pub fn cell_kind(&self) -> CellKind {
        match self {
            BitcellKind::Sram6T2T => CellKind::Sram6T2T,
            BitcellKind::Latch8T => CellKind::Latch8T,
            BitcellKind::Oai12T => CellKind::Oai12T,
        }
    }

    /// All bitcell variants.
    pub const ALL: &'static [BitcellKind] =
        &[BitcellKind::Sram6T2T, BitcellKind::Latch8T, BitcellKind::Oai12T];
}

impl std::fmt::Display for BitcellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitcellKind::Sram6T2T => write!(f, "6T+2T"),
            BitcellKind::Latch8T => write!(f, "8T-latch"),
            BitcellKind::Oai12T => write!(f, "12T-OAI"),
        }
    }
}

/// Multiplier/multiplexer topology selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MultMuxKind {
    /// 1T pass-gate mux + NOR multiplier (AutoDCIM style).
    PassGate1T,
    /// 2T transmission-gate mux + NOR multiplier (scalable standard).
    TgNor,
    /// Fused OAI22 multiplier+mux (MCR ≤ 2 only).
    Oai22Fused,
}

impl MultMuxKind {
    /// `true` if this style supports the given memory-compute ratio.
    pub fn supports_mcr(&self, mcr: usize) -> bool {
        match self {
            MultMuxKind::Oai22Fused => mcr <= 2,
            _ => true,
        }
    }

    /// All multiplier/mux variants.
    pub const ALL: &'static [MultMuxKind] =
        &[MultMuxKind::PassGate1T, MultMuxKind::TgNor, MultMuxKind::Oai22Fused];
}

impl std::fmt::Display for MultMuxKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultMuxKind::PassGate1T => write!(f, "1T-passgate"),
            MultMuxKind::TgNor => write!(f, "TG+NOR"),
            MultMuxKind::Oai22Fused => write!(f, "fused-OAI22"),
        }
    }
}

/// Array configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayConfig {
    /// Rows (activations reduced per column).
    pub h: usize,
    /// Columns (1-bit weight columns).
    pub w: usize,
    /// Memory-compute ratio: weight banks per compute site (1, 2 or 4).
    pub mcr: usize,
    /// Bitcell style.
    pub bitcell: BitcellKind,
    /// Multiplier/multiplexer style.
    pub multmux: MultMuxKind,
}

/// Location record for one placed bitcell (used to preload weights in
/// simulation and to reproduce write sequences).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitcellRef {
    /// Column index.
    pub col: usize,
    /// Row index.
    pub row: usize,
    /// Bank index (0..MCR).
    pub bank: usize,
    /// The bitcell instance.
    pub inst: InstId,
}

/// Result of [`build_array`].
#[derive(Debug, Clone)]
pub struct ArrayOut {
    /// `products[col][row]`: the 1-bit partial products feeding each
    /// column's adder tree.
    pub products: Vec<Vec<NetId>>,
    /// Every bitcell with its (col, row, bank) coordinates.
    pub bitcells: Vec<BitcellRef>,
}

/// Build the memory/multiplier array.
///
/// * `act[r]` — the (driven) activation bit of row `r`;
/// * `wwl[bank][r]` — write word line per bank and row;
/// * `wbl[c]` — write bit line per column;
/// * `bank_sel[c]` — `log2(mcr)` bank-select bits for column `c`
///   (buffered per column by the caller; empty inner vectors for
///   MCR = 1).
///
/// Instances are grouped `col{c}/bitcells` and `col{c}/mult` so SDP
/// placement tiles them correctly.
///
/// # Panics
///
/// Panics if the port slices disagree with `cfg`, if `mcr` is not 1, 2
/// or 4, or if the mult/mux style does not support the MCR.
pub fn build_array(
    b: &mut NetlistBuilder<'_>,
    cfg: ArrayConfig,
    act: &[NetId],
    wwl: &[Vec<NetId>],
    wbl: &[NetId],
    bank_sel: &[Vec<NetId>],
) -> ArrayOut {
    assert_eq!(act.len(), cfg.h, "need one activation net per row");
    assert_eq!(wwl.len(), cfg.mcr, "need one wwl bank set per MCR bank");
    assert!(wwl.iter().all(|w| w.len() == cfg.h), "each bank needs H write word lines");
    assert_eq!(wbl.len(), cfg.w, "need one write bit line per column");
    assert!(matches!(cfg.mcr, 1 | 2 | 4), "MCR must be 1, 2 or 4");
    assert_eq!(bank_sel.len(), cfg.w, "need one bank-select bundle per column");
    assert!(
        bank_sel.iter().all(|s| s.len() == cfg.mcr.trailing_zeros() as usize),
        "need log2(MCR) select bits per column"
    );
    assert!(cfg.multmux.supports_mcr(cfg.mcr), "{} does not scale to MCR={}", cfg.multmux, cfg.mcr);

    let bitcell = cfg.bitcell.cell_kind();
    let mut products = Vec::with_capacity(cfg.w);
    let mut bitcells = Vec::new();

    for c in 0..cfg.w {
        b.push_group(&format!("col{c}"));
        let mut col_products = Vec::with_capacity(cfg.h);
        for r in 0..cfg.h {
            // Bitcells for each bank.
            b.push_group("bitcells");
            let mut rbl = Vec::with_capacity(cfg.mcr);
            for (bank, wwl_bank) in wwl.iter().enumerate().take(cfg.mcr) {
                let out = b.add_named(format!("bc_c{c}_r{r}_b{bank}"), bitcell, &[wwl_bank[r], wbl[c]]);
                let inst = InstId((b.module().instance_count() - 1) as u32);
                bitcells.push(BitcellRef { col: c, row: r, bank, inst });
                rbl.push(out[0]);
            }
            b.pop_group();

            b.push_group("mult");
            let product = match (cfg.multmux, cfg.mcr) {
                (MultMuxKind::Oai22Fused, 1) => {
                    let zero = b.const0();
                    b.add(CellKind::Oai22Fused, &[act[r], rbl[0], zero, zero])[0]
                }
                (MultMuxKind::Oai22Fused, 2) => {
                    b.add(CellKind::Oai22Fused, &[act[r], rbl[0], rbl[1], bank_sel[c][0]])[0]
                }
                (style, mcr) => {
                    let mux_kind = match style {
                        MultMuxKind::PassGate1T => CellKind::MuxPg2,
                        MultMuxKind::TgNor => CellKind::MuxTg2,
                        MultMuxKind::Oai22Fused => unreachable!("checked by supports_mcr"),
                    };
                    let selected = match mcr {
                        1 => rbl[0],
                        2 => b.add(mux_kind, &[rbl[0], rbl[1], bank_sel[c][0]])[0],
                        4 => {
                            let lo = b.add(mux_kind, &[rbl[0], rbl[1], bank_sel[c][0]])[0];
                            let hi = b.add(mux_kind, &[rbl[2], rbl[3], bank_sel[c][0]])[0];
                            b.add(mux_kind, &[lo, hi, bank_sel[c][1]])[0]
                        }
                        _ => unreachable!("mcr validated above"),
                    };
                    b.add(CellKind::MultNor, &[act[r], selected])[0]
                }
            };
            col_products.push(product);
            b.pop_group();
        }
        b.pop_group();
        products.push(col_products);
    }

    ArrayOut { products, bitcells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::Module;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;

    struct Harness {
        module: Module,
        out: ArrayOut,
    }

    fn build(cfg: ArrayConfig) -> (Harness, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("array", &lib);
        let act = b.input_bus("act", cfg.h);
        let mut wwl = Vec::new();
        for bank in 0..cfg.mcr {
            wwl.push(b.input_bus(&format!("wwl{bank}"), cfg.h));
        }
        let wbl = b.input_bus("wbl", cfg.w);
        let sel_bits = b.input_bus("sel", cfg.mcr.trailing_zeros() as usize);
        let bank_sel = vec![sel_bits; cfg.w];
        let out = build_array(&mut b, cfg, &act, &wwl, &wbl, &bank_sel);
        for (c, col) in out.products.iter().enumerate() {
            b.output_bus(&format!("p{c}"), col);
        }
        (Harness { module: b.finish(), out }, lib)
    }

    fn exercise(cfg: ArrayConfig) {
        let (h, lib) = build(cfg);
        let mut sim = Simulator::new(&h.module, &lib).unwrap();
        // Write bank-distinguishable weights through the write port:
        // bank b, row r, col c stores ((r + c + b) % 2 == 0).
        for bank in 0..cfg.mcr {
            for r in 0..cfg.h {
                for bb in 0..cfg.mcr {
                    for rr in 0..cfg.h {
                        sim.set(&format!("wwl{bb}[{rr}]"), bb == bank && rr == r);
                    }
                }
                for c in 0..cfg.w {
                    sim.set(&format!("wbl[{c}]"), (r + c + bank) % 2 == 0);
                }
                sim.step();
            }
        }
        for bb in 0..cfg.mcr {
            for rr in 0..cfg.h {
                sim.set(&format!("wwl{bb}[{rr}]"), false);
            }
        }
        // Check products = act & selected-bank weight for every bank.
        for sel in 0..cfg.mcr {
            for (k, s) in (0..cfg.mcr.trailing_zeros() as usize).enumerate() {
                sim.set(&format!("sel[{s}]"), (sel >> k) & 1 == 1);
            }
            for r in 0..cfg.h {
                sim.set(&format!("act[{r}]"), r % 3 != 0);
            }
            sim.settle();
            for c in 0..cfg.w {
                for r in 0..cfg.h {
                    let w = (r + c + sel) % 2 == 0;
                    let a = r % 3 != 0;
                    let got = sim.peek(h.out.products[c][r]);
                    assert_eq!(got, a && w, "cfg={cfg:?} sel={sel} c={c} r={r}");
                }
            }
        }
    }

    #[test]
    fn all_styles_mcr1_and_2() {
        for bitcell in BitcellKind::ALL {
            exercise(ArrayConfig { h: 4, w: 3, mcr: 1, bitcell: *bitcell, multmux: MultMuxKind::TgNor });
        }
        for style in MultMuxKind::ALL {
            exercise(ArrayConfig { h: 4, w: 3, mcr: 2, bitcell: BitcellKind::Sram6T2T, multmux: *style });
        }
    }

    #[test]
    fn mcr4_with_scalable_styles() {
        exercise(ArrayConfig {
            h: 3,
            w: 2,
            mcr: 4,
            bitcell: BitcellKind::Sram6T2T,
            multmux: MultMuxKind::TgNor,
        });
        exercise(ArrayConfig {
            h: 3,
            w: 2,
            mcr: 4,
            bitcell: BitcellKind::Latch8T,
            multmux: MultMuxKind::PassGate1T,
        });
    }

    #[test]
    #[should_panic(expected = "does not scale")]
    fn fused_oai22_rejects_mcr4() {
        build(ArrayConfig {
            h: 2,
            w: 2,
            mcr: 4,
            bitcell: BitcellKind::Sram6T2T,
            multmux: MultMuxKind::Oai22Fused,
        });
    }

    #[test]
    fn bitcell_refs_cover_the_array() {
        let cfg =
            ArrayConfig { h: 3, w: 2, mcr: 2, bitcell: BitcellKind::Sram6T2T, multmux: MultMuxKind::TgNor };
        let (h, lib) = build(cfg);
        assert_eq!(h.out.bitcells.len(), cfg.h * cfg.w * cfg.mcr);
        // Forcing a bitcell state must show up on its product.
        let mut sim = Simulator::new(&h.module, &lib).unwrap();
        let bc = h.out.bitcells.iter().find(|r| r.col == 1 && r.row == 2 && r.bank == 0).unwrap();
        sim.force_state(bc.inst, true);
        sim.set("act[2]", true);
        sim.set("sel[0]", false);
        sim.settle();
        assert!(sim.peek(h.out.products[1][2]));
    }

    #[test]
    fn supports_mcr_matrix() {
        assert!(MultMuxKind::Oai22Fused.supports_mcr(2));
        assert!(!MultMuxKind::Oai22Fused.supports_mcr(4));
        assert!(MultMuxKind::TgNor.supports_mcr(4));
        assert!(MultMuxKind::PassGate1T.supports_mcr(4));
    }
}
