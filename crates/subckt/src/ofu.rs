//! Output fusion unit (OFU): reconfigurable multi-precision column
//! fusion.
//!
//! "For multi-precision-oriented reconfigurability, the OFU adds the
//! outputs of the S&As stage by stage, from lower bit-width to higher
//! bit-width" (§II-B). The generated unit supports every power-of-two
//! weight precision up to the configured maximum *simultaneously*:
//!
//! * a per-column conditional-negate stage applies two's-complement sign
//!   to whichever column is the weight MSB under the active precision
//!   (one-hot `prec` mode inputs);
//! * a binary fusion tree computes `lo + (hi << 2^(k−1))` at each level;
//! * every level's results are exposed, so INT1 results come from level
//!   0, INT2 from level 1, INT4 from level 2, and so on.
//!
//! The searcher's OFU timing moves are both supported: the negate stage
//! can be *retimed into the S&A pipeline stage* (`negate_stage = false`
//! plus [`build_column_negate`] emitted by the assembler before the
//! pipeline registers), and an extra pipeline register bank can be
//! inserted mid-tree (`extra_pipeline`).

use crate::arith::{add_signed, conditional_negate, csel_add_signed, sign_extend};
use syndcim_netlist::{NetId, NetlistBuilder};

/// Configuration for [`build_ofu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OfuConfig {
    /// Number of fused columns (max weight precision); power of two.
    pub w_bits: usize,
    /// Width of each S&A input bus.
    pub sa_bits: usize,
    /// Emit the conditional-negate stage inside the OFU. When `false`
    /// the caller must apply [`build_column_negate`] itself (the
    /// retiming-into-S&A move).
    pub negate_stage: bool,
    /// Insert a pipeline register bank after the first fusion level.
    pub extra_pipeline: bool,
}

impl OfuConfig {
    /// Number of fusion levels (`log2(w_bits)`).
    pub fn levels(&self) -> usize {
        self.w_bits.trailing_zeros() as usize
    }

    /// Width of a level-`k` fused result.
    pub fn level_width(&self, k: usize) -> usize {
        // Level 0 is the (possibly negated) S&A value.
        let mut w = self.sa_bits;
        for kk in 1..=k {
            let s = 1usize << (kk - 1);
            w = (w + s).max(w) + 1;
        }
        w
    }
}

/// Result of [`build_ofu`].
#[derive(Debug, Clone)]
pub struct OfuOut {
    /// `levels[k][i]` — the `i`-th fused result at level `k` (level 0 =
    /// per-column signed values, level `levels()` = full-precision
    /// channels). Each result is a signed bus, LSB first.
    pub levels: Vec<Vec<Vec<NetId>>>,
}

impl OfuOut {
    /// The full-precision channel outputs (top level).
    pub fn channels(&self) -> &[Vec<NetId>] {
        self.levels.last().expect("at least level 0 exists")
    }
}

/// Compute, for column `j` of `w_bits`, the list of precision levels `k`
/// (0-indexed: level `k` ⇒ INT`2^k`) under which this column is the
/// weight MSB of its group and must be negated.
pub fn negate_levels(j: usize, w_bits: usize) -> Vec<usize> {
    let levels = w_bits.trailing_zeros() as usize;
    (0..=levels).filter(|&k| (j % (1 << k)) == (1 << k) - 1).collect()
}

/// The per-column conditional-negate stage: `prec[k]` is the one-hot
/// precision mode (INT`2^k` active). Returns one signed bus per column.
pub fn build_column_negate(
    b: &mut NetlistBuilder<'_>,
    w_bits: usize,
    sa: &[Vec<NetId>],
    prec: &[NetId],
) -> Vec<Vec<NetId>> {
    assert_eq!(sa.len(), w_bits);
    let levels = w_bits.trailing_zeros() as usize;
    assert_eq!(prec.len(), levels + 1, "need one mode bit per precision");
    sa.iter()
        .enumerate()
        .map(|(j, col)| {
            let ks = negate_levels(j, w_bits);
            // ctrl = OR of the active precision bits that make j an MSB.
            let mut ctrl = prec[ks[0]];
            for &k in &ks[1..] {
                ctrl = b.or2(ctrl, prec[k]);
            }
            conditional_negate(b, col, ctrl)
        })
        .collect()
}

/// Build the output fusion unit over `sa` (one bus per column).
///
/// `prec` are the one-hot precision mode inputs (`levels()+1` bits:
/// INT1, INT2, …, INT`w_bits`). If `cfg.negate_stage` is false, `sa`
/// must already be sign-processed by [`build_column_negate`].
///
/// # Panics
///
/// Panics if `w_bits` is not a power of two ≥ 1 or bus widths disagree
/// with `cfg`.
pub fn build_ofu(b: &mut NetlistBuilder<'_>, cfg: OfuConfig, sa: &[Vec<NetId>], prec: &[NetId]) -> OfuOut {
    assert!(cfg.w_bits.is_power_of_two(), "w_bits must be a power of two");
    assert_eq!(sa.len(), cfg.w_bits);
    for col in sa {
        assert_eq!(col.len(), cfg.sa_bits, "S&A bus width mismatch");
    }

    let level0: Vec<Vec<NetId>> =
        if cfg.negate_stage { build_column_negate(b, cfg.w_bits, sa, prec) } else { sa.to_vec() };

    let mut levels = vec![level0];
    for k in 1..=cfg.levels() {
        let prev = levels.last().expect("level k-1 exists");
        let s = 1usize << (k - 1);
        let out_w = cfg.level_width(k);
        let mut cur = Vec::with_capacity(prev.len() / 2);
        for pair in prev.chunks(2) {
            let lo = &pair[0];
            let hi = &pair[1];
            // lo + (hi << s), signed.
            let zero = b.const0();
            let mut shifted: Vec<NetId> = vec![zero; s];
            shifted.extend_from_slice(hi);
            let shifted = sign_extend(&shifted, out_w);
            let lo_e = sign_extend(lo, out_w);
            // Wide fusion adders use carry-select; narrow ones ripple.
            let sum = if out_w > 12 {
                csel_add_signed(b, &lo_e, &shifted, out_w)
            } else {
                add_signed(b, &lo_e, &shifted, out_w)
            };
            cur.push(sum);
        }
        // Optional pipeline bank after the first fusion level.
        if cfg.extra_pipeline && k == 1 {
            cur = cur.iter().map(|bus| b.dff_bus(bus)).collect();
        }
        levels.push(cur);
    }
    OfuOut { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::Module;
    use syndcim_pdk::CellLibrary;
    use syndcim_sim::Simulator;

    fn build(cfg: OfuConfig) -> (Module, CellLibrary) {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("ofu", &lib);
        let sa: Vec<Vec<NetId>> =
            (0..cfg.w_bits).map(|j| b.input_bus(&format!("sa{j}"), cfg.sa_bits)).collect();
        let prec = b.input_bus("prec", cfg.levels() + 1);
        let out = build_ofu(&mut b, cfg, &sa, &prec);
        for (k, level) in out.levels.iter().enumerate() {
            for (i, bus) in level.iter().enumerate() {
                b.output_bus(&format!("l{k}_{i}"), bus);
            }
        }
        (b.finish(), lib)
    }

    fn fuse_reference(sas: &[i64], p_bits: usize) -> Vec<i64> {
        sas.chunks(p_bits)
            .map(|group| {
                group
                    .iter()
                    .enumerate()
                    .map(|(j, &sa)| {
                        let term = sa << j;
                        if j == p_bits - 1 {
                            -term
                        } else {
                            term
                        }
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn negate_levels_examples() {
        // w_bits = 8: column 7 is MSB for INT1/2/4/8; column 3 for
        // INT1/2/4; column 0 only for INT1.
        assert_eq!(negate_levels(7, 8), vec![0, 1, 2, 3]);
        assert_eq!(negate_levels(3, 8), vec![0, 1, 2]);
        assert_eq!(negate_levels(0, 8), vec![0]);
        assert_eq!(negate_levels(5, 8), vec![0, 1]);
    }

    #[test]
    fn every_precision_mode_fuses_correctly() {
        let cfg = OfuConfig { w_bits: 4, sa_bits: 5, negate_stage: true, extra_pipeline: false };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        let sas: Vec<i64> = vec![5, -3, 0, 7];
        for (k_active, p_bits) in [(0usize, 1usize), (1, 2), (2, 4)] {
            for k in 0..=cfg.levels() {
                sim.set(&format!("prec[{k}]"), k == k_active);
            }
            for (j, &v) in sas.iter().enumerate() {
                sim.set_bus(&format!("sa{j}"), cfg.sa_bits as u32, v);
            }
            sim.settle();
            let want = fuse_reference(&sas, p_bits);
            let wk = cfg.level_width(k_active) as u32;
            for (i, &w) in want.iter().enumerate() {
                let got = sim.get_bus_signed(&format!("l{k_active}_{i}"), wk);
                assert_eq!(got, w, "precision INT{p_bits} channel {i}");
            }
        }
    }

    #[test]
    fn int8_fusion_random() {
        let cfg = OfuConfig { w_bits: 8, sa_bits: 6, negate_stage: true, extra_pipeline: false };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        for k in 0..=cfg.levels() {
            sim.set(&format!("prec[{k}]"), k == 3);
        }
        let mut x: u64 = 777;
        for _ in 0..30 {
            let sas: Vec<i64> = (0..8)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    ((x % 64) as i64) - 32
                })
                .collect();
            for (j, &v) in sas.iter().enumerate() {
                sim.set_bus(&format!("sa{j}"), cfg.sa_bits as u32, v);
            }
            sim.settle();
            let want = fuse_reference(&sas, 8)[0];
            let got = sim.get_bus_signed("l3_0", cfg.level_width(3) as u32);
            assert_eq!(got, want, "sas={sas:?}");
        }
    }

    #[test]
    fn extra_pipeline_delays_but_preserves_value() {
        let cfg = OfuConfig { w_bits: 2, sa_bits: 4, negate_stage: true, extra_pipeline: true };
        let (m, lib) = build(cfg);
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set("prec[0]", false);
        sim.set("prec[1]", true);
        sim.set_bus("sa0", 4, 3);
        sim.set_bus("sa1", 4, -2);
        sim.step(); // value crosses the pipeline register
        let want = fuse_reference(&[3, -2], 2)[0];
        let got = sim.get_bus_signed("l1_0", cfg.level_width(1) as u32);
        assert_eq!(got, want);
    }

    #[test]
    fn retimed_negate_equals_integrated() {
        // negate_stage=false + explicit build_column_negate must produce
        // the same results as the integrated stage.
        let lib = CellLibrary::syn40();
        let cfg_i = OfuConfig { w_bits: 4, sa_bits: 5, negate_stage: true, extra_pipeline: false };
        let cfg_r = OfuConfig { negate_stage: false, ..cfg_i };
        let mut b = NetlistBuilder::new("both", &lib);
        let sa: Vec<Vec<NetId>> = (0..4).map(|j| b.input_bus(&format!("sa{j}"), 5)).collect();
        let prec = b.input_bus("prec", 3);
        let integrated = build_ofu(&mut b, cfg_i, &sa, &prec);
        let negated = build_column_negate(&mut b, 4, &sa, &prec);
        let retimed = build_ofu(&mut b, cfg_r, &negated, &prec);
        b.output_bus("a", &integrated.channels()[0]);
        b.output_bus("c", &retimed.channels()[0]);
        let m = b.finish();
        let mut sim = Simulator::new(&m, &lib).unwrap();
        sim.set("prec[2]", true);
        for (j, v) in [9i64, -16, 0, 13].iter().enumerate() {
            sim.set_bus(&format!("sa{j}"), 5, *v);
        }
        sim.settle();
        let w = cfg_i.level_width(2) as u32;
        assert_eq!(sim.get_bus_signed("a", w), sim.get_bus_signed("c", w));
    }
}
