//! The [`LaneWord`] abstraction: one machine word carrying N independent
//! simulation lanes, one bit per lane.
//!
//! The executor ([`crate::BatchSim`]) is generic over its lane word.
//! Portable widths are provided here:
//!
//! * [`u64`] — 64 lanes, the classic single-register hot path;
//! * [`W256`] — 256 lanes as `[u64; 4]`, written as straight-line
//!   element-wise code (no intrinsics) so LLVM lowers it to whatever
//!   vector unit the target has (SSE2 pairs, AVX2 one register); the
//!   idiom follows ckt-engine's wide-word module, kept portable.
//! * [`W512`] — 512 lanes as `[u64; 8]`, the full-width register an
//!   AVX-512 machine can fill.
//!
//! ISA-native words live in per-ISA submodules (`x86_64` on x86-64,
//! `aarch64` on ARM — each compiled only on its own architecture, so
//! neither is intra-doc-linkable from here) with every intrinsic
//! confined to
//! `#[target_feature]` leaf functions; [`crate::SimdBackend`] selects
//! among them at run time. The [`LaneWord::dispatch`] hook is how a
//! whole settle pass runs inside one `#[target_feature]` context —
//! dispatch happens once per batch, never per op.
//!
//! Toggle accounting is *defined* per lane word — `popcount_accum`
//! counts the set lanes of `(prev ^ next) & mask` — so any width
//! reports exactly the toggle totals of the same stimulus run lane by
//! lane on the `u64` backend or the interpreter. The differential tests
//! in `syndcim-engine` and `tests/engine_differential.rs` pin that
//! equivalence down bit by bit.

#[cfg(target_arch = "aarch64")]
pub mod aarch64;
#[cfg(target_arch = "x86_64")]
pub mod x86_64;

/// Low-`lanes` mask as `N` 64-bit chunks — shared by every multi-chunk
/// lane word (portable and ISA-native alike) so mask semantics cannot
/// drift between backends.
///
/// # Panics
///
/// Panics if `lanes` is zero or exceeds `N * 64`.
#[inline]
pub(crate) fn mask_chunks<const N: usize>(lanes: usize) -> [u64; N] {
    assert!((1..=N * 64).contains(&lanes), "lane count {lanes} outside 1..={}", N * 64);
    std::array::from_fn(|i| {
        let remaining = lanes.saturating_sub(i * 64);
        match remaining {
            0 => 0,
            1..=63 => (1u64 << remaining) - 1,
            _ => !0,
        }
    })
}

/// One simulation word: `LANES` independent lanes, one bit each.
///
/// Implementations must behave as a fixed-width bit vector: every lane
/// evaluates independently under the bit operations, and the per-64-bit
/// chunk accessors ([`LaneWord::get_u64`] / [`LaneWord::set_u64`])
/// expose lane `l` as bit `l % 64` of chunk `l / 64`.
pub trait LaneWord: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Number of lanes this word carries.
    const LANES: usize;

    /// Number of 64-bit chunks (`LANES / 64`).
    const WORDS: usize;

    /// Broadcast one logic value to every lane.
    fn splat(value: bool) -> Self;

    /// Mask word with the low `lanes` lanes set.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`LaneWord::LANES`].
    fn mask(lanes: usize) -> Self;

    /// Lane-wise AND.
    fn and(self, other: Self) -> Self;

    /// Lane-wise OR.
    fn or(self, other: Self) -> Self;

    /// Lane-wise XOR.
    fn xor(self, other: Self) -> Self;

    /// Lane-wise NOT.
    fn not(self) -> Self;

    /// Add the number of set lanes of `self & mask` to `acc` — the
    /// toggle-accounting primitive.
    fn popcount_accum(self, mask: Self, acc: &mut u64);

    /// 64-lane chunk `idx` (lanes `idx*64 .. idx*64+64`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Self::WORDS`.
    fn get_u64(self, idx: usize) -> u64;

    /// Replace 64-lane chunk `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Self::WORDS`.
    fn set_u64(&mut self, idx: usize, word: u64);

    /// Run `f` inside this word's ISA context. Portable words run it
    /// directly; ISA-native words override this with a
    /// `#[target_feature]`-annotated trampoline so the whole closure —
    /// typically one settle pass over the op stream — is compiled (and
    /// its feature-matching intrinsic leaf functions inlined) with the
    /// word's vector ISA enabled. The executor calls this once per
    /// batch/settle, never per op.
    #[inline(always)]
    fn dispatch<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Read one lane.
    #[inline]
    fn lane(self, lane: usize) -> bool {
        (self.get_u64(lane / 64) >> (lane % 64)) & 1 == 1
    }

    /// Return `self` with one lane replaced.
    #[inline]
    fn with_lane(mut self, lane: usize, value: bool) -> Self {
        let chunk = self.get_u64(lane / 64);
        let bit = 1u64 << (lane % 64);
        self.set_u64(lane / 64, if value { chunk | bit } else { chunk & !bit });
        self
    }

    /// Per-lane 2:1 select: `(s & d1) | (!s & d0)`.
    #[inline]
    fn mux(d0: Self, d1: Self, s: Self) -> Self {
        s.and(d1).or(s.not().and(d0))
    }
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const WORDS: usize = 1;

    #[inline]
    fn splat(value: bool) -> Self {
        if value {
            !0
        } else {
            0
        }
    }

    #[inline]
    fn mask(lanes: usize) -> Self {
        assert!((1..=64).contains(&lanes), "lane count {lanes} outside 1..=64");
        if lanes == 64 {
            !0
        } else {
            (1u64 << lanes) - 1
        }
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn popcount_accum(self, mask: Self, acc: &mut u64) {
        *acc += (self & mask).count_ones() as u64;
    }

    #[inline]
    fn get_u64(self, idx: usize) -> u64 {
        assert_eq!(idx, 0, "u64 word has one 64-lane chunk");
        self
    }

    #[inline]
    fn set_u64(&mut self, idx: usize, word: u64) {
        assert_eq!(idx, 0, "u64 word has one 64-lane chunk");
        *self = word;
    }
}

/// Generate a portable multi-chunk lane word: `[u64; N]` element-wise
/// code with no intrinsics, aligned to its full width so a slot vector
/// lays out as clean vector registers.
macro_rules! portable_wide_word {
    ($(#[$doc:meta])* $name:ident, $chunks:expr, $align:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(align($align))]
        pub struct $name(pub [u64; $chunks]);

        impl LaneWord for $name {
            const LANES: usize = $chunks * 64;
            const WORDS: usize = $chunks;

            #[inline]
            fn splat(value: bool) -> Self {
                $name([u64::splat(value); $chunks])
            }

            #[inline]
            fn mask(lanes: usize) -> Self {
                $name(mask_chunks(lanes))
            }

            #[inline]
            fn and(self, other: Self) -> Self {
                $name(std::array::from_fn(|i| self.0[i] & other.0[i]))
            }

            #[inline]
            fn or(self, other: Self) -> Self {
                $name(std::array::from_fn(|i| self.0[i] | other.0[i]))
            }

            #[inline]
            fn xor(self, other: Self) -> Self {
                $name(std::array::from_fn(|i| self.0[i] ^ other.0[i]))
            }

            #[inline]
            fn not(self) -> Self {
                $name(std::array::from_fn(|i| !self.0[i]))
            }

            #[inline]
            fn popcount_accum(self, mask: Self, acc: &mut u64) {
                let mut n = 0u32;
                for i in 0..$chunks {
                    n += (self.0[i] & mask.0[i]).count_ones();
                }
                *acc += n as u64;
            }

            #[inline]
            fn get_u64(self, idx: usize) -> u64 {
                self.0[idx]
            }

            #[inline]
            fn set_u64(&mut self, idx: usize, word: u64) {
                self.0[idx] = word;
            }
        }
    };
}

portable_wide_word! {
    /// 256 simulation lanes as four `u64` chunks. Aligned to 32 bytes so
    /// a slot vector lays out as clean vector registers.
    W256, 4, 32
}

portable_wide_word! {
    /// 512 simulation lanes as eight `u64` chunks. Aligned to 64 bytes —
    /// one full AVX-512 register (or a cache line) per slot.
    W512, 8, 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_mask_and_popcount() {
        assert_eq!(u64::mask(64), !0);
        assert_eq!(u64::mask(3), 0b111);
        let mut acc = 0;
        0xF0u64.popcount_accum(u64::mask(6), &mut acc);
        assert_eq!(acc, 2); // bits 4 and 5 survive the 6-lane mask
    }

    #[test]
    fn w256_mask_spans_chunk_boundaries() {
        assert_eq!(W256::mask(256), W256([!0; 4]));
        assert_eq!(W256::mask(64), W256([!0, 0, 0, 0]));
        assert_eq!(W256::mask(65), W256([!0, 1, 0, 0]));
        assert_eq!(W256::mask(130), W256([!0, !0, 0b11, 0]));
        assert_eq!(W256::mask(1), W256([1, 0, 0, 0]));
    }

    #[test]
    fn w512_mask_spans_chunk_boundaries() {
        assert_eq!(W512::mask(512), W512([!0; 8]));
        assert_eq!(W512::mask(256), W512([!0, !0, !0, !0, 0, 0, 0, 0]));
        assert_eq!(W512::mask(257), W512([!0, !0, !0, !0, 1, 0, 0, 0]));
        assert_eq!(W512::mask(449), W512([!0, !0, !0, !0, !0, !0, !0, 1]));
        assert_eq!(W512::mask(1), W512([1, 0, 0, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn w256_lane_roundtrip_and_ops() {
        let mut w = W256::splat(false);
        for lane in [0usize, 63, 64, 127, 128, 200, 255] {
            w = w.with_lane(lane, true);
            assert!(w.lane(lane));
        }
        let inv = w.not();
        for lane in [0usize, 63, 64, 127, 128, 200, 255] {
            assert!(!inv.lane(lane));
        }
        assert_eq!(w.and(inv), W256::splat(false));
        assert_eq!(w.or(inv), W256::splat(true));
        assert_eq!(w.xor(w), W256::splat(false));
        let mut acc = 0;
        w.popcount_accum(W256::mask(256), &mut acc);
        assert_eq!(acc, 7);
        acc = 0;
        w.popcount_accum(W256::mask(64), &mut acc);
        assert_eq!(acc, 2); // lanes 0 and 63
    }

    #[test]
    fn w512_lane_roundtrip_and_ops() {
        let mut w = W512::splat(false);
        for lane in [0usize, 63, 255, 256, 448, 511] {
            w = w.with_lane(lane, true);
            assert!(w.lane(lane));
        }
        let inv = w.not();
        for lane in [0usize, 63, 255, 256, 448, 511] {
            assert!(!inv.lane(lane));
        }
        assert_eq!(w.and(inv), W512::splat(false));
        assert_eq!(w.or(inv), W512::splat(true));
        assert_eq!(w.xor(w), W512::splat(false));
        let mut acc = 0;
        w.popcount_accum(W512::mask(512), &mut acc);
        assert_eq!(acc, 6);
        acc = 0;
        w.popcount_accum(W512::mask(256), &mut acc);
        assert_eq!(acc, 3); // lanes 0, 63 and 255 survive the 256-lane mask
        assert_eq!(std::mem::align_of::<W512>(), 64);
    }

    #[test]
    fn mux_selects_per_lane() {
        let d0 = W256::mask(100);
        let d1 = W256::splat(true);
        let s = W256::mask(50);
        let out = W256::mux(d0, d1, s);
        for lane in 0..256 {
            let want = if lane < 50 { d1.lane(lane) } else { d0.lane(lane) };
            assert_eq!(out.lane(lane), want, "lane {lane}");
        }
    }
}
