//! Netlist → [`Program`] compilation.
//!
//! The shared [`Lowering`] pass validates connectivity and levelizes
//! the combinational instances (the same `syndcim_netlist::levelize`
//! order the interpreter uses, so both backends agree on evaluation
//! semantics); this module then lowers every cell's [`CellFunction`]
//! into AND/OR/XOR/NOT/MUX/CONST micro-ops over dense slots. Multi-op
//! lowerings route intermediate values through scratch slots so only
//! real net slots ever enter toggle accounting. The compiled timing
//! program in `syndcim-sta` consumes the same [`Lowering`], emitting
//! delay arcs where this module emits boolean ops.

use syndcim_netlist::{Module, NetlistError};
use syndcim_pdk::{CellFunction, CellLibrary};
use syndcim_telemetry as telemetry;

use syndcim_ir::Lowering;

use crate::program::{Commit, Op, Program, SCRATCH_SLOTS};

impl Program {
    /// Compile `module` against `lib`.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation (floating nets,
    /// multiple drivers) or contains a combinational loop — the same
    /// conditions under which the interpreter refuses the module.
    pub fn compile(module: &Module, lib: &CellLibrary) -> Result<Program, NetlistError> {
        let low = Lowering::validated(module, lib)?;
        Ok(Self::from_lowering(&low, module, lib))
    }

    /// Lower an already-traversed module into a simulation program.
    ///
    /// This is the back half of [`Program::compile`]: callers that
    /// already hold a [`Lowering`] (for example to also build a compiled
    /// timing program from the same traversal) skip re-levelizing the
    /// netlist.
    pub fn from_lowering(low: &Lowering, module: &Module, lib: &CellLibrary) -> Program {
        telemetry::span!("engine.compile");
        let net_count = low.net_count();
        let scratch = net_count as u32;
        let mut ops = Vec::new();

        for &id in low.order() {
            let inst = &module.instances[id.index()];
            let cell = lib.cell(inst.cell);
            let i = |pin: usize| inst.inputs[pin].index() as u32;
            let o = |pin: usize| inst.outputs[pin].index() as u32;
            let (t0, t1, t2, t3, t4) = (scratch, scratch + 1, scratch + 2, scratch + 3, scratch + 4);
            match cell.function {
                CellFunction::Const(v) => ops.push(Op::Const { dst: o(0), ones: v }),
                CellFunction::Not => ops.push(Op::Not { dst: o(0), a: i(0) }),
                CellFunction::Identity => ops.push(Op::Copy { dst: o(0), a: i(0) }),
                CellFunction::And => ops.push(Op::And { dst: o(0), a: i(0), b: i(1) }),
                CellFunction::Nand => {
                    ops.push(Op::And { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::Not { dst: o(0), a: t0 });
                }
                CellFunction::Or => ops.push(Op::Or { dst: o(0), a: i(0), b: i(1) }),
                CellFunction::Nor => {
                    ops.push(Op::Or { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::Not { dst: o(0), a: t0 });
                }
                CellFunction::Xor => ops.push(Op::Xor { dst: o(0), a: i(0), b: i(1) }),
                CellFunction::Xnor => {
                    ops.push(Op::Xor { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::Not { dst: o(0), a: t0 });
                }
                CellFunction::Mux2 => ops.push(Op::Mux { dst: o(0), d0: i(0), d1: i(1), s: i(2) }),
                CellFunction::Oai21 => {
                    // !((a | b) & c)
                    ops.push(Op::Or { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::And { dst: t1, a: t0, b: i(2) });
                    ops.push(Op::Not { dst: o(0), a: t1 });
                }
                CellFunction::Oai22 => {
                    // !((a | b) & (c | d))
                    ops.push(Op::Or { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::Or { dst: t1, a: i(2), b: i(3) });
                    ops.push(Op::And { dst: t2, a: t0, b: t1 });
                    ops.push(Op::Not { dst: o(0), a: t2 });
                }
                CellFunction::Aoi21 => {
                    // !((a & b) | c)
                    ops.push(Op::And { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::Or { dst: t1, a: t0, b: i(2) });
                    ops.push(Op::Not { dst: o(0), a: t1 });
                }
                CellFunction::HalfAdder => {
                    ops.push(Op::Xor { dst: o(0), a: i(0), b: i(1) });
                    ops.push(Op::And { dst: o(1), a: i(0), b: i(1) });
                }
                CellFunction::FullAdder => {
                    // s = a ^ b ^ cin; co = (a & b) | ((a ^ b) & cin)
                    ops.push(Op::Xor { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::And { dst: t1, a: i(0), b: i(1) });
                    ops.push(Op::And { dst: t2, a: t0, b: i(2) });
                    ops.push(Op::Xor { dst: o(0), a: t0, b: i(2) });
                    ops.push(Op::Or { dst: o(1), a: t1, b: t2 });
                }
                CellFunction::Compressor42 => {
                    // x = a^b^c^d; s = x^cin; carry = x ? cin : d;
                    // cout = maj(a, b, c) = (a & b) | (c & (a ^ b)).
                    ops.push(Op::Xor { dst: t0, a: i(0), b: i(1) });
                    ops.push(Op::Xor { dst: t1, a: i(2), b: i(3) });
                    ops.push(Op::Xor { dst: t2, a: t0, b: t1 });
                    ops.push(Op::Xor { dst: o(0), a: t2, b: i(4) });
                    ops.push(Op::Mux { dst: o(1), d0: i(3), d1: i(4), s: t2 });
                    ops.push(Op::And { dst: t3, a: i(0), b: i(1) });
                    ops.push(Op::And { dst: t4, a: i(2), b: t0 });
                    ops.push(Op::Or { dst: o(2), a: t3, b: t4 });
                }
                CellFunction::MultMuxFused => {
                    // act & (s ? w1 : w0), inputs act, w0, w1, s.
                    ops.push(Op::Mux { dst: t0, d0: i(1), d1: i(2), s: i(3) });
                    ops.push(Op::And { dst: o(0), a: i(0), b: t0 });
                }
                CellFunction::SeqQ => unreachable!("sequential cells are excluded from levelize order"),
            }
        }

        let mut commits = Vec::new();
        let mut seq_of_inst = vec![u32::MAX; module.instance_count()];
        for (idx, inst) in module.instances.iter().enumerate() {
            let cell = lib.cell(inst.cell);
            let Some(seq) = cell.seq else { continue };
            seq_of_inst[idx] = commits.len() as u32;
            let in0 = inst.inputs[0].index() as u32;
            let in1 = inst.inputs.get(1).map_or(in0, |n| n.index() as u32);
            commits.push(Commit { update: seq.update, in0, in1, q: inst.outputs[0].index() as u32 });
        }

        let prog = Program {
            net_count,
            slot_count: net_count + SCRATCH_SLOTS,
            ops,
            commits,
            seq_of_inst,
            syms: low.symbols().clone(),
        };
        telemetry::counter("engine.ops_emitted").add(prog.op_count() as u64);
        telemetry::gauge("engine.retained_bytes").set(prog.retained_bytes() as u64);
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syndcim_netlist::NetlistBuilder;
    use syndcim_pdk::CellKind;

    #[test]
    fn compiles_every_combinational_cell_kind() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("all", &lib);
        let ins: Vec<_> = (0..5).map(|i| b.input(format!("i{i}"))).collect();
        let mut outs = Vec::new();
        for cell in lib.cells() {
            if cell.is_sequential() {
                continue;
            }
            let n = cell.function.input_count();
            outs.extend(b.add(cell.kind, &ins[..n]));
        }
        for (k, &o) in outs.iter().enumerate() {
            b.output(format!("o{k}"), o);
        }
        let m = b.finish();
        let p = Program::compile(&m, &lib).unwrap();
        assert!(p.op_count() > 0);
        assert_eq!(p.seq_count(), 0);
    }

    #[test]
    fn sequential_cells_become_commits() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("seq", &lib);
        let d = b.input("d");
        let en = b.input("en");
        let q0 = b.dff(d);
        let q1 = b.dffe(d, en);
        let rbl = b.add(CellKind::Sram6T2T, &[en, d])[0];
        b.output("q0", q0);
        b.output("q1", q1);
        b.output("rbl", rbl);
        let m = b.finish();
        let p = Program::compile(&m, &lib).unwrap();
        assert_eq!(p.seq_count(), 3);
        assert_eq!(p.op_count(), 0);
    }

    #[test]
    fn net_and_op_labels_resolve_through_the_interner() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("lbl", &lib);
        let a = b.input("a");
        let c = b.input("c");
        let y = b.add(CellKind::Nand2, &[a, c])[0];
        b.output("y", y);
        let m = b.finish();
        let p = Program::compile(&m, &lib).unwrap();
        // Every real slot resolves to its net name; scratch slots don't.
        for (i, net) in m.nets.iter().enumerate() {
            assert_eq!(p.net_label(i as u32), Some(net.name.as_str()));
        }
        assert_eq!(p.net_label(m.net_count() as u32), None, "scratch slots have no net label");
        // The NAND lowers to AND-into-scratch then NOT-into-`y`'s net.
        assert_eq!(p.op_label(0), format!("%{} = `a` & `c`", m.net_count()));
        assert_eq!(p.op_label(1), format!("`{}` = !%{}", m.nets[y.index()].name, m.net_count()));
    }

    #[test]
    fn rejects_combinational_loops_like_the_interpreter() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("loop", &lib);
        let a = b.input("a");
        let x = b.and2(a, a);
        let y = b.and2(x, x);
        b.output("y", y);
        let mut m = b.finish();
        let y_net = m.instances[1].outputs[0];
        m.instances[0].inputs[1] = y_net;
        assert!(Program::compile(&m, &lib).is_err());
    }
}
