//! # syndcim-engine — compiled bit-parallel simulation
//!
//! The interpreted `syndcim_sim::Simulator` walks the netlist
//! instance-by-instance, one vector at a time — fine as a reference,
//! but it is the hot path of every `eval`, shmoo and Pareto-search
//! iteration. This crate compiles a validated module once into a flat
//! program and then evaluates **up to 256 test vectors per pass**:
//!
//! * [`Program::compile`] — levelizes the combinational instances and
//!   lowers every cell to AND/OR/XOR/NOT/MUX/CONST micro-ops over dense
//!   slots; sequential cells become per-cycle commit records;
//! * [`BatchExec`] — executes the op stream on [`LaneWord`]s (one bit
//!   per lane), accumulating per-net toggles as `popcount(prev ^ next)`
//!   so `syndcim_power` consumes its activity unchanged. [`BatchSim`]
//!   is the 64-lane `u64` instantiation, [`BatchSim256`] the 256-lane
//!   `[u64; 4]` wide word, and [`EngineSim`] auto-selects the narrowest
//!   width that fits a requested lane count;
//! * [`parallel_map`] — scoped-thread batch runner for scaling beyond
//!   one word across cores (one executor per worker, all sharing one
//!   compiled [`Program`]); lives in `syndcim-ir` and is re-exported
//!   here for back-compatibility;
//! * [`Lowering`] — the shared compilation front end (connectivity,
//!   levelized order, dense net slots), now owned by the `syndcim-ir`
//!   crate (re-exported here) and consumed by the compiled timing and
//!   power programs too, so every fast path walks the netlist exactly
//!   once and agrees on slot assignment.
//!
//! Both backends implement [`syndcim_sim::SimBackend`]; the interpreter
//! remains the bit-exact reference the engine is differentially tested
//! against (same outputs, same per-net toggle counts).
//!
//! ```
//! use syndcim_engine::{BatchSim, Program};
//! use syndcim_netlist::NetlistBuilder;
//! use syndcim_pdk::CellLibrary;
//! use syndcim_sim::SimBackend;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::syn40();
//! let mut b = NetlistBuilder::new("fa", &lib);
//! let (a, c, ci) = (b.input("a"), b.input("b"), b.input("cin"));
//! let (s, co) = b.fa(a, c, ci);
//! b.output("s", s);
//! b.output("co", co);
//! let m = b.finish();
//!
//! let prog = Program::compile(&m, &lib)?;
//! let mut sim = BatchSim::new(&prog, &m, 8); // 8 vectors at once
//! for v in 0..8u64 {
//!     // Lane v simulates input pattern v.
//!     sim.poke_lane(m.port("a").unwrap().net, v as usize, v & 1 == 1);
//!     sim.poke_lane(m.port("b").unwrap().net, v as usize, v >> 1 & 1 == 1);
//!     sim.poke_lane(m.port("cin").unwrap().net, v as usize, v >> 2 & 1 == 1);
//! }
//! sim.settle();
//! for v in 0..8u64 {
//!     let total = (v & 1) + (v >> 1 & 1) + (v >> 2 & 1);
//!     assert_eq!(sim.get_lane("s", v as usize), total & 1 == 1);
//!     assert_eq!(sim.get_lane("co", v as usize), total >= 2);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod compile;
pub mod exec;
pub mod fault;
pub mod program;
pub mod simd;
pub mod word;

pub use exec::{BatchExec, BatchSim, BatchSim256, BatchSim512, EngineSim};
pub use fault::{EngineError, Fault, FaultKind, FaultPlan};
pub use program::Program;
pub use simd::{SimdBackend, SimdPolicy};
pub use syndcim_ir::{default_threads, parallel_map, parallel_map_threads, Lowering, Symbol, Symbols};
pub use word::{LaneWord, W256, W512};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use syndcim_netlist::{NetId, NetlistBuilder};
    use syndcim_pdk::{CellKind, CellLibrary};
    use syndcim_sim::vectors::seeded_rng;
    use syndcim_sim::{SimBackend, Simulator};

    /// A mixed circuit exercising every op lowering plus all three
    /// sequential update rules.
    fn mixed_module(lib: &CellLibrary) -> syndcim_netlist::Module {
        let mut b = NetlistBuilder::new("mix", lib);
        let ins: Vec<NetId> = (0..6).map(|i| b.input(format!("in[{i}]"))).collect();
        let mut nodes = Vec::new();
        for cell in lib.cells() {
            if cell.is_sequential() || cell.function.input_count() == 0 {
                continue;
            }
            let n = cell.function.input_count();
            nodes.extend(b.add(cell.kind, &ins[..n]));
        }
        let tie0 = b.const0();
        let tie1 = b.const1();
        nodes.push(b.xor2(tie0, tie1));
        // Reduce all nodes with a chain of XORs to keep them all live.
        let mut acc = nodes[0];
        for &n in &nodes[1..] {
            acc = b.xor2(acc, n);
        }
        let q0 = b.dff(acc);
        let q1 = b.dffe(acc, ins[5]);
        let rbl = b.add(CellKind::Sram6T2T, &[ins[4], acc])[0];
        let merged = b.xor2(q0, q1);
        let merged = b.xor2(merged, rbl);
        b.output("y", merged);
        b.finish()
    }

    /// Engine lanes must match independent interpreter runs bit-for-bit,
    /// including every per-net toggle count.
    #[test]
    fn differential_vs_interpreter_on_mixed_logic() {
        let lib = CellLibrary::syn40();
        let m = mixed_module(&lib);
        // One lowering feeds the compiled program and every reference
        // interpreter instance (no per-lane connectivity walk).
        let low = Lowering::validated(&m, &lib).unwrap();
        let prog = Program::from_lowering(&low, &m, &lib);
        let lanes = 13; // deliberately not a power of two
        let cycles = 40;

        // Per-lane random stimulus, seeded per lane.
        let stimulus: Vec<Vec<[bool; 6]>> = (0..lanes)
            .map(|l| {
                let mut rng = seeded_rng(0xD1FF + l as u64);
                (0..cycles).map(|_| std::array::from_fn(|_| rng.gen_bool(0.5))).collect()
            })
            .collect();

        let in_nets: Vec<NetId> = (0..6).map(|i| m.port(&format!("in[{i}]")).unwrap().net).collect();
        let y_net = m.port("y").unwrap().net;

        // Engine: all lanes at once.
        let mut eng = BatchSim::new(&prog, &m, lanes);
        let mut eng_outputs = vec![Vec::new(); lanes];
        for c in 0..cycles {
            for (i, &net) in in_nets.iter().enumerate() {
                let mut word = 0u64;
                for (l, stim) in stimulus.iter().enumerate() {
                    word |= (stim[c][i] as u64) << l;
                }
                eng.poke_word(net, word);
            }
            eng.step();
            let w = eng.peek_word(y_net);
            for (l, out) in eng_outputs.iter_mut().enumerate() {
                out.push((w >> l) & 1 == 1);
            }
        }

        // Interpreter: one run per lane; toggles summed.
        let mut ref_toggles = vec![0u64; m.net_count()];
        for (l, stim) in stimulus.iter().enumerate() {
            let mut sim = Simulator::with_lowering(&m, &lib, &low).unwrap();
            for (c, vec6) in stim.iter().enumerate() {
                for (i, &net) in in_nets.iter().enumerate() {
                    sim.poke(net, vec6[i]);
                }
                Simulator::step(&mut sim);
                assert_eq!(sim.peek(y_net), eng_outputs[l][c], "lane {l} cycle {c}");
            }
            for (t, s) in ref_toggles.iter_mut().zip(sim.toggle_table()) {
                *t += s;
            }
        }
        assert_eq!(eng.toggle_table(), &ref_toggles[..], "per-net toggle counts must be bit-identical");
        assert_eq!(eng.lane_cycles(), lanes as u64 * cycles as u64);
    }

    /// force_state and reset_activity mirror the interpreter.
    #[test]
    fn force_state_matches_interpreter() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("cellrw", &lib);
        let wwl = b.input("wwl");
        let wbl = b.input("wbl");
        let rbl = b.add(CellKind::Sram6T2T, &[wwl, wbl])[0];
        b.output("rbl", rbl);
        let m = b.finish();
        let prog = Program::compile(&m, &lib).unwrap();
        let mut eng = BatchSim::new(&prog, &m, 2);
        let inst = syndcim_netlist::InstId(0);
        eng.force_state_word(inst, 0b01);
        assert!(eng.state_of_lane(inst, 0));
        assert!(!eng.state_of_lane(inst, 1));
        eng.settle();
        assert!(eng.get_lane("rbl", 0));
        assert!(!eng.get_lane("rbl", 1));
        eng.reset_activity();
        assert_eq!(eng.lane_cycles(), 0);
        assert!(eng.toggle_table().iter().all(|&t| t == 0));
    }

    /// The 256-lane wide word must match per-lane interpreter runs on
    /// every net, every cycle, every lane — including per-net aggregate
    /// AND per-lane toggle tables — exactly like the `u64` backend.
    #[test]
    fn wide_backend_matches_interpreter_lane_for_lane() {
        let lib = CellLibrary::syn40();
        let m = mixed_module(&lib);
        let low = Lowering::validated(&m, &lib).unwrap();
        let prog = Program::from_lowering(&low, &m, &lib);
        let lanes = 150; // spans three 64-lane chunks, partial last chunk
        let cycles = 12;

        let stimulus: Vec<Vec<[bool; 6]>> = (0..lanes)
            .map(|l| {
                let mut rng = seeded_rng(0x256 + l as u64);
                (0..cycles).map(|_| std::array::from_fn(|_| rng.gen_bool(0.5))).collect()
            })
            .collect();
        let in_nets: Vec<NetId> = (0..6).map(|i| m.port(&format!("in[{i}]")).unwrap().net).collect();

        // Pin the portable word: this test is about width semantics;
        // the ISA words get the same treatment in the workspace
        // differential suites.
        let mut eng =
            EngineSim::with_policy(&prog, &m, lanes, SimdPolicy::Pin(SimdBackend::Portable)).unwrap();
        assert!(matches!(eng, EngineSim::Wide(_)), "65..=256 lanes must select the 256-lane word");
        eng.enable_lane_toggles();
        let mut snapshots: Vec<Vec<Vec<u64>>> = Vec::new(); // [cycle][net][word]
        for c in 0..cycles {
            for (i, &net) in in_nets.iter().enumerate() {
                for wi in 0..eng.words() {
                    let mut word = 0u64;
                    for (l, stim) in stimulus.iter().enumerate().skip(wi * 64).take(64) {
                        word |= (stim[c][i] as u64) << (l - wi * 64);
                    }
                    eng.poke_word_at(net, wi, word);
                }
            }
            eng.step();
            snapshots.push(
                (0..m.net_count())
                    .map(|n| (0..eng.words()).map(|wi| eng.peek_word_at(NetId(n as u32), wi)).collect())
                    .collect(),
            );
        }

        let mut ref_toggles = vec![0u64; m.net_count()];
        for (l, stim) in stimulus.iter().enumerate() {
            let mut sim = Simulator::with_lowering(&m, &lib, &low).unwrap();
            for (c, vec6) in stim.iter().enumerate() {
                for (i, &net) in in_nets.iter().enumerate() {
                    sim.poke(net, vec6[i]);
                }
                Simulator::step(&mut sim);
                for (n, words) in snapshots[c].iter().enumerate() {
                    let word = words[l / 64];
                    assert_eq!(
                        sim.peek(NetId(n as u32)),
                        (word >> (l % 64)) & 1 == 1,
                        "lane {l} cycle {c} net {n}"
                    );
                }
            }
            assert_eq!(
                eng.lane_toggle_table(l).expect("lane toggles enabled").as_slice(),
                sim.toggle_table(),
                "lane {l}: per-lane toggle table must equal its interpreter run"
            );
            for (t, s) in ref_toggles.iter_mut().zip(sim.toggle_table()) {
                *t += s;
            }
        }
        assert_eq!(eng.toggle_table(), &ref_toggles[..], "aggregate toggles must sum the lanes");
        assert_eq!(eng.lane_cycles(), lanes as u64 * cycles as u64);
    }

    /// EngineSim picks the narrowest word that fits.
    #[test]
    fn engine_sim_selects_word_width() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("inv", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let prog = Program::compile(&m, &lib).unwrap();
        // ≤64 lanes always ride the scalar u64 word, whatever the ISA.
        assert!(matches!(EngineSim::new(&prog, &m, 64), EngineSim::Narrow(_)));
        let portable = SimdPolicy::Pin(SimdBackend::Portable);
        assert!(matches!(EngineSim::with_policy(&prog, &m, 65, portable).unwrap(), EngineSim::Wide(_)));
        assert!(matches!(EngineSim::with_policy(&prog, &m, 257, portable).unwrap(), EngineSim::Wide512(_)));
        let narrow = EngineSim::new(&prog, &m, 64);
        let wide = EngineSim::new(&prog, &m, 65);
        let widest = EngineSim::new(&prog, &m, 300);
        assert_eq!(narrow.words(), 1);
        assert_eq!(wide.words(), 2);
        assert_eq!(widest.words(), 5);
        assert_eq!(narrow.simd_backend(), SimdBackend::Portable);
        // Auto selection honours word capacity whatever the host ISA.
        assert_eq!(wide.word_lanes(), 256);
        assert_eq!(widest.word_lanes(), 512);
        assert_eq!(EngineSim::MAX_LANES, 512);
    }

    /// Every backend this host supports must run the mixed circuit
    /// bit-identically to the portable word at the same lane count —
    /// states, aggregate toggles, lane cycles.
    #[test]
    fn every_detected_backend_matches_portable() {
        let lib = CellLibrary::syn40();
        let m = mixed_module(&lib);
        let prog = Program::compile(&m, &lib).unwrap();
        let in_nets: Vec<NetId> = (0..6).map(|i| m.port(&format!("in[{i}]")).unwrap().net).collect();
        let cycles = 8;
        for backend in [SimdBackend::Avx2, SimdBackend::Avx512, SimdBackend::Neon] {
            if !backend.detected() {
                continue;
            }
            let lanes = backend.max_lanes();
            let mut gold = EngineSim::with_backend(&prog, &m, lanes, SimdBackend::Portable).unwrap();
            let mut isa = EngineSim::with_backend(&prog, &m, lanes, backend).unwrap();
            assert_eq!(isa.simd_backend(), backend);
            let mut rng = seeded_rng(0x51D * lanes as u64);
            for _ in 0..cycles {
                for &net in &in_nets {
                    for wi in 0..lanes / 64 {
                        let word = rng.next_u64();
                        gold.poke_word_at(net, wi, word);
                        isa.poke_word_at(net, wi, word);
                    }
                }
                gold.step();
                isa.step();
                for n in 0..m.net_count() {
                    for wi in 0..lanes / 64 {
                        assert_eq!(
                            isa.peek_word_at(NetId(n as u32), wi),
                            gold.peek_word_at(NetId(n as u32), wi),
                            "{backend}: net {n} word {wi}"
                        );
                    }
                }
            }
            assert_eq!(isa.toggle_table(), gold.toggle_table(), "{backend}: toggle tables");
            assert_eq!(isa.lane_cycles(), gold.lane_cycles());
        }
    }

    /// Bad `SYNDCIM_SIMD` pins are typed errors from construction, and
    /// explicit backend requests the CPU cannot honour fail the same
    /// way — never a silent portable fallback.
    #[test]
    fn simd_selection_errors_are_typed() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("inv", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let prog = Program::compile(&m, &lib).unwrap();
        assert!(matches!(EngineSim::try_new(&prog, &m, 0), Err(EngineError::ZeroLanes)));
        assert!(matches!(
            EngineSim::try_new(&prog, &m, 513),
            Err(EngineError::SimdLaneCap { lanes: 513, max: 512, .. })
        ));
        if SimdBackend::Avx2.detected() {
            assert!(matches!(
                EngineSim::with_policy(&prog, &m, 300, SimdPolicy::Pin(SimdBackend::Avx2)),
                Err(EngineError::SimdLaneCap { lanes: 300, max: 256, .. })
            ));
        } else {
            assert!(matches!(
                EngineSim::with_backend(&prog, &m, 100, SimdBackend::Avx2),
                Err(EngineError::SimdUnsupported { backend: SimdBackend::Avx2 })
            ));
        }
        if !SimdBackend::Neon.detected() {
            assert!(matches!(
                EngineSim::with_backend(&prog, &m, 100, SimdBackend::Neon),
                Err(EngineError::SimdUnsupported { backend: SimdBackend::Neon })
            ));
        }
    }

    /// The dirty-set drive path skips unchanged words without altering
    /// toggle accounting.
    #[test]
    fn drive_word_at_is_toggle_identical_to_poke() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("buf", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let a_net = m.port("a").unwrap().net;
        let prog = Program::compile(&m, &lib).unwrap();
        let mut poked = BatchSim::new(&prog, &m, 64);
        let mut driven = BatchSim::new(&prog, &m, 64);
        let words = [0xDEAD, 0xDEAD, 0, 0, 0xBEEF];
        for &w in &words {
            poked.poke_word(a_net, w);
            poked.settle();
            driven.drive_word_at(a_net, 0, w);
            driven.settle();
        }
        assert_eq!(poked.toggle_table(), driven.toggle_table());
        assert_eq!(poked.peek_word(a_net), driven.peek_word(a_net));
    }

    /// Deactivated lanes stop contributing toggles.
    #[test]
    fn lane_mask_controls_toggle_accounting() {
        let lib = CellLibrary::syn40();
        let mut b = NetlistBuilder::new("inv", &lib);
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let m = b.finish();
        let y_net = m.port("y").unwrap().net;
        let a_net = m.port("a").unwrap().net;
        let prog = Program::compile(&m, &lib).unwrap();
        let mut eng = BatchSim::new(&prog, &m, 64);
        eng.settle(); // y rises in all 64 lanes
        assert_eq!(eng.toggle_table()[y_net.index()], 64);
        eng.set_lanes(4).unwrap();
        eng.poke_word(a_net, !0); // flips a (and y) in every lane, 4 active
        eng.settle();
        assert_eq!(eng.toggle_table()[a_net.index()], 4);
        assert_eq!(eng.toggle_table()[y_net.index()], 64 + 4);
    }
}
