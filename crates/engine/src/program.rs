//! The compiled program representation.
//!
//! A [`Program`] is the netlist lowered into a flat, levelized stream of
//! word-level micro-ops over dense *slots*. Slots `0..net_count` mirror
//! the module's nets one-to-one (so per-net toggle accounting stays
//! compatible with the interpreter and the power analyzer); slots
//! `net_count..slot_count` are scratch registers reused by every
//! multi-op cell lowering. Sequential cells contribute no combinational
//! ops — they appear as `Commit` records executed once per clock
//! cycle.

use syndcim_ir::Symbols;
use syndcim_pdk::SeqUpdate;

/// Number of scratch slots appended after the net slots. The widest
/// lowering (the 4-2 compressor) uses five temporaries.
pub(crate) const SCRATCH_SLOTS: usize = 8;

/// One word-level micro-op. All operands are slot indices; every lane
/// (bit of the `u64` word) evaluates independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `slot[dst] = ones ? !0 : 0`.
    Const { dst: u32, ones: bool },
    /// `slot[dst] = slot[a]`.
    Copy { dst: u32, a: u32 },
    /// `slot[dst] = !slot[a]`.
    Not { dst: u32, a: u32 },
    /// `slot[dst] = slot[a] & slot[b]`.
    And { dst: u32, a: u32, b: u32 },
    /// `slot[dst] = slot[a] | slot[b]`.
    Or { dst: u32, a: u32, b: u32 },
    /// `slot[dst] = slot[a] ^ slot[b]`.
    Xor { dst: u32, a: u32, b: u32 },
    /// `slot[dst] = (s & d1) | (!s & d0)` — per-lane 2:1 select.
    Mux { dst: u32, d0: u32, d1: u32, s: u32 },
}

/// Per-cycle state-update record of one sequential instance.
///
/// Commits are stored in instance order; their position in
/// [`Program::commits`] is the dense sequential-state index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Commit {
    /// State-update rule (shared with the interpreter's semantics).
    pub update: SeqUpdate,
    /// First data input slot (`d` / `wwl`).
    pub in0: u32,
    /// Second data input slot (`en` / `wbl`; equals `in0` when unused).
    pub in1: u32,
    /// Output (`q`) net slot, updated at commit.
    pub q: u32,
}

/// A compiled, levelized bit-parallel simulation program.
///
/// Build one with [`Program::compile`][crate::Program::compile]; execute
/// it with [`BatchSim`][crate::BatchSim]. Compiling is a one-time cost —
/// the same program can back any number of concurrent executors.
#[derive(Debug, Clone)]
pub struct Program {
    /// Number of real net slots (== the module's net count).
    pub(crate) net_count: usize,
    /// Total slots including scratch registers.
    pub(crate) slot_count: usize,
    /// Levelized combinational op stream (one settle = one linear pass).
    pub(crate) ops: Vec<Op>,
    /// Sequential commits, in instance order.
    pub(crate) commits: Vec<Commit>,
    /// Instance index → dense sequential index (`u32::MAX` for
    /// combinational instances).
    pub(crate) seq_of_inst: Vec<u32>,
    /// Interned net/instance names (shared `Arc` handles into the
    /// lowering's [`Symbols`]) — resolved lazily by the label helpers;
    /// the program owns no `String` tables.
    pub(crate) syms: Symbols,
}

impl Program {
    /// Number of nets the program simulates.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of micro-ops in the combinational stream.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of sequential state elements.
    pub fn seq_count(&self) -> usize {
        self.commits.len()
    }

    /// The interned name tables this program resolves labels against
    /// (shared with the lowering it was compiled from).
    pub fn symbols(&self) -> &Symbols {
        &self.syms
    }

    /// Retained heap bytes of the compiled program: the op stream, the
    /// commit table, the instance→sequential map, plus its share of the
    /// interned name tables (which are `Arc`-shared with the lowering
    /// and the other compiled artifacts of the same macro, so the name
    /// layer is counted once per holder, not duplicated per holder).
    /// Reported as the `engine.retained_bytes` telemetry gauge at
    /// compile time.
    pub fn retained_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<Op>()
            + self.commits.len() * std::mem::size_of::<Commit>()
            + self.seq_of_inst.len() * std::mem::size_of::<u32>()
            + self.syms.heap_bytes()
    }

    /// Name of the net mirrored by `slot`, or `None` for scratch slots
    /// (`net_count..slot_count`), resolved lazily against the shared
    /// interner.
    pub fn net_label(&self, slot: u32) -> Option<&str> {
        ((slot as usize) < self.net_count).then(|| self.syms.net_name(slot as usize))
    }

    /// Human-readable description of micro-op `idx` with its
    /// destination labelled by real net name (scratch destinations show
    /// as `%<slot>`) — the diagnostic view of the op stream.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn op_label(&self, idx: usize) -> String {
        let slot = |s: u32| match self.net_label(s) {
            Some(name) => format!("`{name}`"),
            None => format!("%{s}"),
        };
        match self.ops[idx] {
            Op::Const { dst, ones } => format!("{} = const {}", slot(dst), u8::from(ones)),
            Op::Copy { dst, a } => format!("{} = {}", slot(dst), slot(a)),
            Op::Not { dst, a } => format!("{} = !{}", slot(dst), slot(a)),
            Op::And { dst, a, b } => format!("{} = {} & {}", slot(dst), slot(a), slot(b)),
            Op::Or { dst, a, b } => format!("{} = {} | {}", slot(dst), slot(a), slot(b)),
            Op::Xor { dst, a, b } => format!("{} = {} ^ {}", slot(dst), slot(a), slot(b)),
            Op::Mux { dst, d0, d1, s } => {
                format!("{} = {} ? {} : {}", slot(dst), slot(s), slot(d1), slot(d0))
            }
        }
    }
}
