//! Runtime SIMD backend selection for [`EngineSim`](crate::EngineSim).
//!
//! [`SimdBackend`] names the lane-word data paths the engine can run
//! on; [`SimdPolicy`] is the user-facing knob — `Auto` (probe the CPU
//! once per construction and take the widest supported backend for the
//! requested lane count) or a pin, normally supplied through the
//! `SYNDCIM_SIMD` environment variable:
//!
//! ```text
//! SYNDCIM_SIMD=auto      # default: widest detected backend
//! SYNDCIM_SIMD=portable  # element-wise [u64; N] words, no intrinsics
//! SYNDCIM_SIMD=avx2      # pin the AVX2 word (x86-64, ≤ 256 lanes)
//! SYNDCIM_SIMD=avx512    # pin the AVX-512 word (x86-64, ≤ 512 lanes)
//! SYNDCIM_SIMD=neon      # pin the NEON word (aarch64, ≤ 256 lanes)
//! ```
//!
//! Validation is strict and typed: an unknown value or a pinned ISA the
//! host CPU lacks is an [`EngineError`] at parse time — never a silent
//! portable fallback — so a CI matrix arm that sets `SYNDCIM_SIMD`
//! fails loudly when the runner cannot honour it. `Auto` never errors:
//! it degrades to the portable words on any host. Lane counts of 64 or
//! fewer always use the scalar `u64` word — a single register is
//! already the cheapest data path, and pinning an ISA does not change
//! that.
//!
//! The selected backend is recorded on the
//! `engine.simd_backend` telemetry gauge (value = [`SimdBackend::code`])
//! every time an executor is constructed, so flow reports show which
//! data path actually ran.

use crate::fault::EngineError;

/// The lane-word data paths [`EngineSim`](crate::EngineSim) selects
/// among at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Element-wise `[u64; N]` words ([`u64`], [`crate::W256`],
    /// [`crate::W512`]) — no intrinsics, available everywhere.
    Portable,
    /// AVX2 `__m256i` word (x86-64, up to 256 lanes).
    Avx2,
    /// AVX-512 `__m512i` word with `vpopcntdq` toggle accounting
    /// (x86-64, up to 512 lanes).
    Avx512,
    /// NEON `uint64x2_t` word (aarch64, up to 256 lanes).
    Neon,
}

impl SimdBackend {
    /// Stable numeric code for the `engine.simd_backend` telemetry
    /// gauge: portable 0, avx2 1, avx512 2, neon 3.
    pub fn code(self) -> u64 {
        match self {
            SimdBackend::Portable => 0,
            SimdBackend::Avx2 => 1,
            SimdBackend::Avx512 => 2,
            SimdBackend::Neon => 3,
        }
    }

    /// The backend's `SYNDCIM_SIMD` spelling.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Portable => "portable",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Avx512 => "avx512",
            SimdBackend::Neon => "neon",
        }
    }

    /// Widest lane count the backend's word carries.
    pub fn max_lanes(self) -> usize {
        match self {
            SimdBackend::Portable | SimdBackend::Avx512 => 512,
            SimdBackend::Avx2 | SimdBackend::Neon => 256,
        }
    }

    /// Whether this host's CPU can run the backend, probed with the
    /// standard library's runtime feature detection (cached by `std`,
    /// so repeated calls are cheap). The AVX-512 backend requires both
    /// `avx512f` and `avx512vpopcntdq` — its toggle accounting leans on
    /// the vector popcount.
    pub fn detected(self) -> bool {
        match self {
            SimdBackend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => {
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

impl std::fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How [`EngineSim`](crate::EngineSim) picks its lane word: probe and
/// take the widest supported backend, or honour a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Probe the CPU, prefer ISA-native words, fall back portable.
    #[default]
    Auto,
    /// Always use the pinned backend; constructing an executor whose
    /// lane count exceeds the backend's word is a typed error.
    Pin(SimdBackend),
}

impl SimdPolicy {
    /// Environment variable consulted by [`SimdPolicy::from_env`].
    pub const ENV: &'static str = "SYNDCIM_SIMD";

    /// Parse a policy from a `SYNDCIM_SIMD`-style string
    /// (case-insensitive, surrounding whitespace ignored).
    ///
    /// # Errors
    ///
    /// [`EngineError::SimdUnknown`] for a value that names no backend;
    /// [`EngineError::SimdUnsupported`] for a backend this CPU (or this
    /// architecture) cannot run — pinning must fail loudly, not fall
    /// back.
    pub fn parse(value: &str) -> Result<Self, EngineError> {
        let policy = match value.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => SimdPolicy::Auto,
            "portable" => SimdPolicy::Pin(SimdBackend::Portable),
            "avx2" => SimdPolicy::Pin(SimdBackend::Avx2),
            "avx512" => SimdPolicy::Pin(SimdBackend::Avx512),
            "neon" => SimdPolicy::Pin(SimdBackend::Neon),
            _ => return Err(EngineError::SimdUnknown),
        };
        if let SimdPolicy::Pin(backend) = policy {
            if !backend.detected() {
                return Err(EngineError::SimdUnsupported { backend });
            }
        }
        Ok(policy)
    }

    /// Read the policy from the `SYNDCIM_SIMD` environment variable
    /// (unset or empty means [`SimdPolicy::Auto`]). Read afresh on
    /// every call — construction-time dispatch is already once per
    /// batch, and tests flip the variable between executors.
    ///
    /// # Errors
    ///
    /// As [`SimdPolicy::parse`].
    pub fn from_env() -> Result<Self, EngineError> {
        match std::env::var(Self::ENV) {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(SimdPolicy::Auto),
        }
    }

    /// Widest lane count one executor may carry under this policy —
    /// what batch-sizing callers (core's `chunk_lanes`) must cap at so
    /// construction cannot fail on lane count.
    pub fn max_lanes(self) -> usize {
        match self {
            SimdPolicy::Auto | SimdPolicy::Pin(SimdBackend::Portable) => 512,
            SimdPolicy::Pin(b) => b.max_lanes(),
        }
    }

    /// Resolve the backend for `lanes` lanes under this policy.
    /// `Auto` prefers the widest detected ISA word that the lane count
    /// fits (falling back portable); a pin is honoured exactly. Lane
    /// counts of 64 or fewer report [`SimdBackend::Portable`] — they
    /// run on the scalar `u64` word regardless of policy.
    ///
    /// # Errors
    ///
    /// [`EngineError::SimdLaneCap`] when `lanes` exceeds
    /// [`SimdPolicy::max_lanes`] — a pinned backend's word is narrower
    /// than the batch, or any batch beyond 512 lanes.
    pub fn select(self, lanes: usize) -> Result<SimdBackend, EngineError> {
        if lanes <= 64 {
            return Ok(SimdBackend::Portable);
        }
        let cap_backend = match self {
            SimdPolicy::Auto => SimdBackend::Portable,
            SimdPolicy::Pin(b) => b,
        };
        if lanes > self.max_lanes() {
            return Err(EngineError::SimdLaneCap { backend: cap_backend, lanes, max: self.max_lanes() });
        }
        match self {
            SimdPolicy::Pin(backend) => Ok(backend),
            SimdPolicy::Auto => {
                if lanes <= 256 {
                    for b in [SimdBackend::Avx2, SimdBackend::Neon] {
                        if b.detected() {
                            return Ok(b);
                        }
                    }
                } else if SimdBackend::Avx512.detected() {
                    return Ok(SimdBackend::Avx512);
                }
                Ok(SimdBackend::Portable)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_spelling_and_rejects_junk() {
        assert_eq!(SimdPolicy::parse("auto"), Ok(SimdPolicy::Auto));
        assert_eq!(SimdPolicy::parse(""), Ok(SimdPolicy::Auto));
        assert_eq!(SimdPolicy::parse(" Portable "), Ok(SimdPolicy::Pin(SimdBackend::Portable)));
        assert_eq!(SimdPolicy::parse("sse9"), Err(EngineError::SimdUnknown));
        assert_eq!(SimdPolicy::parse("avx-512"), Err(EngineError::SimdUnknown));
    }

    #[test]
    fn pinning_an_undetected_isa_is_a_typed_error_not_a_fallback() {
        // Whatever the host, at least one ISA spelling is absent
        // (neon on x86-64, avx2/avx512 on aarch64) — pinning it must
        // error with the backend named, never degrade to portable.
        for (spelling, backend) in
            [("avx2", SimdBackend::Avx2), ("avx512", SimdBackend::Avx512), ("neon", SimdBackend::Neon)]
        {
            match SimdPolicy::parse(spelling) {
                Ok(SimdPolicy::Pin(b)) => {
                    assert_eq!(b, backend);
                    assert!(b.detected(), "pin succeeded on undetected backend");
                }
                Ok(other) => panic!("{spelling} parsed to {other:?}"),
                Err(e) => assert_eq!(e, EngineError::SimdUnsupported { backend }),
            }
        }
    }

    #[test]
    fn narrow_batches_stay_on_the_scalar_word() {
        for policy in [SimdPolicy::Auto, SimdPolicy::Pin(SimdBackend::Portable)] {
            assert_eq!(policy.select(1), Ok(SimdBackend::Portable));
            assert_eq!(policy.select(64), Ok(SimdBackend::Portable));
        }
    }

    #[test]
    fn pinned_backend_lane_caps_are_enforced() {
        let avx2 = SimdPolicy::Pin(SimdBackend::Avx2);
        assert_eq!(
            avx2.select(257),
            Err(EngineError::SimdLaneCap { backend: SimdBackend::Avx2, lanes: 257, max: 256 })
        );
        assert_eq!(avx2.max_lanes(), 256);
        assert_eq!(SimdPolicy::Auto.max_lanes(), 512);
        let portable = SimdPolicy::Pin(SimdBackend::Portable);
        assert_eq!(portable.select(512), Ok(SimdBackend::Portable));
        assert!(portable.select(513).is_err());
    }

    #[test]
    fn auto_never_selects_an_undetected_backend() {
        for lanes in [65, 256, 257, 512] {
            let b = SimdPolicy::Auto.select(lanes).expect("auto never errors in range");
            assert!(b.detected());
            assert!(lanes <= b.max_lanes());
        }
    }
}
